"""A3/A4 -- inter-node ablations.

A3: caching remote data in local DRAM (Section 4.3) vs non-cached remote
    access (Section 4.2) for a kernel that repeatedly reads the same remote
    block: the coherent runtime pays one block fetch and then runs at local
    speed, the non-cached runtime pays the full remote latency every time.

A4: return-to-sender throttling (Section 4.1): a producer flooding a consumer
    completes correctly whether or not the consumer's queue is large, and a
    small send-credit pool bounds the number of in-flight messages.
"""

import pytest

from conftest import report
from repro import MMachine, MachineConfig
from repro.core.stats import format_table
from repro.workloads.synthetic import remote_store_sender_program

REGION = 0x40000
REPEATS = 16


def _repeated_remote_read_program(repeats=REPEATS):
    return f"""
        mov i3, #0
        mov i5, #0
loop:   ld i4, i1          ; read the same remote word
        add i5, i5, i4
        add i3, i3, #1
        lt i6, i3, #{repeats}
        br i6, loop
        halt
    """


def _run_repeated_reads(mode):
    config = MachineConfig.small(2, 1, 1)
    config.runtime.shared_memory_mode = mode
    machine = MMachine(config)
    machine.map_on_node(1, REGION, num_pages=1)
    machine.write_word(REGION, 3)
    machine.load_hthread(0, 0, 0, _repeated_remote_read_program(),
                         registers={"i1": REGION})
    machine.run_until_user_done(max_cycles=200000)
    assert machine.register_value(0, 0, 0, "i5") == 3 * REPEATS
    return machine.cycle


def _caching_ablation():
    return {mode: _run_repeated_reads(mode) for mode in ("remote", "coherent")}


def _run_flood(send_credits, queue_words, messages=24):
    config = MachineConfig.small(2, 1, 1)
    config.network.send_credits = send_credits
    config.network.message_queue_words = queue_words
    config.network.retransmit_interval = 16
    machine = MMachine(config)
    machine.map_on_node(1, REGION, num_pages=1)
    dip = machine.runtime.dip("remote_store")
    machine.load_hthread(0, 0, 0, remote_store_sender_program(REGION, dip, messages))
    machine.run_until_user_done(max_cycles=400000)
    delivered = all(machine.read_word(REGION + i) != 0 for i in range(messages))
    return {
        "cycles": machine.cycle,
        "delivered": delivered,
        "nacks": machine.nodes[0].net.nacks_received,
        "retransmissions": machine.nodes[0].net.retransmissions,
        "max_queue_words": machine.nodes[1].msg_queue_p0.max_occupancy,
    }


def _run_many_to_one_flood(queue_words, senders=3, messages_each=8):
    """Three producers on a 2x2 mesh flood one consumer; with a tiny consumer
    queue the bursts overflow it and exercise the NACK/retransmit path."""
    from repro.workloads.synthetic import many_to_one_store_programs

    config = MachineConfig.small(2, 2, 1)
    config.network.message_queue_words = queue_words
    config.network.retransmit_interval = 16
    machine = MMachine(config)
    machine.map_on_node(0, REGION, num_pages=1)
    dip = machine.runtime.dip("remote_store")
    programs = many_to_one_store_programs(senders, messages_each, REGION, dip)
    for sender, program in programs.items():
        machine.load_hthread(sender + 1, 0, 0, program)
    machine.run_until_user_done(max_cycles=400000)
    total = senders * messages_each
    delivered = all(machine.read_word(REGION + i) != 0 for i in range(total))
    return {
        "cycles": machine.cycle,
        "delivered": delivered,
        "nacks": sum(node.net.nacks_received for node in machine.nodes),
        "retransmissions": sum(node.net.retransmissions for node in machine.nodes),
        "max_queue_words": machine.nodes[0].msg_queue_p0.max_occupancy,
    }


def _throttle_ablation():
    return {
        "large credits / large queue": _run_flood(send_credits=16, queue_words=128),
        "small credits / large queue": _run_flood(send_credits=2, queue_words=128),
        "3-to-1 flood / tiny queue": _run_many_to_one_flood(queue_words=6),
        "3-to-1 flood / large queue": _run_many_to_one_flood(queue_words=128),
    }


@pytest.fixture(scope="module")
def caching_results():
    return _caching_ablation()


@pytest.fixture(scope="module")
def throttle_results():
    return _throttle_ablation()


def test_ablation_dram_caching(single_run_benchmark, caching_results):
    results = single_run_benchmark(_caching_ablation)
    rows = [
        ["non-cached remote access (Section 4.2)", results["remote"]],
        ["DRAM caching with block-status bits (Section 4.3)", results["coherent"]],
    ]
    report(
        f"Ablation A3: {REPEATS} repeated reads of one remote word",
        [format_table(["runtime", "total cycles"], rows)],
    )
    assert results["coherent"] < results["remote"]


def test_ablation_throttling(single_run_benchmark, throttle_results):
    results = single_run_benchmark(_throttle_ablation)
    rows = [[name, data["cycles"], data["delivered"], data["nacks"],
             data["retransmissions"], data["max_queue_words"]]
            for name, data in results.items()]
    report(
        "Ablation A4: 24-message flood under different throttling settings",
        [format_table(["configuration", "cycles", "all delivered", "NACKs",
                       "retransmissions", "peak queue words"], rows)],
    )
    assert all(data["delivered"] for data in results.values())


class TestInternodeAblationShape:
    def test_caching_beats_non_cached_by_a_large_factor(self, caching_results):
        assert caching_results["remote"] > 2 * caching_results["coherent"]

    def test_small_credit_pool_still_completes(self, throttle_results):
        assert throttle_results["small credits / large queue"]["delivered"]

    def test_tiny_queue_forces_return_to_sender(self, throttle_results):
        data = throttle_results["3-to-1 flood / tiny queue"]
        assert data["nacks"] > 0
        assert data["retransmissions"] > 0
        assert data["delivered"]

    def test_throttled_runs_are_slower_but_correct(self, throttle_results):
        base = throttle_results["3-to-1 flood / large queue"]["cycles"]
        assert throttle_results["3-to-1 flood / tiny queue"]["cycles"] >= base
