"""A3/A4 -- inter-node ablations.

A3: caching remote data in local DRAM (Section 4.3) vs non-cached remote
    access (Section 4.2) for a kernel that repeatedly reads the same remote
    block: the coherent runtime pays one block fetch and then runs at local
    speed, the non-cached runtime pays the full remote latency every time.

A4: return-to-sender throttling (Section 4.1): a producer flooding a consumer
    completes correctly whether or not the consumer's queue is large, and a
    small send-credit pool bounds the number of in-flight messages.
"""

import pytest

from conftest import report, run_and_record
from repro.core.stats import format_table

REPEATS = 16


def _run_repeated_reads(mode):
    metrics = run_and_record("remote-memory", mode=mode, repeats=REPEATS)
    assert metrics["verified"]
    return metrics["cycles"]


def _caching_ablation():
    return {mode: _run_repeated_reads(mode) for mode in ("remote", "coherent")}


def _run_flood(send_credits, queue_words, messages=24):
    metrics = run_and_record(
        "flood", send_credits=send_credits, queue_words=queue_words,
        messages=messages,
    )
    return {
        "cycles": metrics["cycles"],
        "delivered": metrics["verified"],
        "nacks": metrics["nacks"],
        "retransmissions": metrics["retransmissions"],
        "max_queue_words": metrics["max_queue_words"],
    }


def _run_many_to_one_flood(queue_words, senders=3, messages_each=8):
    """Three producers on a 2x2 mesh flood one consumer; with a tiny consumer
    queue the bursts overflow it and exercise the NACK/retransmit path."""
    metrics = run_and_record(
        "many-to-one-flood", queue_words=queue_words, senders=senders,
        messages_each=messages_each,
    )
    return {
        "cycles": metrics["cycles"],
        "delivered": metrics["verified"],
        "nacks": metrics["nacks"],
        "retransmissions": metrics["retransmissions"],
        "max_queue_words": metrics["max_queue_words"],
    }


def _throttle_ablation():
    return {
        "large credits / large queue": _run_flood(send_credits=16, queue_words=128),
        "small credits / large queue": _run_flood(send_credits=2, queue_words=128),
        "3-to-1 flood / tiny queue": _run_many_to_one_flood(queue_words=6),
        "3-to-1 flood / large queue": _run_many_to_one_flood(queue_words=128),
    }


@pytest.fixture(scope="module")
def caching_results():
    return _caching_ablation()


@pytest.fixture(scope="module")
def throttle_results():
    return _throttle_ablation()


def test_ablation_dram_caching(single_run_benchmark, caching_results):
    results = single_run_benchmark(_caching_ablation)
    rows = [
        ["non-cached remote access (Section 4.2)", results["remote"]],
        ["DRAM caching with block-status bits (Section 4.3)", results["coherent"]],
    ]
    report(
        f"Ablation A3: {REPEATS} repeated reads of one remote word",
        [format_table(["runtime", "total cycles"], rows)],
    )
    assert results["coherent"] < results["remote"]


def test_ablation_throttling(single_run_benchmark, throttle_results):
    results = single_run_benchmark(_throttle_ablation)
    rows = [[name, data["cycles"], data["delivered"], data["nacks"],
             data["retransmissions"], data["max_queue_words"]]
            for name, data in results.items()]
    report(
        "Ablation A4: 24-message flood under different throttling settings",
        [format_table(["configuration", "cycles", "all delivered", "NACKs",
                       "retransmissions", "peak queue words"], rows)],
    )
    assert all(data["delivered"] for data in results.values())


class TestInternodeAblationShape:
    def test_caching_beats_non_cached_by_a_large_factor(self, caching_results):
        assert caching_results["remote"] > 2 * caching_results["coherent"]

    def test_small_credit_pool_still_completes(self, throttle_results):
        assert throttle_results["small credits / large queue"]["delivered"]

    def test_tiny_queue_forces_return_to_sender(self, throttle_results):
        data = throttle_results["3-to-1 flood / tiny queue"]
        assert data["nacks"] > 0
        assert data["retransmissions"] > 0
        assert data["delivered"]

    def test_throttled_runs_are_slower_but_correct(self, throttle_results):
        base = throttle_results["3-to-1 flood / large queue"]["cycles"]
        assert throttle_results["3-to-1 flood / tiny queue"]["cycles"] >= base
