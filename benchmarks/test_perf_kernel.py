"""Simulation-kernel throughput: event kernel vs naive loop.

Not a paper figure -- this benchmark tracks the *host-side* cost of the
simulator itself, which gates how large a mesh and how long a workload the
paper-reproduction benchmarks can afford.  The workload is deliberately
idle-heavy: one node on a 4x4x1 mesh performs a chain of dependent remote
loads from the diagonally-opposite corner, so on almost every cycle almost
every node is waiting -- the regime the paper's Figures 5-9 scenarios live
in, and the worst case for the naive tick-everything loop (host cost
O(cycles x nodes)).  The event kernel sleeps the idle nodes and jumps the
clock across network round-trips, so its cost is O(work).

The headline number recorded in the benchmark JSON is simulated
cycles-per-second of host wall-clock time for each kernel, plus their
ratio; ``test_event_kernel_speedup`` asserts the >= 2x floor from the
issue's acceptance criteria (in practice the ratio is far higher).
"""

import os
import time

from conftest import record_trajectory, report
from repro import MMachine, MachineConfig
from repro.api import ExperimentBuilder

REGION = 0x40000
REPEATS = 24

#: Mesh-scaling matrix: (mesh_x, mesh_y, mesh_z, stencil iterations).  Every
#: point runs the same per-node work so one-time setup (program load,
#: dispatch compilation -- both O(nodes)) amortises identically and the
#: per-node-tick throughput comparison isolates the per-cycle hot path.
MESH_MATRIX = ((4, 4, 1, 120), (8, 8, 1, 120), (16, 16, 1, 120))


def _remote_read_chain(repeats: int = REPEATS) -> str:
    """Dependent remote reads: every iteration waits for the previous reply,
    so the machine is almost always idle."""
    return f"""
        mov i3, #0
        mov i5, #0
loop:   ld i4, i1          ; remote load (full network round trip)
        add i5, i5, i4     ; depend on the loaded value
        add i3, i3, #1
        lt i6, i3, #{repeats}
        br i6, loop
        halt
    """


def _build_machine(kernel: str) -> MMachine:
    config = MachineConfig.small(4, 4, 1)
    config.sim.kernel = kernel
    config.trace_enabled = False
    machine = MMachine(config)
    machine.map_on_node(15, REGION, num_pages=1)   # far corner of the mesh
    machine.write_word(REGION, 3)
    machine.load_hthread(0, 0, 0, _remote_read_chain(), registers={"i1": REGION})
    return machine


def _run(machine: MMachine) -> int:
    machine.run_until_user_done(max_cycles=500_000)
    assert machine.register_value(0, 0, 0, "i5") == 3 * REPEATS
    return machine.cycle


def _timed_run(kernel: str, rounds: int = 1):
    """Run the workload *rounds* times on fresh machines and keep the best
    wall time (the minimum is the standard noise-resistant estimator for a
    deterministic computation on a shared host)."""
    best = None
    for _ in range(rounds):
        machine = _build_machine(kernel)
        start = time.perf_counter()
        cycles = _run(machine)
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best[1]:
            best = (cycles, elapsed, machine)
    return best


def test_event_kernel_throughput(benchmark):
    """Record simulated cycles/second for both kernels in the benchmark
    trajectory; the benchmarked callable is the event-kernel run."""
    naive_cycles, naive_elapsed, _ = _timed_run("naive")

    def run_event():
        return _timed_run("event")

    event_cycles, event_elapsed, machine = benchmark.pedantic(
        run_event, rounds=1, iterations=1, warmup_rounds=0
    )
    assert event_cycles == naive_cycles, "kernels disagree on simulated time"

    naive_cps = naive_cycles / naive_elapsed
    event_cps = event_cycles / event_elapsed
    speedup = event_cps / naive_cps
    benchmark.extra_info["simulated_cycles"] = event_cycles
    benchmark.extra_info["event_cycles_per_second"] = round(event_cps)
    benchmark.extra_info["naive_cycles_per_second"] = round(naive_cps)
    benchmark.extra_info["speedup_vs_naive"] = round(speedup, 2)
    benchmark.extra_info["node_ticks"] = machine.kernel.node_ticks
    benchmark.extra_info["node_ticks_naive_equivalent"] = naive_cycles * machine.num_nodes

    record_trajectory(
        "kernel_throughput",
        simulated_cycles=event_cycles,
        event_cycles_per_second=round(event_cps),
        naive_cycles_per_second=round(naive_cps),
        speedup_vs_naive=round(speedup, 2),
        node_ticks_event=machine.kernel.node_ticks,
        node_ticks_naive_equivalent=naive_cycles * machine.num_nodes,
    )

    report("Kernel throughput (idle-heavy 4x4x1 remote-read chain)", [
        f"simulated cycles        {event_cycles}",
        f"naive loop              {naive_cps:>12.0f} cycles/s",
        f"event kernel            {event_cps:>12.0f} cycles/s",
        f"speedup                 {speedup:>12.1f}x",
        f"node ticks (event)      {machine.kernel.node_ticks} of "
        f"{naive_cycles * machine.num_nodes} naive",
    ])


def test_event_kernel_speedup():
    """Acceptance floor: >= 2x cycles/second on the idle-heavy internode
    workload.  Best-of-three timing per kernel and a floor far below the
    measured ~10x keep host jitter from flaking the suite."""
    naive_cycles, naive_elapsed, _ = _timed_run("naive", rounds=3)
    event_cycles, event_elapsed, _ = _timed_run("event", rounds=3)
    assert event_cycles == naive_cycles
    speedup = (event_cycles / event_elapsed) / (naive_cycles / naive_elapsed)
    assert speedup >= 2.0, f"event kernel only {speedup:.2f}x faster than naive"


def _timed_busy(mesh, iterations, compile_dispatch=True, rounds=1):
    """Best-of-*rounds* wall time for the busy-stencil workload on *mesh*
    with dispatch compilation on or off.  Returns ``(elapsed, metrics)``."""
    best = None
    for _ in range(rounds):
        experiment = (
            ExperimentBuilder()
            .workload("busy-stencil", iterations=iterations, mesh=list(mesh))
            .override("sim.compile_dispatch", compile_dispatch)
            .build()
        )
        start = time.perf_counter()
        result = experiment.run()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best[0]:
            best = (elapsed, result.metrics)
    return best


def test_busy_dispatch_throughput(benchmark):
    """Busy-heavy throughput: dispatch compilation on vs off on a 4x4x1 mesh.

    Every cluster issues on (almost) every cycle, so the event kernel cannot
    sleep anything -- this measures raw per-tick execution cost, which is
    exactly what the precompiled dispatch path (repro.cluster.dispatch)
    optimises.  The >= 2x floor is the CI acceptance gate; the measured
    speedup (recorded in the trajectory) is ~4x.
    """
    mesh, iterations = (4, 4, 1), 200
    off_elapsed, off_metrics = _timed_busy(mesh, iterations, compile_dispatch=False)

    def run_compiled():
        return _timed_busy(mesh, iterations, compile_dispatch=True)

    on_elapsed, on_metrics = benchmark.pedantic(
        run_compiled, rounds=1, iterations=1, warmup_rounds=0
    )
    assert on_metrics == off_metrics, "dispatch compilation changed results"
    assert on_metrics["verified"], "busy-stencil checksum mismatch"

    cycles = on_metrics["cycles"]
    on_cps = cycles / on_elapsed
    off_cps = cycles / off_elapsed
    speedup = on_cps / off_cps
    benchmark.extra_info["simulated_cycles"] = cycles
    benchmark.extra_info["compiled_cycles_per_second"] = round(on_cps)
    benchmark.extra_info["interpreted_cycles_per_second"] = round(off_cps)
    benchmark.extra_info["speedup_vs_interpreted"] = round(speedup, 2)

    record_trajectory(
        "busy_dispatch",
        mesh="4x4x1",
        iterations=iterations,
        simulated_cycles=cycles,
        compiled_cycles_per_second=round(on_cps),
        interpreted_cycles_per_second=round(off_cps),
        speedup_vs_interpreted=round(speedup, 2),
    )

    report("Busy-heavy dispatch throughput (4x4x1 register stencil)", [
        f"simulated cycles        {cycles}",
        f"interpreted dispatch    {off_cps:>12.0f} cycles/s",
        f"compiled dispatch       {on_cps:>12.0f} cycles/s",
        f"speedup                 {speedup:>12.2f}x",
    ])
    assert speedup >= 2.0, (
        f"compiled dispatch only {speedup:.2f}x faster than interpreted"
    )


def test_mesh_scaling_matrix():
    """O(work) scaling gate: node-ticks/second must not collapse as the mesh
    grows.  On a busy workload every node ticks every cycle, so host work is
    proportional to ``cycles x nodes``; if per-node-tick throughput becomes
    super-linear in machine size (a per-cycle scan of all nodes, a shared
    structure that grows with the mesh), the larger meshes fall off a cliff.

    The gate compares 8x8 against 16x16 rather than 4x4 against 16x16: a
    4x4 machine (~1.5 MB of Python objects) fits the host's L2 cache while
    the larger meshes do not, so the 4x4 point enjoys a one-off memory-
    latency bonus of roughly 1.6-1.9x that has nothing to do with
    algorithmic scaling (per-node-tick *call counts* are identical across
    the matrix; only per-call latency changes).  8x8 (~6 MB) and 16x16
    (~20 MB) both live beyond L2, so their comparison isolates genuine
    super-linearity -- before cross-cluster dispatch-plan sharing this
    segment showed a 45% drop, now it is within a few percent.  The full
    matrix including the 4x4 point is still recorded in the trajectory."""
    matrix = {}
    for mesh_x, mesh_y, mesh_z, iterations in MESH_MATRIX:
        num_nodes = mesh_x * mesh_y * mesh_z
        elapsed, metrics = _timed_busy((mesh_x, mesh_y, mesh_z), iterations)
        assert metrics["verified"], "busy-stencil checksum mismatch"
        cycles = metrics["cycles"]
        cps = cycles / elapsed
        node_ticks_per_second = cps * num_nodes
        matrix[f"{mesh_x}x{mesh_y}x{mesh_z}"] = {
            "nodes": num_nodes,
            "iterations": iterations,
            "simulated_cycles": cycles,
            "cycles_per_second": round(cps),
            "node_ticks_per_second": round(node_ticks_per_second),
        }

    record_trajectory("mesh_scaling", **{
        f"{mesh}_{metric}": value
        for mesh, row in matrix.items()
        for metric, value in row.items()
    })
    report("Mesh-scaling matrix (busy stencil, compiled dispatch)", [
        f"{mesh:>8}  {row['cycles_per_second']:>10} cycles/s  "
        f"{row['node_ticks_per_second']:>12} node-ticks/s"
        for mesh, row in matrix.items()
    ])

    small = matrix["8x8x1"]["node_ticks_per_second"]
    large = matrix["16x16x1"]["node_ticks_per_second"]
    assert large >= 0.7 * small, (
        f"per-node-tick throughput dropped {(1 - large / small):.0%} "
        f"from 8x8 to 16x16 (limit 30%)"
    )


def _one_traced_busy(mesh, iterations, trace_dir=None):
    """One busy-stencil run with the default memory sink (``trace_dir=None``)
    or a fresh disk-sink directory; returns ``(elapsed, metrics)``."""
    builder = ExperimentBuilder().workload(
        "busy-stencil", iterations=iterations, mesh=list(mesh)
    )
    if trace_dir is not None:
        builder = builder.trace(str(trace_dir))
    experiment = builder.build()
    start = time.perf_counter()
    result = experiment.run()
    return time.perf_counter() - start, result.metrics


def test_trace_sink_overhead(tmp_path):
    """Acceptance gate: streaming the trace to disk costs <= 25% in
    cycles/second against the in-memory sink on the busy 4x4x1 stencil --
    the regime where per-event cost matters most (every cluster issues on
    almost every cycle, so trace recording sits squarely on the hot path).
    Results must be identical either way; the measured overhead (~13% on an
    idle host) is recorded in the benchmark trajectory.  The two configs are
    timed in interleaved rounds and compared on best-of-3 wall time, so a
    host-load spike has to span the whole measurement (not just one config's
    window) to bias the ratio."""
    mesh, iterations = (4, 4, 1), 200
    memory_elapsed = disk_elapsed = None
    memory_metrics = disk_metrics = None
    for round_index in range(3):
        elapsed, memory_metrics = _one_traced_busy(mesh, iterations)
        memory_elapsed = elapsed if memory_elapsed is None else min(memory_elapsed, elapsed)
        elapsed, disk_metrics = _one_traced_busy(
            mesh, iterations, trace_dir=tmp_path / f"round-{round_index}"
        )
        disk_elapsed = elapsed if disk_elapsed is None else min(disk_elapsed, elapsed)
    assert disk_metrics == memory_metrics, "disk trace sink changed results"
    assert disk_metrics["verified"], "busy-stencil checksum mismatch"

    cycles = disk_metrics["cycles"]
    memory_cps = cycles / memory_elapsed
    disk_cps = cycles / disk_elapsed
    overhead = memory_elapsed and (disk_elapsed / memory_elapsed - 1.0)

    record_trajectory(
        "trace_sink_overhead",
        mesh="4x4x1",
        iterations=iterations,
        simulated_cycles=cycles,
        memory_sink_cycles_per_second=round(memory_cps),
        disk_sink_cycles_per_second=round(disk_cps),
        disk_overhead_fraction=round(overhead, 4),
    )
    report("Trace-sink overhead (busy 4x4x1 stencil, memory vs disk)", [
        f"simulated cycles        {cycles}",
        f"memory sink             {memory_cps:>12.0f} cycles/s",
        f"disk sink               {disk_cps:>12.0f} cycles/s",
        f"overhead                {overhead:>12.1%}",
    ])
    assert disk_cps >= memory_cps / 1.25, (
        f"disk trace sink costs {overhead:.1%} cycles/s (limit 25%)"
    )


def test_snapshot_save_restore_overhead(tmp_path):
    """Measure the cost of the repro.snapshot subsystem on the benchmark
    machine: wall time to save a mid-run snapshot, its size on disk, wall
    time to restore in-process, and the interruption-free checkpoint cadence
    those numbers support.  Recorded into the benchmark trajectory next to
    kernel throughput (restore correctness has its own test suite)."""
    machine = _build_machine("event")
    machine.run(600)  # mid-run: the remote-read chain needs ~1900 cycles
    snapshot_cycle = machine.cycle

    path = str(tmp_path / "bench.json")
    best_save = None
    for _ in range(3):
        start = time.perf_counter()
        machine.save_snapshot(path)
        elapsed = time.perf_counter() - start
        best_save = elapsed if best_save is None else min(best_save, elapsed)
    size_bytes = os.path.getsize(path)

    best_restore = None
    restored = None
    for _ in range(3):
        start = time.perf_counter()
        restored = MMachine.from_snapshot(path)
        elapsed = time.perf_counter() - start
        best_restore = elapsed if best_restore is None else min(best_restore, elapsed)
    assert restored.cycle == snapshot_cycle

    # The snapshotted machine is not perturbed: it still finishes correctly.
    cycles = _run(machine)

    record_trajectory(
        "snapshot_overhead",
        snapshot_cycle=snapshot_cycle,
        mesh="4x4x1",
        save_seconds=round(best_save, 6),
        restore_seconds=round(best_restore, 6),
        snapshot_bytes=size_bytes,
        final_cycles_after_snapshot=cycles,
    )

    report("Snapshot save/restore overhead (4x4x1, mid-run)", [
        f"save              {best_save * 1e3:>10.2f} ms",
        f"restore           {best_restore * 1e3:>10.2f} ms",
        f"snapshot size     {size_bytes:>10d} bytes",
    ])
