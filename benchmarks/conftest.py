"""Shared fixtures/utilities for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures (or an
ablation called out in DESIGN.md) and prints the corresponding rows next to
the paper's published values, so running

    pytest benchmarks/ --benchmark-only -s

produces a paper-vs-measured report (EXPERIMENTS.md is written from the same
numbers).

The machine-driving benchmarks execute their scenarios through the shared
workload factories (:mod:`repro.workloads.factories`) — the same code path
``repro sweep paper-figures`` uses — so sweep results and pytest results
report identical cycle counts.  Set ``REPRO_RECORD_DIR`` to a directory to
additionally emit one schema-valid JSON record per benchmark run, mergeable
with sweep output.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.api.result import RunResult
from repro.api.workload import get_workload
from repro.report.trajectory import append_session
from repro.sweep.runner import store_record

#: Machine-readable benchmark trajectory, appended to ``BENCH_kernel.json``
#: (or ``$REPRO_BENCH_JSON``) at session end.  Benchmarks record named
#: entries via :func:`record_trajectory`; every benchmark session — locally
#: and in CI — appends one session record
#: (:mod:`repro.report.trajectory`), and CI uploads the file as an artifact
#: so kernel throughput and snapshot overhead are tracked per commit.
BENCH_TRAJECTORY: dict = {}

#: Set once any benchmark test from this directory actually ran; a session
#: that collected no benchmarks (e.g. ``pytest tests/``) must not append.
_RAN_BENCHMARKS = False


def record_trajectory(name: str, **metrics) -> None:
    """Record one named benchmark result for the trajectory file."""
    BENCH_TRAJECTORY[name] = metrics


def pytest_runtest_setup(item):
    global _RAN_BENCHMARKS
    _RAN_BENCHMARKS = True


def pytest_sessionfinish(session, exitstatus):
    if not _RAN_BENCHMARKS:
        return
    path = os.environ.get("REPRO_BENCH_JSON", "BENCH_kernel.json")
    append_session(path, BENCH_TRAJECTORY)


def report(title: str, lines) -> None:
    """Print a small report block that survives pytest's capture when -s is
    not given (it is shown for failed tests and in --capture=no runs)."""
    banner = "=" * len(title)
    print(f"\n{title}\n{banner}")
    for line in lines:
        print(line)


def run_and_record(workload: str, **params):
    """Run a workload factory; emit a sweep-schema record when recording.

    This is the entry point the benchmark files use, so a pytest run and a
    ``repro sweep`` run of the same (workload, params) execute the same code
    (both go through the typed ``repro.api`` registry, and the emitted
    record is the serialised ``RunResult`` form).
    """
    start = time.perf_counter()
    metrics = get_workload(workload).call(params)
    elapsed = time.perf_counter() - start
    record_dir = os.environ.get("REPRO_RECORD_DIR")
    if record_dir:
        result = RunResult.from_metrics(
            workload=workload,
            params=params,
            metrics=metrics,
            wall_seconds=elapsed,
            tags={"harness": "pytest-benchmarks"},
        )
        store_record(result.to_record(), record_dir)
    return metrics


@pytest.fixture
def single_run_benchmark(benchmark):
    """A pytest-benchmark wrapper for heavyweight whole-machine simulations:
    one warm-up-free round, one iteration."""

    def run(function, *args, **kwargs):
        return benchmark.pedantic(function, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1, warmup_rounds=0)

    return run
