"""Shared fixtures/utilities for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures (or an
ablation called out in DESIGN.md) and prints the corresponding rows next to
the paper's published values, so running

    pytest benchmarks/ --benchmark-only -s

produces a paper-vs-measured report (EXPERIMENTS.md is written from the same
numbers).
"""

from __future__ import annotations

import pytest


def report(title: str, lines) -> None:
    """Print a small report block that survives pytest's capture when -s is
    not given (it is shown for failed tests and in --capture=no runs)."""
    banner = "=" * len(title)
    print(f"\n{title}\n{banner}")
    for line in lines:
        print(line)


@pytest.fixture
def single_run_benchmark(benchmark):
    """A pytest-benchmark wrapper for heavyweight whole-machine simulations:
    one warm-up-free round, one iteration."""

    def run(function, *args, **kwargs):
        return benchmark.pedantic(function, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1, warmup_rounds=0)

    return run
