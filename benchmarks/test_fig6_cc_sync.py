"""E2 -- Figure 6: loop synchronisation between H-Threads using the global
condition-code registers, plus the 4-way barrier extension the paper sketches
("this protocol can easily be extended to perform a fast barrier among 4
H-Threads ... without combining or distribution trees")."""

import pytest

from conftest import report, run_and_record
from repro.core.stats import format_table

ITERATIONS = 50


def _run_cc_loop(iterations=ITERATIONS):
    return run_and_record("cc-sync", iterations=iterations)


def _run_barrier(iterations=ITERATIONS, clusters=4):
    return run_and_record("cc-barrier", iterations=iterations, clusters=clusters)


@pytest.fixture(scope="module")
def results():
    loop_metrics = _run_cc_loop()
    barrier_metrics = _run_barrier()
    return {
        "loop_cycles": loop_metrics["cycles"],
        "loop_per_iteration": loop_metrics["cycles"] / ITERATIONS,
        "barrier_cycles": barrier_metrics["cycles"],
        "barrier_per_iteration": barrier_metrics["cycles"] / ITERATIONS,
        "loop_metrics": loop_metrics,
        "barrier_metrics": barrier_metrics,
    }


def test_fig6_cc_synchronisation(single_run_benchmark, results):
    metrics = single_run_benchmark(_run_cc_loop)
    rows = [
        ["2 H-Thread interlocked loop", ITERATIONS, metrics["cycles"],
         round(metrics["cycles"] / ITERATIONS, 2)],
        ["4 H-Thread CC barrier", ITERATIONS, results["barrier_cycles"],
         round(results["barrier_per_iteration"], 2)],
    ]
    report("Figure 6: CC-register synchronisation cost",
           [format_table(["kernel", "iterations", "cycles", "cycles/iteration"], rows)])
    assert metrics["verified"]


class TestFig6Shape:
    def test_both_threads_complete_every_iteration(self, results):
        """The factory's verification checks both H-Threads' iteration
        counters reached the end value."""
        assert results["loop_metrics"]["verified"]

    def test_neither_thread_runs_ahead(self, results):
        """The interlock costs a handful of cycles per iteration (broadcast +
        consume + notify), far less than a memory-based barrier would."""
        per_iteration = results["loop_per_iteration"]
        assert 5 <= per_iteration <= 25

    def test_barrier_scales_to_four_clusters_without_trees(self, results):
        assert results["barrier_metrics"]["verified"]
        # Two-phase barrier over replicated CC registers: tens of cycles per
        # iteration, not hundreds.
        assert results["barrier_per_iteration"] <= 60

    def test_no_memory_traffic_needed(self, results):
        """Synchronisation happens entirely through registers: no loads or
        stores are issued by either kernel."""
        assert results["loop_metrics"]["memory_requests"] == 0
