"""E2 -- Figure 6: loop synchronisation between H-Threads using the global
condition-code registers, plus the 4-way barrier extension the paper sketches
("this protocol can easily be extended to perform a fast barrier among 4
H-Threads ... without combining or distribution trees")."""

import pytest

from conftest import report
from repro import MMachine, MachineConfig
from repro.core.stats import format_table
from repro.workloads.microbench import cc_barrier_programs, cc_loop_sync_programs

ITERATIONS = 50


def _run_cc_loop(iterations=ITERATIONS):
    machine = MMachine(MachineConfig.single_node())
    machine.load_vthread(0, 0, cc_loop_sync_programs(iterations))
    machine.run_until_user_done(max_cycles=100000)
    return machine


def _run_barrier(iterations=ITERATIONS, clusters=4):
    machine = MMachine(MachineConfig.single_node())
    machine.load_vthread(0, 0, cc_barrier_programs(iterations, clusters))
    machine.run_until_user_done(max_cycles=400000)
    return machine


@pytest.fixture(scope="module")
def results():
    loop_machine = _run_cc_loop()
    barrier_machine = _run_barrier()
    return {
        "loop_cycles": loop_machine.cycle,
        "loop_per_iteration": loop_machine.cycle / ITERATIONS,
        "barrier_cycles": barrier_machine.cycle,
        "barrier_per_iteration": barrier_machine.cycle / ITERATIONS,
        "loop_machine": loop_machine,
        "barrier_machine": barrier_machine,
    }


def test_fig6_cc_synchronisation(single_run_benchmark, results):
    machine = single_run_benchmark(_run_cc_loop)
    rows = [
        ["2 H-Thread interlocked loop", ITERATIONS, machine.cycle,
         round(machine.cycle / ITERATIONS, 2)],
        ["4 H-Thread CC barrier", ITERATIONS, results["barrier_cycles"],
         round(results["barrier_per_iteration"], 2)],
    ]
    report("Figure 6: CC-register synchronisation cost",
           [format_table(["kernel", "iterations", "cycles", "cycles/iteration"], rows)])
    assert machine.register_value(0, 0, 0, "i2") == ITERATIONS


class TestFig6Shape:
    def test_both_threads_complete_every_iteration(self, results):
        machine = results["loop_machine"]
        assert machine.register_value(0, 0, 0, "i2") == ITERATIONS
        assert machine.register_value(0, 0, 1, "i2") == ITERATIONS

    def test_neither_thread_runs_ahead(self, results):
        """The interlock costs a handful of cycles per iteration (broadcast +
        consume + notify), far less than a memory-based barrier would."""
        per_iteration = results["loop_per_iteration"]
        assert 5 <= per_iteration <= 25

    def test_barrier_scales_to_four_clusters_without_trees(self, results):
        machine = results["barrier_machine"]
        for cluster in range(4):
            assert machine.register_value(0, 0, cluster, "i2") == ITERATIONS
        # Two-phase barrier over replicated CC registers: tens of cycles per
        # iteration, not hundreds.
        assert results["barrier_per_iteration"] <= 60

    def test_no_memory_traffic_needed(self, results):
        """Synchronisation happens entirely through registers: no loads or
        stores are issued by either kernel."""
        machine = results["loop_machine"]
        assert machine.nodes[0].memory.requests_accepted == 0
