"""E5 -- Figure 7: the remote-store message send/receive code path.

Measures the end-to-end latency of a single user-level SEND carrying a
remote store (Figure 7's three-word message), the sustained rate of a stream
of such messages, and a user-level ping-pong built from two remote stores.
"""

import pytest

from conftest import report
from repro import MMachine, MachineConfig
from repro.core.stats import format_table
from repro.workloads.synthetic import remote_store_sender_program

REGION = 0x40000


def _machine():
    machine = MMachine(MachineConfig.small(2, 1, 1))
    machine.map_on_node(1, REGION, num_pages=1)
    machine.map_on_node(0, REGION + 0x1000, num_pages=1)
    return machine


def _single_remote_store():
    machine = _machine()
    dip = machine.runtime.dip("remote_store")
    machine.load_hthread(0, 0, 0, f"""
        mov m0, #99
        send i1, #{dip}, #1
        halt
    """, registers={"i1": REGION + 1})
    machine.run_until_quiescent(max_cycles=5000)
    send = machine.tracer.first("send", cluster=0)
    complete = None
    for event in machine.tracer.filter("store_complete", node=1):
        if event.info.get("address") == REGION + 1:
            complete = event
            break
    return machine, complete.cycle - send.cycle


def _message_stream(count=64):
    machine = _machine()
    dip = machine.runtime.dip("remote_store")
    machine.load_hthread(0, 0, 0, remote_store_sender_program(REGION, dip, count))
    machine.run_until_user_done(max_cycles=200000)
    return machine.cycle / count


def _ping_pong(rounds=16):
    """Node 0 stores to a flag on node 1 and waits for node 1 to store back,
    'rounds' times, all through user-level SENDs."""
    machine = _machine()
    dip = machine.runtime.dip("remote_store")
    ping, pong = REGION + 8, REGION + 0x1000 + 8
    machine.write_word(ping, 0)
    machine.write_word(pong, 0)
    machine.load_hthread(0, 0, 0, f"""
        mov i3, #0
loop:   add i3, i3, #1
        mov m0, i3
        send i1, #{dip}, #1       ; ping
wait:   ld i4, i2
        lt i5, i4, i3
        br i5, wait               ; spin until the pong for this round lands
        lt i6, i3, #{rounds}
        br i6, loop
        halt
    """, registers={"i1": ping, "i2": pong})
    machine.load_hthread(1, 0, 0, f"""
        mov i3, #0
loop:   add i3, i3, #1
wait:   ld i4, i2
        lt i5, i4, i3
        br i5, wait               ; wait for the ping
        mov m0, i3
        send i1, #{dip}, #1       ; pong
        lt i6, i3, #{rounds}
        br i6, loop
        halt
    """, registers={"i1": pong, "i2": ping})
    machine.run_until_user_done(max_cycles=400000)
    return machine.cycle / rounds


@pytest.fixture(scope="module")
def results():
    _, latency = _single_remote_store()
    return {
        "single_store_latency": latency,
        "stream_cycles_per_message": _message_stream(),
        "ping_pong_round_trip": _ping_pong(),
    }


def test_fig7_send_receive(single_run_benchmark, results):
    _, latency = single_run_benchmark(_single_remote_store)
    rows = [
        ["SEND -> remote store complete (1-word body)", latency],
        ["pipelined message stream (cycles/message)",
         round(results["stream_cycles_per_message"], 1)],
        ["user-level ping-pong round trip", round(results["ping_pong_round_trip"], 1)],
    ]
    report("Figure 7: user-level message passing", [format_table(["metric", "cycles"], rows)])
    assert latency > 0


class TestFig7Shape:
    def test_single_store_latency_tens_of_cycles(self, results):
        """Direct messaging skips the LTLB-miss handler, so it is faster than
        the Table 1 remote write (74 cycles in the paper)."""
        assert 5 < results["single_store_latency"] < 74

    def test_stream_throughput_better_than_latency(self, results):
        """Message injection pipelines: sustained cycles/message is far below
        the one-shot completion latency."""
        assert results["stream_cycles_per_message"] < results["single_store_latency"] * 1.5

    def test_ping_pong_round_trip_reasonable(self, results):
        assert results["ping_pong_round_trip"] < 400
