"""E5 -- Figure 7: the remote-store message send/receive code path.

Measures the end-to-end latency of a single user-level SEND carrying a
remote store (Figure 7's three-word message), the sustained rate of a stream
of such messages, and a user-level ping-pong built from two remote stores.
"""

import pytest

from conftest import report, run_and_record
from repro.core.stats import format_table


def _single_remote_store():
    metrics = run_and_record("remote-store-latency")
    assert metrics["verified"]
    return metrics["latency"]


def _message_stream(count=64):
    metrics = run_and_record("message-stream", count=count)
    assert metrics["verified"]
    return metrics["cycles_per_message"]


def _ping_pong(rounds=16):
    """Node 0 stores to a flag on node 1 and waits for node 1 to store back,
    'rounds' times, all through user-level SENDs."""
    metrics = run_and_record("ping-pong", rounds=rounds)
    assert metrics["verified"]
    return metrics["cycles_per_round_trip"]


@pytest.fixture(scope="module")
def results():
    return {
        "single_store_latency": _single_remote_store(),
        "stream_cycles_per_message": _message_stream(),
        "ping_pong_round_trip": _ping_pong(),
    }


def test_fig7_send_receive(single_run_benchmark, results):
    latency = single_run_benchmark(_single_remote_store)
    rows = [
        ["SEND -> remote store complete (1-word body)", latency],
        ["pipelined message stream (cycles/message)",
         round(results["stream_cycles_per_message"], 1)],
        ["user-level ping-pong round trip", round(results["ping_pong_round_trip"], 1)],
    ]
    report("Figure 7: user-level message passing", [format_table(["metric", "cycles"], rows)])
    assert latency > 0


class TestFig7Shape:
    def test_single_store_latency_tens_of_cycles(self, results):
        """Direct messaging skips the LTLB-miss handler, so it is faster than
        the Table 1 remote write (74 cycles in the paper)."""
        assert 5 < results["single_store_latency"] < 74

    def test_stream_throughput_better_than_latency(self, results):
        """Message injection pipelines: sustained cycles/message is far below
        the one-shot completion latency."""
        assert results["stream_cycles_per_message"] < results["single_store_latency"] * 1.5

    def test_ping_pong_round_trip_reasonable(self, results):
        assert results["ping_pong_round_trip"] < 400
