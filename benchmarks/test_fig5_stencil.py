"""E1 -- Figure 5 / Section 3.1: stencil smoothing on 1, 2 and 4 H-Threads.

Regenerates the static-instruction-depth comparison of Figure 5 (7-point
stencil: 12 instructions on one H-Thread vs 8 on two; 27-point stencil depth
reduced from 36 to 17 on four H-Threads -- our schedules are slightly tighter
but show the same reduction) and additionally reports the *dynamic* cycle
counts measured on the simulator, which the paper leaves to "the pipeline and
memory latencies".
"""

import pytest

from conftest import report, run_and_record
from repro.core.stats import format_table

#: The paper's static depths (Figure 5 and the Section 3.1 text).
PAPER_DEPTHS = {("7pt", 1): 12, ("7pt", 2): 8, ("27pt", 1): 36, ("27pt", 4): 17}


def _run(kind, n_hthreads):
    metrics = run_and_record("stencil", kind=kind, n_hthreads=n_hthreads)
    assert metrics["verified"], "stencil result mismatch"
    return {
        "static_depth": metrics["static_depth"],
        "cycles": metrics["cycles"],
        "operations": metrics["workload_operations"],
    }


def _sweep():
    results = {}
    for kind in ("7pt", "27pt"):
        for n_hthreads in (1, 2, 4):
            results[(kind, n_hthreads)] = _run(kind, n_hthreads)
    return results


@pytest.fixture(scope="module")
def sweep():
    return _sweep()


def test_fig5_stencil_sweep(single_run_benchmark):
    results = single_run_benchmark(_sweep)
    rows = []
    for (kind, threads), data in sorted(results.items()):
        rows.append([
            kind, threads, data["static_depth"],
            PAPER_DEPTHS.get((kind, threads), "-"),
            data["cycles"], data["operations"],
        ])
    report(
        "Figure 5: stencil static depth and dynamic cycles",
        [format_table(
            ["stencil", "H-Threads", "static depth", "paper depth", "dynamic cycles", "ops"],
            rows)],
    )
    assert results[("7pt", 1)]["static_depth"] == 12


class TestFig5Shape:
    def test_seven_point_depth_12_vs_8(self, sweep):
        assert sweep[("7pt", 1)]["static_depth"] == PAPER_DEPTHS[("7pt", 1)]
        assert sweep[("7pt", 2)]["static_depth"] == PAPER_DEPTHS[("7pt", 2)]

    def test_27_point_reduction_factor(self, sweep):
        one = sweep[("27pt", 1)]["static_depth"]
        four = sweep[("27pt", 4)]["static_depth"]
        paper_factor = PAPER_DEPTHS[("27pt", 1)] / PAPER_DEPTHS[("27pt", 4)]  # ~2.1
        assert one / four >= 0.8 * paper_factor

    def test_dynamic_cycles_shrink_with_hthreads_27pt(self, sweep):
        assert sweep[("27pt", 4)]["cycles"] < sweep[("27pt", 1)]["cycles"]
        assert sweep[("27pt", 2)]["cycles"] < sweep[("27pt", 1)]["cycles"]

    def test_operation_count_roughly_constant(self, sweep):
        """Splitting over H-Threads redistributes work; it should not add
        more than a few transfer/synchronisation operations."""
        for kind in ("7pt", "27pt"):
            base = sweep[(kind, 1)]["operations"]
            assert sweep[(kind, 4)]["operations"] <= base + 10
