"""E6 -- Figure 8: GTLB page-group mapping and interleaving.

Figure 8 is the format of a GDT/GTLB entry; its behavioural content is the
spectrum of block and cyclic interleavings a single entry can express.  This
benchmark sweeps a page-group over a 2x2x2 mesh for several pages-per-node
settings, reports the resulting distribution of pages per node, and measures
GTLB translation throughput.
"""

import pytest

from conftest import report
from repro.core.stats import format_table
from repro.network.gtlb import GlobalDestinationTable, Gtlb, GtlbEntry

PAGE_SIZE = 512


def _distribution(pages_per_node, num_pages=64):
    entry = GtlbEntry(base_page=0, page_group_length=num_pages, start_node=(0, 0, 0),
                      extent=(1, 1, 1), pages_per_node=pages_per_node,
                      page_size_words=PAGE_SIZE)
    counts = {}
    placements = []
    for page in range(num_pages):
        coords = entry.node_coords_of(page * PAGE_SIZE)
        counts[coords] = counts.get(coords, 0) + 1
        placements.append(coords)
    return entry, counts, placements


def _translation_throughput(lookups=5000):
    gdt = GlobalDestinationTable()
    gdt.add(GtlbEntry(base_page=0, page_group_length=64, start_node=(0, 0, 0),
                      extent=(1, 1, 1), pages_per_node=2, page_size_words=PAGE_SIZE))
    gtlb = Gtlb(gdt)
    for index in range(lookups):
        gtlb.node_coords_of((index * 37) % (64 * PAGE_SIZE))
    return gtlb


def test_fig8_gtlb_mapping(benchmark):
    gtlb = benchmark(_translation_throughput)
    rows = []
    for pages_per_node in (1, 2, 8):
        _, counts, placements = _distribution(pages_per_node)
        rows.append([
            pages_per_node,
            len(counts),
            min(counts.values()),
            max(counts.values()),
            " -> ".join(str(c) for c in placements[:4]) + " ...",
        ])
    report(
        "Figure 8: page-group interleaving over a 2x2x2 region (64 pages)",
        [format_table(
            ["pages/node", "nodes used", "min pages", "max pages", "first placements"],
            rows),
         f"GTLB hit rate over the sweep: {gtlb.hit_rate:.3f}"],
    )
    assert gtlb.hit_rate > 0.9


class TestFig8Shape:
    @pytest.mark.parametrize("pages_per_node", [1, 2, 4, 8])
    def test_pages_spread_evenly(self, pages_per_node):
        _, counts, _ = _distribution(pages_per_node)
        assert len(counts) == 8
        assert max(counts.values()) == min(counts.values()) == 8

    def test_cyclic_interleaving_alternates_nodes(self):
        _, _, placements = _distribution(pages_per_node=1)
        assert placements[0] != placements[1]

    def test_block_interleaving_keeps_runs_together(self):
        _, _, placements = _distribution(pages_per_node=8)
        assert placements[0] == placements[7]
        assert placements[7] != placements[8]

    def test_entry_packs_into_figure8_fields(self):
        entry, _, _ = _distribution(pages_per_node=2)
        assert GtlbEntry.unpack(entry.pack(), PAGE_SIZE) == entry
