"""E7 -- Sections 1 and 5: the silicon-area / peak-performance argument.

Recomputes the paper's headline numbers: processor fraction of chip and of
system for the 1993 and 1996 technology points, the cluster fraction of an
8 MB MAP node, and the 32-node comparison (128x peak performance at ~1.5x
area, an ~85:1 peak-performance/area improvement).
"""

import pytest

from conftest import report
from repro.core.area_model import AreaModel, TECH_1993, TECH_1996
from repro.core.stats import format_table


def _compute():
    model = AreaModel()
    return {
        "model": model,
        "comparison": model.comparison(num_nodes=32),
        "fraction_1993": TECH_1993.processor_fraction_of_chip,
        "fraction_1996": TECH_1996.processor_fraction_of_chip,
        "system_1993": TECH_1993.processor_fraction_of_system,
        "system_1996": TECH_1996.processor_fraction_of_system,
    }


@pytest.fixture(scope="module")
def results():
    return _compute()


def test_sec1_area_model(benchmark, results):
    computed = benchmark(_compute)
    comparison = computed["comparison"]
    rows = [
        ["processor fraction of 1993 chip", f"{computed['fraction_1993']:.3f}", "0.11"],
        ["processor fraction of 1996 chip", f"{computed['fraction_1996']:.3f}", "0.04"],
        ["processor fraction of 1993 system", f"{computed['system_1993']:.4f}", "0.0052"],
        ["processor fraction of 1996 system", f"{computed['system_1996']:.4f}", "0.0013"],
        ["clusters' fraction of an 8MB node",
         f"{computed['model'].cluster_fraction_of_node:.3f}", "0.11"],
        ["32-node peak-performance ratio", f"{comparison['peak_ratio']:.0f}", "128"],
        ["32-node area ratio", f"{comparison['area_ratio']:.2f}", "1.5"],
        ["peak-performance/area improvement",
         f"{comparison['peak_per_area_improvement']:.1f}", "85"],
    ]
    report("Sections 1/5: area and peak-performance model",
           [format_table(["quantity", "model", "paper"], rows)])
    assert comparison["peak_ratio"] == 128


class TestAreaClaims:
    def test_peak_per_area_improvement_near_85(self, results):
        assert results["comparison"]["peak_per_area_improvement"] == pytest.approx(85, rel=0.05)

    def test_area_ratio_near_1_5(self, results):
        assert results["comparison"]["area_ratio"] == pytest.approx(1.5, abs=0.1)

    def test_processor_fraction_trend(self, results):
        assert results["fraction_1996"] < results["fraction_1993"]
        assert results["system_1996"] < results["system_1993"]

    def test_mmachine_raises_processor_fraction_by_two_orders_of_magnitude(self, results):
        """Section 5: 'The M-Machine increases the ratio of processor to
        memory silicon area to 11% from 0.13% for a typical 1996 system.'"""
        model = results["model"]
        improvement = model.cluster_fraction_of_node / results["system_1996"]
        assert improvement > 50

    def test_sweep_over_machine_sizes(self, results):
        model = results["model"]
        improvements = {n: model.comparison(n)["peak_per_area_improvement"]
                        for n in (8, 16, 32, 64)}
        # More nodes add compute linearly while the per-node area premium over
        # plain DRAM stays fixed, so the improvement grows with machine size;
        # the paper's quoted 85:1 point is the 32-node configuration.
        assert sorted(improvements.values()) == list(improvements.values())
        assert improvements[32] == pytest.approx(85, rel=0.05)
