"""A1/A2 -- intra-node ablations.

A1: V-Thread interleaving as latency tolerance (Section 3.2): throughput of
    1..4 pointer-chasing V-Threads sharing one cluster.  Interleaving should
    hide most of each thread's memory latency.

A2: thread-selection policy (Section 3.4): the MAP's zero-cost interleaving
    preserves single-thread performance, whereas HEP/MASA-style barrel
    scheduling degrades it by the number of thread contexts.
"""

import pytest

from conftest import report, run_and_record
from repro.core.stats import format_table


def _run_vthreads(num_threads):
    metrics = run_and_record("vthread-interleave", num_threads=num_threads)
    assert metrics["verified"]
    return metrics["cycles"]


def _vthread_sweep():
    return {threads: _run_vthreads(threads) for threads in (1, 2, 3, 4)}


def _run_policy(policy, iterations=100):
    metrics = run_and_record("issue-policy", policy=policy, iterations=iterations)
    assert metrics["verified"]
    return metrics["cycles"]


def _policy_sweep():
    return {policy: _run_policy(policy) for policy in ("event-priority", "round-robin", "hep")}


@pytest.fixture(scope="module")
def vthread_results():
    return _vthread_sweep()


@pytest.fixture(scope="module")
def policy_results():
    return _policy_sweep()


def test_ablation_vthread_latency_tolerance(single_run_benchmark, vthread_results):
    results = single_run_benchmark(_vthread_sweep)
    baseline = results[1]
    rows = [[threads, cycles, round(threads * baseline / cycles, 2)]
            for threads, cycles in sorted(results.items())]
    report(
        "Ablation A1: V-Thread interleaving on one cluster "
        "(pointer-chasing threads, higher speedup = better latency tolerance)",
        [format_table(["V-Threads", "total cycles", "work/time vs 1 thread"], rows)],
    )
    assert results[4] < 4 * baseline


def test_ablation_issue_policy(single_run_benchmark, policy_results):
    results = single_run_benchmark(_policy_sweep)
    rows = [[policy, cycles] for policy, cycles in results.items()]
    report(
        "Ablation A2: thread-selection policy, single resident thread "
        "(arithmetic loop; HEP-style barrel scheduling exposes the empty slots)",
        [format_table(["policy", "cycles"], rows)],
    )
    assert results["hep"] > results["event-priority"]


class TestIntranodeAblationShape:
    def test_interleaving_hides_most_latency(self, vthread_results):
        """Four chasing threads finish in much less than 4x one thread's
        time: the cluster issues another thread's load while one waits."""
        assert vthread_results[4] < 2.0 * vthread_results[1]

    def test_throughput_improves_with_threads(self, vthread_results):
        per_thread_cost = [vthread_results[n] / n for n in (1, 2, 3, 4)]
        # More resident V-Threads always beat running alone; the curve is not
        # strictly monotone because bank and memory-interface contention grow
        # with occupancy.
        assert all(cost < per_thread_cost[0] for cost in per_thread_cost[1:])

    def test_hep_degrades_single_thread_by_context_count(self, policy_results):
        ratio = policy_results["hep"] / policy_results["event-priority"]
        assert ratio > 3      # six contexts; handler residency keeps it below 6

    def test_round_robin_close_to_event_priority_for_single_thread(self, policy_results):
        assert policy_results["round-robin"] <= policy_results["event-priority"] * 1.2
