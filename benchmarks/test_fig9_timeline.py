"""E4 -- Figure 9: timelines of a remote read and a remote write.

Reproduces the per-step breakdown of Section 4.2 / Figure 9: the cycle at
which each hardware and software milestone of a single remote read / write
occurs on the requesting node and on the home node.
"""

import pytest

from conftest import report
from repro import MMachine, MachineConfig
from repro.analysis.timeline import extract_remote_access_timeline
from repro.core.latency_model import PAPER_REMOTE_READ_STEPS, PAPER_TABLE1

REGION = 0x40000


def _run_remote_access(kind):
    config = MachineConfig.small(2, 1, 1)
    machine = MMachine(config)
    machine.map_on_node(1, REGION, num_pages=1)
    machine.write_word(REGION, 11)
    if kind == "read":
        machine.load_hthread(0, 0, 0, "ld i5, i1\nhalt", registers={"i1": REGION})
        machine.run_until(lambda m: m.register_full(0, 0, 0, "i5"), max_cycles=10000)
    else:
        machine.load_hthread(0, 0, 0, "st i6, i1\nhalt",
                             registers={"i1": REGION, "i6": 77})
        machine.run_until_quiescent(max_cycles=10000)
    return extract_remote_access_timeline(machine.tracer, kind, address=REGION)


@pytest.fixture(scope="module")
def timelines():
    return {kind: _run_remote_access(kind) for kind in ("read", "write")}


def test_fig9_remote_read_timeline(single_run_benchmark):
    timeline = single_run_benchmark(_run_remote_access, "read")
    report("Figure 9 (left): remote read timeline",
           [str(timeline),
            f"paper total: {PAPER_TABLE1['remote_cache_hit']['read']} cycles "
            f"(steps: {PAPER_REMOTE_READ_STEPS})"])
    assert timeline.total_cycles > 0


def test_fig9_remote_write_timeline(single_run_benchmark):
    timeline = single_run_benchmark(_run_remote_access, "write")
    report("Figure 9 (right): remote write timeline",
           [str(timeline),
            f"paper total: {PAPER_TABLE1['remote_cache_hit']['write']} cycles"])
    assert timeline.total_cycles > 0


class TestFig9Shape:
    def test_read_has_all_milestones(self, timelines):
        labels = " | ".join(timelines["read"].labels())
        for fragment in ("LOAD issues", "LTLB miss", "message received",
                         "reply message received", "destination register"):
            assert fragment in labels

    def test_write_has_all_milestones(self, timelines):
        labels = " | ".join(timelines["write"].labels())
        for fragment in ("STORE issues", "LTLB miss", "message received", "store complete"):
            assert fragment in labels

    def test_milestones_in_order(self, timelines):
        for timeline in timelines.values():
            cycles = [event.cycle for event in timeline.normalised().events]
            assert cycles == sorted(cycles)

    def test_read_longer_than_write(self, timelines):
        """The read needs the reply network trip and decode; the write ends
        when the home node's store completes (as in Figure 9)."""
        assert timelines["read"].total_cycles > timelines["write"].total_cycles

    def test_software_steps_dominate(self, timelines):
        """Like the paper's breakdown, most of the latency is in the software
        handlers rather than the two 5-cycle network traversals."""
        read = timelines["read"]
        events = {event.label: event.cycle for event in read.normalised().events}
        request_network = (events["message received / message handler dispatches"]
                           - events[[k for k in events if "handler sends" in k][0]])
        assert request_network < read.total_cycles / 3
