"""E3 -- Table 1: local and remote access times.

Regenerates the twelve entries of Table 1 (read/write x {cache hit, cache
miss, LTLB miss} x {local, remote}) by running single-access microbenchmarks
on a two-node machine with the Section 4.2 (assembly-handler) runtime, and
prints them next to the paper's published numbers.

Absolute cycle counts differ from the paper because our re-written handlers
are shorter than the authors' unpublished ones; the relationships the paper
draws from the table (remote >> local, writes cheaper than reads remotely,
the LTLB-miss adder, remote read ~2x a local LTLB miss) are asserted below.
"""

import pytest

from conftest import report, run_and_record
from repro.analysis.latency import SCENARIOS
from repro.core.latency_model import PAPER_TABLE1
from repro.core.stats import format_table


def _measure_all():
    metrics = run_and_record("table1-access-times")
    assert metrics["verified"]
    return {
        scenario: {
            "read": metrics[f"{scenario}_read"],
            "write": metrics[f"{scenario}_write"],
        }
        for scenario in SCENARIOS
    }


@pytest.fixture(scope="module")
def measured():
    return _measure_all()


def test_table1_access_times(single_run_benchmark):
    results = single_run_benchmark(_measure_all)
    rows = []
    for scenario in SCENARIOS:
        rows.append([
            scenario.replace("_", " "),
            results[scenario]["read"],
            results[scenario]["write"],
            PAPER_TABLE1[scenario]["read"],
            PAPER_TABLE1[scenario]["write"],
        ])
    report(
        "Table 1: access times (cycles), measured vs paper",
        [format_table(["access type", "read", "write", "paper read", "paper write"], rows)],
    )
    assert set(results) == set(PAPER_TABLE1)


class TestTable1Shape:
    """The qualitative claims the paper makes from Table 1."""

    def test_local_cache_hit_matches_paper_exactly(self, measured):
        assert measured["local_cache_hit"] == PAPER_TABLE1["local_cache_hit"]

    def test_local_cache_miss_matches_paper_exactly(self, measured):
        assert measured["local_cache_miss"] == PAPER_TABLE1["local_cache_miss"]

    def test_read_column_increases_down_the_table(self, measured):
        values = [measured[scenario]["read"] for scenario in SCENARIOS]
        assert values == sorted(values), "read column should increase down the table"

    def test_write_column_increases_within_local_and_remote_groups(self, measured):
        # Our remote-store handler is short enough that a remote write into a
        # warm home cache undercuts a local LTLB-miss write (the paper's
        # figures have the same two rows only 7 cycles apart), so the
        # monotonicity claim is asserted per group rather than globally.
        local = [measured[s]["write"] for s in SCENARIOS[:3]]
        remote = [measured[s]["write"] for s in SCENARIOS[3:]]
        assert local == sorted(local)
        assert remote == sorted(remote)

    def test_remote_write_cheaper_than_remote_read(self, measured):
        for scenario in ("remote_cache_hit", "remote_cache_miss", "remote_ltlb_miss"):
            assert measured[scenario]["write"] < measured[scenario]["read"]

    def test_remote_read_hit_about_twice_local_ltlb_miss(self, measured):
        """'the time to perform a remote read that hits in the cache is only
        about twice as large as a local read that requires software
        intervention (LTLB miss)'"""
        ratio = measured["remote_cache_hit"]["read"] / measured["local_ltlb_miss"]["read"]
        assert 1.0 < ratio < 3.5

    def test_software_intervention_dominates_remote_latency(self, measured):
        hardware_only = measured["local_cache_miss"]["read"]
        remote = measured["remote_cache_hit"]["read"]
        assert remote > 3 * hardware_only

    def test_ltlb_miss_adder_similar_local_and_remote(self, measured):
        local_adder = measured["local_ltlb_miss"]["read"] - measured["local_cache_miss"]["read"]
        remote_adder = measured["remote_ltlb_miss"]["read"] - measured["remote_cache_miss"]["read"]
        assert remote_adder == pytest.approx(local_adder, rel=0.6)
