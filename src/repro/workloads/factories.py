"""Parameterised workload factories, reusable outside pytest.

Every paper figure, table and ablation the ``benchmarks/`` suite regenerates
is also expressible as a *named workload*: a plain function that builds a
machine, runs a scenario, verifies the result and returns a flat metrics
dict.  The benchmark tests and the ``repro sweep`` subsystem both call these
factories, so a sweep run and the corresponding pytest run execute the exact
same code path and therefore report the exact same cycle counts.

Conventions:

* Factories are registered under a kebab-case name with the
  :func:`repro.api.workload` decorator (tagged with the paper section they
  reproduce), which binds each module attribute to a callable
  :class:`~repro.api.workload.WorkloadSpec`.
* Every factory accepts only keyword arguments, all of which have defaults,
  so running a workload with no parameters always works.
* Factories that drive a whole machine accept ``mesh`` (an ``(x, y, z)``
  tuple or list) and ``kernel`` (``"event"`` or ``"naive"``) so sweeps can
  scale the mesh and compare simulation kernels.
* The returned dict contains only JSON-serialisable scalars.  Machine-driving
  factories report ``cycles`` (simulated cycles) and ``verified`` (the
  workload's own correctness check); analytic factories (area model, GTLB
  mapping, Table 1) report their own headline numbers.

The pre-``repro.api`` module surface (``WORKLOADS``, :func:`register`,
:func:`run_workload`, :func:`workload_params`, :func:`workload_names`)
remains importable as deprecated, bit-exact shims over the typed registry;
new code should use :mod:`repro.api` instead.
"""

from __future__ import annotations

import json
import random
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.api.deprecation import warn_once
from repro.api.workload import (
    LegacyRegistry,
    WorkloadSpec,
    get_workload,
    register_spec,
    workload,
)
from repro.api.workload import workload_defaults as _api_workload_defaults
from repro.api.workload import workload_names as _api_workload_names
from repro.core.config import MachineConfig, apply_overrides
from repro.core.machine import MMachine
from repro.isa.assembler import assemble

WorkloadFactory = Callable[..., Dict[str, object]]

#: Deprecated adapter view of the typed registry (``name -> bare callable``);
#: kept so existing ``WORKLOADS[...]`` reads and test monkeypatching work.
WORKLOADS = LegacyRegistry()

HEAP = 0x10000
REGION = 0x40000


def register(name: str) -> Callable[[WorkloadFactory], WorkloadFactory]:
    """Deprecated: register *factory* under *name* (decorator).

    Use the :func:`repro.api.workload` decorator instead, which also records
    a description and paper-section tag.
    """
    warn_once(
        "workloads.factories.register",
        "repro.workloads.factories.register is deprecated; "
        "use the @repro.workload decorator instead",
    )

    def wrap(factory: WorkloadFactory) -> WorkloadFactory:
        register_spec(WorkloadSpec.from_callable(name, factory))
        return factory

    return wrap


def workload_names() -> List[str]:
    """Deprecated: all workload names (use :func:`repro.api.workload_names`)."""
    warn_once(
        "workloads.factories.workload_names",
        "repro.workloads.factories.workload_names is deprecated; "
        "use repro.api.workload_names instead",
    )
    return _api_workload_names()


def workload_params(name: str) -> Dict[str, object]:
    """Deprecated: default parameters of workload *name* (use
    :func:`repro.api.workload_defaults`)."""
    warn_once(
        "workloads.factories.workload_params",
        "repro.workloads.factories.workload_params is deprecated; "
        "use repro.api.workload_defaults instead",
    )
    return _api_workload_defaults(name)


def run_workload(name: str, params: Optional[Dict[str, object]] = None) -> Dict[str, object]:
    """Deprecated: run workload *name* with *params* and return its metrics
    dict (use :func:`repro.api.run_workload`, which returns a typed
    :class:`~repro.api.result.RunResult`)."""
    warn_once(
        "workloads.factories.run_workload",
        "repro.workloads.factories.run_workload is deprecated; use "
        "repro.api.run_workload (returns a RunResult; its .metrics is this "
        "function's return value) instead",
    )
    return get_workload(name).call(params)


# ---------------------------------------------------------------------------
# Shared helpers
# ---------------------------------------------------------------------------


def _machine(
    mesh: Sequence[int] = (1, 1, 1),
    kernel: str = "event",
    shared_memory_mode: Optional[str] = None,
    trace_enabled: Optional[bool] = None,
    **config_overrides: object,
) -> MMachine:
    config = MachineConfig.small(*tuple(mesh))
    config.sim.kernel = kernel
    if shared_memory_mode is not None:
        config.runtime.shared_memory_mode = shared_memory_mode
    if trace_enabled is not None:
        config.trace_enabled = trace_enabled
    apply_overrides(config, config_overrides)
    return MMachine(config)


def _far_node(machine: MMachine) -> int:
    return machine.num_nodes - 1


def _base_metrics(machine: MMachine) -> Dict[str, object]:
    summary = machine.stats().summary()
    return {
        "cycles": machine.cycle,
        "instructions": summary["instructions"],
        "operations": summary["operations"],
        "messages": summary["messages"],
        "nodes": summary["nodes"],
    }


# ---------------------------------------------------------------------------
# Figure 5: stencil smoothing
# ---------------------------------------------------------------------------


@workload("stencil", section="Figure 5")
def stencil(
    kind: str = "7pt",
    n_hthreads: int = 1,
    mesh: Sequence[int] = (1, 1, 1),
    kernel: str = "event",
    max_cycles: int = 30000,
) -> Dict[str, object]:
    """The Figure 5 stencil smoothing kernel on one node of a mesh."""
    from repro.workloads.stencil import make_stencil_workload  # noqa: PLC0415

    machine = _machine(mesh, kernel)
    machine.map_on_node(0, HEAP, num_pages=16)
    workload = make_stencil_workload(kind=kind, n_hthreads=n_hthreads)
    workload.setup(machine)
    machine.run_until_user_done(max_cycles=max_cycles)
    metrics = _base_metrics(machine)
    metrics.update(
        verified=workload.verify(machine),
        static_depth=workload.max_static_depth,
        workload_operations=workload.total_operations,
    )
    return metrics


# ---------------------------------------------------------------------------
# Figure 6: CC-register synchronisation
# ---------------------------------------------------------------------------


@workload("cc-sync", section="Figure 6")
def cc_sync(
    iterations: int = 50,
    mesh: Sequence[int] = (1, 1, 1),
    kernel: str = "event",
    max_cycles: int = 100000,
) -> Dict[str, object]:
    """The two-H-Thread interlocked loop of Figure 6."""
    from repro.workloads.microbench import cc_loop_sync_programs  # noqa: PLC0415

    machine = _machine(mesh, kernel)
    machine.load_vthread(0, 0, cc_loop_sync_programs(iterations))
    machine.run_until_user_done(max_cycles=max_cycles)
    metrics = _base_metrics(machine)
    metrics.update(
        verified=(
            machine.register_value(0, 0, 0, "i2") == iterations
            and machine.register_value(0, 0, 1, "i2") == iterations
        ),
        cycles_per_iteration=round(machine.cycle / iterations, 4),
        memory_requests=machine.nodes[0].memory.requests_accepted,
    )
    return metrics


@workload("cc-barrier", section="Figure 6")
def cc_barrier(
    iterations: int = 50,
    clusters: int = 4,
    mesh: Sequence[int] = (1, 1, 1),
    kernel: str = "event",
    max_cycles: int = 400000,
) -> Dict[str, object]:
    """The 4-way CC-register barrier extension of Figure 6."""
    from repro.workloads.microbench import cc_barrier_programs  # noqa: PLC0415

    machine = _machine(mesh, kernel)
    machine.load_vthread(0, 0, cc_barrier_programs(iterations, clusters))
    machine.run_until_user_done(max_cycles=max_cycles)
    metrics = _base_metrics(machine)
    metrics.update(
        verified=all(
            machine.register_value(0, 0, cluster, "i2") == iterations
            for cluster in range(clusters)
        ),
        cycles_per_iteration=round(machine.cycle / iterations, 4),
    )
    return metrics


# ---------------------------------------------------------------------------
# Figure 7: user-level message passing
# ---------------------------------------------------------------------------


@workload("remote-store-latency", section="Figure 7")
def remote_store_latency(
    mesh: Sequence[int] = (2, 1, 1),
    kernel: str = "event",
    max_cycles: int = 5000,
) -> Dict[str, object]:
    """End-to-end latency of a single SEND carrying a remote store."""
    machine = _machine(mesh, kernel)
    far = _far_node(machine)
    machine.map_on_node(far, REGION, num_pages=1)
    dip = machine.runtime.dip("remote_store")
    machine.load_hthread(
        0,
        0,
        0,
        f"""
        mov m0, #99
        send i1, #{dip}, #1
        halt
        """,
        registers={"i1": REGION + 1},
    )
    machine.run_until_quiescent(max_cycles=max_cycles)
    send = machine.tracer.first("send", cluster=0)
    complete = None
    for event in machine.tracer.filter("store_complete", node=far):
        if event.info.get("address") == REGION + 1:
            complete = event
            break
    verified = complete is not None and machine.read_word(REGION + 1) == 99
    metrics = _base_metrics(machine)
    metrics.update(
        verified=verified,
        latency=(complete.cycle - send.cycle) if complete is not None else -1,
    )
    return metrics


@workload("message-stream", section="Figure 7")
def message_stream(
    count: int = 64,
    mesh: Sequence[int] = (2, 1, 1),
    kernel: str = "event",
    max_cycles: int = 200000,
) -> Dict[str, object]:
    """Sustained rate of a stream of remote-store messages."""
    from repro.workloads.synthetic import remote_store_sender_program  # noqa: PLC0415

    machine = _machine(mesh, kernel)
    far = _far_node(machine)
    machine.map_on_node(far, REGION, num_pages=1)
    dip = machine.runtime.dip("remote_store")
    machine.load_hthread(0, 0, 0, remote_store_sender_program(REGION, dip, count))
    machine.run_until_user_done(max_cycles=max_cycles)
    metrics = _base_metrics(machine)
    metrics.update(
        verified=all(machine.read_word(REGION + i) != 0 for i in range(count)),
        cycles_per_message=round(machine.cycle / count, 4),
    )
    return metrics


@workload("ping-pong", section="Figure 7")
def ping_pong(
    rounds: int = 16,
    mesh: Sequence[int] = (2, 1, 1),
    kernel: str = "event",
    max_cycles: int = 400000,
) -> Dict[str, object]:
    """User-level ping-pong between node 0 and the far corner of the mesh.

    Each side spins on a locally-homed flag and SENDs a remote store to the
    other side's flag, ``rounds`` times (the Figure 7 ping-pong generalised
    to any mesh size).
    """
    machine = _machine(mesh, kernel)
    far = _far_node(machine)
    if far == 0:
        raise ValueError("ping-pong needs at least two nodes")
    machine.map_on_node(far, REGION, num_pages=1)
    machine.map_on_node(0, REGION + 0x1000, num_pages=1)
    dip = machine.runtime.dip("remote_store")
    ping, pong = REGION + 8, REGION + 0x1000 + 8
    machine.write_word(ping, 0)
    machine.write_word(pong, 0)
    machine.load_hthread(
        0,
        0,
        0,
        f"""
        mov i3, #0
loop:   add i3, i3, #1
        mov m0, i3
        send i1, #{dip}, #1       ; ping
wait:   ld i4, i2
        lt i5, i4, i3
        br i5, wait               ; spin until the pong for this round lands
        lt i6, i3, #{rounds}
        br i6, loop
        halt
        """,
        registers={"i1": ping, "i2": pong},
    )
    machine.load_hthread(
        far,
        0,
        0,
        f"""
        mov i3, #0
loop:   add i3, i3, #1
wait:   ld i4, i2
        lt i5, i4, i3
        br i5, wait               ; wait for the ping
        mov m0, i3
        send i1, #{dip}, #1       ; pong
        lt i6, i3, #{rounds}
        br i6, loop
        halt
        """,
        registers={"i1": pong, "i2": ping},
    )
    machine.run_until_user_done(max_cycles=max_cycles)
    metrics = _base_metrics(machine)
    metrics.update(
        verified=(
            machine.read_word(ping) == rounds and machine.read_word(pong) == rounds
        ),
        cycles_per_round_trip=round(machine.cycle / rounds, 4),
    )
    return metrics


# ---------------------------------------------------------------------------
# Figure 8: GTLB page-group mapping (analytic)
# ---------------------------------------------------------------------------


@workload("gtlb-mapping", section="Figure 8")
def gtlb_mapping(
    pages_per_node: int = 2,
    num_pages: int = 64,
    lookups: int = 5000,
    page_size_words: int = 512,
) -> Dict[str, object]:
    """Page-group interleaving spread and GTLB translation hit rate."""
    from repro.network.gtlb import GlobalDestinationTable, Gtlb, GtlbEntry  # noqa: PLC0415

    entry = GtlbEntry(
        base_page=0,
        page_group_length=num_pages,
        start_node=(0, 0, 0),
        extent=(1, 1, 1),
        pages_per_node=pages_per_node,
        page_size_words=page_size_words,
    )
    counts: Dict[Tuple[int, int, int], int] = {}
    for page in range(num_pages):
        coords = entry.node_coords_of(page * page_size_words)
        counts[coords] = counts.get(coords, 0) + 1
    gdt = GlobalDestinationTable()
    gdt.add(entry)
    gtlb = Gtlb(gdt)
    for index in range(lookups):
        gtlb.node_coords_of((index * 37) % (num_pages * page_size_words))
    return {
        "verified": entry == GtlbEntry.unpack(entry.pack(), page_size_words),
        "nodes_used": len(counts),
        "min_pages_per_node": min(counts.values()),
        "max_pages_per_node": max(counts.values()),
        "gtlb_hit_rate": round(gtlb.hit_rate, 4),
    }


# ---------------------------------------------------------------------------
# Figure 9: remote access timelines
# ---------------------------------------------------------------------------


@workload("remote-access-timeline", section="Figure 9")
def remote_access_timeline(
    kind: str = "read",
    mesh: Sequence[int] = (2, 1, 1),
    kernel: str = "event",
    max_cycles: int = 10000,
) -> Dict[str, object]:
    """Milestone timeline of a single remote read or write (Figure 9)."""
    from repro.analysis.timeline import extract_remote_access_timeline  # noqa: PLC0415

    if kind not in ("read", "write"):
        raise ValueError("kind must be 'read' or 'write'")
    machine = _machine(mesh, kernel)
    far = _far_node(machine)
    machine.map_on_node(far, REGION, num_pages=1)
    machine.write_word(REGION, 11)
    if kind == "read":
        machine.load_hthread(0, 0, 0, "ld i5, i1\nhalt", registers={"i1": REGION})
        machine.run_until(
            lambda m: m.register_full(0, 0, 0, "i5"), max_cycles=max_cycles
        )
    else:
        machine.load_hthread(
            0, 0, 0, "st i6, i1\nhalt", registers={"i1": REGION, "i6": 77}
        )
        machine.run_until_quiescent(max_cycles=max_cycles)
    timeline = extract_remote_access_timeline(machine.tracer, kind, address=REGION)
    metrics = _base_metrics(machine)
    metrics.update(
        verified=timeline.total_cycles > 0,
        total_cycles=timeline.total_cycles,
        milestones=len(timeline.events),
        # Compact JSON so the report renderer can redraw the Figure 9 Gantt
        # chart from the sweep record alone (metrics must stay scalar).
        timeline=json.dumps(timeline.to_records(), separators=(",", ":")),
    )
    return metrics


# ---------------------------------------------------------------------------
# Table 1: access-time matrix
# ---------------------------------------------------------------------------


@workload("table1-access-times", section="Table 1")
def table1_access_times() -> Dict[str, object]:
    """All twelve Table 1 access-time measurements."""
    from repro.analysis.latency import SCENARIOS, AccessLatencyHarness  # noqa: PLC0415

    harness = AccessLatencyHarness()
    results = harness.measure_all()
    metrics: Dict[str, object] = {"verified": set(results) == set(SCENARIOS)}
    for scenario in SCENARIOS:
        metrics[f"{scenario}_read"] = results[scenario]["read"]
        metrics[f"{scenario}_write"] = results[scenario]["write"]
    return metrics


# ---------------------------------------------------------------------------
# Ablation A1/A2: intra-node
# ---------------------------------------------------------------------------


@workload("vthread-interleave", section="Ablation A1 (Section 3.2)")
def vthread_interleave(
    num_threads: int = 4,
    chain_loads: int = 24,
    mesh: Sequence[int] = (1, 1, 1),
    kernel: str = "event",
    max_cycles: int = 100000,
) -> Dict[str, object]:
    """Pointer-chasing V-Threads sharing one cluster (latency tolerance)."""
    from repro.workloads.microbench import build_pointer_chain, dependent_load_chain_program  # noqa: PLC0415

    machine = _machine(mesh, kernel)
    machine.map_on_node(0, HEAP, num_pages=4)
    for address, value in build_pointer_chain(32, HEAP, stride=16):
        machine.write_word(address, value)
    for slot in range(num_threads):
        machine.load_hthread(
            0, slot, 0, dependent_load_chain_program(chain_loads), registers={"i1": HEAP}
        )
    machine.run_until_user_done(max_cycles=max_cycles)
    metrics = _base_metrics(machine)
    metrics.update(
        verified=all(
            machine.thread_halted(0, slot, 0) for slot in range(num_threads)
        ),
        num_threads=num_threads,
    )
    return metrics


@workload("issue-policy", section="Ablation A2 (Section 3.4)")
def issue_policy(
    policy: str = "event-priority",
    iterations: int = 100,
    mesh: Sequence[int] = (1, 1, 1),
    kernel: str = "event",
    max_cycles: int = 100000,
) -> Dict[str, object]:
    """A single arithmetic loop under a thread-selection policy (A2)."""
    from repro.workloads.microbench import compute_loop_program  # noqa: PLC0415

    machine = _machine(mesh, kernel, **{"cluster.issue_policy": policy})
    machine.load_hthread(0, 0, 0, compute_loop_program(iterations))
    machine.run_until_user_done(max_cycles=max_cycles)
    metrics = _base_metrics(machine)
    metrics.update(
        verified=machine.register_value(0, 0, 0, "i5") == 3 * iterations,
        policy=policy,
    )
    return metrics


# ---------------------------------------------------------------------------
# Ablation A3: remote memory, non-cached vs coherent
# ---------------------------------------------------------------------------


@workload("remote-memory", section="Ablation A3 (Sections 4.2/4.3)")
def remote_memory(
    mode: str = "remote",
    repeats: int = 16,
    mesh: Sequence[int] = (2, 1, 1),
    kernel: str = "event",
    max_cycles: int = 200000,
) -> Dict[str, object]:
    """Repeated reads of one remote word under a shared-memory runtime.

    ``mode="remote"`` is the Section 4.2 non-cached runtime (every read pays
    the full remote latency); ``mode="coherent"`` is the Section 4.3 DRAM
    caching runtime (one block fetch, then local speed).
    """
    machine = _machine(mesh, kernel, shared_memory_mode=mode)
    far = _far_node(machine)
    machine.map_on_node(far, REGION, num_pages=1)
    machine.write_word(REGION, 3)
    machine.load_hthread(
        0,
        0,
        0,
        f"""
        mov i3, #0
        mov i5, #0
loop:   ld i4, i1          ; read the same remote word
        add i5, i5, i4
        add i3, i3, #1
        lt i6, i3, #{repeats}
        br i6, loop
        halt
        """,
        registers={"i1": REGION},
    )
    machine.run_until_user_done(max_cycles=max_cycles)
    metrics = _base_metrics(machine)
    metrics.update(
        verified=machine.register_value(0, 0, 0, "i5") == 3 * repeats,
        mode=mode,
    )
    return metrics


@workload("coherence", section="Ablation A3 (Section 4.3)")
def coherence(
    repeats: int = 16,
    mesh: Sequence[int] = (2, 1, 1),
    kernel: str = "event",
    max_cycles: int = 200000,
) -> Dict[str, object]:
    """Alias for :func:`remote_memory` with the coherent runtime."""
    return remote_memory(mode="coherent", repeats=repeats, mesh=mesh, kernel=kernel,
                         max_cycles=max_cycles)


# ---------------------------------------------------------------------------
# Ablation A4: flood / return-to-sender throttling
# ---------------------------------------------------------------------------


@workload("flood", section="Ablation A4 (Section 3.1)")
def flood(
    send_credits: int = 16,
    queue_words: int = 128,
    messages: int = 24,
    retransmit_interval: int = 16,
    mesh: Sequence[int] = (2, 1, 1),
    kernel: str = "event",
    max_cycles: int = 400000,
) -> Dict[str, object]:
    """One producer floods the far corner with remote-store messages."""
    from repro.workloads.synthetic import remote_store_sender_program  # noqa: PLC0415

    machine = _machine(
        mesh,
        kernel,
        **{
            "network.send_credits": send_credits,
            "network.message_queue_words": queue_words,
            "network.retransmit_interval": retransmit_interval,
        },
    )
    far = _far_node(machine)
    machine.map_on_node(far, REGION, num_pages=1)
    dip = machine.runtime.dip("remote_store")
    machine.load_hthread(0, 0, 0, remote_store_sender_program(REGION, dip, messages))
    machine.run_until_user_done(max_cycles=max_cycles)
    metrics = _base_metrics(machine)
    metrics.update(
        verified=all(machine.read_word(REGION + i) != 0 for i in range(messages)),
        nacks=machine.nodes[0].net.nacks_received,
        retransmissions=machine.nodes[0].net.retransmissions,
        max_queue_words=machine.nodes[far].msg_queue_p0.max_occupancy,
    )
    return metrics


@workload("many-to-one-flood", section="Ablation A4 (Section 3.1)")
def many_to_one_flood(
    senders: int = 3,
    messages_each: int = 8,
    queue_words: int = 6,
    retransmit_interval: int = 16,
    mesh: Sequence[int] = (2, 2, 1),
    kernel: str = "event",
    max_cycles: int = 400000,
) -> Dict[str, object]:
    """Several producers flood one consumer (return-to-sender stress)."""
    from repro.workloads.synthetic import many_to_one_store_programs  # noqa: PLC0415

    machine = _machine(
        mesh,
        kernel,
        **{
            "network.message_queue_words": queue_words,
            "network.retransmit_interval": retransmit_interval,
        },
    )
    if senders >= machine.num_nodes:
        raise ValueError("need one node per sender plus the consumer")
    machine.map_on_node(0, REGION, num_pages=1)
    dip = machine.runtime.dip("remote_store")
    programs = many_to_one_store_programs(senders, messages_each, REGION, dip)
    for sender, program in programs.items():
        machine.load_hthread(sender + 1, 0, 0, program)
    machine.run_until_user_done(max_cycles=max_cycles)
    total = senders * messages_each
    metrics = _base_metrics(machine)
    metrics.update(
        verified=all(machine.read_word(REGION + i) != 0 for i in range(total)),
        nacks=sum(node.net.nacks_received for node in machine.nodes),
        retransmissions=sum(node.net.retransmissions for node in machine.nodes),
        max_queue_words=machine.nodes[0].msg_queue_p0.max_occupancy,
    )
    return metrics


# ---------------------------------------------------------------------------
# Kernel throughput: busy-heavy register stencil
# ---------------------------------------------------------------------------


@workload("busy-stencil", section="Kernel benchmark")
def busy_stencil(
    iterations: int = 256,
    mesh: Sequence[int] = (1, 1, 1),
    kernel: str = "event",
    max_cycles: int = 1000000,
) -> Dict[str, object]:
    """Register-resident integer stencil on every cluster of every node.

    Every cluster runs the same three-point smoothing loop entirely in
    registers: no loads, no stores, no messages, no idle cycles.  Because an
    instruction issues on every cluster on (almost) every cycle, the event
    kernel's idle-cycle skipping cannot help, so this workload measures raw
    per-tick interpreter cost -- it is the busy-heavy benchmark behind
    ``BENCH_kernel.json`` and the dispatch-compilation speedup gate.
    """
    machine = _machine(mesh, kernel)
    num_clusters = machine.config.node.num_clusters
    program = f"""
        mov i1, #3
        mov i2, #5
        mov i3, #7
        mov i4, #0
        mov i7, #0
loop:   add i5, i1, i2
        add i5, i5, i3
        shr i6, i5, #1
        mov i1, i2
        mov i2, i3
        mov i3, i6
        add i7, i7, i6
        add i4, i4, #1
        lt i8, i4, #{iterations}
        br i8, loop
        halt
    """
    # Assemble once and share the (read-only) Program across every cluster:
    # re-assembling identical text per cluster would dominate setup on large
    # meshes and skew the mesh-scaling benchmark.
    assembled = assemble(program, name="busy-stencil")
    for node in range(machine.num_nodes):
        for cluster in range(num_clusters):
            machine.load_hthread(node, 0, cluster, assembled)
    machine.run_until_user_done(max_cycles=max_cycles)

    a, b, c, checksum = 3, 5, 7, 0
    for _ in range(iterations):
        smoothed = (a + b + c) >> 1
        a, b, c = b, c, smoothed
        checksum += smoothed
    metrics = _base_metrics(machine)
    metrics.update(
        verified=all(
            machine.register_value(node, 0, cluster, "i7") == checksum
            for node in range(machine.num_nodes)
            for cluster in range(num_clusters)
        ),
        iterations=iterations,
        checksum=checksum,
    )
    return metrics


# ---------------------------------------------------------------------------
# Sections 1/5: area model (analytic)
# ---------------------------------------------------------------------------


@workload("area-model", section="Sections 1/5")
def area_model(num_nodes: int = 32) -> Dict[str, object]:
    """The silicon-area / peak-performance comparison of Sections 1 and 5."""
    from repro.core.area_model import AreaModel, TECH_1993, TECH_1996  # noqa: PLC0415

    model = AreaModel()
    comparison = model.comparison(num_nodes=num_nodes)
    return {
        "verified": comparison["peak_ratio"] > 0,
        "peak_ratio": comparison["peak_ratio"],
        "area_ratio": round(comparison["area_ratio"], 4),
        "peak_per_area_improvement": round(comparison["peak_per_area_improvement"], 2),
        "processor_fraction_1993": round(TECH_1993.processor_fraction_of_chip, 4),
        "processor_fraction_1996": round(TECH_1996.processor_fraction_of_chip, 4),
    }


# ---------------------------------------------------------------------------
# Fault-injection & multiprogramming family (ROADMAP item 3)
# ---------------------------------------------------------------------------


@workload("multitenant-timeshare", section="Sections 3.2/4.4 (multiprogramming)")
def multitenant_timeshare(
    seed: int = 0,
    jobs: int = 8,
    mesh: Sequence[int] = (2, 1, 1),
    kernel: str = "event",
    max_cycles: int = 200000,
) -> Dict[str, object]:
    """Several independent seeded jobs timeshare the mesh, one per context.

    The jobs come from the :mod:`repro.fuzz` program generator with all fault
    knobs at zero: a deterministic mix of compute loops, guarded-pointer
    memory threads, SEND traffic and remote reads, each in its own hthread
    slot with a private address-space slice — the multiprogrammed operating
    point the paper's Section 3.2 multithreading argument is about.
    """
    from repro.cluster.hthread import ThreadState  # noqa: PLC0415
    from repro.fuzz.generator import GeneratorKnobs, generate_program  # noqa: PLC0415

    knobs = GeneratorKnobs(
        mesh=tuple(mesh),
        max_threads=jobs,
        fault_density=0.0,
        secded_single_flips=0,
        secded_double_flips=0,
        max_cycles=max_cycles,
    )
    program = generate_program(seed, knobs)
    machine = program.build_machine(kernel=kernel)
    program.run(machine)
    states = [
        machine.nodes[thread.node].context(thread.slot, thread.cluster).state
        for thread in program.threads
    ]
    metrics = _base_metrics(machine)
    metrics.update(
        jobs=len(program.threads),
        verified=all(state is ThreadState.HALTED for state in states),
    )
    return metrics


@workload("protection-storm", section="Section 4.4 (guarded pointers)")
def protection_storm(
    violators: int = 5,
    mesh: Sequence[int] = (1, 1, 1),
    kernel: str = "event",
    max_cycles: int = 20000,
) -> Dict[str, object]:
    """Concurrent guarded-pointer violations must all fault without wedging.

    Every violation mode the generator knows (plain-int access under
    protection, out-of-segment load, read-only store, out-of-segment LEA,
    unprivileged SETPTR forge) runs concurrently alongside one clean memory
    thread.  All violators must end FAULTED with an ``exception`` trace
    event, the clean thread must finish, and the machine must go quiescent —
    the "protection faults are cheap and contained" claim of Section 4.4.
    """
    from repro.cluster.hthread import ThreadState  # noqa: PLC0415
    from repro.fuzz.generator import (  # noqa: PLC0415
        HEAP_BASE,
        VIOLATION_MODES,
        GeneratedProgram,
        GeneratorKnobs,
        ThreadSpec,
    )

    num_nodes = int(mesh[0]) * int(mesh[1]) * int(mesh[2])
    if violators < 1 or violators > 4 * 4 * num_nodes - 1:
        raise ValueError("violators must leave a free context for the clean thread")
    knobs = GeneratorKnobs(mesh=tuple(mesh), max_cycles=max_cycles)
    program = GeneratedProgram(
        seed=0,
        knobs=knobs,
        mesh=tuple(mesh),
        config_overrides={"runtime.protection_enabled": True},
        max_cycles=max_cycles,
    )
    placements = [
        (node, slot, cluster)
        for node in range(num_nodes)
        for slot in range(4)
        for cluster in range(4)
    ]
    for index in range(violators):
        node, slot, cluster = placements[index]
        base = HEAP_BASE + index * 0x1000
        program.mappings.append((node, base, 1))
        program.threads.append(
            ThreadSpec(
                node=node,
                slot=slot,
                cluster=cluster,
                kind="violator",
                params={"base": base, "mode": VIOLATION_MODES[index % len(VIOLATION_MODES)]},
            )
        )
    clean_node, clean_slot, clean_cluster = placements[violators]
    clean_base = HEAP_BASE + violators * 0x1000
    program.mappings.append((clean_node, clean_base, 1))
    program.threads.append(
        ThreadSpec(
            node=clean_node,
            slot=clean_slot,
            cluster=clean_cluster,
            kind="local-memory",
            params={
                "base": clean_base,
                "offsets": [0, 3, 7],
                "values": [11, 22, 33],
                "iterations": 4,
            },
        )
    )
    machine = program.build_machine(kernel=kernel)
    program.run(machine)
    states = [
        machine.nodes[thread.node].context(thread.slot, thread.cluster).state
        for thread in program.threads
    ]
    faulted = sum(1 for state in states[:violators] if state is ThreadState.FAULTED)
    exceptions = sum(
        1 for event in machine.tracer.events if event.category == "exception"
    )
    metrics = _base_metrics(machine)
    metrics.update(
        violators=violators,
        faulted=faulted,
        exceptions=exceptions,
        verified=(
            faulted == violators
            and exceptions >= violators
            and states[violators] is ThreadState.HALTED
        ),
    )
    return metrics


@workload("secded-soak", section="Section 2 (SECDED memory interface)")
def secded_soak(
    words: int = 24,
    single_flips: int = 6,
    double_flips: int = 3,
    seed: int = 0,
    mesh: Sequence[int] = (1, 1, 1),
    kernel: str = "event",
    max_cycles: int = 20000,
) -> Dict[str, object]:
    """Seeded bit-flip soak through the SECDED path with full accounting.

    Writes a block of seeded words, flips one stored codeword bit in
    ``single_flips`` of them and two bits in ``double_flips`` words placed
    beyond the program's read range, then reads the block back from a user
    thread (cache-cold, so every read decodes through
    :mod:`repro.memory.secded`).  Single-bit flips must be corrected and
    scrubbed, double-bit flips must raise detected-uncorrectable, and the
    DRAM's ``corrected``/``detected`` counters must match exactly.
    """
    from repro.fuzz.generator import (  # noqa: PLC0415
        SECDED_BASE,
        GeneratedProgram,
        GeneratorKnobs,
        ThreadSpec,
    )
    from repro.memory.secded import SecdedError  # noqa: PLC0415

    if single_flips > words:
        raise ValueError("cannot single-flip more words than are read")
    if words > 128 or double_flips > 16:
        raise ValueError("soak block exceeds its one-page layout")
    rng = random.Random(seed)
    knobs = GeneratorKnobs(mesh=tuple(mesh), max_cycles=max_cycles)
    program = GeneratedProgram(seed=seed, knobs=knobs, mesh=tuple(mesh), max_cycles=max_cycles)
    program.mappings.append((0, SECDED_BASE, 1))
    originals = [rng.randint(1, (1 << 48) - 1) for _ in range(words)]
    for offset, value in enumerate(originals):
        program.initial_words.append((SECDED_BASE + offset, value))
    for offset in rng.sample(range(words), single_flips):
        program.single_flips.append((0, SECDED_BASE + offset, rng.randrange(72)))
    # Double-bit words live past the read range (and past any cache block the
    # reader touches) so the user thread never trips the uncorrectable path.
    poison = []
    for index in range(double_flips):
        offset = 256 + index
        value = rng.randint(1, (1 << 48) - 1)
        program.initial_words.append((SECDED_BASE + offset, value))
        bit_a, bit_b = rng.sample(range(72), 2)
        program.double_flips.append((0, SECDED_BASE + offset, bit_a, bit_b))
        poison.append(SECDED_BASE + offset)
    program.threads.append(
        ThreadSpec(
            node=0,
            slot=0,
            cluster=0,
            kind="secded-read",
            params={"base": SECDED_BASE, "words": words},
        )
    )
    machine = program.build_machine(kernel=kernel)
    program.run(machine)
    memory = machine.nodes[0].memory
    corrected = memory.sdram.corrected_errors
    # Directly probe the poisoned words: each must raise detected-uncorrectable.
    uncorrectable = 0
    for address in poison:
        try:
            memory.sdram.read_word(memory.translate(address))
        except SecdedError:
            uncorrectable += 1
    # After the scrub, every stored codeword in the read range decodes to the
    # originally written value without further corrections.
    scrub_base = memory.sdram.corrected_errors
    survivors = [
        memory.sdram.read_word(memory.translate(SECDED_BASE + offset))
        for offset in range(words)
    ]
    metrics = _base_metrics(machine)
    metrics.update(
        words=words,
        corrected=corrected,
        detected=memory.sdram.detected_errors,
        verified=(
            corrected == single_flips
            and uncorrectable == double_flips
            and memory.sdram.detected_errors == double_flips
            and memory.sdram.corrected_errors == scrub_base
            and survivors == originals
        ),
    )
    return metrics


@workload("nack-flood", section="Ablation A4 (Section 3.1)")
def nack_flood(
    senders: int = 3,
    messages_each: int = 12,
    queue_words: int = 6,
    retransmit_interval: int = 8,
    mesh: Sequence[int] = (2, 2, 1),
    kernel: str = "event",
    max_cycles: int = 400000,
) -> Dict[str, object]:
    """Sustained NACK/retransmit storm against one consumer node.

    Like ``many-to-one-flood`` but tuned so the consumer's receive queue is
    guaranteed to overflow: the run only verifies if the network actually
    NACKed and retransmitted while still delivering every store — the
    return-to-sender throttling claim of Section 3.1 under sustained
    pressure rather than a transient burst.
    """
    from repro.workloads.synthetic import many_to_one_store_programs  # noqa: PLC0415

    machine = _machine(
        mesh,
        kernel,
        **{
            "network.message_queue_words": queue_words,
            "network.retransmit_interval": retransmit_interval,
        },
    )
    if senders >= machine.num_nodes:
        raise ValueError("need one node per sender plus the consumer")
    machine.map_on_node(0, REGION, num_pages=1)
    dip = machine.runtime.dip("remote_store")
    programs = many_to_one_store_programs(senders, messages_each, REGION, dip)
    for sender, program in programs.items():
        machine.load_hthread(sender + 1, 0, 0, program)
    machine.run_until_user_done(max_cycles=max_cycles)
    total = senders * messages_each
    nacks = sum(node.net.nacks_received for node in machine.nodes)
    retransmissions = sum(node.net.retransmissions for node in machine.nodes)
    metrics = _base_metrics(machine)
    metrics.update(
        verified=(
            all(machine.read_word(REGION + i) != 0 for i in range(total))
            and nacks > 0
            and retransmissions > 0
        ),
        nacks=nacks,
        retransmissions=retransmissions,
        max_queue_words=machine.nodes[0].msg_queue_p0.max_occupancy,
    )
    return metrics
