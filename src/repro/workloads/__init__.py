"""Workload generators.

The paper's evaluation uses small hand-scheduled kernels: the 7-point and
27-point stencil smoothing operators of Figure 5 (instruction-level
parallelism across H-Threads), the CC-register loop synchronisation of
Figure 6, and microbenchmark accesses for Table 1 / Figure 9.  This package
generates those kernels as MAP assembly plus the data placement and expected
results needed to verify them.

The registry surface re-exported here (``WORKLOADS``, ``register``,
``run_workload``, ``workload_params``, ``workload_names``) is the
deprecated pre-:mod:`repro.api` dialect — it keeps working bit-exactly but
warns once per process; new code should use the typed facade
(``from repro import workload, run_workload, get_workload``).
"""

from repro.workloads.stencil import (
    Grid3D,
    StencilWorkload,
    SEVEN_POINT_OFFSETS,
    TWENTY_SEVEN_POINT_OFFSETS,
    make_stencil_workload,
)
from repro.workloads.microbench import (
    cc_loop_sync_programs,
    cc_barrier_programs,
    dependent_load_chain_program,
    independent_load_program,
    compute_loop_program,
)
from repro.workloads.synthetic import many_to_one_store_programs, uniform_traffic_programs
from repro.workloads.factories import (
    WORKLOADS,
    register,
    run_workload,
    workload_names,
    workload_params,
)

__all__ = [
    "WORKLOADS",
    "register",
    "run_workload",
    "workload_names",
    "workload_params",
    "Grid3D",
    "StencilWorkload",
    "SEVEN_POINT_OFFSETS",
    "TWENTY_SEVEN_POINT_OFFSETS",
    "make_stencil_workload",
    "cc_loop_sync_programs",
    "cc_barrier_programs",
    "dependent_load_chain_program",
    "independent_load_program",
    "compute_loop_program",
    "many_to_one_store_programs",
    "uniform_traffic_programs",
]
