"""Synthetic communication workloads.

Used by the throttling ablation (many producers flooding one consumer, which
exercises the return-to-sender protocol of Section 4.1) and by network
stress tests (uniformly distributed remote stores).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.isa.assembler import assemble
from repro.isa.program import Program


def remote_store_sender_program(
    dest_address: int,
    store_dip: int,
    num_messages: int,
    stride: int = 1,
    value_base: int = 1000,
) -> Program:
    """A user thread that sends *num_messages* remote-store messages with the
    user-level SEND instruction (Figure 7(a) of the paper)."""
    source = f"""
    ; remote-store flood sender
    mov i1, #{dest_address}      ; destination virtual address
    mov i2, #{num_messages}
    mov i3, #0                   ; messages sent
    mov i4, #{value_base}        ; value to store
loop:
    mov m0, i4                   ; message body: the value
    send i1, #{store_dip}, #1    ; remote store message
    add i1, i1, #{stride}
    add i4, i4, #1
    add i3, i3, #1
    lt i5, i3, i2
    br i5, loop
    halt
"""
    return assemble(source, name="remote-store-sender")


def many_to_one_store_programs(
    num_senders: int,
    words_per_sender: int,
    dest_base_address: int,
    store_dip: int,
) -> Dict[int, Program]:
    """One sender program per source node, all targeting (disjoint slices of)
    a region homed on a single consumer node."""
    programs = {}
    for sender in range(num_senders):
        base = dest_base_address + sender * words_per_sender
        programs[sender] = remote_store_sender_program(
            dest_address=base,
            store_dip=store_dip,
            num_messages=words_per_sender,
            stride=1,
            value_base=10_000 * (sender + 1),
        )
    return programs


def uniform_traffic_programs(
    num_nodes: int,
    words_per_node: int,
    region_base: int,
    region_words_per_node: int,
    store_dip: int,
) -> Dict[int, Program]:
    """Each node stores into the slice of an interleaved region homed on the
    next node (a ring of remote stores), producing uniform link load."""
    programs = {}
    for node in range(num_nodes):
        target_node = (node + 1) % num_nodes
        base = region_base + target_node * region_words_per_node
        programs[node] = remote_store_sender_program(
            dest_address=base,
            store_dip=store_dip,
            num_messages=words_per_node,
            stride=1,
            value_base=100_000 * (node + 1),
        )
    return programs


def expected_many_to_one_values(num_senders: int, words_per_sender: int) -> List[Tuple[int, int]]:
    """(offset, value) pairs the consumer's region should contain after a
    many-to-one run completes."""
    expected = []
    for sender in range(num_senders):
        for index in range(words_per_sender):
            offset = sender * words_per_sender + index
            expected.append((offset, 10_000 * (sender + 1) + index))
    return expected
