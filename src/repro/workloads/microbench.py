"""Microbenchmark kernels.

These small generated kernels drive the Figure 6 reproduction (loop
synchronisation between H-Threads through the global condition-code
registers), the V-Thread latency-tolerance ablation, and assorted unit and
integration tests.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.isa.assembler import assemble
from repro.isa.program import Program


# ---------------------------------------------------------------------------
# Figure 6: loop synchronisation through global CC registers
# ---------------------------------------------------------------------------


def cc_loop_sync_programs(iterations: int) -> Dict[int, Program]:
    """The two-H-Thread interlocked loop of Figure 6.

    H-Thread 0 (cluster 0) computes the loop induction variable, compares it
    against the end value and broadcasts the result on ``gcc1``; H-Thread 1
    (cluster 1) consumes ``gcc1``, re-empties it and notifies H-Thread 0 on
    ``gcc3``.  Neither thread can roll over into the next iteration before
    the other has finished the current one.

    Registers: ``i1`` of cluster 0 holds the iteration count (set by the
    caller through the returned programs' initial registers is not needed --
    the count is baked in as an immediate).
    """
    source0 = f"""
    ; Figure 6, H-Thread 0 (cluster 0)
    mov i1, #{iterations}
    mov i2, #0
    empty gcc3
loop0:
    add i2, i2, #1              ; "compute bar"
    eq gcc1, i2, i1             ; broadcast bar == end
    mov i3, gcc3                ; block until H-Thread 1 consumed gcc1
    empty gcc3
    brz gcc1, loop0
    halt
"""
    source1 = """
    ; Figure 6, H-Thread 1 (cluster 1)
    mov i2, #0
    empty gcc1
loop1:
    add i2, i2, #1              ; "compute / use"
    mov i4, gcc1                ; block until H-Thread 0's comparison arrives
    empty gcc1
    mov gcc3, #1                ; notify: current gcc1 value consumed
    brz i4, loop1
    halt
"""
    return {
        0: assemble(source0, name="cc-sync-h0"),
        1: assemble(source1, name="cc-sync-h1"),
    }


def cc_barrier_programs(iterations: int, num_clusters: int = 4) -> Dict[int, Program]:
    """A fast barrier among H-Threads on different clusters using the
    replicated global CC registers (the extension discussed at the end of
    Section 3.1: no combining or distribution trees are needed).

    The barrier is two-phase, using both registers of each cluster's
    broadcast pair, which is the interlocking idea of Figure 6 generalised to
    four participants: cluster ``k`` announces arrival on ``gcc(2k)``, waits
    for everyone's arrival flag and empties its local copies, then announces
    "seen" on ``gcc(2k+1)`` and waits for everyone's second flag before
    starting the next iteration.  The second phase guarantees nobody can wipe
    out a neighbour's next-iteration announcement.
    """
    programs = {}
    arrive_flags = [f"gcc{2 * cluster}" for cluster in range(num_clusters)]
    seen_flags = [f"gcc{2 * cluster + 1}" for cluster in range(num_clusters)]
    for cluster in range(num_clusters):
        arrive_waits = "\n".join(
            f"    mov i4, {flag}            ; wait for cluster {other}'s arrival"
            for other, flag in enumerate(arrive_flags)
        )
        seen_waits = "\n".join(
            f"    mov i4, {flag}            ; wait for cluster {other}'s phase-2 flag"
            for other, flag in enumerate(seen_flags)
        )
        arrive_list = ", ".join(arrive_flags)
        seen_list = ", ".join(seen_flags)
        source = f"""
    ; {num_clusters}-way CC-register barrier, cluster {cluster}
    mov i1, #{iterations}
    mov i2, #0
    empty {arrive_list}
    empty {seen_list}
loop:
    add i2, i2, #1              ; per-iteration work
    mov {arrive_flags[cluster]}, #1     ; phase 1: announce arrival (broadcast)
{arrive_waits}
    empty {arrive_list}
    mov {seen_flags[cluster]}, #1       ; phase 2: announce consumption
{seen_waits}
    empty {seen_list}
    lt i5, i2, i1
    br i5, loop
    halt
"""
        programs[cluster] = assemble(source, name=f"cc-barrier-c{cluster}")
    return programs


# ---------------------------------------------------------------------------
# Latency-tolerance kernels (V-Thread ablation, Section 3.2/3.4)
# ---------------------------------------------------------------------------


def dependent_load_chain_program(chain_loads: int, result_register: str = "i5") -> Program:
    """Follow a pointer chain in memory: each load's value is the next
    address.  ``i1`` must hold the address of the chain head.  The final
    pointer value lands in *result_register* and the thread halts.

    With a single resident thread every load's full latency is exposed; with
    several V-Threads interleaved the cluster issues other threads' work
    while each chain waits, which is the latency-tolerance argument of
    Section 3.2."""
    lines = ["; dependent (pointer-chasing) load chain", "mov i2, i1"]
    for _ in range(chain_loads):
        lines.append("ld i2, i2")
    lines.append(f"mov {result_register}, i2")
    lines.append("halt")
    return assemble("\n".join(lines), name=f"dep-chain-{chain_loads}")


def independent_load_program(num_loads: int, stride: int = 1) -> Program:
    """Issue *num_loads* independent loads from ``i1 + k*stride``; sums the
    values into ``i5``.  Exposes memory bandwidth rather than latency."""
    lines = ["; independent load stream", "mov i5, #0"]
    for index in range(num_loads):
        register = f"i{6 + (index % 4)}"
        lines.append(f"ld {register}, i1, #{index * stride}")
        lines.append(f"add i5, i5, {register}")
    lines.append("halt")
    return assemble("\n".join(lines), name=f"indep-loads-{num_loads}")


def compute_loop_program(iterations: int, result_register: str = "i5") -> Program:
    """A purely arithmetic loop (no memory), used to measure single-thread
    issue behaviour under the different thread-selection policies."""
    source = f"""
    ; arithmetic loop
    mov i1, #{iterations}
    mov i2, #0
    mov {result_register}, #0
loop:
    add {result_register}, {result_register}, #3
    add i2, i2, #1
    lt i3, i2, i1
    br i3, loop
    halt
"""
    return assemble(source, name=f"compute-loop-{iterations}")


def store_value_program(value_register_setup: Optional[int] = None) -> Program:
    """``st i6, i1`` then halt; used by the Table 1 store-latency measurements.
    ``i1`` holds the address and ``i6`` the value."""
    return assemble("st i6, i1\nhalt", name="single-store")


def load_value_program(result_register: str = "i5") -> Program:
    """``ld i5, i1`` then halt; used by the Table 1 load-latency measurements."""
    return assemble(f"ld {result_register}, i1\nhalt", name="single-load")


def build_pointer_chain(length: int, base_address: int, stride: int = 8) -> List[Tuple[int, int]]:
    """Return ``(address, value)`` pairs forming a pointer chain starting at
    *base_address*; the last element points back to the first."""
    addresses = [base_address + index * stride for index in range(length)]
    pairs = []
    for index, address in enumerate(addresses):
        next_address = addresses[(index + 1) % length]
        pairs.append((address, next_address))
    return pairs
