"""Stencil smoothing kernels (Figure 5 and Section 3.1).

The paper's running example is the inner loop of a multigrid-style smoothing
operator on a 3-D grid::

    u* = u + a*r_c + b*(r_u + r_d + r_n + r_s + r_e + r_w)

where ``r`` is the residual grid and the subscripts name the six face
neighbours (the 7-point stencil); the 27-point variant sums all 26
neighbours.  Figure 5 shows hand schedules for one and two H-Threads; the
paper reports static instruction depths of 12 vs 8 for the 7-point stencil
and 36 vs 17 (1 vs 4 H-Threads) for the 27-point stencil.

:func:`make_stencil_workload` generates equivalent schedules for 1, 2 or 4
H-Threads with a small list scheduler (loads in the memory-unit slot paired
with accumulation in the FPU slot, partial sums combined on cluster 0 through
inter-cluster register writes), sets up the grid data, and verifies the
numerical result after the run.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.machine import MMachine
from repro.isa.assembler import assemble
from repro.isa.program import Program

#: Face-neighbour offsets of the 7-point stencil (excluding the centre).
SEVEN_POINT_OFFSETS: List[Tuple[int, int, int]] = [
    (1, 0, 0), (-1, 0, 0),
    (0, 1, 0), (0, -1, 0),
    (0, 0, 1), (0, 0, -1),
]

#: All 26 neighbour offsets of the 27-point stencil.
TWENTY_SEVEN_POINT_OFFSETS: List[Tuple[int, int, int]] = [
    (dx, dy, dz)
    for dx in (-1, 0, 1)
    for dy in (-1, 0, 1)
    for dz in (-1, 0, 1)
    if (dx, dy, dz) != (0, 0, 0)
]


@dataclass
class Grid3D:
    """A dense 3-D grid of 64-bit words in the global address space."""

    base_address: int
    nx: int
    ny: int
    nz: int

    @property
    def size(self) -> int:
        return self.nx * self.ny * self.nz

    def index(self, x: int, y: int, z: int) -> int:
        if not (0 <= x < self.nx and 0 <= y < self.ny and 0 <= z < self.nz):
            raise IndexError(f"grid point ({x},{y},{z}) outside {self.nx}x{self.ny}x{self.nz}")
        return x + self.nx * (y + self.ny * z)

    def address(self, x: int, y: int, z: int) -> int:
        return self.base_address + self.index(x, y, z)

    def word_offset(self, offset: Tuple[int, int, int]) -> int:
        """Word-address delta of a neighbour offset."""
        dx, dy, dz = offset
        return dx + self.nx * (dy + self.ny * dz)


# ---------------------------------------------------------------------------
# Scheduling
# ---------------------------------------------------------------------------

_SCRATCH_FP = ["f3", "f4", "f5", "f6", "f7", "f8", "f9"]
_ACC = "f10"
#: Registers on the storing cluster that receive the other clusters' partials.
_PARTIAL_REGS = ["f11", "f12", "f13"]
_CENTER_REG = "f14"
_U_REG = "f15"
#: f1 holds the neighbour weight ``b``; f2 holds the centre weight ``a``.
_B_REG = "f1"
_A_REG = "f2"


@dataclass
class _Slotted:
    """One 3-wide instruction under construction (one op per unit slot)."""

    ialu: Optional[str] = None
    mem: Optional[str] = None
    fpu: Optional[str] = None

    @property
    def empty(self) -> bool:
        return self.ialu is None and self.mem is None and self.fpu is None

    def render(self) -> str:
        return " | ".join(part for part in (self.ialu, self.mem, self.fpu) if part)


def _schedule_partial_sum(word_offsets: Sequence[int], base_reg: str = "i1") -> List[_Slotted]:
    """Schedule loads + accumulation of a set of neighbours into ``_ACC``.

    Each instruction carries at most one load (memory unit) and one fadd
    (FPU), the way Figure 5 pairs them; after the last accumulation ``_ACC``
    holds the un-weighted partial sum.
    """
    lines: List[_Slotted] = []
    pending = deque(word_offsets)
    loaded: deque = deque()
    free = list(_SCRATCH_FP)
    acc_live = False

    if not pending:
        lines.append(_Slotted(fpu=f"fmov {_ACC}, #0.0"))
        return lines
    if len(pending) == 1:
        offset = pending.popleft()
        lines.append(_Slotted(mem=f"ld f3, {base_reg}, #{offset}"))
        lines.append(_Slotted(fpu=f"fmov {_ACC}, f3"))
        return lines

    while pending or loaded:
        line = _Slotted()
        newly: Optional[str] = None
        if pending and free:
            register = free.pop(0)
            offset = pending.popleft()
            line.mem = f"ld {register}, {base_reg}, #{offset}"
            newly = register
        if loaded:
            if not acc_live:
                if len(loaded) >= 2:
                    first, second = loaded.popleft(), loaded.popleft()
                    line.fpu = f"fadd {_ACC}, {first}, {second}"
                    free.extend([first, second])
                    acc_live = True
                elif not pending and newly is None:
                    only = loaded.popleft()
                    line.fpu = f"fmov {_ACC}, {only}"
                    free.append(only)
                    acc_live = True
            else:
                value = loaded.popleft()
                line.fpu = f"fadd {_ACC}, {_ACC}, {value}"
                free.append(value)
        if newly is not None:
            loaded.append(newly)
        if not line.empty:
            lines.append(line)
    return lines


def _place_mem(lines: List[_Slotted], op: str, not_before: int = 0) -> int:
    """Place a memory op into the first free memory slot at or after
    *not_before*; appends a new instruction when none is free.  Returns the
    index used."""
    for index in range(not_before, len(lines)):
        if lines[index].mem is None:
            lines[index].mem = op
            return index
    lines.append(_Slotted(mem=op))
    return len(lines) - 1


def _place_fp(lines: List[_Slotted], op: str, not_before: int) -> int:
    """Place an FP op into the first free FPU slot strictly after the
    instruction producing its newest operand (*not_before*)."""
    for index in range(not_before, len(lines)):
        if lines[index].fpu is None:
            lines[index].fpu = op
            return index
    lines.append(_Slotted(fpu=op))
    return len(lines) - 1


def _last_fp_index(lines: List[_Slotted]) -> int:
    last = -1
    for index, line in enumerate(lines):
        if line.fpu is not None:
            last = index
    return last


def _render(lines: List[_Slotted], header: str) -> str:
    rendered = [header]
    rendered.extend(line.render() for line in lines if not line.empty)
    rendered.append("halt")
    return "\n".join(rendered)


def _center_thread_source(word_offsets: Sequence[int], send_to: Optional[int]) -> str:
    """The H-Thread that handles the centre point and ``u`` (cluster 0).

    It computes ``u + a*r_c + b*(its neighbours)``; with more than one
    H-Thread the total is shipped to the storing cluster's ``f11`` by
    targetting the remote register directly in the final fadd, exactly as
    instruction 7 of Figure 5(b) does.
    """
    lines = _schedule_partial_sum(word_offsets)
    last_acc = _last_fp_index(lines)
    # Load the centre residual and u into free memory slots.
    center_index = _place_mem(lines, f"ld {_CENTER_REG}, i1")
    u_index = _place_mem(lines, f"ld {_U_REG}, i2")
    # Weight the partial sum; then fold in a*r_c and u.  Placement respects
    # program order against the producing loads so no operation reads a
    # register before it has been (re)loaded.
    index = _place_fp(lines, f"fmul {_ACC}, {_B_REG}, {_ACC}", last_acc + 1)
    index = _place_fp(lines, f"fmul {_CENTER_REG}, {_A_REG}, {_CENTER_REG}",
                      max(index, center_index) + 1)
    index = _place_fp(lines, f"fadd {_U_REG}, {_U_REG}, {_CENTER_REG}",
                      max(index, u_index) + 1)
    if send_to is None:
        index = _place_fp(lines, f"fadd {_U_REG}, {_U_REG}, {_ACC}", index + 1)
        _place_mem(lines, f"st {_U_REG}, i2", index + 1)
    else:
        _place_fp(lines, f"fadd c{send_to}.{_PARTIAL_REGS[0]}, {_U_REG}, {_ACC}", index + 1)
    return _render(lines, "; stencil centre H-Thread (cluster 0)")


def _worker_thread_source(word_offsets: Sequence[int], worker_index: int, send_to: int) -> str:
    """A pure-neighbour worker H-Thread: partial sum, weight by b, ship the
    result to the storing cluster."""
    lines = _schedule_partial_sum(word_offsets)
    last_acc = _last_fp_index(lines)
    destination = _PARTIAL_REGS[worker_index]
    _place_fp(lines, f"fmul c{send_to}.{destination}, {_B_REG}, {_ACC}", last_acc + 1)
    return _render(lines, f"; stencil worker H-Thread {worker_index}")


def _store_thread_source(word_offsets: Sequence[int], num_partials: int) -> str:
    """The storing H-Thread (the highest-numbered cluster): its own partial,
    the combination of all incoming partials, and the store of u*."""
    lines = _schedule_partial_sum(word_offsets)
    # Prepare the receive registers for the inter-cluster transfers; the
    # empty pairs into the integer slot of the first instruction, as in
    # instruction 2 of Figure 5(b).
    receive = ", ".join(_PARTIAL_REGS[:num_partials])
    if lines:
        lines[0].ialu = f"empty {receive}"
    else:
        lines.append(_Slotted(ialu=f"empty {receive}"))
    last_acc = _last_fp_index(lines)
    index = _place_fp(lines, f"fmul {_ACC}, {_B_REG}, {_ACC}", last_acc + 1)
    for partial in range(num_partials):
        index = _place_fp(lines, f"fadd {_ACC}, {_ACC}, {_PARTIAL_REGS[partial]}", index + 1)
    _place_mem(lines, f"st {_ACC}, i2", index + 1)
    return _render(lines, "; stencil storing H-Thread")


# ---------------------------------------------------------------------------
# The workload object
# ---------------------------------------------------------------------------


@dataclass
class StencilWorkload:
    """A generated stencil kernel, its data placement and expected result."""

    kind: str
    n_hthreads: int
    grid_shape: Tuple[int, int, int]
    point: Tuple[int, int, int]
    weight_a: float
    weight_b: float
    node_id: int
    slot: int
    residual_base: int
    solution_base: int
    programs: Dict[int, Program] = field(default_factory=dict)
    sources: Dict[int, str] = field(default_factory=dict)
    initial_registers: Dict[int, dict] = field(default_factory=dict)
    residual_grid: Optional[Grid3D] = None
    solution_grid: Optional[Grid3D] = None
    expected_value: float = 0.0

    @property
    def static_depths(self) -> Dict[int, int]:
        """Static instruction count per H-Thread, *excluding* the final halt
        (which Figure 5 does not count)."""
        return {cluster: len(program) - 1 for cluster, program in self.programs.items()}

    @property
    def max_static_depth(self) -> int:
        """The static depth of the schedule: the longest H-Thread."""
        return max(self.static_depths.values())

    @property
    def total_operations(self) -> int:
        return sum(program.operation_count for program in self.programs.values())

    # -- machine interaction ------------------------------------------------------

    def setup(self, machine: MMachine) -> None:
        """Write the grid data and load the kernel's H-Threads."""
        rx, ry, rz = self.grid_shape
        residual = Grid3D(self.residual_base, rx, ry, rz)
        solution = Grid3D(self.solution_base, rx, ry, rz)
        self.residual_grid = residual
        self.solution_grid = solution
        for z in range(rz):
            for y in range(ry):
                for x in range(rx):
                    machine.write_word(residual.address(x, y, z),
                                       float(1 + residual.index(x, y, z) % 7) * 0.5)
                    machine.write_word(solution.address(x, y, z),
                                       float(1 + solution.index(x, y, z) % 5) * 0.25)
        self.expected_value = self._expected(machine)
        for cluster, program in self.programs.items():
            machine.load_hthread(
                self.node_id, self.slot, cluster, program,
                registers=self.initial_registers[cluster],
            )

    def _expected(self, machine: MMachine) -> float:
        x, y, z = self.point
        residual, solution = self.residual_grid, self.solution_grid
        offsets = SEVEN_POINT_OFFSETS if self.kind == "7pt" else TWENTY_SEVEN_POINT_OFFSETS
        neighbour_sum = sum(
            machine.read_word(residual.address(x + dx, y + dy, z + dz))
            for dx, dy, dz in offsets
        )
        center = machine.read_word(residual.address(x, y, z))
        u_value = machine.read_word(solution.address(x, y, z))
        return u_value + self.weight_a * center + self.weight_b * neighbour_sum

    def result(self, machine: MMachine) -> float:
        x, y, z = self.point
        return machine.read_word(self.solution_grid.address(x, y, z))

    def verify(self, machine: MMachine, tolerance: float = 1e-9) -> bool:
        return abs(self.result(machine) - self.expected_value) <= tolerance


def make_stencil_workload(
    kind: str = "7pt",
    n_hthreads: int = 1,
    grid_shape: Tuple[int, int, int] = (4, 4, 4),
    point: Tuple[int, int, int] = (1, 1, 1),
    weight_a: float = 0.5,
    weight_b: float = 0.125,
    residual_base: int = 0x10000,
    solution_base: int = 0x11000,
    node_id: int = 0,
    slot: int = 0,
) -> StencilWorkload:
    """Generate a stencil kernel for 1, 2 or 4 H-Threads."""
    if kind not in ("7pt", "27pt"):
        raise ValueError("kind must be '7pt' or '27pt'")
    if n_hthreads not in (1, 2, 4):
        raise ValueError("the stencil kernels are scheduled for 1, 2 or 4 H-Threads")
    offsets = SEVEN_POINT_OFFSETS if kind == "7pt" else TWENTY_SEVEN_POINT_OFFSETS
    grid = Grid3D(residual_base, *grid_shape)
    word_offsets = [grid.word_offset(offset) for offset in offsets]

    # Distribute the neighbours over the H-Threads.  Cluster 0 additionally
    # handles the centre point and u, so (with more than one H-Thread) it
    # gets the smallest share; the highest-numbered cluster performs the
    # final combination and the store, as H-Thread 1 does in Figure 5(b).
    assignments: List[List[int]] = [[] for _ in range(n_hthreads)]
    if n_hthreads == 1:
        assignments[0] = list(word_offsets)
    else:
        position = 0
        for offset in word_offsets:
            assignments[1 + position % (n_hthreads - 1)].append(offset)
            position += 1
        # Re-balance: move a small share back to cluster 0 so every thread
        # has roughly (neighbours - 2) / n work, matching Figure 5(b)'s
        # 2/4 split for the 7-point stencil.
        target_for_center = max(0, (len(word_offsets) - 2 * (n_hthreads - 1)) // n_hthreads)
        donors = sorted(range(1, n_hthreads), key=lambda idx: -len(assignments[idx]))
        donor_cycle = 0
        while len(assignments[0]) < target_for_center and donors:
            donor = donors[donor_cycle % len(donors)]
            if len(assignments[donor]) > 1:
                assignments[0].append(assignments[donor].pop())
            donor_cycle += 1
            if donor_cycle > 10 * n_hthreads:
                break

    workload = StencilWorkload(
        kind=kind,
        n_hthreads=n_hthreads,
        grid_shape=grid_shape,
        point=point,
        weight_a=weight_a,
        weight_b=weight_b,
        node_id=node_id,
        slot=slot,
        residual_base=residual_base,
        solution_base=solution_base,
    )

    x, y, z = point
    center_address = grid.address(x, y, z)
    solution_grid = Grid3D(solution_base, *grid_shape)
    solution_address = solution_grid.address(x, y, z)

    store_cluster = n_hthreads - 1
    sources: Dict[int, str] = {}
    if n_hthreads == 1:
        sources[0] = _center_thread_source(assignments[0], send_to=None)
    else:
        sources[0] = _center_thread_source(assignments[0], send_to=store_cluster)
        for worker in range(1, n_hthreads - 1):
            sources[worker] = _worker_thread_source(
                assignments[worker], worker_index=worker, send_to=store_cluster
            )
        sources[store_cluster] = _store_thread_source(
            assignments[store_cluster], num_partials=n_hthreads - 1
        )

    for cluster, source in sources.items():
        workload.sources[cluster] = source
        workload.programs[cluster] = assemble(
            source, name=f"stencil-{kind}-{n_hthreads}h-c{cluster}"
        )
        registers = {"i1": center_address, "f1": weight_b}
        if cluster == 0:
            registers["i2"] = solution_address
            registers["f2"] = weight_a
        if cluster == store_cluster:
            registers["i2"] = solution_address
        workload.initial_registers[cluster] = registers
    return workload
