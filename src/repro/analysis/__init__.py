"""Analysis helpers: latency measurement (Table 1), timelines (Figure 9) and
report formatting used by the benchmark harness."""

from repro.analysis.latency import (
    AccessLatencyHarness,
    measure_load_latency,
    measure_store_latency,
)
from repro.analysis.timeline import Timeline, TimelineEvent, extract_remote_access_timeline

__all__ = [
    "AccessLatencyHarness",
    "measure_load_latency",
    "measure_store_latency",
    "Timeline",
    "TimelineEvent",
    "extract_remote_access_timeline",
]
