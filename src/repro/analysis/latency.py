"""Access-latency measurement (Table 1).

"Table 1 shows a comparison of preliminary results of local and remote access
latencies (in cycles).  A read is completed when the requested data has been
written into the destination register.  A write is completed when the line
containing the data has been fully loaded into the cache."  (Section 4.2.)

:class:`AccessLatencyHarness` rebuilds exactly that experiment on the
simulator: a user thread on node 0 performs a single load or store to an
address that is local or homed on the neighbouring node 1, with the cache and
LTLB warmed or not according to the scenario; the latency is measured from
the trace, using the paper's completion definitions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.config import MachineConfig
from repro.core.machine import MMachine
from repro.core.trace import Tracer

#: The scenarios of Table 1, in the paper's row order.
SCENARIOS = (
    "local_cache_hit",
    "local_cache_miss",
    "local_ltlb_miss",
    "remote_cache_hit",
    "remote_cache_miss",
    "remote_ltlb_miss",
)

_LOAD_SOURCE = "ld i5, i1\nhalt"
_STORE_SOURCE = "st i6, i1\nhalt"
_WARM_SOURCE = "ld i7, i1\nhalt"

#: Slot used for the measured access and for the warm-up access.
_MEASURE_SLOT = 0
_WARM_SLOT = 1


def measure_load_latency(tracer: Tracer, node: int, slot: int, cluster: int,
                         register: str = "i5", since: int = 0) -> int:
    """Cycles from load issue to the destination register being written.

    Both passes stream over the trace (:meth:`Tracer.iter_filter`), so the
    measurement works out-of-core on a disk-backed trace — nothing is
    materialised.
    """
    issue_event = None
    for event in tracer.iter_filter("mem_issue", node=node, since=since):
        if (not event.info.get("store")) and event.info.get("cluster") == cluster \
                and event.info.get("slot") == slot:
            issue_event = event
            break
    if issue_event is None:
        raise LookupError("no load issue found in the trace")
    for event in tracer.iter_filter("reg_write", node=node, since=issue_event.cycle):
        if (
            event.info.get("cluster") == cluster
            and event.info.get("slot") == slot
            and event.info.get("reg") == register
        ):
            return event.cycle - issue_event.cycle
    raise LookupError(f"load to {register} never completed (issued at {issue_event.cycle})")


def measure_store_latency(tracer: Tracer, issue_node: int, home_node: int, address: int,
                          slot: int, cluster: int, since: int = 0) -> int:
    """Cycles from store issue (on *issue_node*) to the data being resident at
    its home (*home_node*).  Streams like :func:`measure_load_latency`."""
    issue_event = None
    for event in tracer.iter_filter("mem_issue", node=issue_node, since=since):
        if event.info.get("store") and event.info.get("cluster") == cluster \
                and event.info.get("slot") == slot:
            issue_event = event
            break
    if issue_event is None:
        raise LookupError("no store issue found in the trace")
    for event in tracer.iter_filter("store_complete", node=home_node, since=issue_event.cycle):
        if event.info.get("address") == address:
            return event.cycle - issue_event.cycle
    raise LookupError(f"store to {address:#x} never completed (issued at {issue_event.cycle})")


@dataclass
class AccessLatencyHarness:
    """Builds one fresh two-node machine per scenario and measures it."""

    base_config: Optional[MachineConfig] = None
    region_base: int = 0x40000
    access_offset: int = 8
    max_cycles: int = 20_000
    #: Filled by :meth:`measure_all`.
    results: Dict[str, Dict[str, int]] = field(default_factory=dict)

    def _make_config(self) -> MachineConfig:
        if self.base_config is not None:
            config = self.base_config.copy()
        else:
            config = MachineConfig.small(2, 1, 1)
        config.runtime.shared_memory_mode = "remote"
        config.trace_enabled = True
        return config

    def _build_machine(self, scenario: str) -> MMachine:
        config = self._make_config()
        machine = MMachine(config)
        remote = scenario.startswith("remote")
        preload_ltlb = not scenario.endswith("ltlb_miss")
        home = 1 if remote else 0
        machine.map_on_node(home, self.region_base, num_pages=1, preload_ltlb=preload_ltlb)
        machine.write_word(self.address, 777)
        return machine

    @property
    def address(self) -> int:
        return self.region_base + self.access_offset

    def _warm_cache(self, machine: MMachine, scenario: str) -> None:
        """For the *_cache_hit scenarios, touch the word on its home node so
        the measured access hits in that node's on-chip cache."""
        if not scenario.endswith("cache_hit"):
            return
        home = 1 if scenario.startswith("remote") else 0
        machine.load_hthread(home, _WARM_SLOT, 0, _WARM_SOURCE,
                             registers={"i1": self.address}, name="warm")
        machine.run_until(
            lambda m: m.register_full(home, _WARM_SLOT, 0, "i7")
            and m.thread_halted(home, _WARM_SLOT, 0),
            max_cycles=self.max_cycles,
        )

    def measure(self, scenario: str, kind: str) -> int:
        """Measure one Table 1 cell (scenario x {read, write})."""
        if scenario not in SCENARIOS:
            raise ValueError(f"unknown scenario {scenario!r}")
        if kind not in ("read", "write"):
            raise ValueError("kind must be 'read' or 'write'")
        machine = self._build_machine(scenario)
        self._warm_cache(machine, scenario)
        start_cycle = machine.cycle
        home = 1 if scenario.startswith("remote") else 0

        if kind == "read":
            machine.load_hthread(0, _MEASURE_SLOT, 0, _LOAD_SOURCE,
                                 registers={"i1": self.address}, name="measure-load")
            machine.run_until(
                lambda m: m.register_full(0, _MEASURE_SLOT, 0, "i5"),
                max_cycles=self.max_cycles,
            )
            return measure_load_latency(machine.tracer, node=0, slot=_MEASURE_SLOT,
                                        cluster=0, register="i5", since=start_cycle)

        machine.load_hthread(0, _MEASURE_SLOT, 0, _STORE_SOURCE,
                             registers={"i1": self.address, "i6": 424242},
                             name="measure-store")
        machine.run_until_quiescent(max_cycles=self.max_cycles)
        return measure_store_latency(machine.tracer, issue_node=0, home_node=home,
                                     address=self.address, slot=_MEASURE_SLOT, cluster=0,
                                     since=start_cycle)

    def measure_all(self) -> Dict[str, Dict[str, int]]:
        self.results = {
            scenario: {
                "read": self.measure(scenario, "read"),
                "write": self.measure(scenario, "write"),
            }
            for scenario in SCENARIOS
        }
        return self.results
