"""Remote-access timelines (Figure 9).

Figure 9 of the paper shows, for one remote read and one remote write, the
cycle at which each hardware and software step occurs on the requesting node
(node 0) and on the home node (node 1).  :func:`extract_remote_access_timeline`
reconstructs the same milestones from the machine trace of a single remote
access performed by the Table 1 harness (or any equivalent experiment).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.trace import TraceEvent, Tracer


@dataclass
class TimelineEvent:
    cycle: int
    node: int
    label: str

    def __str__(self) -> str:
        return f"{self.cycle:6d}  node {self.node}  {self.label}"


@dataclass
class Timeline:
    """An ordered list of milestones, relative to the first one."""

    kind: str
    events: List[TimelineEvent] = field(default_factory=list)

    def add(self, cycle: Optional[int], node: int, label: str) -> None:
        if cycle is not None:
            self.events.append(TimelineEvent(cycle=cycle, node=node, label=label))

    def normalised(self) -> "Timeline":
        """Shift cycles so the first milestone is cycle 0 (Figure 9's x-axis)."""
        if not self.events:
            return self
        origin = min(event.cycle for event in self.events)
        shifted = Timeline(kind=self.kind)
        for event in sorted(self.events, key=lambda entry: entry.cycle):
            shifted.events.append(
                TimelineEvent(cycle=event.cycle - origin, node=event.node, label=event.label)
            )
        return shifted

    @property
    def total_cycles(self) -> int:
        if not self.events:
            return 0
        cycles = [event.cycle for event in self.events]
        return max(cycles) - min(cycles)

    def labels(self) -> List[str]:
        return [event.label for event in self.events]

    def to_records(self) -> List[list]:
        """JSON-ready ``[[cycle, node, label], ...]`` rows of the normalised
        timeline (the machine-readable form sweep records and the report
        renderer exchange)."""
        return [
            [event.cycle, event.node, event.label]
            for event in self.normalised().events
        ]

    def __str__(self) -> str:
        lines = [f"timeline: {self.kind} ({self.total_cycles} cycles)"]
        lines.extend(str(event) for event in self.normalised().events)
        return "\n".join(lines)


def timeline_from_records(kind: str, records: List[list]) -> Timeline:
    """Rebuild a :class:`Timeline` from :meth:`Timeline.to_records` rows."""
    timeline = Timeline(kind=kind)
    for cycle, node, label in records:
        timeline.add(int(cycle), int(node), str(label))
    return timeline


def _first(tracer: Tracer, category: str, node: int, since: int = 0, **match) -> Optional[TraceEvent]:
    # Streamed (iter_filter), so the extraction works out-of-core on a
    # disk-backed trace of an arbitrarily long run.
    for event in tracer.iter_filter(category=category, node=node, since=since):
        if all(event.info.get(key) == value for key, value in match.items()):
            return event
    return None


def extract_remote_access_timeline(
    tracer: Tracer,
    kind: str,
    requesting_node: int = 0,
    home_node: int = 1,
    address: Optional[int] = None,
    destination_register: str = "i5",
    since: int = 0,
) -> Timeline:
    """Rebuild the Figure 9 milestones of a single remote read or write.

    The trace must contain exactly one remote access of the given kind after
    *since* (the Table 1 harness guarantees this); *address* narrows the
    store-completion match when supplied.
    """
    if kind not in ("read", "write"):
        raise ValueError("kind must be 'read' or 'write'")
    is_store = kind == "write"
    timeline = Timeline(kind=f"remote {kind}")

    issue = _first(tracer, "mem_issue", requesting_node, since, store=is_store, slot=0)
    timeline.add(issue.cycle if issue else None, requesting_node,
                 "STORE issues" if is_store else "LOAD issues")
    start = issue.cycle if issue else since

    miss = _first(tracer, "cache_miss", requesting_node, start)
    timeline.add(miss.cycle if miss else None, requesting_node, "cache miss detected")

    ltlb = _first(tracer, "ltlb_miss", requesting_node, start)
    timeline.add(ltlb.cycle if ltlb else None, requesting_node, "LTLB miss")

    event = _first(tracer, "event_enqueue", requesting_node, start, type="LTLB_MISS")
    timeline.add(event.cycle if event else None, requesting_node,
                 "event record enqueued / start LTLB miss handler")

    request_inject = _first(tracer, "msg_inject", requesting_node, start, priority=0)
    timeline.add(request_inject.cycle if request_inject else None, requesting_node,
                 "handler sends %s message (LTLB miss handler completes)" % ("STORE" if is_store else "LOAD"))

    request_deliver = _first(tracer, "msg_deliver", home_node, start, priority=0)
    timeline.add(request_deliver.cycle if request_deliver else None, home_node,
                 "message received / message handler dispatches")

    home_access = _first(tracer, "mem_issue", home_node, start, store=is_store)
    timeline.add(home_access.cycle if home_access else None, home_node,
                 "execute %s" % ("store" if is_store else "load"))

    if is_store:
        complete_match = {"address": address} if address is not None else {}
        complete = _first(tracer, "store_complete", home_node, start, **complete_match)
        timeline.add(complete.cycle if complete else None, home_node,
                     "store complete (message handler completes)")
    else:
        reply_inject = _first(tracer, "msg_inject", home_node, start, priority=1)
        timeline.add(reply_inject.cycle if reply_inject else None, home_node,
                     "send reply message (message handler completes)")
        reply_deliver = _first(tracer, "msg_deliver", requesting_node, start, priority=1)
        timeline.add(reply_deliver.cycle if reply_deliver else None, requesting_node,
                     "reply message received")
        final = None
        for candidate in tracer.iter_filter("reg_write", node=requesting_node, since=start):
            if candidate.info.get("reg") == destination_register and \
                    candidate.info.get("origin") == "xregwr":
                final = candidate
                break
        timeline.add(final.cycle if final else None, requesting_node,
                     "return data to destination register")

    return timeline
