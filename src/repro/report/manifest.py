"""Loading and indexing sweep results for the report renderer.

A report is rendered from a *manifest*: the merged ``sweep-results.json``
written by :class:`~repro.sweep.runner.SweepRunner` (or any file of
schema-valid records).  :class:`Manifest` loads one from a file path or a
results directory (falling back to merging ``<dir>/runs/*.json``) and indexes
the records so section builders can select runs by workload and parameter
values.

Parameter matching is on *effective* parameters: the record's explicit
params overlaid on the workload factory's keyword defaults, so a record that
omitted ``kernel`` still matches ``kernel="event"``.

Records are parsed into typed :class:`repro.api.result.RunResult` values
(each :class:`RunRecord` carries one), so section builders can consume the
structured views — summary counters, parsed timelines, provenance — instead
of re-deriving them from raw dicts.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.api.result import RunResult
from repro.api.workload import workload_defaults
from repro.sweep.runner import RESULTS_FILENAME, RUNS_DIRNAME
from repro.sweep.schema import validate_record


class ManifestError(ValueError):
    """The manifest path cannot be loaded as sweep results."""


def _normalise(value: object) -> object:
    """Normalise a parameter value for comparison (lists become tuples)."""
    if isinstance(value, (list, tuple)):
        return tuple(_normalise(item) for item in value)
    return value


@dataclass(frozen=True)
class RunRecord:
    """One schema-valid result record plus its effective parameters."""

    record: Dict[str, object]
    effective_params: Dict[str, object] = field(default_factory=dict)
    #: The record parsed into the typed interchange form, when built through
    #: :class:`Manifest` (None only for hand-constructed instances).
    result: Optional[RunResult] = None

    def to_result(self) -> RunResult:
        """The typed :class:`RunResult` view of this record."""
        return self.result if self.result is not None else RunResult.from_record(self.record)

    @property
    def run_id(self) -> str:
        return str(self.record["run_id"])

    @property
    def workload(self) -> str:
        return str(self.record["workload"])

    @property
    def params(self) -> Dict[str, object]:
        return dict(self.record.get("params") or {})

    @property
    def metrics(self) -> Dict[str, object]:
        return dict(self.record.get("metrics") or {})

    @property
    def tags(self) -> Dict[str, str]:
        return dict(self.record.get("tags") or {})

    @property
    def ok(self) -> bool:
        return self.record.get("status") == "ok"

    def metric(self, name: str) -> object:
        metrics = self.record.get("metrics") or {}
        if name not in metrics:
            raise KeyError(f"run {self.run_id!r} has no metric {name!r}")
        return metrics[name]

    def matches(self, params: Dict[str, object]) -> bool:
        """Whether every given key/value equals this run's effective value."""
        for key, value in params.items():
            if key not in self.effective_params:
                return False
            if _normalise(self.effective_params[key]) != _normalise(value):
                return False
        return True


#: ``workload -> factory keyword defaults`` cache: signature introspection is
#: identical for every record of a workload, so do it once per manifest load.
_DEFAULTS_CACHE: Dict[str, Dict[str, object]] = {}


def _effective_params(workload: str, params: Dict[str, object]) -> Dict[str, object]:
    if workload not in _DEFAULTS_CACHE:
        try:
            _DEFAULTS_CACHE[workload] = workload_defaults(workload)
        except KeyError:
            _DEFAULTS_CACHE[workload] = {}
    effective = dict(_DEFAULTS_CACHE[workload])
    effective.update(params)
    return effective


@dataclass
class Manifest:
    """An indexed collection of sweep result records."""

    source: str
    spec_name: str = ""
    records: List[RunRecord] = field(default_factory=list)
    problems: List[str] = field(default_factory=list)

    @classmethod
    def from_document(cls, document: Dict[str, object], source: str = "") -> "Manifest":
        """Build a manifest from a loaded ``sweep-results.json`` document."""
        runs = document.get("runs")
        if not isinstance(runs, list):
            raise ManifestError(f"{source or 'document'} has no 'runs' list")
        spec = document.get("spec")
        spec_name = str(spec.get("name", "")) if isinstance(spec, dict) else ""
        return cls._from_raw_records(runs, source=source, spec_name=spec_name)

    @classmethod
    def _from_raw_records(
        cls, raw: List[object], source: str, spec_name: str = ""
    ) -> "Manifest":
        manifest = cls(source=source, spec_name=spec_name)
        for index, record in enumerate(raw):
            record_problems = validate_record(record)
            if record_problems:
                manifest.problems.extend(
                    f"runs[{index}]: {problem}" for problem in record_problems
                )
                continue
            manifest.records.append(
                RunRecord(
                    record=record,
                    effective_params=_effective_params(
                        str(record["workload"]), dict(record.get("params") or {})
                    ),
                    result=RunResult.from_record(record),
                )
            )
        manifest.records.sort(key=lambda run: run.run_id)
        return manifest

    @classmethod
    def load(cls, path: str) -> "Manifest":
        """Load a manifest from a results file or a results directory.

        A directory is resolved to ``<dir>/sweep-results.json`` when present,
        otherwise to the merged per-run records under ``<dir>/runs/``.
        """
        if os.path.isdir(path):
            merged = os.path.join(path, RESULTS_FILENAME)
            if os.path.isfile(merged):
                return cls.load(merged)
            runs_dir = os.path.join(path, RUNS_DIRNAME)
            if not os.path.isdir(runs_dir):
                raise ManifestError(
                    f"{path} contains neither {RESULTS_FILENAME} nor {RUNS_DIRNAME}/"
                )
            raw: List[object] = []
            unreadable: List[str] = []
            for name in sorted(os.listdir(runs_dir)):
                if not name.endswith(".json"):
                    continue
                with open(os.path.join(runs_dir, name), "r", encoding="utf-8") as handle:
                    try:
                        raw.append(json.load(handle))
                    except json.JSONDecodeError as error:
                        unreadable.append(f"{name}: not valid JSON ({error})")
            manifest = cls._from_raw_records(raw, source=path)
            manifest.problems.extend(unreadable)
            return manifest
        try:
            with open(path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except OSError as error:
            raise ManifestError(f"cannot read {path}: {error}") from error
        except json.JSONDecodeError as error:
            raise ManifestError(f"{path} is not valid JSON: {error}") from error
        if not isinstance(document, dict):
            raise ManifestError(f"{path} does not contain a results object")
        return cls.from_document(document, source=path)

    # -- queries -----------------------------------------------------------------

    def workloads(self) -> List[str]:
        return sorted({run.workload for run in self.records})

    def results(self) -> List[RunResult]:
        """All records as typed :class:`RunResult` values (run-id order)."""
        return [run.to_result() for run in self.records]

    def find(self, workload: str, **params: object) -> List[RunRecord]:
        """All ok records of *workload* whose effective params match."""
        return [
            run
            for run in self.records
            if run.workload == workload and run.ok and run.matches(params)
        ]

    def first(self, workload: str, **params: object) -> Optional[RunRecord]:
        matches = self.find(workload, **params)
        return matches[0] if matches else None

    def counts(self) -> Tuple[int, int]:
        """``(ok, failed)`` record counts."""
        ok = sum(1 for run in self.records if run.ok)
        return ok, len(self.records) - ok
