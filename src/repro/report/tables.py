"""Markdown tables for Table 1, the Section 1/5 area model and ablations.

Each ``build_*`` function consumes a :class:`~repro.report.manifest.Manifest`
and returns ``(markdown_lines, charts)`` where ``charts`` is a list of
``(filename, svg_text)`` pairs — or ``None`` when the manifest holds no
matching runs, in which case the renderer skips the section.  Output is
deterministic: rows are sorted, numbers formatted with a fixed rule, and no
host- or time-dependent values appear.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.latency_model import PAPER_TABLE1
from repro.analysis.latency import SCENARIOS
from repro.report.manifest import Manifest, RunRecord
from repro.report.svg import format_value, grouped_bar_chart

Charts = List[Tuple[str, str]]
Section = Tuple[List[str], Charts]


def markdown_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> List[str]:
    """A GitHub-flavored Markdown table (first column left, rest right)."""
    lines = ["| " + " | ".join(str(header) for header in headers) + " |"]
    alignments = ["---"] + ["---:"] * (len(headers) - 1)
    lines.append("| " + " | ".join(alignments) + " |")
    for row in rows:
        lines.append("| " + " | ".join(format_value(cell) for cell in row) + " |")
    return lines


def dedupe_by(records: Sequence[RunRecord], *keys: str) -> Dict[tuple, RunRecord]:
    """Index records by the given effective-param values, first run_id wins.

    Collapses axes the section does not display (e.g. the smoke sweep's
    ``kernel`` axis, which by kernel equivalence cannot change the metrics).
    """
    indexed: Dict[tuple, RunRecord] = {}
    for record in records:  # records are sorted by run_id already
        key = tuple(record.effective_params.get(k) for k in keys)
        indexed.setdefault(key, record)
    return indexed


def ratio(measured: object, paper: object) -> str:
    if not isinstance(measured, (int, float)) or not isinstance(paper, (int, float)) \
            or not paper:
        return "-"
    return format_value(round(measured / paper, 2))


# ---------------------------------------------------------------------------
# Sections 1/5: the area model
# ---------------------------------------------------------------------------


def build_area_model(manifest: Manifest) -> Optional[Section]:
    """The silicon-area / peak-performance headline numbers."""
    from repro.report.expected import paper_value  # noqa: PLC0415

    record = manifest.first("area-model")
    if record is None:
        return None
    metrics = record.metrics
    rows = [
        ["processor fraction of 1993 chip", metrics.get("processor_fraction_1993"),
         paper_value("sec1/processor-fraction-1993")],
        ["processor fraction of 1996 chip", metrics.get("processor_fraction_1996"),
         paper_value("sec1/processor-fraction-1996")],
        ["32-node peak-performance ratio", metrics.get("peak_ratio"),
         paper_value("sec1/peak-ratio")],
        ["32-node area ratio", metrics.get("area_ratio"),
         paper_value("sec1/area-ratio")],
        ["peak-performance/area improvement",
         metrics.get("peak_per_area_improvement"),
         paper_value("sec1/peak-per-area")],
    ]
    lines = [
        "## Sections 1/5: silicon area and peak performance",
        "",
        "The paper's headline argument: integrating processors on the DRAM",
        "die multiplies peak performance per unit silicon.",
        "",
    ]
    lines.extend(markdown_table(["quantity", "model", "paper"], rows))
    return lines, []


# ---------------------------------------------------------------------------
# Table 1: access times
# ---------------------------------------------------------------------------


def build_table1(manifest: Manifest) -> Optional[Section]:
    """The twelve access-time measurements next to the paper's values."""
    record = manifest.first("table1-access-times")
    if record is None:
        return None
    metrics = record.metrics
    rows = []
    for scenario in SCENARIOS:
        read = metrics.get(f"{scenario}_read")
        write = metrics.get(f"{scenario}_write")
        paper = PAPER_TABLE1[scenario]
        rows.append([
            scenario.replace("_", " "),
            read, paper["read"], ratio(read, paper["read"]),
            write, paper["write"], ratio(write, paper["write"]),
        ])
    lines = [
        "## Table 1: local and remote access times (cycles)",
        "",
        "Absolute counts undercut the paper because this repository's",
        "handlers are shorter than the authors' unpublished ones; the",
        "relationships the paper draws from the table are asserted by the",
        "reproduction check below.",
        "",
    ]
    lines.extend(markdown_table(
        ["access type", "read", "paper read", "ratio", "write", "paper write", "ratio"],
        rows,
    ))
    categories = [scenario.replace("_", " ") for scenario in SCENARIOS]
    charts = [
        (
            "table1-read.svg",
            grouped_bar_chart(
                "Table 1: read latency, measured vs paper",
                categories,
                [
                    ("measured", [metrics.get(f"{s}_read") for s in SCENARIOS]),
                    ("paper", [PAPER_TABLE1[s]["read"] for s in SCENARIOS]),
                ],
                y_label="cycles",
                width=720,
            ),
        ),
        (
            "table1-write.svg",
            grouped_bar_chart(
                "Table 1: write latency, measured vs paper",
                categories,
                [
                    ("measured", [metrics.get(f"{s}_write") for s in SCENARIOS]),
                    ("paper", [PAPER_TABLE1[s]["write"] for s in SCENARIOS]),
                ],
                y_label="cycles",
                width=720,
            ),
        ),
    ]
    return lines, charts


# ---------------------------------------------------------------------------
# Ablations A1-A4
# ---------------------------------------------------------------------------


def _build_a1(manifest: Manifest) -> Optional[Section]:
    records = dedupe_by(manifest.find("vthread-interleave"), "num_threads")
    if not records:
        return None
    by_threads = {int(key[0]): record for key, record in records.items()}
    baseline = by_threads.get(1)
    rows = []
    for threads in sorted(by_threads):
        cycles = by_threads[threads].metric("cycles")
        speedup = "-"
        if baseline is not None:
            speedup = format_value(
                round(threads * baseline.metric("cycles") / cycles, 2)
            )
        rows.append([threads, cycles, speedup])
    lines = [
        "### A1: V-Thread interleaving as latency tolerance (Section 3.2)",
        "",
        "Pointer-chasing V-Threads sharing one cluster; work/time above 1.0",
        "means interleaving hid part of each thread's memory latency.",
        "",
    ]
    lines.extend(markdown_table(["V-Threads", "total cycles", "work/time vs 1 thread"], rows))
    charts: Charts = []
    if len(by_threads) >= 2:
        threads = sorted(by_threads)
        charts.append((
            "ablation-a1.svg",
            grouped_bar_chart(
                "A1: pointer-chasing V-Threads on one cluster",
                [f"{t} thread{'s' if t > 1 else ''}" for t in threads],
                [("total cycles", [by_threads[t].metric("cycles") for t in threads])],
                y_label="cycles",
            ),
        ))
    return lines, charts


def _build_a2(manifest: Manifest) -> Optional[Section]:
    records = dedupe_by(manifest.find("issue-policy"), "policy")
    if not records:
        return None
    by_policy = {str(key[0]): record for key, record in records.items()}
    policies = sorted(by_policy)
    rows = [[policy, by_policy[policy].metric("cycles")] for policy in policies]
    lines = [
        "### A2: thread-selection policy (Section 3.4)",
        "",
        "The MAP's zero-cost interleaving preserves single-thread",
        "performance; HEP/MASA-style barrel scheduling degrades it by the",
        "number of thread contexts.",
        "",
    ]
    lines.extend(markdown_table(["issue policy", "cycles"], rows))
    charts: Charts = []
    if len(policies) >= 2:
        charts.append((
            "ablation-a2.svg",
            grouped_bar_chart(
                "A2: one arithmetic loop under each issue policy",
                policies,
                [("cycles", [by_policy[policy].metric("cycles") for policy in policies])],
                y_label="cycles",
            ),
        ))
    return lines, charts


def _build_a3(manifest: Manifest) -> Optional[Section]:
    records = dedupe_by(manifest.find("remote-memory"), "mode", "repeats")
    if not records:
        return None
    rows = []
    for key in sorted(records, key=lambda k: (str(k[0]), k[1])):
        record = records[key]
        rows.append([
            str(key[0]),
            key[1],
            record.metric("cycles"),
            record.metrics.get("messages", "-"),
        ])
    lines = [
        "### A3: caching remote data in local DRAM (Sections 4.2/4.3)",
        "",
        "Repeated reads of one remote word: the coherent runtime pays one",
        "block fetch then runs at local speed; the non-cached runtime pays",
        "the full remote latency every time.",
        "",
    ]
    lines.extend(markdown_table(["runtime mode", "repeats", "cycles", "messages"], rows))
    charts: Charts = []
    modes = sorted({str(key[0]) for key in records})
    repeats = sorted({key[1] for key in records})
    if len(modes) >= 2:
        series = []
        for mode in modes:
            series.append((
                mode,
                [
                    records[(mode, repeat)].metric("cycles")
                    if (mode, repeat) in records else None
                    for repeat in repeats
                ],
            ))
        charts.append((
            "ablation-a3.svg",
            grouped_bar_chart(
                "A3: repeated remote reads, non-cached vs DRAM caching",
                [f"{repeat} repeats" for repeat in repeats],
                series,
                y_label="cycles",
            ),
        ))
    return lines, charts


def _build_a4(manifest: Manifest) -> Optional[Section]:
    floods = dedupe_by(manifest.find("flood"), "send_credits", "queue_words", "messages")
    many = dedupe_by(manifest.find("many-to-one-flood"), "queue_words")
    if not floods and not many:
        return None
    lines = [
        "### A4: return-to-sender throttling (Section 4.1)",
        "",
        "Floods complete correctly whatever the consumer queue size; an",
        "overflowed queue shows up as NACKs and retransmissions, not loss.",
        "",
    ]
    if floods:
        rows = []
        for key in sorted(floods):
            record = floods[key]
            rows.append([
                f"1-to-1 flood, {key[2]} msgs, {key[0]} credits, {key[1]}-word queue",
                record.metric("cycles"),
                record.metrics.get("nacks", "-"),
                record.metrics.get("retransmissions", "-"),
                record.metrics.get("max_queue_words", "-"),
            ])
        lines.extend(markdown_table(
            ["scenario", "cycles", "NACKs", "retransmits", "max queue words"], rows,
        ))
        lines.append("")
    if many:
        rows = []
        for key in sorted(many):
            record = many[key]
            rows.append([
                f"many-to-1 flood, {key[0]}-word consumer queue",
                record.metric("cycles"),
                record.metrics.get("nacks", "-"),
                record.metrics.get("retransmissions", "-"),
                record.metrics.get("max_queue_words", "-"),
            ])
        lines.extend(markdown_table(
            ["scenario", "cycles", "NACKs", "retransmits", "max queue words"], rows,
        ))
    charts: Charts = []
    if len(many) >= 2:
        keys = sorted(many)
        charts.append((
            "ablation-a4.svg",
            grouped_bar_chart(
                "A4: many-to-one flood vs consumer queue size",
                [f"{key[0]}-word queue" for key in keys],
                [
                    ("NACKs", [many[key].metrics.get("nacks", 0) for key in keys]),
                    ("retransmits",
                     [many[key].metrics.get("retransmissions", 0) for key in keys]),
                ],
            ),
        ))
    return lines, charts


def build_ablations(manifest: Manifest) -> Optional[Section]:
    """All four ablations, concatenated under one heading."""
    parts = [
        part
        for part in (
            _build_a1(manifest),
            _build_a2(manifest),
            _build_a3(manifest),
            _build_a4(manifest),
        )
        if part is not None
    ]
    if not parts:
        return None
    lines: List[str] = ["## Ablations A1-A4", ""]
    charts: Charts = []
    for part_lines, part_charts in parts:
        lines.extend(part_lines)
        lines.append("")
        charts.extend(part_charts)
    while lines and lines[-1] == "":
        lines.pop()
    return lines, charts
