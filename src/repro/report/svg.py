"""Deterministic SVG chart primitives for the paper-figure report.

Two chart forms cover everything the report needs: a grouped bar chart (the
magnitude comparisons of Figures 5-8, Table 1 and the ablations) and a
Gantt-style waterfall (the Figure 9 remote-access timelines).  The output is
byte-deterministic — fixed coordinate formatting, no timestamps, no
randomness — so rendered reports can be committed as goldens and diffed in
CI.

Colors follow a validated categorical palette (fixed slot order, CVD-safe
adjacent pairs on a light surface); text always wears ink tokens, never the
series color.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

#: Chart surface and ink tokens (light mode).
SURFACE = "#fcfcfb"
TEXT_PRIMARY = "#0b0b0b"
TEXT_SECONDARY = "#52514e"
GRID = "#e4e3e0"
AXIS = "#c9c8c4"

#: Categorical series slots, assigned in fixed order (never cycled).
SERIES_COLORS = ("#2a78d6", "#eb6834", "#1baf7a", "#eda100")

FONT = "font-family=\"Helvetica, Arial, sans-serif\""


def _num(value: float) -> str:
    """Fixed, locale-independent coordinate formatting ("12", "12.5")."""
    text = f"{value:.2f}"
    text = text.rstrip("0").rstrip(".")
    return text if text not in ("-0", "") else "0"


def format_value(value: object) -> str:
    """Human-readable value label ("12", "8.16", "0.9998")."""
    if isinstance(value, bool):
        return str(value).lower()
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return repr(round(value, 4))
    return str(value)


def escape(text: str) -> str:
    """Escape a string for use in SVG text/attribute content."""
    return (
        str(text)
        .replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
        .replace('"', "&quot;")
    )


def nice_ceiling(value: float) -> float:
    """The smallest 'nice' number (1/2/2.5/5 x 10^k) >= value."""
    if value <= 0:
        return 1.0
    exponent = math.floor(math.log10(value))
    fraction = value / (10 ** exponent)
    for nice in (1.0, 2.0, 2.5, 5.0, 10.0):
        if fraction <= nice + 1e-9:
            return nice * (10 ** exponent)
    return 10.0 ** (exponent + 1)


def _ticks(top: float, count: int = 4) -> List[float]:
    return [top * index / count for index in range(count + 1)]


def _text(
    x: float,
    y: float,
    content: str,
    *,
    size: int = 11,
    fill: str = TEXT_SECONDARY,
    anchor: str = "start",
    weight: Optional[str] = None,
) -> str:
    weight_attr = f" font-weight=\"{weight}\"" if weight else ""
    return (
        f'<text x="{_num(x)}" y="{_num(y)}" {FONT} font-size="{size}"'
        f' fill="{fill}" text-anchor="{anchor}"{weight_attr}>'
        f"{escape(content)}</text>"
    )


def _rounded_top_bar(x: float, y: float, width: float, height: float, fill: str) -> str:
    """A bar with a rounded data-end (top) and a flat baseline end."""
    radius = min(3.0, width / 2.0, height)
    if height <= 0:
        return ""
    path = (
        f"M{_num(x)},{_num(y + height)} "
        f"L{_num(x)},{_num(y + radius)} "
        f"Q{_num(x)},{_num(y)} {_num(x + radius)},{_num(y)} "
        f"L{_num(x + width - radius)},{_num(y)} "
        f"Q{_num(x + width)},{_num(y)} {_num(x + width)},{_num(y + radius)} "
        f"L{_num(x + width)},{_num(y + height)} Z"
    )
    return f'<path d="{path}" fill="{fill}"/>'


def grouped_bar_chart(
    title: str,
    categories: Sequence[str],
    series: Sequence[Tuple[str, Sequence[float]]],
    *,
    y_label: str = "",
    width: int = 640,
    height: int = 340,
    value_labels: bool = True,
) -> str:
    """A grouped bar chart: one group per category, one bar per series.

    ``series`` is an ordered list of ``(name, values)`` pairs; every value
    list must have one entry per category (``None`` gaps are skipped).
    """
    if not categories or not series:
        raise ValueError("grouped_bar_chart needs categories and series")
    if len(series) > len(SERIES_COLORS):
        raise ValueError(f"at most {len(SERIES_COLORS)} series are supported")
    for name, values in series:
        if len(values) != len(categories):
            raise ValueError(f"series {name!r} has {len(values)} values for "
                             f"{len(categories)} categories")

    margin_left, margin_right = 64, 20
    margin_top, margin_bottom = 52, 44
    plot_w = width - margin_left - margin_right
    plot_h = height - margin_top - margin_bottom

    peak = max(
        (value for _, values in series for value in values if value is not None),
        default=0.0,
    )
    top = nice_ceiling(float(peak) * 1.05) if peak else 1.0

    parts: List[str] = []
    parts.append(
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">'
    )
    parts.append(f'<rect width="{width}" height="{height}" fill="{SURFACE}"/>')
    parts.append(_text(margin_left, 22, title, size=13, fill=TEXT_PRIMARY, weight="600"))
    if y_label:
        parts.append(_text(margin_left, 38, y_label, size=10))

    # Recessive horizontal grid + y-axis tick labels.
    for tick in _ticks(top):
        y = margin_top + plot_h * (1 - tick / top)
        parts.append(
            f'<line x1="{_num(margin_left)}" y1="{_num(y)}" '
            f'x2="{_num(margin_left + plot_w)}" y2="{_num(y)}" '
            f'stroke="{GRID}" stroke-width="1"/>'
        )
        parts.append(_text(margin_left - 6, y + 3.5, format_value(tick), size=10,
                           anchor="end"))

    # Legend (only for >= 2 series), top-right, fixed slot order.
    if len(series) >= 2:
        legend_x = width - margin_right
        for index, (name, _) in reversed(list(enumerate(series))):
            label_w = 10 + 6.2 * len(name)
            legend_x -= label_w + 14
            color = SERIES_COLORS[index]
            parts.append(
                f'<rect x="{_num(legend_x)}" y="14" width="10" height="10" '
                f'rx="2" fill="{color}"/>'
            )
            parts.append(_text(legend_x + 14, 23, name, size=10))

    group_w = plot_w / len(categories)
    bar_gap = 2.0
    bar_w = min(
        40.0,
        (group_w * 0.72 - bar_gap * (len(series) - 1)) / len(series),
    )
    cluster_w = bar_w * len(series) + bar_gap * (len(series) - 1)

    for cat_index, category in enumerate(categories):
        group_x = margin_left + group_w * cat_index
        start_x = group_x + (group_w - cluster_w) / 2
        for series_index, (_, values) in enumerate(series):
            value = values[cat_index]
            if value is None:
                continue
            bar_h = plot_h * float(value) / top
            x = start_x + series_index * (bar_w + bar_gap)
            y = margin_top + plot_h - bar_h
            parts.append(_rounded_top_bar(x, y, bar_w, bar_h, SERIES_COLORS[series_index]))
            if value_labels:
                parts.append(_text(x + bar_w / 2, y - 4, format_value(value),
                                   size=9, anchor="middle"))
        parts.append(_text(group_x + group_w / 2, margin_top + plot_h + 16,
                           category, size=10, fill=TEXT_PRIMARY, anchor="middle"))

    # Baseline.
    baseline_y = margin_top + plot_h
    parts.append(
        f'<line x1="{_num(margin_left)}" y1="{_num(baseline_y)}" '
        f'x2="{_num(margin_left + plot_w)}" y2="{_num(baseline_y)}" '
        f'stroke="{AXIS}" stroke-width="1"/>'
    )
    parts.append("</svg>")
    return "\n".join(part for part in parts if part) + "\n"


def gantt_chart(
    title: str,
    events: Sequence[Tuple[int, int, str]],
    *,
    lane_names: Optional[Sequence[str]] = None,
    width: int = 760,
) -> str:
    """A Gantt-style waterfall: one row per milestone, bars span the cycles
    elapsed since the previous milestone, colored by the node (lane) the
    milestone occurs on.

    ``events`` is an ordered list of ``(cycle, lane, label)`` with cycles
    already normalised so the first milestone is cycle 0.
    """
    if not events:
        raise ValueError("gantt_chart needs at least one event")
    lanes = sorted({lane for _, lane, _ in events})
    if len(lanes) > len(SERIES_COLORS):
        raise ValueError(f"at most {len(SERIES_COLORS)} lanes are supported")
    lane_color = {lane: SERIES_COLORS[index] for index, lane in enumerate(lanes)}
    names = list(lane_names) if lane_names is not None else [
        f"node {lane}" for lane in lanes
    ]

    row_h = 24
    margin_left, margin_right = 16, 16
    margin_top, margin_bottom = 56, 36
    plot_w = width - margin_left - margin_right
    height = margin_top + row_h * len(events) + margin_bottom
    total = max(cycle for cycle, _, _ in events)
    top = float(nice_ceiling(total)) if total else 1.0

    parts: List[str] = []
    parts.append(
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">'
    )
    parts.append(f'<rect width="{width}" height="{height}" fill="{SURFACE}"/>')
    parts.append(_text(margin_left, 22, title, size=13, fill=TEXT_PRIMARY, weight="600"))

    # Legend: one swatch per lane.
    legend_x = width - margin_right
    for index in range(len(lanes) - 1, -1, -1):
        name = names[index]
        label_w = 10 + 6.2 * len(name)
        legend_x -= label_w + 14
        parts.append(
            f'<rect x="{_num(legend_x)}" y="14" width="10" height="10" rx="2" '
            f'fill="{lane_color[lanes[index]]}"/>'
        )
        parts.append(_text(legend_x + 14, 23, name, size=10))

    # Vertical cycle grid.
    plot_top = margin_top - 8
    plot_bottom = margin_top + row_h * len(events)
    for tick in _ticks(top):
        x = margin_left + plot_w * tick / top
        parts.append(
            f'<line x1="{_num(x)}" y1="{_num(plot_top)}" '
            f'x2="{_num(x)}" y2="{_num(plot_bottom)}" '
            f'stroke="{GRID}" stroke-width="1"/>'
        )
        parts.append(_text(x, plot_bottom + 16, format_value(tick), size=10,
                           anchor="middle"))
    parts.append(_text(margin_left + plot_w, plot_bottom + 30, "cycles",
                       size=10, anchor="end"))

    previous_cycle = 0
    for row, (cycle, lane, label) in enumerate(events):
        y = margin_top + row_h * row
        start = min(previous_cycle, cycle)
        span = max(cycle - start, 0)
        x0 = margin_left + plot_w * start / top
        bar_w = max(plot_w * span / top, 2.0)
        parts.append(
            f'<rect x="{_num(x0)}" y="{_num(y + 5)}" width="{_num(bar_w)}" '
            f'height="10" rx="2" fill="{lane_color[lane]}"/>'
        )
        caption = f"{cycle}: {label}"
        label_x = x0 + bar_w + 6
        # Long captions overflowing the right edge flip to the bar's left.
        approx_w = 5.6 * len(caption)
        anchor = "start"
        if label_x + approx_w > width - margin_right:
            label_x = x0 - 6
            anchor = "end"
        parts.append(_text(label_x, y + 14, caption, size=10, anchor=anchor))
        previous_cycle = cycle

    parts.append("</svg>")
    return "\n".join(part for part in parts if part) + "\n"
