"""The benchmark-trajectory file (``BENCH_kernel.json``): schema + appender.

``benchmarks/conftest.py`` appends one *session record* per benchmark
session — kernel throughput, snapshot overhead, whatever the benchmarks
chose to track — so the file is a trajectory across runs/commits rather
than a single overwritten measurement:

.. code-block:: json

    {"schema_version": 2,
     "sessions": [{"repro_version": "0.5.0", "python": "3.11.7",
                   "benchmarks": {"kernel_throughput": {"...": 1}}}]}

Schema-1 files (a single session document with a top-level ``benchmarks``
mapping) are converted to one session on the first append.  The module is
runnable for CI gating::

    python -m repro.report.trajectory BENCH_kernel.json --require-nonempty

exits nonzero when the file is missing, schema-invalid, or (with the flag)
records no benchmark at all.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
from typing import Dict, List, Optional

SCHEMA_VERSION = 2

#: Keep the trajectory bounded: the newest sessions win.
MAX_SESSIONS = 20

_SCALARS = (str, int, float, bool, type(None))


def validate_session(session: object) -> List[str]:
    """Problems with one session record (empty list when valid)."""
    if not isinstance(session, dict):
        return [f"session is {type(session).__name__}, not an object"]
    problems = []
    for name in ("repro_version", "python"):
        if not isinstance(session.get(name), str):
            problems.append(f"session field {name!r} missing or not a string")
    benchmarks = session.get("benchmarks")
    if not isinstance(benchmarks, dict):
        return problems + ["session has no 'benchmarks' mapping"]
    for name, metrics in benchmarks.items():
        if not isinstance(metrics, dict):
            problems.append(f"benchmark {name!r} is not a metrics mapping")
            continue
        for key, value in metrics.items():
            if not isinstance(value, _SCALARS):
                problems.append(
                    f"benchmark {name!r} metric {key!r} is not a JSON scalar"
                )
    return problems


def validate_trajectory(document: object) -> List[str]:
    """Problems with a trajectory document (empty list when valid)."""
    if not isinstance(document, dict):
        return [f"document is {type(document).__name__}, not an object"]
    problems = []
    if document.get("schema_version") != SCHEMA_VERSION:
        problems.append(
            f"schema_version is {document.get('schema_version')!r}, "
            f"expected {SCHEMA_VERSION}"
        )
    sessions = document.get("sessions")
    if not isinstance(sessions, list):
        return problems + ["document has no 'sessions' list"]
    for index, session in enumerate(sessions):
        problems.extend(
            f"sessions[{index}]: {problem}" for problem in validate_session(session)
        )
    return problems


def make_session(benchmarks: Dict[str, Dict[str, object]]) -> Dict[str, object]:
    """A session record for *benchmarks* (stamped with version + python)."""
    from repro import __version__  # noqa: PLC0415

    session = {
        "repro_version": __version__,
        "python": platform.python_version(),
        "benchmarks": {name: dict(metrics) for name, metrics in benchmarks.items()},
    }
    problems = validate_session(session)
    if problems:
        raise ValueError(f"constructed an invalid session: {problems}")
    return session


def _convert_schema1(document: Dict[str, object]) -> List[Dict[str, object]]:
    """A schema-1 file was one session document; keep it as history."""
    benchmarks = document.get("benchmarks")
    if not isinstance(benchmarks, dict) or not benchmarks:
        return []
    session = {
        "repro_version": str(document.get("repro_version", "unknown")),
        "python": str(document.get("python", "unknown")),
        "benchmarks": benchmarks,
    }
    return [] if validate_session(session) else [session]


def load_sessions(path: str) -> List[Dict[str, object]]:
    """The existing sessions of *path* (empty for missing/unusable files)."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, json.JSONDecodeError):
        return []
    if not isinstance(document, dict):
        return []
    if document.get("schema_version") == SCHEMA_VERSION:
        sessions = document.get("sessions")
        if isinstance(sessions, list):
            return [s for s in sessions if not validate_session(s)]
        return []
    return _convert_schema1(document)


def append_session(
    path: str,
    benchmarks: Dict[str, Dict[str, object]],
    max_sessions: int = MAX_SESSIONS,
) -> Dict[str, object]:
    """Append one session for *benchmarks* to *path*; returns the document.

    The file is created when missing and converted when schema-1; only the
    newest *max_sessions* sessions are kept.
    """
    sessions = load_sessions(path)
    sessions.append(make_session(benchmarks))
    document = {
        "schema_version": SCHEMA_VERSION,
        "sessions": sessions[-max_sessions:],
    }
    # Atomic replace: a crash mid-write must not truncate the accumulated
    # trajectory (load_sessions would silently restart it next session).
    staging = path + ".tmp"
    with open(staging, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(staging, path)
    return document


def check_file(path: str, require_nonempty: bool = False) -> List[str]:
    """Validate the trajectory file at *path*; problems as strings."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        return [f"cannot read {path}: {error}"]
    problems = validate_trajectory(document)
    if problems:
        return problems
    sessions = document["sessions"]
    if require_nonempty:
        if not sessions:
            problems.append(f"{path} records no benchmark sessions")
        elif not any(session.get("benchmarks") for session in sessions):
            problems.append(f"{path} sessions record no benchmarks")
    return problems


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point: validate a trajectory file (used by CI)."""

    parser = argparse.ArgumentParser(
        prog="python -m repro.report.trajectory",
        description="Validate a benchmark-trajectory file (BENCH_kernel.json).",
    )
    parser.add_argument("path", help="trajectory file to validate")
    parser.add_argument(
        "--require-nonempty",
        action="store_true",
        help="also fail when the file records no benchmarks at all",
    )
    args = parser.parse_args(argv)
    problems = check_file(args.path, require_nonempty=args.require_nonempty)
    for problem in problems:
        print(f"trajectory: {problem}", file=sys.stderr)
    if problems:
        return 1
    print(f"{args.path}: valid ({len(load_sessions(args.path))} sessions)")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess

    sys.exit(main())
