"""The paper's published values, with per-metric acceptance bands.

Every expectation names a measured quantity (a metric of one sweep record, a
ratio between two records that differ in one parameter, or a ratio between
two metrics of the same record), the paper's published value where one
exists, and an absolute ``[lo, hi]`` acceptance band for the measured value.

Bands are deliberately explicit rather than derived: where this
reproduction's re-written handlers are shorter than the authors' unpublished
ones (Table 1, Figure 9), the band admits the known offset while still
catching regressions; where the paper states an exact number (static
depths, the 128x peak ratio, the hardware-only access times) the band is a
point.  Where the paper makes a *qualitative* claim (barrel scheduling
degrades single-thread performance, caching beats repeated remote access,
small queues NACK but never lose messages), ``paper`` is ``None`` and the
band encodes the claim.  :mod:`repro.report.compare` evaluates the catalog
against a manifest; ``repro report --check`` exits nonzero iff any
evaluated expectation falls outside its band.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

#: The paper's published static instruction depths (Figure 5 / Section 3.1).
#: Single source for both the rendered Figure 5 table/chart and the fig5/*
#: expectations below.
PAPER_DEPTHS: Dict[Tuple[str, int], int] = {
    ("7pt", 1): 12,
    ("7pt", 2): 8,
    ("27pt", 1): 36,
    ("27pt", 4): 17,
}


@dataclass(frozen=True)
class Expectation:
    """One metric of one record: ``workload`` selected by ``params``."""

    key: str
    section: str
    workload: str
    metric: str
    lo: float
    hi: float
    paper: Optional[float] = None
    params: Dict[str, object] = field(default_factory=dict)
    note: str = ""


@dataclass(frozen=True)
class PairRatioExpectation:
    """``metric`` of the run where ``vary_key == num_value`` divided by the
    same metric of the run where ``vary_key == den_value``; the two runs must
    otherwise have identical effective parameters."""

    key: str
    section: str
    workload: str
    metric: str
    vary_key: str
    num_value: object
    den_value: object
    lo: float
    hi: float
    paper: Optional[float] = None
    params: Dict[str, object] = field(default_factory=dict)
    note: str = ""


@dataclass(frozen=True)
class RecordRatioExpectation:
    """``num_metric / den_metric`` within a single record."""

    key: str
    section: str
    workload: str
    num_metric: str
    den_metric: str
    lo: float
    hi: float
    paper: Optional[float] = None
    params: Dict[str, object] = field(default_factory=dict)
    note: str = ""


def _table1_expectations() -> Tuple[object, ...]:
    # (scenario, kind) -> (paper value, lo, hi).  The hardware-only rows are
    # exact; the handler-dominated rows carry the known offset of this
    # repository's shorter handlers (roughly 0.4-0.85x the paper's counts).
    bands = {
        ("local_cache_hit", "read"): (3, 3, 3),
        ("local_cache_hit", "write"): (2, 2, 2),
        ("local_cache_miss", "read"): (13, 13, 13),
        ("local_cache_miss", "write"): (19, 19, 19),
        ("local_ltlb_miss", "read"): (61, 31, 80),
        ("local_ltlb_miss", "write"): (67, 34, 87),
        ("remote_cache_hit", "read"): (138, 35, 166),
        ("remote_cache_hit", "write"): (74, 19, 89),
        ("remote_cache_miss", "read"): (154, 39, 185),
        ("remote_cache_miss", "write"): (90, 23, 108),
        ("remote_ltlb_miss", "read"): (202, 51, 243),
        ("remote_ltlb_miss", "write"): (138, 35, 166),
    }
    expectations = []
    for (scenario, kind), (paper, lo, hi) in bands.items():
        expectations.append(Expectation(
            key=f"table1/{scenario}/{kind}",
            section="Table 1",
            workload="table1-access-times",
            metric=f"{scenario}_{kind}",
            paper=paper,
            lo=lo,
            hi=hi,
        ))
    expectations.append(RecordRatioExpectation(
        key="table1/remote-hit-read-vs-local-ltlb-read",
        section="Table 1",
        workload="table1-access-times",
        num_metric="remote_cache_hit_read",
        den_metric="local_ltlb_miss_read",
        paper=round(138 / 61, 2),
        lo=1.0,
        hi=3.5,
        note="'a remote read that hits in the cache is only about twice as "
             "large as a local read that requires software intervention'",
    ))
    expectations.append(RecordRatioExpectation(
        key="table1/remote-write-cheaper-than-read",
        section="Table 1",
        workload="table1-access-times",
        num_metric="remote_cache_hit_write",
        den_metric="remote_cache_hit_read",
        paper=round(74 / 138, 2),
        lo=0.1,
        hi=0.99,
        note="remote writes complete without the reply-decode tail",
    ))
    return tuple(expectations)


def _catalog() -> Tuple[object, ...]:
    return _table1_expectations() + (
        # -- Sections 1/5: the area model -----------------------------------
        Expectation(
            key="sec1/peak-ratio",
            section="Sections 1/5",
            workload="area-model",
            metric="peak_ratio",
            paper=128,
            lo=128,
            hi=128,
            note="32 nodes x 4 clusters vs a 1-processor 1993 machine",
        ),
        Expectation(
            key="sec1/area-ratio",
            section="Sections 1/5",
            workload="area-model",
            metric="area_ratio",
            paper=1.5,
            lo=1.3,
            hi=1.7,
        ),
        Expectation(
            key="sec1/peak-per-area",
            section="Sections 1/5",
            workload="area-model",
            metric="peak_per_area_improvement",
            paper=85,
            lo=80,
            hi=90,
        ),
        Expectation(
            key="sec1/processor-fraction-1993",
            section="Sections 1/5",
            workload="area-model",
            metric="processor_fraction_1993",
            paper=0.11,
            lo=0.10,
            hi=0.125,
        ),
        Expectation(
            key="sec1/processor-fraction-1996",
            section="Sections 1/5",
            workload="area-model",
            metric="processor_fraction_1996",
            paper=0.04,
            lo=0.035,
            hi=0.045,
        ),
        # -- Figure 5: stencil static depths --------------------------------
        Expectation(
            key="fig5/static-depth-7pt-1T",
            section="Figure 5",
            workload="stencil",
            metric="static_depth",
            params={"kind": "7pt", "n_hthreads": 1},
            paper=PAPER_DEPTHS[("7pt", 1)],
            lo=PAPER_DEPTHS[("7pt", 1)],
            hi=PAPER_DEPTHS[("7pt", 1)],
        ),
        Expectation(
            key="fig5/static-depth-7pt-2T",
            section="Figure 5",
            workload="stencil",
            metric="static_depth",
            params={"kind": "7pt", "n_hthreads": 2},
            paper=PAPER_DEPTHS[("7pt", 2)],
            lo=PAPER_DEPTHS[("7pt", 2)],
            hi=PAPER_DEPTHS[("7pt", 2)],
        ),
        Expectation(
            key="fig5/static-depth-27pt-1T",
            section="Figure 5",
            workload="stencil",
            metric="static_depth",
            params={"kind": "27pt", "n_hthreads": 1},
            paper=PAPER_DEPTHS[("27pt", 1)],
            lo=25,
            hi=40,
            note="our 27-point schedule is slightly tighter than the paper's",
        ),
        PairRatioExpectation(
            key="fig5/27pt-depth-reduction",
            section="Figure 5",
            workload="stencil",
            metric="static_depth",
            vary_key="n_hthreads",
            num_value=1,
            den_value=4,
            params={"kind": "27pt"},
            paper=round(PAPER_DEPTHS[("27pt", 1)] / PAPER_DEPTHS[("27pt", 4)], 2),
            lo=1.7,
            hi=4.0,
            note="four H-Threads cut the 27-point critical path about in half",
        ),
        # -- Figure 6 -------------------------------------------------------
        Expectation(
            key="fig6/cc-sync-cycles-per-iteration",
            section="Figure 6",
            workload="cc-sync",
            metric="cycles_per_iteration",
            lo=5,
            hi=25,
            note="broadcast + consume + notify, far below a memory barrier",
        ),
        # -- Figure 7 -------------------------------------------------------
        Expectation(
            key="fig7/single-remote-store-latency",
            section="Figure 7",
            workload="remote-store-latency",
            metric="latency",
            lo=5,
            hi=74,
            note="direct SEND beats the Table 1 remote write (74 cycles)",
        ),
        # -- Figure 8 -------------------------------------------------------
        Expectation(
            key="fig8/nodes-used",
            section="Figure 8",
            workload="gtlb-mapping",
            metric="nodes_used",
            paper=8,
            lo=8,
            hi=8,
            note="a 64-page group spreads over the whole 2x2x2 sub-mesh",
        ),
        Expectation(
            key="fig8/gtlb-hit-rate",
            section="Figure 8",
            workload="gtlb-mapping",
            metric="gtlb_hit_rate",
            lo=0.98,
            hi=1.0,
        ),
        # -- Figure 9 -------------------------------------------------------
        Expectation(
            key="fig9/remote-read-total",
            section="Figure 9",
            workload="remote-access-timeline",
            metric="total_cycles",
            params={"kind": "read"},
            paper=138,
            lo=35,
            hi=166,
            note="same band as the Table 1 remote cache-hit read",
        ),
        Expectation(
            key="fig9/remote-write-total",
            section="Figure 9",
            workload="remote-access-timeline",
            metric="total_cycles",
            params={"kind": "write"},
            paper=74,
            lo=19,
            hi=89,
            note="same band as the Table 1 remote cache-hit write",
        ),
        # -- Ablations ------------------------------------------------------
        PairRatioExpectation(
            key="ablation-a1/4-threads-vs-1",
            section="Ablation A1",
            workload="vthread-interleave",
            metric="cycles",
            vary_key="num_threads",
            num_value=4,
            den_value=1,
            lo=0.5,
            hi=3.99,
            note="4x the work in < 4x the time: interleaving hides latency",
        ),
        PairRatioExpectation(
            key="ablation-a2/hep-vs-event-priority",
            section="Ablation A2",
            workload="issue-policy",
            metric="cycles",
            vary_key="policy",
            num_value="hep",
            den_value="event-priority",
            lo=2.0,
            hi=12.0,
            note="barrel scheduling degrades a single thread by about the "
                 "number of contexts",
        ),
        PairRatioExpectation(
            key="ablation-a3/coherent-vs-remote",
            section="Ablation A3",
            workload="remote-memory",
            metric="cycles",
            vary_key="mode",
            num_value="coherent",
            den_value="remote",
            lo=0.02,
            hi=0.8,
            note="one block fetch then local speed beats per-access remote "
                 "latency",
        ),
        Expectation(
            key="ablation-a4/small-queue-nacks",
            section="Ablation A4",
            workload="many-to-one-flood",
            metric="nacks",
            params={"queue_words": 6},
            lo=1,
            hi=10_000,
            note="an overflowed consumer queue NACKs instead of losing data",
        ),
        Expectation(
            key="ablation-a4/large-queue-no-nacks",
            section="Ablation A4",
            workload="many-to-one-flood",
            metric="nacks",
            params={"queue_words": 128},
            paper=0,
            lo=0,
            hi=0,
        ),
    )


#: The full expectation catalog, in paper order.
EXPECTATIONS: Tuple[object, ...] = _catalog()


def paper_value(key: str) -> Optional[float]:
    """The paper's published value for expectation *key* (None if absent).

    Section renderers pull their "paper" columns from here so a published
    number lives in exactly one place — this catalog.
    """
    for spec in EXPECTATIONS:
        if spec.key == key:
            return spec.paper
    raise KeyError(f"no expectation with key {key!r}")
