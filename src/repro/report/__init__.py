"""Paper-figure reporting: sweep manifests -> the paper's figures and tables.

The output side of the reproduction pipeline (Figures 5-9, Table 1, the
Sections 1/5 area model and ablations A1-A4): ``repro report`` consumes the
``sweep-results.json`` manifest a sweep produced and renders a
self-contained, byte-deterministic report — Markdown tables plus SVG charts
— and audits the measured values against the paper's published numbers.

* :mod:`repro.report.manifest` — load/index sweep results;
* :mod:`repro.report.svg` — deterministic grouped-bar and Gantt SVG charts;
* :mod:`repro.report.tables` / :mod:`repro.report.figures` — per-section
  builders (Table 1, area model, ablations / Figures 5-9);
* :mod:`repro.report.expected` — the paper's published values with
  per-metric acceptance bands;
* :mod:`repro.report.compare` — pass/fail evaluation and the delta table;
* :mod:`repro.report.render` — assemble and write ``report.md`` + charts;
* :mod:`repro.report.trajectory` — the benchmark-trajectory file
  (``BENCH_kernel.json``) schema and appender.
"""

from repro.report.compare import evaluate, failures
from repro.report.manifest import Manifest, ManifestError
from repro.report.render import ReportResult, render_report

__all__ = [
    "Manifest",
    "ManifestError",
    "ReportResult",
    "evaluate",
    "failures",
    "render_report",
]
