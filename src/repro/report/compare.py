"""Evaluate the expectation catalog against a manifest.

:func:`evaluate` resolves every expectation of
:mod:`repro.report.expected` against the manifest's records and classifies
it as ``ok`` (all matching measurements inside the band), ``fail`` (at least
one outside), or ``skipped`` (the manifest holds no matching run — a smoke
manifest legitimately covers only part of the catalog).
:func:`delta_table` renders the result as the pass/fail Markdown table the
report embeds, and ``repro report --check`` exits nonzero iff
:func:`evaluate` produced any ``fail`` row.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.report.expected import (
    EXPECTATIONS,
    Expectation,
    PairRatioExpectation,
    RecordRatioExpectation,
)
from repro.report.manifest import Manifest, RunRecord
from repro.report.svg import format_value
from repro.report.tables import markdown_table

OK, FAIL, SKIPPED = "ok", "FAIL", "skipped"


@dataclass
class CheckRow:
    """Outcome of one expectation."""

    key: str
    section: str
    paper: Optional[float]
    lo: float
    hi: float
    measured: List[float] = field(default_factory=list)
    status: str = SKIPPED
    note: str = ""


def _as_number(value: object) -> Optional[float]:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    return float(value)


def _measure_metric(manifest: Manifest, spec: Expectation) -> List[float]:
    values = []
    for record in manifest.find(spec.workload, **spec.params):
        value = _as_number(record.metrics.get(spec.metric))
        if value is not None:
            values.append(value)
    return values


def _pair_key(record: RunRecord, vary_key: str) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted(
        (key, repr(value))
        for key, value in record.effective_params.items()
        if key != vary_key
    ))


def _measure_pair_ratio(manifest: Manifest, spec: PairRatioExpectation) -> List[float]:
    numerators = {}
    for record in manifest.find(
        spec.workload, **{**spec.params, spec.vary_key: spec.num_value}
    ):
        numerators.setdefault(_pair_key(record, spec.vary_key), record)
    ratios = []
    for record in manifest.find(
        spec.workload, **{**spec.params, spec.vary_key: spec.den_value}
    ):
        partner = numerators.get(_pair_key(record, spec.vary_key))
        if partner is None:
            continue
        numerator = _as_number(partner.metrics.get(spec.metric))
        denominator = _as_number(record.metrics.get(spec.metric))
        if numerator is None or denominator is None or denominator == 0:
            continue
        ratios.append(numerator / denominator)
    return ratios


def _measure_record_ratio(
    manifest: Manifest, spec: RecordRatioExpectation
) -> List[float]:
    ratios = []
    for record in manifest.find(spec.workload, **spec.params):
        numerator = _as_number(record.metrics.get(spec.num_metric))
        denominator = _as_number(record.metrics.get(spec.den_metric))
        if numerator is None or denominator is None or denominator == 0:
            continue
        ratios.append(numerator / denominator)
    return ratios


def evaluate(manifest: Manifest) -> List[CheckRow]:
    """One :class:`CheckRow` per expectation, in catalog order."""
    rows = []
    for spec in EXPECTATIONS:
        if isinstance(spec, Expectation):
            measured = _measure_metric(manifest, spec)
        elif isinstance(spec, PairRatioExpectation):
            measured = _measure_pair_ratio(manifest, spec)
        elif isinstance(spec, RecordRatioExpectation):
            measured = _measure_record_ratio(manifest, spec)
        else:  # pragma: no cover - catalog invariant
            raise TypeError(f"unknown expectation type {type(spec).__name__}")
        row = CheckRow(
            key=spec.key,
            section=spec.section,
            paper=spec.paper,
            lo=spec.lo,
            hi=spec.hi,
            measured=[round(value, 4) for value in measured],
            note=spec.note,
        )
        if measured:
            inside = all(spec.lo <= value <= spec.hi for value in measured)
            row.status = OK if inside else FAIL
        rows.append(row)
    return rows


def failures(rows: List[CheckRow]) -> List[CheckRow]:
    return [row for row in rows if row.status == FAIL]


def summary_line(rows: List[CheckRow]) -> str:
    counts = {OK: 0, FAIL: 0, SKIPPED: 0}
    for row in rows:
        counts[row.status] += 1
    return (
        f"{counts[OK]} ok, {counts[FAIL]} failed, {counts[SKIPPED]} skipped "
        f"(no matching runs in this manifest)"
    )


def delta_table(rows: List[CheckRow]) -> List[str]:
    """The pass/fail delta table (Markdown lines)."""
    table_rows = []
    for row in rows:
        measured = ", ".join(format_value(value) for value in row.measured) or "-"
        band = f"[{format_value(row.lo)}, {format_value(row.hi)}]"
        paper = format_value(row.paper) if row.paper is not None else "-"
        table_rows.append([row.key, paper, measured, band, row.status])
    return markdown_table(
        ["expectation", "paper", "measured", "accepted band", "status"], table_rows,
    )
