"""Figures 5-9 of the paper, rendered from sweep records.

Each ``build_*`` function returns ``(markdown_lines, charts)`` or ``None``
when the manifest holds no matching runs (see :mod:`repro.report.tables` for
the shared conventions).  Figures 5-8 are grouped bar charts; Figure 9 is a
Gantt-style waterfall reconstructed from the milestone timeline the
``remote-access-timeline`` workload embeds in its metrics
(:mod:`repro.analysis.timeline`).
"""

from __future__ import annotations

import json
from typing import Optional

from repro.report.expected import PAPER_DEPTHS
from repro.report.manifest import Manifest
from repro.report.svg import gantt_chart, grouped_bar_chart
from repro.report.tables import Charts, Section, dedupe_by, markdown_table


def build_fig5(manifest: Manifest) -> Optional[Section]:
    """Stencil smoothing: static instruction depth and dynamic cycles."""
    records = dedupe_by(manifest.find("stencil"), "kind", "n_hthreads")
    if not records:
        return None
    # 7pt before 27pt (paper order), then by thread count.
    keys = sorted(records, key=lambda key: (len(str(key[0])), str(key[0]), key[1]))
    rows = []
    for kind, threads in keys:
        metrics = records[(kind, threads)].metrics
        rows.append([
            kind, threads,
            metrics.get("static_depth"),
            PAPER_DEPTHS.get((kind, threads), "-"),
            metrics.get("cycles"),
            metrics.get("workload_operations"),
        ])
    lines = [
        "## Figure 5: stencil smoothing on 1, 2 and 4 H-Threads",
        "",
        "Static instruction depth of the hand-scheduled 7-point and 27-point",
        "stencils, plus the dynamic cycle counts the paper leaves to 'the",
        "pipeline and memory latencies'.",
        "",
    ]
    lines.extend(markdown_table(
        ["stencil", "H-Threads", "static depth", "paper depth", "dynamic cycles", "ops"],
        rows,
    ))
    categories = [f"{kind} / {threads}T" for kind, threads in keys]
    charts: Charts = [
        (
            "fig5-static-depth.svg",
            grouped_bar_chart(
                "Figure 5: static instruction depth",
                categories,
                [
                    ("measured", [records[key].metrics.get("static_depth") for key in keys]),
                    ("paper", [PAPER_DEPTHS.get(key) for key in keys]),
                ],
                y_label="instructions on the critical path",
            ),
        ),
        (
            "fig5-dynamic-cycles.svg",
            grouped_bar_chart(
                "Figure 5: dynamic cycles on the simulator",
                categories,
                [("cycles", [records[key].metrics.get("cycles") for key in keys])],
                y_label="cycles",
            ),
        ),
    ]
    return lines, charts


def build_fig6(manifest: Manifest) -> Optional[Section]:
    """CC-register synchronisation: interlocked loop and 4-way barrier."""
    sync = dedupe_by(manifest.find("cc-sync"), "iterations")
    barrier = dedupe_by(manifest.find("cc-barrier"), "iterations", "clusters")
    if not sync and not barrier:
        return None
    rows = []
    labels = []
    values = []
    for key in sorted(sync):
        record = sync[key]
        rows.append(["2 H-Thread interlocked loop", key[0], record.metric("cycles"),
                     record.metrics.get("cycles_per_iteration")])
        labels.append(f"interlocked loop ({key[0]} iters)")
        values.append(record.metrics.get("cycles_per_iteration"))
    for key in sorted(barrier):
        record = barrier[key]
        rows.append([f"{key[1]} H-Thread CC barrier", key[0], record.metric("cycles"),
                     record.metrics.get("cycles_per_iteration")])
        labels.append(f"{key[1]}-way barrier ({key[0]} iters)")
        values.append(record.metrics.get("cycles_per_iteration"))
    lines = [
        "## Figure 6: CC-register loop synchronisation",
        "",
        "Broadcast + consume + notify through the global condition-code",
        "registers costs a handful of cycles per iteration — far less than a",
        "memory barrier — and extends to a 4-way barrier without combining",
        "trees.",
        "",
    ]
    lines.extend(markdown_table(
        ["kernel", "iterations", "cycles", "cycles/iteration"], rows,
    ))
    charts: Charts = [(
        "fig6-cc-sync.svg",
        grouped_bar_chart(
            "Figure 6: CC-register synchronisation cost",
            labels,
            [("cycles/iteration", values)],
        ),
    )]
    return lines, charts


def build_fig7(manifest: Manifest) -> Optional[Section]:
    """User-level message passing: latency, stream rate, ping-pong."""
    single = manifest.first("remote-store-latency")
    stream = dedupe_by(manifest.find("message-stream"), "count")
    pingpong = dedupe_by(manifest.find("ping-pong"), "rounds")
    if single is None and not stream and not pingpong:
        return None
    rows = []
    labels = []
    values = []
    if single is not None:
        rows.append(["SEND -> remote store complete (1-word body)",
                     single.metrics.get("latency")])
        labels.append("single store latency")
        values.append(single.metrics.get("latency"))
    for key in sorted(stream):
        record = stream[key]
        rows.append([f"pipelined message stream, {key[0]} messages (cycles/message)",
                     record.metrics.get("cycles_per_message")])
        labels.append(f"stream ({key[0]} msgs)")
        values.append(record.metrics.get("cycles_per_message"))
    for key in sorted(pingpong):
        record = pingpong[key]
        rows.append([f"user-level ping-pong, {key[0]} rounds (cycles/round trip)",
                     record.metrics.get("cycles_per_round_trip")])
        labels.append(f"ping-pong ({key[0]} rounds)")
        values.append(record.metrics.get("cycles_per_round_trip"))
    lines = [
        "## Figure 7: user-level message send/receive",
        "",
        "Direct SEND messaging skips the LTLB-miss handler, so a remote",
        "store lands in well under the Table 1 remote-write latency (74",
        "cycles in the paper).",
        "",
    ]
    lines.extend(markdown_table(["metric", "cycles"], rows))
    charts: Charts = [(
        "fig7-messaging.svg",
        grouped_bar_chart(
            "Figure 7: user-level message passing",
            labels,
            [("cycles", values)],
        ),
    )]
    return lines, charts


def build_fig8(manifest: Manifest) -> Optional[Section]:
    """GTLB page-group interleaving and translation hit rate."""
    records = dedupe_by(manifest.find("gtlb-mapping"), "pages_per_node")
    if not records:
        return None
    keys = sorted(records)
    rows = []
    for key in keys:
        metrics = records[key].metrics
        rows.append([
            key[0],
            metrics.get("nodes_used"),
            metrics.get("min_pages_per_node"),
            metrics.get("max_pages_per_node"),
            metrics.get("gtlb_hit_rate"),
        ])
    lines = [
        "## Figure 8: GTLB page-group mapping",
        "",
        "A single GTLB entry spreads a page group over a sub-mesh; block and",
        "cyclic interleavings keep the placement balanced while the",
        "translation stays cached.",
        "",
    ]
    lines.extend(markdown_table(
        ["pages/node", "nodes used", "min pages", "max pages", "GTLB hit rate"],
        rows,
    ))
    charts: Charts = [(
        "fig8-interleaving.svg",
        grouped_bar_chart(
            "Figure 8: pages per node across the interleaved region",
            [f"{key[0]} pages/node" for key in keys],
            [
                ("min pages", [records[key].metrics.get("min_pages_per_node")
                               for key in keys]),
                ("max pages", [records[key].metrics.get("max_pages_per_node")
                               for key in keys]),
            ],
        ),
    )]
    return lines, charts


def build_fig9(manifest: Manifest) -> Optional[Section]:
    """Remote read/write milestone timelines as Gantt waterfalls."""
    records = dedupe_by(manifest.find("remote-access-timeline"), "kind")
    if not records:
        return None
    lines = [
        "## Figure 9: remote access timelines",
        "",
        "The cycle at which each hardware and software milestone of a single",
        "remote access occurs on the requesting node and on the home node.",
        "",
    ]
    charts: Charts = []
    for key in sorted(records):
        kind = str(key[0])
        record = records[key]
        encoded = record.metrics.get("timeline")
        lines.append(f"### Remote {kind} ({record.metrics.get('total_cycles')} cycles)")
        lines.append("")
        if not isinstance(encoded, str):
            lines.append("Milestone detail was not recorded in this manifest "
                         "(re-run the sweep to embed it).")
            lines.append("")
            continue
        events = [(int(cycle), int(node), str(label))
                  for cycle, node, label in json.loads(encoded)]
        lines.extend(markdown_table(
            ["cycle", "node", "milestone"],
            [[cycle, node, label] for cycle, node, label in events],
        ))
        lines.append("")
        charts.append((
            f"fig9-remote-{kind}.svg",
            gantt_chart(
                f"Figure 9: remote {kind} milestones",
                events,
                lane_names=["node 0 (requesting)", "node 1 (home)"],
            ),
        ))
    while lines and lines[-1] == "":
        lines.pop()
    return lines, charts
