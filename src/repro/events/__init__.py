"""Hardware events and event queues.

Exceptions that occur outside the MAP cluster (LTLB misses, block-status
faults, memory-synchronizing faults) are handled *asynchronously*: the
hardware formats an event record identifying the faulting operation and its
operands and places it in a hardware event queue; a dedicated H-Thread of the
event V-Thread consumes the records through the register-mapped ``evq``
register (Section 3.3 of the paper).
"""

from repro.events.records import EventType, EventRecord
from repro.events.queue import HardwareQueue, EventQueue

__all__ = ["EventType", "EventRecord", "HardwareQueue", "EventQueue"]
