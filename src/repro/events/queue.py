"""Hardware queues.

Both the event system and the message system expose their contents to
software as *register-mapped word queues*: the handler H-Thread reads the
``evq`` or ``net`` register, which dequeues one 64-bit word, and the read
does not issue while the queue is empty (Sections 3.3 and 4.1).

:class:`HardwareQueue` models such a queue of words with a finite capacity.
:class:`EventQueue` is a thin wrapper that accepts whole
:class:`~repro.events.records.EventRecord` objects, keeps the structured
records for tracing, and serves their packed words to software.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from repro.events.records import EventRecord
from repro.snapshot.values import decode_value, encode_value
from repro.events.records import EVENT_RECORD_WORDS


class QueueOverflowError(Exception):
    """Raised when a push would exceed a queue's capacity and the caller did
    not check :meth:`HardwareQueue.can_accept` first."""


class QueueUnderflowError(QueueOverflowError):
    """Raised when popping from an empty queue (or popping a record that is
    only partially present).

    Subclasses :class:`QueueOverflowError` for backward compatibility:
    historical code raised the overflow error for both directions, so
    ``except QueueOverflowError`` continues to catch underflows too.
    """


class HardwareQueue:
    """A bounded FIFO of 64-bit words with occupancy statistics."""

    def __init__(self, capacity_words: int, name: str = "queue"):
        if capacity_words <= 0:
            raise ValueError("queue capacity must be positive")
        self.capacity_words = capacity_words
        self.name = name
        self._words: Deque[int] = deque()
        # Statistics
        self.total_pushed = 0
        self.total_popped = 0
        self.max_occupancy = 0
        self.overflow_rejections = 0

    # -- state -----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._words)

    @property
    def is_empty(self) -> bool:
        return not self._words

    @property
    def free_words(self) -> int:
        return self.capacity_words - len(self._words)

    def can_accept(self, num_words: int) -> bool:
        return self.free_words >= num_words

    # -- operations --------------------------------------------------------------

    def push_words(self, words: List[int]) -> bool:
        """Append *words* atomically; returns False (and rejects all of them)
        if the queue does not have room for the whole group."""
        if not self.can_accept(len(words)):
            self.overflow_rejections += 1
            return False
        self._words.extend(int(w) for w in words)
        self.total_pushed += len(words)
        self.max_occupancy = max(self.max_occupancy, len(self._words))
        return True

    def push_word(self, word: int) -> bool:
        return self.push_words([word])

    def pop_word(self) -> int:
        if not self._words:
            raise QueueUnderflowError(f"pop from empty queue {self.name!r}")
        self.total_popped += 1
        return self._words.popleft()

    def peek_word(self) -> Optional[int]:
        return self._words[0] if self._words else None

    def clear(self) -> None:
        self._words.clear()

    # -- snapshot (repro.snapshot state_dict contract) ---------------------------

    def state_dict(self) -> dict:
        return {
            "words": list(self._words),
            "total_pushed": self.total_pushed,
            "total_popped": self.total_popped,
            "max_occupancy": self.max_occupancy,
            "overflow_rejections": self.overflow_rejections,
        }

    def load_state_dict(self, state: dict) -> None:
        self._words = deque(state["words"])
        self.total_pushed = state["total_pushed"]
        self.total_popped = state["total_popped"]
        self.max_occupancy = state["max_occupancy"]
        self.overflow_rejections = state["overflow_rejections"]

    def __repr__(self) -> str:
        return f"HardwareQueue({self.name!r}, {len(self._words)}/{self.capacity_words} words)"


class EventQueue(HardwareQueue):
    """Hardware event queue (one per event class / handler H-Thread).

    Asynchronous event handling requires sufficient queue space to handle the
    case where every outstanding instruction generates an exception
    (Section 3.3); callers size the queue accordingly via the machine
    configuration.  A rejected push is reported to the caller, which models a
    machine check in hardware -- the simulator raises instead of silently
    dropping events, since a real M-Machine sizes the queue to make this
    impossible.
    """

    def __init__(self, capacity_records: int, name: str = "event-queue"):

        super().__init__(capacity_records * EVENT_RECORD_WORDS, name)
        self.capacity_records = capacity_records
        self.records_pushed = 0
        #: Structured copies of enqueued records, for tracing and native
        #: handlers.  Consumed in FIFO order by :meth:`pop_record`.
        self._records: Deque[EventRecord] = deque()
        # Number of words of the head record already consumed word-by-word.
        self._head_offset = 0

    def push_record(self, record: EventRecord) -> bool:
        ok = self.push_words(record.to_words())
        if ok:
            self.records_pushed += 1
            self._records.append(record)
        return ok

    def pop_record(self) -> EventRecord:
        """Pop a whole structured record (native-handler path).

        Removes both the structured record and its packed words, keeping the
        two views consistent.  May only be called on a record boundary.
        """

        if not self._records:
            raise QueueUnderflowError(f"pop_record from empty queue {self.name!r}")
        if self._head_offset != 0:
            raise QueueUnderflowError(
                f"pop_record from {self.name!r} while a record is partially consumed"
            )
        record = self._records.popleft()
        for _ in range(EVENT_RECORD_WORDS):
            super().pop_word()
        return record

    def pop_word(self) -> int:

        word = super().pop_word()
        # Keep the structured view consistent when software consumes an entire
        # record word-by-word.
        self._head_offset += 1
        if self._head_offset == EVENT_RECORD_WORDS:
            self._head_offset = 0
            if self._records:
                self._records.popleft()
        return word

    @property
    def pending_records(self) -> int:
        return len(self._records)

    # -- snapshot (repro.snapshot state_dict contract) ---------------------------

    def state_dict(self) -> dict:

        state = super().state_dict()
        state["records"] = [encode_value(record) for record in self._records]
        state["head_offset"] = self._head_offset
        state["records_pushed"] = self.records_pushed
        return state

    def load_state_dict(self, state: dict) -> None:

        super().load_state_dict(state)
        self._records = deque(decode_value(record) for record in state["records"])
        self._head_offset = state["head_offset"]
        self.records_pushed = state["records_pushed"]
