"""Event records.

An event record precisely identifies a faulting operation and its operands so
that a software handler can complete the operation asynchronously, without
rolling back or stalling the thread that issued it (Section 3.3).

The record is exposed to software as a fixed sequence of four 64-bit words
read from the register-mapped ``evq`` register:

====  =========================================================================
word  contents
====  =========================================================================
0     event type code (:class:`EventType`)
1     faulting virtual address
2     data word (store data; 0 for loads)
3     info word -- see :data:`INFO_REGSPEC_MASK` and the ``INFO_*`` shifts
====  =========================================================================

The info word packs the destination regspec of a faulting load (so the
handler can deliver the result directly into the destination register with
the privileged ``xregwr`` operation), an *is-store* flag, the sync-bit
pre/postcondition of the faulting operation and the issuing V-Thread slot.
The layout is part of the hardware/runtime contract; the assembly handlers in
:mod:`repro.runtime.asm_handlers` decode it with shift/mask immediates taken
from the constants below.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional


class EventType(enum.IntEnum):
    """Asynchronous event classes (one hardware queue class per handler)."""

    #: A local translation lookaside buffer miss (handled on cluster 1).
    LTLB_MISS = 1
    #: A block-status fault: the block's status bits forbid the access
    #: (handled on cluster 0).
    BLOCK_STATUS = 2
    #: A memory-synchronizing fault: the word's sync bit did not satisfy the
    #: operation's precondition (handled on cluster 0).
    SYNC_FAULT = 3
    #: Arrival of a priority-0 message (delivered to the cluster-2 queue).
    MESSAGE_P0 = 4
    #: Arrival of a priority-1 message (delivered to the cluster-3 queue).
    MESSAGE_P1 = 5
    #: Synchronous exception: protection violation (exception V-Thread).
    PROTECTION = 6
    #: Synchronous exception: arithmetic fault (exception V-Thread).
    ARITHMETIC = 7
    #: Synchronous exception: illegal or privileged operation in user mode.
    PRIVILEGE = 8


#: Number of words in an asynchronous event record as read from ``evq``.
EVENT_RECORD_WORDS = 4

# Layout of the info word (word 3 of the record).
INFO_REGSPEC_MASK = 0xFFFF
INFO_IS_STORE_SHIFT = 16
INFO_SYNC_PRE_SHIFT = 17       # 2 bits: 0=x, 1=full, 2=empty
INFO_SYNC_POST_SHIFT = 19      # 2 bits: 0=x, 1=full, 2=empty
INFO_VTHREAD_SHIFT = 21        # 4 bits
INFO_CLUSTER_SHIFT = 25        # 3 bits
INFO_IS_FP_SHIFT = 28          # 1 bit: destination register is floating point

_SYNC_CODE = {"x": 0, "f": 1, "e": 2}
_SYNC_NAME = {value: key for key, value in _SYNC_CODE.items()}


@dataclass
class EventRecord:
    """An asynchronous event record.

    The simulator keeps records as structured objects for convenience (traces
    and native handlers use them directly) but software only ever sees the
    packed word representation returned by :meth:`to_words`.
    """

    event_type: EventType
    address: int = 0
    data: int = 0
    regspec: int = 0
    is_store: bool = False
    sync_pre: str = "x"
    sync_post: str = "x"
    vthread: int = 0
    cluster: int = 0
    is_fp: bool = False
    #: Cycle at which the hardware enqueued the record (for traces/timelines).
    cycle: Optional[int] = None
    #: Free-form extra payload used by native handlers (never visible to
    #: assembly handlers).
    extra: dict = field(default_factory=dict)

    def info_word(self) -> int:
        return (
            (self.regspec & INFO_REGSPEC_MASK)
            | (int(self.is_store) << INFO_IS_STORE_SHIFT)
            | (_SYNC_CODE[self.sync_pre] << INFO_SYNC_PRE_SHIFT)
            | (_SYNC_CODE[self.sync_post] << INFO_SYNC_POST_SHIFT)
            | ((self.vthread & 0xF) << INFO_VTHREAD_SHIFT)
            | ((self.cluster & 0x7) << INFO_CLUSTER_SHIFT)
            | (int(self.is_fp) << INFO_IS_FP_SHIFT)
        )

    def to_words(self) -> List[int]:
        """Pack the record into the 4-word representation read via ``evq``."""
        return [int(self.event_type), self.address, self.data, self.info_word()]

    @classmethod
    def from_words(cls, words: List[int]) -> "EventRecord":
        """Rebuild a record from its packed representation (used in tests)."""
        if len(words) != EVENT_RECORD_WORDS:
            raise ValueError(f"expected {EVENT_RECORD_WORDS} words, got {len(words)}")
        type_word, address, data, info = words
        return cls(
            event_type=EventType(type_word),
            address=address,
            data=data,
            regspec=info & INFO_REGSPEC_MASK,
            is_store=bool((info >> INFO_IS_STORE_SHIFT) & 1),
            sync_pre=_SYNC_NAME[(info >> INFO_SYNC_PRE_SHIFT) & 0x3],
            sync_post=_SYNC_NAME[(info >> INFO_SYNC_POST_SHIFT) & 0x3],
            vthread=(info >> INFO_VTHREAD_SHIFT) & 0xF,
            cluster=(info >> INFO_CLUSTER_SHIFT) & 0x7,
            is_fp=bool((info >> INFO_IS_FP_SHIFT) & 1),
        )

    def __str__(self) -> str:
        kind = "store" if self.is_store else "load"
        return (
            f"EventRecord({self.event_type.name}, va={self.address:#x}, {kind}, "
            f"vt={self.vthread}, cl={self.cluster}, regspec={self.regspec:#x})"
        )
