"""Deterministic checkpoint/restore of complete machine state.

The subsystem has four layers:

* :mod:`repro.snapshot.values` -- a tagged JSON codec for every value the
  simulator can hold (guarded pointers, event records, in-flight messages,
  memory requests, register writes, assembled programs, ...);
* :mod:`repro.snapshot.format` -- the versioned, self-describing snapshot
  document (schema version + complete ``MachineConfig`` + machine state)
  and its atomic file I/O;
* :mod:`repro.snapshot.checkpoint` -- periodic ``--checkpoint-every``
  checkpointing and resume-on-restart for workload runs;
* :mod:`repro.snapshot.warmstart` -- fan one checkpointed post-warm-up
  state out to multiple measurement runs.

The state itself is captured through the uniform ``state_dict()`` /
``load_state_dict()`` contract implemented by every stateful component (see
:mod:`repro.core.component`); ``MMachine.save_snapshot`` /
``MMachine.from_snapshot`` are the top-level entry points, re-exported here
as :func:`save` / :func:`restore`.

Restore is bit-exact: running to cycle C, snapshotting, restoring in a fresh
process and running to completion produces the same final cycle count,
statistics and trace as the uninterrupted run, under both the ``event`` and
``naive`` kernels (``tests/integration/test_snapshot_equivalence.py``).
"""

from __future__ import annotations

from repro.snapshot.checkpoint import (
    CheckpointPolicy,
    SnapshotTaken,
    checkpoint_context,
)
from repro.snapshot.format import (
    ConfigMismatchError,
    SNAPSHOT_SCHEMA_VERSION,
    config_from_dict,
    config_to_dict,
    read_snapshot,
    write_snapshot,
)
from repro.snapshot.values import SnapshotError, decode_value, encode_value
from repro.snapshot.warmstart import fan_out, fan_out_parallel

__all__ = [
    "SNAPSHOT_SCHEMA_VERSION",
    "SnapshotError",
    "ConfigMismatchError",
    "SnapshotTaken",
    "CheckpointPolicy",
    "checkpoint_context",
    "config_to_dict",
    "config_from_dict",
    "encode_value",
    "decode_value",
    "read_snapshot",
    "write_snapshot",
    "fan_out",
    "fan_out_parallel",
    "save",
    "restore",
]


def save(machine, path: str) -> str:
    """Snapshot *machine* to *path* (``MMachine.save_snapshot``)."""
    return machine.save_snapshot(path)


def restore(source):
    """Rebuild a machine from a snapshot path or document
    (``MMachine.from_snapshot``)."""
    from repro.core.machine import MMachine  # noqa: PLC0415

    return MMachine.from_snapshot(source)
