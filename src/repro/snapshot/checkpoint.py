"""Periodic checkpointing and resume-on-restart for workload runs.

Workload factories build their machine, perform deterministic setup and run
it to completion inside one function call, so checkpointing cannot be bolted
on from the outside.  This module threads it *underneath* instead: while a
:class:`CheckpointPolicy` is active (see :func:`checkpoint_context`), every
:class:`~repro.core.machine.MMachine` that is constructed attaches a small
per-machine runtime which

* **saves** a snapshot of the machine every ``every`` simulated cycles
  (checked from the clock drivers, so both the event kernel and the naive
  loop checkpoint at exact cycle boundaries), and
* **resumes**: at the start of the machine's first ``run*`` call, if a
  checkpoint file for this machine already exists, its state is loaded
  (after verifying the configuration matches) and the run continues from
  the checkpointed cycle instead of from zero.  The factory's setup code has
  re-executed by then -- it is deterministic, so the restored state simply
  supersedes it.

Factories may build several machines (latency harnesses do); each machine
gets an ordinal in construction order and its own checkpoint file, which is
deterministic across the original and the resumed process.

``snapshot_at`` mode (used by ``repro snapshot``) saves one snapshot when
the clock first reaches the requested cycle and, when ``stop_after_snapshot``
is set, aborts the run by raising :class:`SnapshotTaken`.

Cost model: a save serialises the complete machine state.  With the default
in-memory trace sink that includes the full trace — newly recorded events
are encoded incrementally (the tracer caches encoded events between saves),
but writing the document is still proportional to total state size — so
pick ``every`` as a small multiple of how many cycles of progress you can
afford to lose, not smaller.  With a disk-backed trace
(``MachineConfig.trace_dir``, see ``docs/traces.md``) the snapshot carries
only the trace file path, chunk offsets and unflushed tail, so checkpoint
size stays bounded on long runs and a resumed run appends to the same
trace files.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import List, Optional, Tuple

from repro.snapshot.format import read_snapshot

#: The active policy; machines attach to it at construction time.
_ACTIVE: Optional["CheckpointPolicy"] = None


class SnapshotTaken(Exception):
    """Raised to abort a run after a requested one-shot snapshot was saved
    (``repro snapshot`` does not need the rest of the workload)."""

    def __init__(self, path: str, cycle: int):
        super().__init__(f"snapshot saved to {path} at cycle {cycle}")
        self.path = path
        self.cycle = cycle


class CheckpointPolicy:
    """What to checkpoint, where, and how often."""

    def __init__(
        self,
        directory: str,
        every: Optional[int] = None,
        snapshot_at: Optional[int] = None,
        stop_after_snapshot: bool = False,
        compress: bool = False,
    ):
        if every is not None and every <= 0:
            raise ValueError("checkpoint interval must be positive")
        self.directory = directory
        self.every = every
        self.snapshot_at = snapshot_at
        self.stop_after_snapshot = stop_after_snapshot
        self.compress = compress
        self._next_ordinal = 0
        self._snapshot_done = False
        #: ``(ordinal, cycle)`` log of saves, for tests and runner logging.
        self.saves: List[Tuple[int, int]] = []
        #: ``(ordinal, cycle)`` log of resumes.
        self.resumes: List[Tuple[int, int]] = []

    def path_for(self, ordinal: int) -> str:
        suffix = ".json.gz" if self.compress else ".json"
        return os.path.join(self.directory, f"machine-{ordinal}{suffix}")

    def attach(self, machine) -> "CheckpointRuntime":
        ordinal = self._next_ordinal
        self._next_ordinal += 1
        return CheckpointRuntime(self, machine, ordinal)


class CheckpointRuntime:
    """One machine's view of the active policy (created by ``attach``)."""

    def __init__(self, policy: CheckpointPolicy, machine, ordinal: int):
        self.policy = policy
        self.ordinal = ordinal
        self.path = policy.path_for(ordinal)
        self._next_due: Optional[int] = None
        self._resume_checked = False

    # -- resume ------------------------------------------------------------------

    def on_run_start(self, machine) -> None:
        """Called at the start of every public ``run*`` call; on the first
        one, load an existing checkpoint for this machine if there is one."""
        if self._resume_checked:
            return
        self._resume_checked = True
        if os.path.exists(self.path):
            document = read_snapshot(self.path)
            machine.restore_snapshot(document)
            self.policy.resumes.append((self.ordinal, machine.cycle))
        if self.policy.every is not None:
            self._next_due = machine.cycle + self.policy.every

    # -- periodic saves ----------------------------------------------------------

    def on_cycle(self, machine) -> None:
        """Called by the clock drivers after every cycle advance (including
        the event kernel's frozen-span jumps)."""
        cycle = machine.cycle
        policy = self.policy
        if (
            policy.snapshot_at is not None
            and not policy._snapshot_done
            and cycle >= policy.snapshot_at
        ):
            policy._snapshot_done = True
            machine.save_snapshot(self.path)
            policy.saves.append((self.ordinal, cycle))
            if policy.stop_after_snapshot:
                raise SnapshotTaken(self.path, cycle)
        if self._next_due is not None and cycle >= self._next_due:
            machine.save_snapshot(self.path)
            policy.saves.append((self.ordinal, cycle))
            self._next_due = cycle + policy.every


def active_policy() -> Optional[CheckpointPolicy]:
    return _ACTIVE


def attach_machine(machine) -> Optional[CheckpointRuntime]:
    """Called by ``MMachine.__init__``: attach the machine to the active
    policy, or return None when checkpointing is off (the common case)."""
    if _ACTIVE is None:
        return None
    return _ACTIVE.attach(machine)


@contextmanager
def checkpoint_context(
    directory: str,
    every: Optional[int] = None,
    snapshot_at: Optional[int] = None,
    stop_after_snapshot: bool = False,
    compress: bool = False,
):
    """Activate a :class:`CheckpointPolicy` for machines constructed inside
    the ``with`` block; yields the policy."""
    global _ACTIVE
    if _ACTIVE is not None:
        raise RuntimeError("a checkpoint policy is already active")
    policy = CheckpointPolicy(
        directory,
        every=every,
        snapshot_at=snapshot_at,
        stop_after_snapshot=stop_after_snapshot,
        compress=compress,
    )
    _ACTIVE = policy
    try:
        yield policy
    finally:
        _ACTIVE = None
