"""Tagged JSON encoding of simulator values.

A machine snapshot must capture every value the simulator can hold in a
register, a memory word, a queue, a switch transfer or an in-flight message.
Most of those are plain numbers, but the M-Machine also stores *tagged*
words (guarded pointers), structured hardware records (event records, memory
requests, messages, register writes) and references to assembled programs.

This module maps all of them onto plain JSON: scalars pass through, and
everything else becomes a dict carrying the reserved ``"__snap__"`` tag.
The encoding is self-describing and loss-free:

* ``encode_value(decode_value(x)) == x`` for every encoded document, and
* ``decode_value(encode_value(v))`` reconstructs an equal value, with
  :class:`~repro.isa.program.Program` objects re-assembled from their
  retained source (identical sources decode to the *same* object, which
  restores the sharing between an instruction cache and its thread
  contexts).

Aliasing between containers is not preserved: two references to the same
:class:`~repro.memory.requests.MemRequest` decode to two equal objects.  No
live simulator state holds the same mutable record in two places at once, so
this never changes behaviour.
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import Dict, List, Optional

#: Reserved key marking a tagged (non-plain-JSON) value.
TAG = "__snap__"


class SnapshotError(Exception):
    """Raised for malformed, unsupported or mismatched snapshot data."""


@lru_cache(maxsize=256)
def _assemble_cached(source: str, name: str):
    from repro.isa.assembler import assemble  # noqa: PLC0415

    return assemble(source, name=name)


def encode_value(value) -> object:
    """Encode one simulator value into a JSON-compatible structure."""
    # Exact-type fast path: the overwhelming majority of simulator values
    # (memory words, trace fields, queue contents) are plain scalars, and
    # ``type(x) is int`` excludes the IntEnum/bool subclasses that need the
    # slow path below.
    value_type = type(value)
    if value_type is int or value_type is str or value_type is bool:
        return value
    if value is None:
        return value
    if value_type is float:
        if math.isfinite(value):
            return value
        return {TAG: "float", "repr": repr(value)}
    if isinstance(value, (bool, str)):
        return value
    if isinstance(value, int):
        # Covers SECDED codewords and IntEnums alike; enums that must decode
        # back to their class are wrapped by their owning record's encoder.
        return _encode_int(value)
    if isinstance(value, float):
        if math.isfinite(value):
            return value
        return {TAG: "float", "repr": repr(value)}
    if isinstance(value, list):
        return [encode_value(item) for item in value]
    if isinstance(value, tuple):
        return {TAG: "tuple", "items": [encode_value(item) for item in value]}
    if isinstance(value, (set, frozenset)):
        return {TAG: "set", "items": sorted(encode_value(item) for item in value)}
    if isinstance(value, dict):
        if all(isinstance(key, str) for key in value) and TAG not in value:
            return {key: encode_value(item) for key, item in value.items()}
        return {
            TAG: "dict",
            "items": [[encode_value(key), encode_value(item)] for key, item in value.items()],
        }
    return _encode_object(value)


def _encode_int(value: int) -> object:
    import enum  # noqa: PLC0415

    if isinstance(value, enum.IntEnum):
        # BlockStatus (and any future IntEnum) round-trips through its class.
        from repro.memory.page_table import BlockStatus  # noqa: PLC0415

        if isinstance(value, BlockStatus):
            return {TAG: "blockstatus", "value": int(value)}
        return int(value)
    return value


def _encode_object(value) -> Dict[str, object]:
    from repro.cluster.cluster import RegWrite  # noqa: PLC0415
    from repro.events.records import EventRecord  # noqa: PLC0415
    from repro.isa.operations import LabelRef  # noqa: PLC0415
    from repro.isa.program import Program  # noqa: PLC0415
    from repro.isa.registers import RegisterRef  # noqa: PLC0415
    from repro.memory.guarded_pointer import GuardedPointer  # noqa: PLC0415
    from repro.memory.page_table import LptEntry  # noqa: PLC0415
    from repro.memory.requests import MemRequest, MemResponse  # noqa: PLC0415
    from repro.network.gtlb import GtlbEntry  # noqa: PLC0415
    from repro.network.message import Message  # noqa: PLC0415

    if isinstance(value, GuardedPointer):
        return {TAG: "gptr", "word": value.encode()}
    if isinstance(value, LabelRef):
        return {TAG: "label", "name": value.name}
    if isinstance(value, RegisterRef):
        return {
            TAG: "reg",
            "file": value.file.name,
            "index": value.index,
            "cluster": value.cluster,
            "name": value.name,
        }
    if isinstance(value, Program):
        return {TAG: "program", "name": value.name, "source": value.source}
    if isinstance(value, MemRequest):
        return {
            TAG: "memreq",
            "kind": value.kind.value,
            "address": value.address,
            "data": encode_value(value.data),
            "dest": encode_value(value.dest),
            "vthread": value.vthread,
            "cluster": value.cluster,
            "sync_pre": value.sync_pre,
            "sync_post": value.sync_post,
            "physical": value.physical,
            "is_fp": value.is_fp,
            "issue_cycle": value.issue_cycle,
            "req_id": value.req_id,
        }
    if isinstance(value, MemResponse):
        return {
            TAG: "memresp",
            "request": encode_value(value.request),
            "value": encode_value(value.value),
            "ready_cycle": value.ready_cycle,
            "faulted": value.faulted,
        }
    if isinstance(value, EventRecord):
        return {
            TAG: "event",
            "event_type": int(value.event_type),
            "address": value.address,
            "data": value.data,
            "regspec": value.regspec,
            "is_store": value.is_store,
            "sync_pre": value.sync_pre,
            "sync_post": value.sync_post,
            "vthread": value.vthread,
            "cluster": value.cluster,
            "is_fp": value.is_fp,
            "cycle": value.cycle,
            "extra": encode_value(value.extra),
        }
    if isinstance(value, Message):
        return {
            TAG: "msg",
            "kind": value.kind.value,
            "source_node": value.source_node,
            "dest_node": value.dest_node,
            "priority": value.priority,
            "dip": value.dip,
            "dest_address": value.dest_address,
            "body": [encode_value(item) for item in value.body],
            "send_cycle": value.send_cycle,
            "returned": encode_value(value.returned),
            "msg_id": value.msg_id,
        }
    if isinstance(value, RegWrite):
        return {
            TAG: "regwrite",
            "vthread": value.vthread,
            "ref": encode_value(value.ref),
            "value": encode_value(value.value),
            "clear_pending": value.clear_pending,
            "origin": value.origin,
        }
    if isinstance(value, LptEntry):
        return {
            TAG: "lpt",
            "virtual_page": value.virtual_page,
            "physical_frame": value.physical_frame,
            "writable": value.writable,
            "block_status": [int(status) for status in value.block_status],
        }
    if isinstance(value, GtlbEntry):
        return {
            TAG: "gtlb",
            "base_page": value.base_page,
            "page_group_length": value.page_group_length,
            "start_node": list(value.start_node),
            "extent": list(value.extent),
            "pages_per_node": value.pages_per_node,
            "page_size_words": value.page_size_words,
        }
    raise SnapshotError(f"cannot encode value of type {type(value).__name__}: {value!r}")


def decode_value(encoded) -> object:
    """Decode a structure produced by :func:`encode_value`."""
    if encoded is None or isinstance(encoded, (bool, int, float, str)):
        return encoded
    if isinstance(encoded, list):
        return [decode_value(item) for item in encoded]
    if isinstance(encoded, dict):
        if TAG not in encoded:
            return {key: decode_value(item) for key, item in encoded.items()}
        return _decode_tagged(encoded)
    raise SnapshotError(f"cannot decode value of type {type(encoded).__name__}")


def _decode_tagged(encoded: Dict[str, object]) -> object:
    from repro.cluster.cluster import RegWrite  # noqa: PLC0415
    from repro.events.records import EventRecord, EventType  # noqa: PLC0415
    from repro.isa.operations import LabelRef  # noqa: PLC0415
    from repro.isa.registers import RegFile, RegisterRef  # noqa: PLC0415
    from repro.memory.guarded_pointer import GuardedPointer  # noqa: PLC0415
    from repro.memory.page_table import BlockStatus, LptEntry  # noqa: PLC0415
    from repro.memory.requests import MemOpKind, MemRequest, MemResponse  # noqa: PLC0415
    from repro.network.gtlb import GtlbEntry  # noqa: PLC0415
    from repro.network.message import Message, MessageKind  # noqa: PLC0415

    tag = encoded[TAG]
    if tag == "float":
        return float(encoded["repr"])
    if tag == "tuple":
        return tuple(decode_value(item) for item in encoded["items"])
    if tag == "set":
        return {decode_value(item) for item in encoded["items"]}
    if tag == "dict":
        return {decode_value(key): decode_value(item) for key, item in encoded["items"]}
    if tag == "gptr":
        return GuardedPointer.decode(encoded["word"])
    if tag == "label":
        return LabelRef(encoded["name"])
    if tag == "blockstatus":
        return BlockStatus(encoded["value"])
    if tag == "reg":
        return RegisterRef(
            file=RegFile[encoded["file"]],
            index=encoded["index"],
            cluster=encoded["cluster"],
            name=encoded["name"],
        )
    if tag == "program":
        return _assemble_cached(encoded["source"], encoded["name"])
    if tag == "memreq":
        return MemRequest(
            kind=MemOpKind(encoded["kind"]),
            address=encoded["address"],
            data=decode_value(encoded["data"]),
            dest=decode_value(encoded["dest"]),
            vthread=encoded["vthread"],
            cluster=encoded["cluster"],
            sync_pre=encoded["sync_pre"],
            sync_post=encoded["sync_post"],
            physical=encoded["physical"],
            is_fp=encoded["is_fp"],
            issue_cycle=encoded["issue_cycle"],
            req_id=encoded["req_id"],
        )
    if tag == "memresp":
        return MemResponse(
            request=decode_value(encoded["request"]),
            value=decode_value(encoded["value"]),
            ready_cycle=encoded["ready_cycle"],
            faulted=encoded["faulted"],
        )
    if tag == "event":
        return EventRecord(
            event_type=EventType(encoded["event_type"]),
            address=encoded["address"],
            data=encoded["data"],
            regspec=encoded["regspec"],
            is_store=encoded["is_store"],
            sync_pre=encoded["sync_pre"],
            sync_post=encoded["sync_post"],
            vthread=encoded["vthread"],
            cluster=encoded["cluster"],
            is_fp=encoded["is_fp"],
            cycle=encoded["cycle"],
            extra=decode_value(encoded["extra"]),
        )
    if tag == "msg":
        return Message(
            kind=MessageKind(encoded["kind"]),
            source_node=encoded["source_node"],
            dest_node=encoded["dest_node"],
            priority=encoded["priority"],
            dip=encoded["dip"],
            dest_address=encoded["dest_address"],
            body=[decode_value(item) for item in encoded["body"]],
            send_cycle=encoded["send_cycle"],
            returned=decode_value(encoded["returned"]),
            msg_id=encoded["msg_id"],
        )
    if tag == "regwrite":
        return RegWrite(
            vthread=encoded["vthread"],
            ref=decode_value(encoded["ref"]),
            value=decode_value(encoded["value"]),
            clear_pending=encoded["clear_pending"],
            origin=encoded["origin"],
        )
    if tag == "lpt":
        return LptEntry(
            virtual_page=encoded["virtual_page"],
            physical_frame=encoded["physical_frame"],
            writable=encoded["writable"],
            block_status=[BlockStatus(status) for status in encoded["block_status"]],
        )
    if tag == "gtlb":
        return GtlbEntry(
            base_page=encoded["base_page"],
            page_group_length=encoded["page_group_length"],
            start_node=tuple(encoded["start_node"]),
            extent=tuple(encoded["extent"]),
            pages_per_node=encoded["pages_per_node"],
            page_size_words=encoded["page_size_words"],
        )
    raise SnapshotError(f"unknown snapshot value tag {tag!r}")


def encode_pairs(mapping) -> List[List[object]]:
    """Encode a mapping as an order-preserving list of ``[key, value]``
    pairs (dict iteration order is part of the simulator's determinism)."""
    return [[encode_value(key), encode_value(value)] for key, value in mapping.items()]


def decode_pairs(pairs) -> Dict[object, object]:
    return {decode_value(key): decode_value(value) for key, value in pairs}


def encode_counter(counter) -> List[List[object]]:
    """Encode a :class:`collections.Counter` preserving insertion order."""
    return encode_pairs(counter)


def decode_counter(pairs):
    from collections import Counter  # noqa: PLC0415

    counter: Counter = Counter()
    for key, value in pairs:
        counter[decode_value(key)] = value
    return counter


def encode_optional_set(value) -> Optional[List[object]]:
    if value is None:
        return None
    return sorted(encode_value(item) for item in value)


def decode_optional_set(encoded) -> Optional[set]:
    if encoded is None:
        return None
    return {decode_value(item) for item in encoded}
