"""Warm-start fan-out: one checkpointed post-warm-up state, many runs.

The standard sampling methodology for long simulations: pay the cold-start /
warm-up cost once, snapshot the warmed machine, then fan the snapshot out to
any number of measurement runs (locally or across worker processes -- the
snapshot file is self-contained, so any machine that can read it can run a
measurement leg).

The simulator is deterministic, so identical drives of the same snapshot
produce identical results; measurement legs differ by the *drive* they apply
(how far to run, what to measure), which is exactly how a sweep shards one
long timeline into restartable segments.
"""

from __future__ import annotations

import multiprocessing
import time
from typing import Callable, Dict, List, Optional

from repro.api.result import RunResult
from repro.snapshot.format import read_snapshot

#: Workload name stamped on warm-start measurement-leg results.
WARM_START_WORKLOAD = "warm-start"


def drive_result(
    machine,
    max_cycles: int = 1_000_000,
    workload: str = WARM_START_WORKLOAD,
    tags: Optional[Dict[str, str]] = None,
) -> RunResult:
    """Run the restored machine to user completion and wrap the measurement
    leg as a typed :class:`~repro.api.result.RunResult` whose provenance
    records the cycle it resumed from."""
    start_cycle = machine.cycle
    start_wall = time.perf_counter()
    machine.run_until_user_done(max_cycles=max_cycles)
    metrics: Dict[str, object] = dict(machine.stats().summary())
    metrics["cycles"] = machine.cycle
    metrics["measured_cycles"] = machine.cycle - start_cycle
    return RunResult.from_metrics(
        workload=workload,
        params={},
        metrics=metrics,
        wall_seconds=time.perf_counter() - start_wall,
        tags=tags,
        resumed_from_cycle=start_cycle,
    )


def default_drive(machine, max_cycles: int = 1_000_000) -> Dict[str, object]:
    """Run the restored machine to user completion and report the headline
    numbers (the measurement leg used by ``repro resume``).

    The legacy dict shape of :func:`drive_result` — the run itself goes
    through the typed path; the metrics carry the full ``MachineStats``
    summary plus ``measured_cycles``, so the summary block is rebuilt from
    them without touching the machine again.
    """
    result = drive_result(machine, max_cycles=max_cycles)
    summary = {
        key: value
        for key, value in result.metrics.items()
        if key != "measured_cycles"
    }
    return {
        "resumed_from_cycle": result.provenance.resumed_from_cycle,
        "cycles": result.metrics["cycles"],
        "measured_cycles": result.metrics["measured_cycles"],
        "summary": summary,
    }


def _restore(document):
    from repro.core.machine import MMachine  # noqa: PLC0415

    return MMachine.from_snapshot(document)


def fan_out(
    source,
    runs: int,
    drive: Optional[Callable] = None,
    max_cycles: int = 1_000_000,
) -> List[Dict[str, object]]:
    """Restore the snapshot *source* (path or document) *runs* times and
    apply *drive* (default :func:`default_drive`) to each restored machine.

    Every leg restores from the same document, so legs are independent: this
    is the in-process form of handing the snapshot file to *runs* workers.
    """
    if runs < 1:
        raise ValueError("fan-out needs at least one run")
    document = read_snapshot(source) if isinstance(source, str) else source
    results = []
    for _ in range(runs):
        machine = _restore(document)
        if drive is not None:
            results.append(drive(machine))
        else:
            results.append(default_drive(machine, max_cycles=max_cycles))
    return results


def _fan_out_worker(payload) -> Dict[str, object]:
    """Top-level (picklable) pool entry point: one measurement leg."""
    path, max_cycles = payload
    machine = _restore(read_snapshot(path))
    return default_drive(machine, max_cycles=max_cycles)


def fan_out_parallel(
    path: str, runs: int, jobs: int = 1, max_cycles: int = 1_000_000
) -> List[Dict[str, object]]:
    """Like :func:`fan_out` but over a worker-process pool (``jobs=1`` runs
    inline); only the default drive is supported, as drives must pickle."""
    if jobs <= 1:
        return fan_out(path, runs, max_cycles=max_cycles)
    payloads = [(path, max_cycles)] * runs
    with multiprocessing.Pool(processes=min(jobs, runs)) as pool:
        return pool.map(_fan_out_worker, payloads)
