"""The on-disk snapshot format.

A snapshot is one self-describing JSON document (gzip-compressed when the
path ends in ``.gz``)::

    {
      "format":         "repro-mmachine-snapshot",
      "schema_version": 1,
      "config":         { ... complete MachineConfig ... },
      "machine":        { ... state_dict of the whole machine ... }
    }

The embedded configuration makes the file free-standing: ``restore`` builds
a fresh machine from it and then loads the state, so no wiring (callbacks,
handler objects, switch topology) ever needs to be serialised.  Loading a
snapshot *into* an existing machine (the checkpoint-resume path) first
verifies that the machine's configuration equals the embedded one and
refuses with :class:`ConfigMismatchError` otherwise — resuming a run on a
differently-shaped machine would silently corrupt the simulation.
"""

from __future__ import annotations

import dataclasses
import gzip
import json
import os
from typing import Dict

from repro.core.config import (
    ClusterConfig,
    MachineConfig,
    MemoryConfig,
    NetworkConfig,
    NodeConfig,
    RuntimeConfig,
    SimConfig,
)
from repro.snapshot.values import SnapshotError

#: Format marker of a snapshot document.
FORMAT_NAME = "repro-mmachine-snapshot"
#: Version of the snapshot schema; bumped on any incompatible layout change.
SNAPSHOT_SCHEMA_VERSION = 1


class ConfigMismatchError(SnapshotError):
    """Raised when a snapshot is loaded into a machine whose configuration
    differs from the one the snapshot was taken with."""


_SECTIONS = {
    "cluster": ClusterConfig,
    "memory": MemoryConfig,
    "network": NetworkConfig,
    "node": NodeConfig,
    "runtime": RuntimeConfig,
    "sim": SimConfig,
}


def config_to_dict(config: MachineConfig) -> Dict[str, object]:
    """Serialise a complete :class:`MachineConfig` to plain JSON data."""
    document: Dict[str, object] = {}
    for section_name in _SECTIONS:
        section = dataclasses.asdict(getattr(config, section_name))
        for key, value in section.items():
            if isinstance(value, tuple):
                section[key] = list(value)
        document[section_name] = section
    document["trace_enabled"] = config.trace_enabled
    document["trace_dir"] = config.trace_dir
    document["trace_chunk_events"] = config.trace_chunk_events
    return document


def config_from_dict(document: Dict[str, object]) -> MachineConfig:
    """Rebuild a :class:`MachineConfig` from :func:`config_to_dict` output."""
    sections = {}
    for section_name, section_class in _SECTIONS.items():
        data = dict(document.get(section_name) or {})
        known = {field.name for field in dataclasses.fields(section_class)}
        unknown = set(data) - known
        if unknown:
            raise SnapshotError(
                f"snapshot config section {section_name!r} has unknown "
                f"fields: {sorted(unknown)} (schema mismatch?)"
            )
        if section_name == "network" and "mesh_shape" in data:
            data["mesh_shape"] = tuple(data["mesh_shape"])
        sections[section_name] = section_class(**data)
    trace_dir = document.get("trace_dir")
    config = MachineConfig(
        trace_enabled=bool(document.get("trace_enabled", True)),
        trace_dir=None if trace_dir is None else str(trace_dir),
        trace_chunk_events=int(document.get("trace_chunk_events", 4096)),
        **sections,
    )
    config.validate()
    return config


def check_config_matches(config: MachineConfig, document: Dict[str, object]) -> None:
    """Raise :class:`ConfigMismatchError` unless *config* equals the
    configuration embedded in a snapshot *document*."""
    ours = config_to_dict(config)
    theirs = document.get("config")
    if ours == theirs:
        return
    differences = []
    for section_name in list(_SECTIONS) + [
        "trace_enabled", "trace_dir", "trace_chunk_events"
    ]:
        if ours.get(section_name) != (theirs or {}).get(section_name):
            differences.append(section_name)
    raise ConfigMismatchError(
        "snapshot was taken on a differently-configured machine "
        f"(differing sections: {', '.join(differences) or 'document malformed'})"
    )


def make_document(config: MachineConfig, machine_state: Dict[str, object]) -> Dict[str, object]:
    return {
        "format": FORMAT_NAME,
        "schema_version": SNAPSHOT_SCHEMA_VERSION,
        "config": config_to_dict(config),
        "machine": machine_state,
    }


def validate_document(document: Dict[str, object]) -> None:
    """Structural sanity check of a loaded snapshot document."""
    if not isinstance(document, dict):
        raise SnapshotError("snapshot document must be a JSON object")
    if document.get("format") != FORMAT_NAME:
        raise SnapshotError(
            f"not a {FORMAT_NAME} document (format={document.get('format')!r})"
        )
    version = document.get("schema_version")
    if version != SNAPSHOT_SCHEMA_VERSION:
        raise SnapshotError(
            f"snapshot schema version {version!r} is not supported "
            f"(this build reads version {SNAPSHOT_SCHEMA_VERSION})"
        )
    for key in ("config", "machine"):
        if not isinstance(document.get(key), dict):
            raise SnapshotError(f"snapshot document is missing the {key!r} section")


def write_snapshot(document: Dict[str, object], path: str) -> str:
    """Write a snapshot document atomically (write-then-rename, so a killed
    process never leaves a truncated snapshot behind); returns *path*."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    payload = json.dumps(document, separators=(",", ":"), allow_nan=False)
    tmp_path = path + ".tmp"
    if path.endswith(".gz"):
        with gzip.open(tmp_path, "wt", encoding="utf-8") as handle:
            handle.write(payload)
    else:
        with open(tmp_path, "w", encoding="utf-8") as handle:
            handle.write(payload)
    os.replace(tmp_path, path)
    return path


def read_snapshot(path: str) -> Dict[str, object]:
    """Load and validate a snapshot document from *path*."""
    try:
        if path.endswith(".gz"):
            with gzip.open(path, "rt", encoding="utf-8") as handle:
                document = json.load(handle)
        else:
            with open(path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
    except (OSError, json.JSONDecodeError, EOFError) as error:
        raise SnapshotError(f"cannot read snapshot {path}: {error}") from error
    validate_document(document)
    return document
