"""The on-chip cache.

"The on-chip cache is organized as four word-interleaved 4KW (32KB) banks to
permit four consecutive word accesses to proceed in parallel.  The cache is
virtually addressed and tagged.  The cache banks are pipelined with a
three-cycle read latency, including switch traversal." (Section 2.)

Because the banks are *word*-interleaved, an eight-word cache block spans all
four banks (two words per bank).  The model therefore keeps a single logical
line store (set-associative over virtual line addresses) and exposes the bank
structure purely for port arbitration: word address ``a`` must use bank
``a % num_banks`` and each bank accepts one access per cycle, which is how the
paper gets four consecutive word accesses per cycle.

The cache is write-back / write-allocate.  Each line carries the physical
base address it was filled from (so write-backs and synchronisation-bit
updates need no reverse translation) and a copy of the per-word
synchronisation bits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple
from repro.snapshot.values import decode_value, encode_value


@dataclass
class CacheLine:
    """One cache line (block) of ``line_size`` words."""

    tag: int
    virtual_base: int
    physical_base: int
    data: List[object]
    sync_bits: List[int]
    valid: bool = True
    dirty: bool = False
    #: Whether stores may hit this line.  Set at fill time from the block
    #: status bits / page writability, so the block-status check of
    #: Section 4.3 is enforced on cache hits as well as misses.
    writable: bool = True
    #: LRU timestamp maintained by the cache.
    last_used: int = 0


@dataclass
class EvictedLine:
    """Information about a line evicted by a fill, for write-back."""

    virtual_base: int
    physical_base: int
    data: List[object]
    sync_bits: List[int]
    dirty: bool


class InterleavedCache:
    """A four-bank, word-interleaved, virtually addressed cache."""

    def __init__(
        self,
        num_banks: int = 4,
        bank_size_words: int = 4096,
        line_size_words: int = 8,
        associativity: int = 2,
        name: str = "cache",
    ):
        if line_size_words & (line_size_words - 1):
            raise ValueError("line size must be a power of two")
        total_words = num_banks * bank_size_words
        total_lines = total_words // line_size_words
        if total_lines % associativity:
            raise ValueError("cache geometry does not divide into whole sets")
        self.num_banks = num_banks
        self.bank_size_words = bank_size_words
        self.line_size_words = line_size_words
        self.associativity = associativity
        self.num_sets = total_lines // associativity
        self.name = name
        # sets[set_index] -> list of CacheLine
        self._sets: Dict[int, List[CacheLine]] = {}
        self._access_counter = 0
        # Statistics
        self.hits = 0
        self.misses = 0
        self.read_hits = 0
        self.read_misses = 0
        self.write_hits = 0
        self.write_misses = 0
        self.evictions = 0
        self.writebacks = 0

    # -- geometry ----------------------------------------------------------------

    @property
    def capacity_words(self) -> int:
        return self.num_banks * self.bank_size_words

    def bank_of(self, address: int) -> int:
        """Bank a word access must use (port arbitration)."""
        return address % self.num_banks

    def line_base(self, address: int) -> int:
        return address - (address % self.line_size_words)

    def _set_and_tag(self, address: int) -> Tuple[int, int]:
        line_number = address // self.line_size_words
        return line_number % self.num_sets, line_number // self.num_sets

    # -- lookup ------------------------------------------------------------------

    def _find(self, address: int) -> Optional[CacheLine]:
        set_index, tag = self._set_and_tag(address)
        for line in self._sets.get(set_index, []):
            if line.valid and line.tag == tag:
                return line
        return None

    def probe(self, address: int) -> Optional[CacheLine]:
        """Non-statistical lookup used by debug and coherence paths."""
        return self._find(address)

    def lookup(self, address: int, is_store: bool) -> Optional[CacheLine]:
        """Architectural lookup (updates hit/miss statistics and LRU)."""
        line = self._find(address)
        self._access_counter += 1
        if line is not None:
            line.last_used = self._access_counter
            self.hits += 1
            if is_store:
                self.write_hits += 1
            else:
                self.read_hits += 1
            return line
        self.misses += 1
        if is_store:
            self.write_misses += 1
        else:
            self.read_misses += 1
        return None

    # -- data access on a hit line -----------------------------------------------

    def read_word(self, line: CacheLine, address: int):
        return line.data[address - line.virtual_base]

    def write_word(self, line: CacheLine, address: int, value) -> None:
        line.data[address - line.virtual_base] = value
        line.dirty = True

    def sync_bit(self, line: CacheLine, address: int) -> int:
        return line.sync_bits[address - line.virtual_base]

    def set_sync_bit(self, line: CacheLine, address: int, value: int) -> None:
        line.sync_bits[address - line.virtual_base] = int(bool(value))
        line.dirty = True

    # -- fills and evictions -------------------------------------------------------

    def fill(
        self,
        virtual_base: int,
        physical_base: int,
        data: List[object],
        sync_bits: List[int],
        writable: bool = True,
    ) -> Optional[EvictedLine]:
        """Install a line; returns the victim (for write-back) if one was
        evicted dirty, or None."""
        if len(data) != self.line_size_words:
            raise ValueError(
                f"fill data must be {self.line_size_words} words, got {len(data)}"
            )
        if virtual_base % self.line_size_words:
            raise ValueError("fill address must be line aligned")
        set_index, tag = self._set_and_tag(virtual_base)
        ways = self._sets.setdefault(set_index, [])
        self._access_counter += 1

        # Re-fill of an already resident line replaces its contents.
        for line in ways:
            if line.valid and line.tag == tag:
                line.data = list(data)
                line.sync_bits = list(sync_bits)
                line.physical_base = physical_base
                line.dirty = False
                line.writable = writable
                line.last_used = self._access_counter
                return None

        evicted: Optional[EvictedLine] = None
        if len(ways) >= self.associativity:
            victim = min(ways, key=lambda entry: entry.last_used)
            ways.remove(victim)
            self.evictions += 1
            if victim.dirty:
                self.writebacks += 1
                evicted = EvictedLine(
                    virtual_base=victim.virtual_base,
                    physical_base=victim.physical_base,
                    data=list(victim.data),
                    sync_bits=list(victim.sync_bits),
                    dirty=True,
                )
        ways.append(
            CacheLine(
                tag=tag,
                virtual_base=virtual_base,
                physical_base=physical_base,
                data=list(data),
                sync_bits=list(sync_bits),
                writable=writable,
                last_used=self._access_counter,
            )
        )
        return evicted

    def invalidate(self, address: int) -> Optional[EvictedLine]:
        """Invalidate the line containing *address*; returns write-back info
        if the line was dirty (used by the software coherence layer)."""
        set_index, _ = self._set_and_tag(address)
        line = self._find(address)
        if line is None:
            return None
        self._sets[set_index].remove(line)
        if line.dirty:
            self.writebacks += 1
            return EvictedLine(
                virtual_base=line.virtual_base,
                physical_base=line.physical_base,
                data=list(line.data),
                sync_bits=list(line.sync_bits),
                dirty=True,
            )
        return None

    def flush(self) -> List[EvictedLine]:
        """Invalidate everything, returning dirty lines for write-back."""
        dirty = []
        for ways in self._sets.values():
            for line in ways:
                if line.dirty:
                    self.writebacks += 1
                    dirty.append(
                        EvictedLine(
                            virtual_base=line.virtual_base,
                            physical_base=line.physical_base,
                            data=list(line.data),
                            sync_bits=list(line.sync_bits),
                            dirty=True,
                        )
                    )
        self._sets.clear()
        return dirty

    # -- snapshot (repro.snapshot state_dict contract) -----------------------------

    def state_dict(self) -> dict:

        return {
            "sets": [
                [
                    set_index,
                    [
                        {
                            "tag": line.tag,
                            "virtual_base": line.virtual_base,
                            "physical_base": line.physical_base,
                            "data": [encode_value(word) for word in line.data],
                            "sync_bits": list(line.sync_bits),
                            "valid": line.valid,
                            "dirty": line.dirty,
                            "writable": line.writable,
                            "last_used": line.last_used,
                        }
                        for line in ways
                    ],
                ]
                for set_index, ways in self._sets.items()
            ],
            "access_counter": self._access_counter,
            "hits": self.hits,
            "misses": self.misses,
            "read_hits": self.read_hits,
            "read_misses": self.read_misses,
            "write_hits": self.write_hits,
            "write_misses": self.write_misses,
            "evictions": self.evictions,
            "writebacks": self.writebacks,
        }

    def load_state_dict(self, state: dict) -> None:

        self._sets = {
            set_index: [
                CacheLine(
                    tag=line["tag"],
                    virtual_base=line["virtual_base"],
                    physical_base=line["physical_base"],
                    data=[decode_value(word) for word in line["data"]],
                    sync_bits=list(line["sync_bits"]),
                    valid=line["valid"],
                    dirty=line["dirty"],
                    writable=line["writable"],
                    last_used=line["last_used"],
                )
                for line in ways
            ]
            for set_index, ways in state["sets"]
        }
        self._access_counter = state["access_counter"]
        self.hits = state["hits"]
        self.misses = state["misses"]
        self.read_hits = state["read_hits"]
        self.read_misses = state["read_misses"]
        self.write_hits = state["write_hits"]
        self.write_misses = state["write_misses"]
        self.evictions = state["evictions"]
        self.writebacks = state["writebacks"]

    # -- introspection ------------------------------------------------------------

    @property
    def resident_lines(self) -> int:
        return sum(len(ways) for ways in self._sets.values())

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __repr__(self) -> str:
        return (
            f"InterleavedCache({self.name!r}, {self.num_banks}x{self.bank_size_words}W, "
            f"{self.resident_lines} lines resident)"
        )
