"""The local page table (LPT) and block-status bits.

Paging manages relocation of data within the single global virtual address
space: each node keeps a *local page table* mapping the virtual pages it
currently holds to physical frames in its SDRAM.  Pages are 512 words = 64
eight-word cache blocks (Section 2).

"In addition to the virtual to physical mapping, each LTLB (and LPT) entry
contains 2 status bits for each cache block in the page.  These block status
bits are used to provide fine grained control over 8 word blocks, allowing
different blocks within the same mapped page to be in different states."
(Section 4.3.)  The four states are INVALID, READ-ONLY, READ/WRITE and DIRTY.

The LPT has two coupled representations:

* the structured :class:`LocalPageTable` used by the simulator, the loader and
  the native (Python) handlers, and
* a memory-resident image -- a direct-mapped table of 4-word entries -- that
  the *assembly* LTLB-miss handler of :mod:`repro.runtime.asm_handlers` reads
  with ordinary loads, exactly as the paper's software handler walks the LPT.

The structured table writes through to the memory image whenever it changes so
the two views never diverge.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional
from repro.snapshot.values import decode_value, encode_value

#: Words per page (Section 2: "Pages are 512 words (64 8-word cache blocks)").
PAGE_SIZE_WORDS = 512
#: Words per cache block / coherence block.
BLOCK_SIZE_WORDS = 8
#: Blocks per page.
BLOCKS_PER_PAGE = PAGE_SIZE_WORDS // BLOCK_SIZE_WORDS

#: Number of 64-bit words one packed LPT entry occupies in the memory image.
LPT_ENTRY_WORDS = 4


class BlockStatus(enum.IntEnum):
    """Block status states encoded by the two status bits (Section 4.3)."""

    INVALID = 0
    READ_ONLY = 1
    READ_WRITE = 2
    DIRTY = 3

    def allows_read(self) -> bool:
        return self is not BlockStatus.INVALID

    def allows_write(self) -> bool:
        return self in (BlockStatus.READ_WRITE, BlockStatus.DIRTY)


def page_of(address: int, page_size: int = PAGE_SIZE_WORDS) -> int:
    return address // page_size


def page_offset(address: int, page_size: int = PAGE_SIZE_WORDS) -> int:
    return address % page_size


def block_of(address: int) -> int:
    """Block index *within its page* of a word address."""
    return (address % PAGE_SIZE_WORDS) // BLOCK_SIZE_WORDS


def block_base(address: int) -> int:
    """Word address of the first word of the block containing *address*."""
    return address - (address % BLOCK_SIZE_WORDS)


@dataclass
class LptEntry:
    """One local page table entry."""

    virtual_page: int
    physical_frame: int
    writable: bool = True
    #: Per-block status; defaults to READ_WRITE for locally homed pages.
    block_status: List[BlockStatus] = field(
        default_factory=lambda: [BlockStatus.READ_WRITE] * BLOCKS_PER_PAGE
    )

    def status_of(self, address: int) -> BlockStatus:
        return self.block_status[block_of(address)]

    def set_status(self, address: int, status: BlockStatus) -> None:
        self.block_status[block_of(address)] = status

    def translate(self, address: int, page_size: int = PAGE_SIZE_WORDS) -> int:
        """Translate a virtual word address within this page to physical."""
        return self.physical_frame * page_size + page_offset(address, page_size)

    # -- packed (memory image) form --------------------------------------------

    def pack(self) -> List[int]:
        """Pack into the 4-word memory-image format.

        ====  ==================================================
        word  contents
        ====  ==================================================
        0     ``(virtual_page << 1) | valid``
        1     ``(physical_frame << 1) | writable``
        2     block-status bits for blocks 0..31 (2 bits each)
        3     block-status bits for blocks 32..63 (2 bits each)
        ====  ==================================================
        """
        status_low = 0
        status_high = 0
        for index, status in enumerate(self.block_status):
            if index < 32:
                status_low |= int(status) << (2 * index)
            else:
                status_high |= int(status) << (2 * (index - 32))
        return [
            (self.virtual_page << 1) | 1,
            (self.physical_frame << 1) | int(self.writable),
            status_low,
            status_high,
        ]

    @classmethod
    def unpack(cls, words: List[int]) -> Optional["LptEntry"]:
        if len(words) != LPT_ENTRY_WORDS:
            raise ValueError(f"an LPT entry is {LPT_ENTRY_WORDS} words, got {len(words)}")
        if not words[0] & 1:
            return None
        status = []
        for index in range(BLOCKS_PER_PAGE):
            source = words[2] if index < 32 else words[3]
            shift = 2 * (index % 32)
            status.append(BlockStatus((source >> shift) & 0x3))
        return cls(
            virtual_page=words[0] >> 1,
            physical_frame=words[1] >> 1,
            writable=bool(words[1] & 1),
            block_status=status,
        )


class LocalPageTable:
    """The software-managed local page table of one node.

    Parameters
    ----------
    num_entries:
        Number of slots of the direct-mapped memory image.  The structured
        table itself is unbounded; the image is what the assembly handler
        probes, so mappings used by assembly-handled benchmarks must not
        collide in the image (the loader checks this).
    writeback:
        Callback ``(slot_index, words)`` used to mirror changes into the
        node's memory image; installed by the node once the physical location
        of the LPT region is known.
    """

    def __init__(self, num_entries: int = 1024, page_size: int = PAGE_SIZE_WORDS):
        if num_entries & (num_entries - 1):
            raise ValueError("the LPT image is direct mapped; num_entries must be a power of two")
        self.num_entries = num_entries
        self.page_size = page_size
        self._entries: Dict[int, LptEntry] = {}
        self._writeback: Optional[Callable[[int, List[int]], None]] = None
        # Statistics
        self.lookups = 0
        self.misses = 0

    # -- wiring ------------------------------------------------------------------

    def attach_writeback(self, writeback: Callable[[int, List[int]], None]) -> None:
        """Install the memory-image mirror callback and (re)write all entries."""
        self._writeback = writeback
        for entry in self._entries.values():
            self._mirror(entry)

    def slot_of(self, virtual_page: int) -> int:
        """Slot of the direct-mapped memory image a page maps to."""
        return virtual_page & (self.num_entries - 1)

    def _mirror(self, entry: LptEntry) -> None:
        if self._writeback is not None:
            self._writeback(self.slot_of(entry.virtual_page), entry.pack())

    # -- operations --------------------------------------------------------------

    def insert(self, entry: LptEntry) -> None:
        slot = self.slot_of(entry.virtual_page)
        existing = self._entries.get(slot)
        if existing is not None and existing.virtual_page != entry.virtual_page:
            raise ValueError(
                f"LPT image collision: virtual pages {existing.virtual_page:#x} and "
                f"{entry.virtual_page:#x} both map to slot {slot}; "
                f"increase the LPT size or change the address-space layout"
            )
        self._entries[slot] = entry
        self._mirror(entry)

    def lookup(self, address: int) -> Optional[LptEntry]:
        self.lookups += 1
        page = page_of(address, self.page_size)
        entry = self._entries.get(self.slot_of(page))
        if entry is None or entry.virtual_page != page:
            self.misses += 1
            return None
        return entry

    def lookup_page(self, virtual_page: int) -> Optional[LptEntry]:
        entry = self._entries.get(self.slot_of(virtual_page))
        if entry is None or entry.virtual_page != virtual_page:
            return None
        return entry

    def remove(self, virtual_page: int) -> None:
        slot = self.slot_of(virtual_page)
        entry = self._entries.get(slot)
        if entry is not None and entry.virtual_page == virtual_page:
            del self._entries[slot]
            if self._writeback is not None:
                self._writeback(slot, [0] * LPT_ENTRY_WORDS)

    def set_block_status(self, address: int, status: BlockStatus) -> None:
        entry = self.lookup(address)
        if entry is None:
            raise KeyError(f"no LPT entry for address {address:#x}")
        entry.set_status(address, status)
        self._mirror(entry)

    def block_status(self, address: int) -> Optional[BlockStatus]:
        entry = self.lookup(address)
        if entry is None:
            return None
        return entry.status_of(address)

    # -- snapshot (repro.snapshot state_dict contract) ---------------------------

    def state_dict(self) -> dict:

        return {
            "entries": [[slot, encode_value(entry)]
                        for slot, entry in self._entries.items()],
            "lookups": self.lookups,
            "misses": self.misses,
        }

    def load_state_dict(self, state: dict) -> None:
        """Rebuild the structured table directly, *without* mirroring into
        the memory image: the SDRAM snapshot already contains the image, and
        mirroring here would perturb the SDRAM write statistics."""

        self._entries = {slot: decode_value(entry)
                         for slot, entry in state["entries"]}
        self.lookups = state["lookups"]
        self.misses = state["misses"]

    # -- introspection -----------------------------------------------------------

    def entries(self) -> List[LptEntry]:
        return list(self._entries.values())

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, virtual_page: int) -> bool:
        return self.lookup_page(virtual_page) is not None
