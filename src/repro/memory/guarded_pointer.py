"""Guarded pointers: the M-Machine's light-weight capability system.

"A light-weight capability system implements protection through guarded
pointers, while paging is used to manage the relocation of data in physical
memory within the virtual address space.  The segmentation and paging
mechanisms are independent so that protection may be preserved on
variable-size segments of memory." (Section 2, citing Carter, Keckler &
Dally, ASPLOS VI 1994.)

A guarded pointer is a 64-bit word (plus an architecturally invisible tag
marking it as a pointer) that encodes:

* a 4-bit **permission** field,
* a 6-bit **segment length exponent** ``L`` -- the pointer's segment is the
  naturally aligned block of ``2**L`` words containing its address,
* a **54-bit address**.

Pointer arithmetic (the ``lea`` operation) may move the address anywhere
inside the segment but faults if the result leaves the segment, so user code
can never manufacture a pointer to memory it was not granted.  Only
privileged code (``setptr``) can forge pointers.

In this simulator registers and memory words may hold either plain integers
or :class:`GuardedPointer` instances; the pointer tag is represented by the
Python type.  :func:`encode` / :func:`decode` give the packed 64-bit
representation for tests and for storing pointers in untagged containers.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


ADDRESS_BITS = 54
LENGTH_BITS = 6
PERMISSION_BITS = 4

_ADDRESS_MASK = (1 << ADDRESS_BITS) - 1
_LENGTH_SHIFT = ADDRESS_BITS
_PERMISSION_SHIFT = ADDRESS_BITS + LENGTH_BITS


class ProtectionError(Exception):
    """Raised when a guarded-pointer check fails.

    In the full machine this becomes a synchronous protection exception
    handled by the exception V-Thread; the memory system and functional
    units catch it and convert it into an exception record.
    """


class PointerPermission(enum.IntFlag):
    """Permission bits of a guarded pointer."""

    NONE = 0
    READ = 1
    WRITE = 2
    EXECUTE = 4
    #: "Enter" pointers may only be jumped to (protected subsystem entry).
    ENTER = 8

    @classmethod
    def rw(cls) -> "PointerPermission":
        return cls.READ | cls.WRITE

    @classmethod
    def rwx(cls) -> "PointerPermission":
        return cls.READ | cls.WRITE | cls.EXECUTE


@dataclass(frozen=True)
class GuardedPointer:
    """An unforgeable pointer to a power-of-two-sized, aligned segment."""

    address: int
    length_exp: int
    permission: PointerPermission

    def __post_init__(self) -> None:
        if not 0 <= self.address <= _ADDRESS_MASK:
            raise ValueError(f"address {self.address:#x} does not fit in {ADDRESS_BITS} bits")
        if not 0 <= self.length_exp < (1 << LENGTH_BITS):
            raise ValueError(f"length exponent {self.length_exp} does not fit in {LENGTH_BITS} bits")
        if int(self.permission) < 0 or int(self.permission) >= (1 << PERMISSION_BITS):
            raise ValueError(f"permission {self.permission!r} does not fit in {PERMISSION_BITS} bits")

    # -- segment geometry --------------------------------------------------------

    @property
    def segment_size(self) -> int:
        """Size of the segment in words."""
        return 1 << self.length_exp

    @property
    def segment_base(self) -> int:
        return self.address & ~(self.segment_size - 1)

    @property
    def segment_limit(self) -> int:
        """One past the last word of the segment."""
        return self.segment_base + self.segment_size

    def contains(self, address: int) -> bool:
        return self.segment_base <= address < self.segment_limit

    # -- operations --------------------------------------------------------------

    def add(self, offset: int) -> "GuardedPointer":
        """Pointer arithmetic with a segment bounds check (the ``lea`` op)."""
        new_address = self.address + offset
        if not self.contains(new_address):
            raise ProtectionError(
                f"pointer arithmetic leaves segment: {self.address:#x} + {offset} "
                f"outside [{self.segment_base:#x}, {self.segment_limit:#x})"
            )
        return GuardedPointer(new_address, self.length_exp, self.permission)

    def check(self, required: PointerPermission, address: int = None) -> None:
        """Check an access through this pointer.

        Raises :class:`ProtectionError` if the permission is missing or the
        accessed address lies outside the pointer's segment.
        """
        if required & ~self.permission:
            raise ProtectionError(
                f"permission {required!r} not granted by pointer (has {self.permission!r})"
            )
        target = self.address if address is None else address
        if not self.contains(target):
            raise ProtectionError(
                f"address {target:#x} outside segment "
                f"[{self.segment_base:#x}, {self.segment_limit:#x})"
            )

    # -- packing -----------------------------------------------------------------

    def encode(self) -> int:
        """Pack into the architectural 64-bit representation."""
        return (
            (int(self.permission) << _PERMISSION_SHIFT)
            | (self.length_exp << _LENGTH_SHIFT)
            | (self.address & _ADDRESS_MASK)
        )

    @classmethod
    def decode(cls, word: int) -> "GuardedPointer":
        """Unpack the architectural 64-bit representation."""
        return cls(
            address=word & _ADDRESS_MASK,
            length_exp=(word >> _LENGTH_SHIFT) & ((1 << LENGTH_BITS) - 1),
            permission=PointerPermission((word >> _PERMISSION_SHIFT) & ((1 << PERMISSION_BITS) - 1)),
        )

    def __int__(self) -> int:
        return self.address

    def __index__(self) -> int:
        return self.address

    def __str__(self) -> str:
        return (
            f"ptr({self.address:#x}, seg=2^{self.length_exp}, "
            f"perm={self.permission.name or int(self.permission)})"
        )


def make_pointer(base: int, size_words: int, permission: PointerPermission) -> GuardedPointer:
    """Create a pointer whose segment is the smallest aligned power-of-two
    block that both contains *base* and is at least *size_words* long.

    This is the helper privileged runtime code uses when handing segments to
    user threads.
    """
    if size_words <= 0:
        raise ValueError("segment size must be positive")
    length_exp = max(size_words - 1, 1).bit_length()
    if (1 << length_exp) < size_words:
        length_exp += 1
    # Grow the segment until the aligned block starting at the pointer's base
    # covers [base, base + size_words).
    while (base & ~((1 << length_exp) - 1)) + (1 << length_exp) < base + size_words:
        length_exp += 1
    return GuardedPointer(base, length_exp, permission)


def pointer_value(value) -> int:
    """Return the integer address of *value*, which may be a plain integer or
    a :class:`GuardedPointer`."""
    if isinstance(value, GuardedPointer):
        return value.address
    return int(value)
