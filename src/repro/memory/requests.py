"""Memory request/response records exchanged between clusters and the memory
system over the M-Switch and C-Switch."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.core.ids import IdSource
from repro.isa.registers import RegisterRef


class MemOpKind(enum.Enum):
    LOAD = "load"
    STORE = "store"


#: Fallback allocator for requests constructed outside a machine (tests,
#: ad-hoc scripts).  Machine-issued requests draw from the machine's own
#: :class:`~repro.core.ids.IdSource` (passed as an explicit ``req_id``), so
#: this source never influences simulation state.
_request_ids = IdSource()


@dataclass
class MemRequest:
    """A memory operation travelling from a cluster to the memory system."""

    kind: MemOpKind
    address: int
    #: Store data (None for loads).  May be a plain number or a GuardedPointer.
    data: Optional[object] = None
    #: Destination register of a load (None for stores).
    dest: Optional[RegisterRef] = None
    #: Issuing context, needed to deliver the response and to format event
    #: records for faults.
    vthread: int = 0
    cluster: int = 0
    #: Synchronisation-bit precondition/postcondition ('x', 'f' or 'e').
    sync_pre: str = "x"
    sync_post: str = "x"
    #: Physical (untranslated) access -- privileged, bypasses the cache.
    physical: bool = False
    #: True when the destination register is a floating-point register.
    is_fp: bool = False
    #: Cycle at which the operation issued from the cluster.
    issue_cycle: int = 0
    req_id: int = field(default_factory=_request_ids)

    @property
    def is_store(self) -> bool:
        return self.kind is MemOpKind.STORE

    def __str__(self) -> str:
        kind = "st" if self.is_store else "ld"
        phys = "p" if self.physical else ""
        return (
            f"{phys}{kind}@{self.address:#x} (vt{self.vthread}/cl{self.cluster}, "
            f"req {self.req_id})"
        )


@dataclass
class MemResponse:
    """A load result (or store acknowledgement) returning to a cluster."""

    request: MemRequest
    value: Optional[object] = None
    #: Cycle at which the response leaves the memory system (enters the
    #: C-Switch).
    ready_cycle: int = 0
    #: True when the operation faulted and was handed to the event system
    #: instead of completing (no register writeback occurs).
    faulted: bool = False

    @property
    def dest(self) -> Optional[RegisterRef]:
        return self.request.dest

    @property
    def cluster(self) -> int:
        return self.request.cluster

    @property
    def vthread(self) -> int:
        return self.request.vthread
