"""SECDED (single-error-correcting, double-error-detecting) code.

The MAP's SDRAM controller "performs SECDED error control" (Section 2).  This
module implements a standard (72, 64) Hamming code extended with an overall
parity bit: 64 data bits are protected by 7 Hamming check bits plus 1 parity
bit.  A single flipped bit in the 72-bit codeword is corrected; two flipped
bits are detected and reported.

The implementation uses the classic positional construction: data bits are
placed at the non-power-of-two positions 1..71 of the codeword, check bit
``i`` at position ``2**i`` covers every position whose index has bit ``i``
set, and position 0 holds the overall parity of the other 71 bits.
"""

from __future__ import annotations

from typing import Tuple

DATA_BITS = 64
#: Number of Hamming check bits required for 64 data bits (2^7 >= 64+7+1).
CHECK_BITS = 7
#: Total codeword length: data + Hamming checks + overall parity.
CODEWORD_BITS = DATA_BITS + CHECK_BITS + 1  # 72

_WORD_MASK = (1 << DATA_BITS) - 1

# Positions 1..71 that are not powers of two hold the data bits, LSB first.
_DATA_POSITIONS = [pos for pos in range(1, CODEWORD_BITS) if pos & (pos - 1) != 0][:DATA_BITS]
_CHECK_POSITIONS = [1 << i for i in range(CHECK_BITS)]


class SecdedError(Exception):
    """Raised when an uncorrectable (double-bit) error is detected."""


def _parity(value: int) -> int:
    return bin(value).count("1") & 1


def secded_encode(word: int) -> int:
    """Encode a 64-bit data word into a 72-bit SECDED codeword."""
    word &= _WORD_MASK
    codeword = 0
    for bit_index, position in enumerate(_DATA_POSITIONS):
        if (word >> bit_index) & 1:
            codeword |= 1 << position
    # Hamming check bits.
    for i, position in enumerate(_CHECK_POSITIONS):
        covered = 0
        for pos in range(1, CODEWORD_BITS):
            if pos & position and (codeword >> pos) & 1:
                covered ^= 1
        if covered:
            codeword |= 1 << position
    # Overall parity over positions 1..71 stored at position 0.
    if _parity(codeword >> 1):
        codeword |= 1
    return codeword


def secded_decode(codeword: int) -> Tuple[int, bool]:
    """Decode a 72-bit codeword.

    Returns ``(data_word, corrected)`` where *corrected* is True when a
    single-bit error was found and repaired.

    Raises
    ------
    SecdedError
        When a double-bit error is detected.
    """
    syndrome = 0
    for i, position in enumerate(_CHECK_POSITIONS):
        covered = 0
        for pos in range(1, CODEWORD_BITS):
            if pos & position and (codeword >> pos) & 1:
                covered ^= 1
        if covered:
            syndrome |= position
    overall = _parity(codeword)

    corrected = False
    if syndrome != 0 and overall == 1:
        # Single-bit error at position `syndrome`: correct it.
        codeword ^= 1 << syndrome
        corrected = True
    elif syndrome != 0 and overall == 0:
        # Non-zero syndrome but even overall parity: two bits flipped.
        raise SecdedError(f"uncorrectable double-bit error (syndrome {syndrome:#x})")
    elif syndrome == 0 and overall == 1:
        # The parity bit itself flipped; data is intact.
        codeword ^= 1
        corrected = True

    data = 0
    for bit_index, position in enumerate(_DATA_POSITIONS):
        if (codeword >> position) & 1:
            data |= 1 << bit_index
    return data, corrected


def inject_error(codeword: int, bit_positions) -> int:
    """Flip the given bit positions of a codeword (fault-injection helper)."""
    for position in bit_positions:
        if not 0 <= position < CODEWORD_BITS:
            raise ValueError(f"bit position {position} outside the {CODEWORD_BITS}-bit codeword")
        codeword ^= 1 << position
    return codeword
