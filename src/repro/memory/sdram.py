"""Node-local synchronous DRAM model.

Each M-Machine node contains 1 MW (8 MBytes) of synchronous DRAM.  The MAP's
external memory interface "exploits the pipeline and page mode of the
external memory and performs SECDED error control" (Section 2).

This model provides:

* word-granular backing storage (sparse -- only touched words are stored),
* per-word metadata: the synchronisation bit and the pointer tag,
* a page-mode timing model: accesses to the currently open row cost only the
  CAS latency, accesses to another row pay precharge+activate first,
* optional SECDED encoding of stored words with fault injection hooks for
  testing the correction/detection paths.

Physical addresses are word addresses in ``[0, size_words)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.memory.secded import SecdedError, secded_decode, secded_encode
from repro.snapshot.values import decode_value, encode_value


@dataclass
class SdramTiming:
    """Timing parameters of the SDRAM and its controller (in MAP cycles)."""

    #: Cycles to precharge the open row and activate a new one.
    row_activate: int = 4
    #: Column access latency once the row is open.
    cas: int = 2
    #: Cycles per additional word of a burst transfer.
    cycles_per_word: int = 1
    #: Number of words per DRAM row (page-mode reach).
    row_size_words: int = 1024


class Sdram:
    """Backing DRAM of one node."""

    def __init__(
        self,
        size_words: int = 1 << 20,
        timing: Optional[SdramTiming] = None,
        secded_enabled: bool = True,
        name: str = "sdram",
    ):
        self.size_words = size_words
        self.timing = timing or SdramTiming()
        self.secded_enabled = secded_enabled
        self.name = name
        # Sparse storage: address -> stored value.  When SECDED is enabled the
        # stored value for integer words is the 72-bit codeword; floats and
        # guarded pointers are stored as-is (they model tagged words that a
        # real implementation would serialise).
        self._words: Dict[int, object] = {}
        self._sync_bits: Dict[int, int] = {}
        self._pointer_tags: Dict[int, bool] = {}
        # Page-mode state.
        self._open_row: Optional[int] = None
        # Statistics.
        self.reads = 0
        self.writes = 0
        self.row_hits = 0
        self.row_misses = 0
        self.corrected_errors = 0
        self.detected_errors = 0

    # -- address helpers ---------------------------------------------------------

    def _check_address(self, address: int) -> None:
        if not 0 <= address < self.size_words:
            raise IndexError(
                f"{self.name}: physical word address {address:#x} outside "
                f"[0, {self.size_words:#x})"
            )

    def _row_of(self, address: int) -> int:
        return address // self.timing.row_size_words

    # -- timing ------------------------------------------------------------------

    def access_latency(self, address: int, num_words: int = 1) -> int:
        """Latency in cycles of a burst access starting at *address*.

        Also updates the open-row state, so successive calls model the page
        mode of the controller.
        """
        self._check_address(address)
        row = self._row_of(address)
        if row == self._open_row:
            self.row_hits += 1
            latency = self.timing.cas
        else:
            self.row_misses += 1
            latency = self.timing.row_activate + self.timing.cas
            self._open_row = row
        latency += self.timing.cycles_per_word * max(num_words - 1, 0)
        return latency

    # -- data --------------------------------------------------------------------

    def write_word(self, address: int, value, sync_bit: Optional[int] = None) -> None:
        self._check_address(address)
        self.writes += 1
        if self.secded_enabled and isinstance(value, int) and not isinstance(value, bool):
            self._words[address] = secded_encode(value)
            self._pointer_tags[address] = False
        else:
            self._words[address] = value
            self._pointer_tags[address] = not isinstance(value, (int, float))
        if sync_bit is not None:
            self._sync_bits[address] = int(bool(sync_bit))

    def read_word(self, address: int):
        self._check_address(address)
        self.reads += 1
        stored = self._words.get(address, 0 if not self.secded_enabled else secded_encode(0))
        if self.secded_enabled and isinstance(stored, int):
            try:
                value, corrected = secded_decode(stored)
            except SecdedError:
                # Double-bit (uncorrectable) error: account it before
                # propagating so callers can report detected-vs-corrected.
                self.detected_errors += 1
                raise
            if corrected:
                self.corrected_errors += 1
                # Scrub: rewrite the corrected word.
                self._words[address] = secded_encode(value)
            return value
        return stored

    def read_block(self, address: int, num_words: int) -> List:
        return [self.read_word(address + i) for i in range(num_words)]

    def write_block(self, address: int, values: Iterable) -> None:
        for offset, value in enumerate(values):
            self.write_word(address + offset, value)

    # -- metadata ----------------------------------------------------------------

    def sync_bit(self, address: int) -> int:
        self._check_address(address)
        return self._sync_bits.get(address, 0)

    def set_sync_bit(self, address: int, value: int) -> None:
        self._check_address(address)
        self._sync_bits[address] = int(bool(value))

    def pointer_tag(self, address: int) -> bool:
        return self._pointer_tags.get(address, False)

    # -- fault injection ---------------------------------------------------------

    def inject_bit_error(self, address: int, bit_positions: Iterable[int]) -> None:
        """Flip bits of the stored codeword at *address* (requires SECDED)."""
        if not self.secded_enabled:
            raise RuntimeError("bit-error injection requires SECDED-encoded storage")
        self._check_address(address)
        stored = self._words.get(address, secded_encode(0))
        if not isinstance(stored, int):
            raise RuntimeError("cannot inject bit errors into tagged (non-integer) words")
        for position in bit_positions:
            stored ^= 1 << position
        self._words[address] = stored

    # -- snapshot (repro.snapshot state_dict contract) ---------------------------

    def state_dict(self) -> dict:

        return {
            # Sparse contents: SECDED codewords are stored verbatim, tagged
            # words (floats, guarded pointers) through the value codec.
            "words": [[address, encode_value(value)]
                      for address, value in self._words.items()],
            "sync_bits": [[address, bit] for address, bit in self._sync_bits.items()],
            "pointer_tags": [[address, tag] for address, tag in self._pointer_tags.items()],
            "open_row": self._open_row,
            "reads": self.reads,
            "writes": self.writes,
            "row_hits": self.row_hits,
            "row_misses": self.row_misses,
            "corrected_errors": self.corrected_errors,
            "detected_errors": self.detected_errors,
        }

    def load_state_dict(self, state: dict) -> None:

        self._words = {address: decode_value(value) for address, value in state["words"]}
        self._sync_bits = {address: bit for address, bit in state["sync_bits"]}
        self._pointer_tags = {address: tag for address, tag in state["pointer_tags"]}
        self._open_row = state["open_row"]
        self.reads = state["reads"]
        self.writes = state["writes"]
        self.row_hits = state["row_hits"]
        self.row_misses = state["row_misses"]
        self.corrected_errors = state["corrected_errors"]
        # .get(): snapshots written before the counter existed load fine.
        self.detected_errors = state.get("detected_errors", 0)

    # -- introspection -----------------------------------------------------------

    @property
    def words_in_use(self) -> int:
        return len(self._words)

    def __repr__(self) -> str:
        return f"Sdram({self.name!r}, {self.size_words} words, {self.words_in_use} in use)"
