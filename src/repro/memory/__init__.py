"""The MAP node memory system.

Section 2 of the paper describes the memory system of a MAP node:

* a 32 KB on-chip cache organised as four word-interleaved 4 KW banks,
  virtually addressed and tagged, with a three-cycle read latency including
  switch traversal (:mod:`repro.memory.cache`);
* an external memory interface with an SDRAM controller that exploits page
  mode and performs SECDED error control (:mod:`repro.memory.sdram`,
  :mod:`repro.memory.secded`);
* a local translation lookaside buffer (LTLB) caching local page table (LPT)
  entries; pages are 512 words = 64 eight-word blocks
  (:mod:`repro.memory.ltlb`, :mod:`repro.memory.page_table`);
* a synchronization bit associated with each word of memory, used by the
  synchronising load/store operations;
* two block-status bits per eight-word block used by the software DRAM
  caching / coherence layer (Section 4.3);
* protection by guarded pointers -- a light-weight capability system
  (:mod:`repro.memory.guarded_pointer`).

:mod:`repro.memory.memory_system` composes these pieces into the per-node
:class:`~repro.memory.memory_system.MemorySystem` that clusters talk to over
the M-Switch.
"""

from repro.memory.secded import secded_encode, secded_decode, SecdedError
from repro.memory.guarded_pointer import GuardedPointer, PointerPermission, ProtectionError
from repro.memory.sdram import Sdram
from repro.memory.page_table import BlockStatus, LptEntry, LocalPageTable, PAGE_SIZE_WORDS, BLOCK_SIZE_WORDS
from repro.memory.ltlb import Ltlb
from repro.memory.cache import InterleavedCache
from repro.memory.requests import MemRequest, MemResponse, MemOpKind
from repro.memory.memory_system import MemorySystem

__all__ = [
    "secded_encode",
    "secded_decode",
    "SecdedError",
    "GuardedPointer",
    "PointerPermission",
    "ProtectionError",
    "Sdram",
    "BlockStatus",
    "LptEntry",
    "LocalPageTable",
    "PAGE_SIZE_WORDS",
    "BLOCK_SIZE_WORDS",
    "Ltlb",
    "InterleavedCache",
    "MemRequest",
    "MemResponse",
    "MemOpKind",
    "MemorySystem",
]
