"""The per-node memory system.

This module composes the on-chip cache banks, the LTLB, the local page table
and the SDRAM controller into the unit that the four clusters talk to over
the M-Switch, and that raises asynchronous events (LTLB misses, block-status
faults and memory-synchronizing faults) toward the event V-Thread
(Sections 2, 3.3, 4.2 and 4.3 of the paper).

Timing model
------------

All latencies are expressed in MAP cycles and configured by
:class:`repro.core.config.MemoryConfig`:

* a request arrives from the M-Switch one cycle after issue;
* each cache bank accepts one access per cycle (bank conflicts delay younger
  requests); a hit produces its response after ``bank_latency`` cycles --
  with the M-Switch and C-Switch traversals this yields the paper's
  three-cycle load-hit latency;
* a miss is forwarded to the external memory interface (one outstanding miss
  at a time), which spends ``ltlb_latency`` cycles translating, then accesses
  the SDRAM with its page-mode timing; loads return the critical word first,
  stores complete only when the whole block has been loaded and merged
  (which is why the paper's write-miss latency exceeds its read-miss
  latency);
* an LTLB miss or a block-status / synchronization fault aborts the request
  and enqueues an event record ``event_enqueue_latency`` cycles later.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.events.records import EventRecord, EventType
from repro.isa.registers import pack_regspec
from repro.memory.cache import InterleavedCache
from repro.memory.ltlb import Ltlb
from repro.memory.page_table import (
    BLOCK_SIZE_WORDS,
    BlockStatus,
    LocalPageTable,
    LptEntry,
    block_base,
    page_of,
)
from repro.memory.requests import MemRequest, MemResponse
from repro.memory.sdram import Sdram
from repro.snapshot.values import decode_value, encode_value


#: Flags accepted by the privileged ``ltlbw`` operation.
LTLB_FLAG_WRITABLE = 0x1
#: When set, all blocks of the new mapping start READ_WRITE; when clear they
#: start INVALID (used by the software DRAM-caching layer of Section 4.3).
LTLB_FLAG_BLOCKS_VALID = 0x2


@dataclass
class _PendingResponse:
    ready_cycle: int
    response: MemResponse


class MemorySystem:
    """Cache banks + LTLB + local page table + SDRAM of one node."""

    def __init__(
        self,
        node_id: int,
        cache: InterleavedCache,
        ltlb: Ltlb,
        page_table: LocalPageTable,
        sdram: Sdram,
        *,
        bank_latency: int = 1,
        mif_latency: int = 1,
        ltlb_latency: int = 1,
        fill_latency: int = 1,
        event_enqueue_latency: int = 2,
        event_sink: Optional[Callable[[EventRecord, int], None]] = None,
        tracer=None,
    ):
        self.node_id = node_id
        self.cache = cache
        self.ltlb = ltlb
        self.page_table = page_table
        self.sdram = sdram
        self.bank_latency = bank_latency
        self.mif_latency = mif_latency
        self.ltlb_latency = ltlb_latency
        self.fill_latency = fill_latency
        self.event_enqueue_latency = event_enqueue_latency
        self.event_sink = event_sink or (lambda record, cycle: None)
        self.tracer = tracer

        self._bank_queues: List[Deque[Tuple[int, MemRequest]]] = [
            deque() for _ in range(cache.num_banks)
        ]
        self._mif_queue: Deque[Tuple[int, MemRequest]] = deque()
        self._mif_busy_until = -1
        self._pending: List[_PendingResponse] = []

        # Statistics
        self.requests_accepted = 0
        self.loads = 0
        self.stores = 0
        self.sync_faults = 0
        self.block_status_faults = 0
        self.ltlb_miss_events = 0
        self.store_completions: Dict[int, int] = {}

    # ------------------------------------------------------------------ wiring

    def _trace(self, cycle: int, category: str, **info) -> None:
        if self.tracer is not None:
            self.tracer.record(cycle, self.node_id, category, **info)

    # ------------------------------------------------------------- request path

    def submit(self, request: MemRequest, arrival_cycle: int) -> None:
        """Accept a request delivered by the M-Switch at *arrival_cycle*."""
        self.requests_accepted += 1
        if request.is_store:
            self.stores += 1
        else:
            self.loads += 1
        if request.physical:
            # Physical accesses bypass the cache and go straight to the
            # external memory interface.
            self._mif_queue.append((arrival_cycle, request))
        else:
            bank = self.cache.bank_of(request.address)
            self._bank_queues[bank].append((arrival_cycle, request))

    def bank_queue_depth(self, bank: int) -> int:
        return len(self._bank_queues[bank])

    # -------------------------------------------------------------------- tick

    def tick(self, cycle: int) -> List[MemResponse]:
        """Advance one cycle; returns responses whose data leaves the memory
        system this cycle (the node forwards them to the C-Switch)."""
        if any(self._bank_queues):
            for bank_index in range(self.cache.num_banks):
                self._service_bank(bank_index, cycle)
        if self._mif_queue:
            self._service_mif(cycle)

        if not self._pending:
            return []
        ready: List[MemResponse] = []
        still_pending: List[_PendingResponse] = []
        for pending in self._pending:
            if pending.ready_cycle <= cycle:
                ready.append(pending.response)
            else:
                still_pending.append(pending)
        self._pending = still_pending
        return ready

    # ----------------------------------------------------------- bank pipeline

    def _service_bank(self, bank_index: int, cycle: int) -> None:
        queue = self._bank_queues[bank_index]
        if not queue:
            return
        arrival, request = queue[0]
        if arrival > cycle:
            return
        queue.popleft()

        line = self.cache.lookup(request.address, request.is_store)
        if line is None:
            # Miss: hand over to the external memory interface next cycle.
            self._mif_queue.append((cycle + 1, request))
            self._trace(cycle, "cache_miss", address=request.address, req=request.req_id,
                        store=request.is_store)
            return

        self._trace(cycle, "cache_hit", address=request.address, req=request.req_id,
                    store=request.is_store)
        if request.is_store and not line.writable:
            # The block status bits forbid writing; the check applies to hits
            # because the line's writability was captured at fill time.
            self.block_status_faults += 1
            record = self._make_record(EventType.BLOCK_STATUS, request, cycle)
            self.event_sink(record, cycle + self.event_enqueue_latency)
            self._trace(cycle, "block_status_fault", address=request.address,
                        req=request.req_id, status="cached-read-only",
                        event_cycle=cycle + self.event_enqueue_latency)
            return
        if not self._check_sync_precondition(request, self.cache.sync_bit(line, request.address), cycle):
            return

        if request.is_store:
            self.cache.write_word(line, request.address, request.data)
            self._apply_sync_postcondition_line(line, request)
            entry = self.page_table.lookup(request.address)
            if entry is not None:
                self._auto_dirty(entry, request.address)
            completion = cycle + self.bank_latency
            self.store_completions[request.req_id] = completion
            self._trace(completion, "store_complete", address=request.address,
                        req=request.req_id, where="cache")
        else:
            value = self.cache.read_word(line, request.address)
            self._apply_sync_postcondition_line(line, request)
            self._pending.append(
                _PendingResponse(
                    ready_cycle=cycle + self.bank_latency,
                    response=MemResponse(request=request, value=value,
                                         ready_cycle=cycle + self.bank_latency),
                )
            )

    # ------------------------------------------------ external memory interface

    def _service_mif(self, cycle: int) -> None:
        if cycle <= self._mif_busy_until or not self._mif_queue:
            return
        arrival, request = self._mif_queue[0]
        if arrival > cycle:
            return
        self._mif_queue.popleft()

        if request.physical:
            self._service_physical(request, cycle)
            return

        translate_done = cycle + self.mif_latency + self.ltlb_latency
        entry = self.ltlb.lookup(request.address)
        if entry is None:
            # LTLB miss: abort the access and raise an asynchronous event.
            self.ltlb_miss_events += 1
            record = self._make_record(EventType.LTLB_MISS, request, cycle)
            enqueue_cycle = translate_done + self.event_enqueue_latency
            self.event_sink(record, enqueue_cycle)
            self._trace(cycle, "ltlb_miss", address=request.address, req=request.req_id,
                        store=request.is_store, event_cycle=enqueue_cycle)
            self._mif_busy_until = translate_done
            return

        status = entry.status_of(request.address)
        allowed = status.allows_write() if request.is_store else status.allows_read()
        if not allowed or (request.is_store and not entry.writable):
            self.block_status_faults += 1
            record = self._make_record(EventType.BLOCK_STATUS, request, cycle)
            record.extra["block_status"] = status
            enqueue_cycle = translate_done + self.event_enqueue_latency
            self.event_sink(record, enqueue_cycle)
            self._trace(cycle, "block_status_fault", address=request.address,
                        req=request.req_id, status=status.name, event_cycle=enqueue_cycle)
            self._mif_busy_until = translate_done
            return

        self._service_sdram_fill(request, entry, translate_done, cycle)

    def _service_physical(self, request: MemRequest, cycle: int) -> None:
        latency = self.sdram.access_latency(request.address, 1)
        done = cycle + self.mif_latency + latency
        if request.is_store:
            self.sdram.write_word(request.address, request.data)
            self.store_completions[request.req_id] = done
            self._trace(done, "store_complete", address=request.address,
                        req=request.req_id, where="sdram-physical")
        else:
            value = self.sdram.read_word(request.address)
            self._pending.append(
                _PendingResponse(ready_cycle=done,
                                 response=MemResponse(request=request, value=value,
                                                      ready_cycle=done))
            )
        self._mif_busy_until = done

    def _service_sdram_fill(self, request: MemRequest, entry: LptEntry,
                            translate_done: int, cycle: int) -> None:
        """Fetch the block containing the request from SDRAM, fill the cache
        and complete the access."""
        virtual_base = block_base(request.address)
        physical_base = entry.translate(virtual_base, self.page_table.page_size)

        # Secondary-miss merge: an earlier miss to the same block may have
        # filled the line while this request waited in the memory-interface
        # queue.  Re-filling from SDRAM would clobber any dirty words already
        # written to the resident line, so the access is completed against
        # the line directly (the analogue of an MSHR hit).
        resident = self.cache.probe(request.address)
        if resident is not None:
            if request.is_store and not resident.writable:
                self.block_status_faults += 1
                record = self._make_record(EventType.BLOCK_STATUS, request, cycle)
                self.event_sink(record, translate_done + self.event_enqueue_latency)
                self._mif_busy_until = translate_done
                return
            word_index = request.address - virtual_base
            if not self._check_sync_precondition(
                request, self.cache.sync_bit(resident, request.address), cycle
            ):
                self._mif_busy_until = translate_done
                return
            done = translate_done + self.bank_latency
            if request.is_store:
                self.cache.write_word(resident, request.address, request.data)
                self._apply_sync_postcondition_line(resident, request)
                self._auto_dirty(entry, request.address)
                self.store_completions[request.req_id] = done
                self._trace(done, "store_complete", address=request.address,
                            req=request.req_id, where="merge")
            else:
                value = self.cache.read_word(resident, request.address)
                self._apply_sync_postcondition_line(resident, request)
                self._pending.append(
                    _PendingResponse(ready_cycle=done,
                                     response=MemResponse(request=request, value=value,
                                                          ready_cycle=done))
                )
            self._mif_busy_until = done
            return

        block_latency = self.sdram.access_latency(physical_base, BLOCK_SIZE_WORDS)
        first_word_latency = block_latency - (BLOCK_SIZE_WORDS - 1) * self.sdram.timing.cycles_per_word

        data = self.sdram.read_block(physical_base, BLOCK_SIZE_WORDS)
        sync_bits = [self.sdram.sync_bit(physical_base + i) for i in range(BLOCK_SIZE_WORDS)]

        # Check the synchronisation precondition against memory state before
        # committing anything.
        word_index = request.address - virtual_base
        if not self._check_sync_precondition(request, sync_bits[word_index], cycle):
            self._mif_busy_until = translate_done
            return

        block_status = entry.status_of(request.address)
        writable = entry.writable and block_status.allows_write()
        evicted = self.cache.fill(virtual_base, physical_base, data, sync_bits,
                                  writable=writable)
        if evicted is not None:
            self._write_back(evicted)

        line = self.cache.probe(request.address)
        fill_done = translate_done + first_word_latency + self.fill_latency

        if request.is_store:
            # Write-allocate: the store completes once the whole block is
            # resident and the new word merged.
            complete = translate_done + block_latency + self.fill_latency
            self.cache.write_word(line, request.address, request.data)
            self._apply_sync_postcondition_line(line, request)
            self._auto_dirty(entry, request.address)
            self.store_completions[request.req_id] = complete
            self._trace(complete, "store_complete", address=request.address,
                        req=request.req_id, where="fill")
            self._mif_busy_until = complete
        else:
            value = self.cache.read_word(line, request.address)
            self._apply_sync_postcondition_line(line, request)
            self._pending.append(
                _PendingResponse(ready_cycle=fill_done,
                                 response=MemResponse(request=request, value=value,
                                                      ready_cycle=fill_done))
            )
            self._mif_busy_until = fill_done

    def _write_back(self, evicted) -> None:
        """Write a dirty victim line back to SDRAM and update block status."""
        self.sdram.write_block(evicted.physical_base, evicted.data)
        for offset, bit in enumerate(evicted.sync_bits):
            self.sdram.set_sync_bit(evicted.physical_base + offset, bit)
        entry = self.page_table.lookup(evicted.virtual_base)
        if entry is not None:
            self._auto_dirty(entry, evicted.virtual_base)

    def _auto_dirty(self, entry: LptEntry, address: int) -> None:
        """Writes automatically move a READ_WRITE block to DIRTY (Section 4.3)."""
        if entry.status_of(address) is BlockStatus.READ_WRITE:
            entry.set_status(address, BlockStatus.DIRTY)
            self.page_table._mirror(entry)

    # ------------------------------------------------------------- sync bits

    def _check_sync_precondition(self, request: MemRequest, current_bit: int, cycle: int) -> bool:
        pre = request.sync_pre
        if pre == "x":
            return True
        required = 1 if pre == "f" else 0
        if current_bit == required:
            return True
        self.sync_faults += 1
        record = self._make_record(EventType.SYNC_FAULT, request, cycle)
        record.extra["sync_bit"] = current_bit
        self.event_sink(record, cycle + self.event_enqueue_latency)
        self._trace(cycle, "sync_fault", address=request.address, req=request.req_id,
                    pre=pre, bit=current_bit)
        return False

    def _apply_sync_postcondition_line(self, line, request: MemRequest) -> None:
        post = request.sync_post
        if post == "x":
            return
        self.cache.set_sync_bit(line, request.address, 1 if post == "f" else 0)

    # ---------------------------------------------------------------- events

    def _make_record(self, event_type: EventType, request: MemRequest, cycle: int) -> EventRecord:
        regspec = 0
        is_fp = bool(request.is_fp)
        if request.dest is not None:
            regspec = pack_regspec(request.vthread, request.cluster, request.dest)
        return EventRecord(
            event_type=event_type,
            address=request.address,
            data=int(request.data) if isinstance(request.data, (int, bool)) else 0,
            regspec=regspec,
            is_store=request.is_store,
            sync_pre=request.sync_pre,
            sync_post=request.sync_post,
            vthread=request.vthread,
            cluster=request.cluster,
            is_fp=is_fp,
            cycle=cycle,
            extra={"request": request},
        )

    # -------------------------------------------------- privileged operations

    def install_translation(self, address: int, frame: int, flags: int) -> LptEntry:
        """Semantics of the privileged ``ltlbw`` operation.

        If the node's page table already holds an entry for the page the
        existing entry object is inserted into the LTLB (keeping block-status
        state shared); otherwise a new entry is created with the supplied
        frame and flags and registered in both structures.
        """
        page = page_of(address, self.page_table.page_size)
        entry = self.page_table.lookup_page(page)
        if entry is None:
            status = (
                BlockStatus.READ_WRITE
                if flags & LTLB_FLAG_BLOCKS_VALID
                else BlockStatus.INVALID
            )
            entry = LptEntry(
                virtual_page=page,
                physical_frame=frame,
                writable=bool(flags & LTLB_FLAG_WRITABLE),
                block_status=[status] * (self.page_table.page_size // BLOCK_SIZE_WORDS),
            )
            self.page_table.insert(entry)
        self.ltlb.insert(entry)
        return entry

    def probe_translation(self, address: int) -> int:
        """Semantics of the privileged ``ltlbp`` operation: physical frame of
        the page containing *address* or -1."""
        entry = self.ltlb.probe(address)
        if entry is None:
            entry = self.page_table.lookup(address)
        return entry.physical_frame if entry is not None else -1

    def set_block_status(self, address: int, status: BlockStatus) -> None:
        """Semantics of the privileged ``bsset`` operation."""
        entry = self.page_table.lookup(address)
        if entry is None:
            raise KeyError(f"bsset: no mapping for {address:#x} on node {self.node_id}")
        entry.set_status(address, status)
        self.page_table._mirror(entry)
        # Keep any cached copy of the block consistent with the new status.
        line = self.cache.probe(address)
        if line is not None:
            line.writable = entry.writable and status.allows_write()

    def get_block_status(self, address: int) -> int:
        entry = self.page_table.lookup(address)
        if entry is None:
            return -1
        return int(entry.status_of(address))

    def set_sync_bit_virtual(self, address: int, value: int) -> None:
        """Semantics of the privileged ``syncset`` operation."""
        line = self.cache.probe(address)
        if line is not None:
            self.cache.set_sync_bit(line, address, value)
        entry = self.page_table.lookup(address)
        if entry is not None:
            self.sdram.set_sync_bit(entry.translate(address, self.page_table.page_size), value)

    # ------------------------------------------------------ debug / loader API

    def translate(self, address: int) -> Optional[int]:
        entry = self.page_table.lookup(address)
        if entry is None:
            return None
        return entry.translate(address, self.page_table.page_size)

    def debug_read(self, address: int):
        """Read a virtual address for debugging, seeing through the cache."""
        line = self.cache.probe(address)
        if line is not None:
            return self.cache.read_word(line, address)
        physical = self.translate(address)
        if physical is None:
            raise KeyError(f"debug_read: no mapping for {address:#x} on node {self.node_id}")
        return self.sdram.read_word(physical)

    def debug_write(self, address: int, value, sync_bit: Optional[int] = None) -> None:
        """Write a virtual address directly (loader / test setup)."""
        physical = self.translate(address)
        if physical is None:
            raise KeyError(f"debug_write: no mapping for {address:#x} on node {self.node_id}")
        line = self.cache.probe(address)
        if line is not None:
            self.cache.write_word(line, address, value)
            if sync_bit is not None:
                self.cache.set_sync_bit(line, address, sync_bit)
        self.sdram.write_word(physical, value, sync_bit)

    def debug_sync_bit(self, address: int) -> int:
        line = self.cache.probe(address)
        if line is not None:
            return self.cache.sync_bit(line, address)
        physical = self.translate(address)
        if physical is None:
            raise KeyError(f"debug_sync_bit: no mapping for {address:#x}")
        return self.sdram.sync_bit(physical)

    def invalidate_block(self, address: int) -> Optional[List[object]]:
        """Invalidate the cache line holding *address*, writing it back first;
        returns the block data if it was cached, for the coherence layer."""
        evicted = self.cache.invalidate(address)
        if evicted is not None and evicted.dirty:
            self._write_back(evicted)
            return evicted.data
        return None

    def flush_cache(self) -> None:
        for evicted in self.cache.flush():
            self._write_back(evicted)

    def read_block_virtual(self, address: int) -> List[object]:
        """Read the whole (block-aligned) block containing *address*, seeing
        through the cache (coherence-layer helper)."""
        base = block_base(address)
        return [self.debug_read(base + i) for i in range(BLOCK_SIZE_WORDS)]

    def write_block_virtual(self, address: int, data: List[object]) -> None:
        base = block_base(address)
        for offset, value in enumerate(data):
            self.debug_write(base + offset, value)

    @property
    def busy(self) -> bool:
        """True while any request is still in flight inside the memory system."""
        return (
            any(self._bank_queues)
            or bool(self._mif_queue)
            or bool(self._pending)
        )

    # -- snapshot (repro.snapshot state_dict contract) -----------------------

    def state_dict(self) -> dict:
        """In-flight request state only; the cache, LTLB, page table and
        SDRAM snapshot themselves (they are shared objects owned by the
        node)."""

        return {
            "bank_queues": [
                [[arrival, encode_value(request)] for arrival, request in queue]
                for queue in self._bank_queues
            ],
            "mif_queue": [[arrival, encode_value(request)]
                          for arrival, request in self._mif_queue],
            "mif_busy_until": self._mif_busy_until,
            "pending": [
                [pending.ready_cycle, encode_value(pending.response)]
                for pending in self._pending
            ],
            "requests_accepted": self.requests_accepted,
            "loads": self.loads,
            "stores": self.stores,
            "sync_faults": self.sync_faults,
            "block_status_faults": self.block_status_faults,
            "ltlb_miss_events": self.ltlb_miss_events,
            "store_completions": [[req_id, done]
                                  for req_id, done in self.store_completions.items()],
        }

    def load_state_dict(self, state: dict) -> None:

        self._bank_queues = [
            deque((arrival, decode_value(request)) for arrival, request in queue)
            for queue in state["bank_queues"]
        ]
        self._mif_queue = deque(
            (arrival, decode_value(request)) for arrival, request in state["mif_queue"]
        )
        self._mif_busy_until = state["mif_busy_until"]
        self._pending = [
            _PendingResponse(ready_cycle=ready_cycle, response=decode_value(response))
            for ready_cycle, response in state["pending"]
        ]
        self.requests_accepted = state["requests_accepted"]
        self.loads = state["loads"]
        self.stores = state["stores"]
        self.sync_faults = state["sync_faults"]
        self.block_status_faults = state["block_status_faults"]
        self.ltlb_miss_events = state["ltlb_miss_events"]
        self.store_completions = {req_id: done
                                  for req_id, done in state["store_completions"]}

    def next_event_cycle(self, cycle: int) -> Optional[int]:
        """SimComponent contract: the earliest cycle after *cycle* at which a
        tick would do real work -- a bank servicing its head request, the
        external memory interface coming free for its head request, or a
        pending response completing.  None when the memory system is empty."""
        candidates = []
        for queue in self._bank_queues:
            if queue:
                candidates.append(queue[0][0])
        if self._mif_queue:
            candidates.append(max(self._mif_queue[0][0], self._mif_busy_until + 1))
        if self._pending:
            candidates.append(min(pending.ready_cycle for pending in self._pending))
        if not candidates:
            return None
        # Banks and the MIF service one request per tick, so work that was
        # due in the past is due again on the very next cycle.
        return max(min(candidates), cycle + 1)
