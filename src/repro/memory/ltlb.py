"""The local translation lookaside buffer (LTLB).

"The external memory interface consists of the SDRAM controller and a local
translation lookaside buffer (LTLB) used to cache local page table (LPT)
entries." (Section 2.)  The LTLB is only consulted on cache misses because
the on-chip cache is virtually addressed and tagged; an LTLB miss raises an
asynchronous event handled in software by the event V-Thread (Section 3.3),
which is exactly how remote memory references are detected (Section 4.2).

The LTLB caches :class:`~repro.memory.page_table.LptEntry` objects; it holds
references, so block-status updates made through the page table are
immediately visible to hardware checks.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from repro.memory.page_table import LptEntry, PAGE_SIZE_WORDS, page_of
from repro.snapshot.values import decode_value, encode_value


class Ltlb:
    """A fully associative, LRU-replaced translation cache."""

    def __init__(self, num_entries: int = 64, page_size: int = PAGE_SIZE_WORDS, name: str = "ltlb"):
        if num_entries <= 0:
            raise ValueError("LTLB must have at least one entry")
        self.num_entries = num_entries
        self.page_size = page_size
        self.name = name
        self._entries: "OrderedDict[int, LptEntry]" = OrderedDict()
        # Statistics
        self.hits = 0
        self.misses = 0
        self.insertions = 0
        self.evictions = 0

    # -- lookup ------------------------------------------------------------------

    def lookup(self, address: int) -> Optional[LptEntry]:
        """Translate a virtual address; None on a miss (which the memory
        system turns into an LTLB-miss event)."""
        page = page_of(address, self.page_size)
        entry = self._entries.get(page)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        self._entries.move_to_end(page)
        return entry

    def probe(self, address: int) -> Optional[LptEntry]:
        """Like :meth:`lookup` but without touching statistics or LRU state
        (used by debug/loader paths)."""
        return self._entries.get(page_of(address, self.page_size))

    # -- maintenance -------------------------------------------------------------

    def insert(self, entry: LptEntry) -> Optional[LptEntry]:
        """Insert an entry, returning the evicted entry if any."""
        evicted = None
        if entry.virtual_page in self._entries:
            self._entries.move_to_end(entry.virtual_page)
            self._entries[entry.virtual_page] = entry
            return None
        if len(self._entries) >= self.num_entries:
            _, evicted = self._entries.popitem(last=False)
            self.evictions += 1
        self._entries[entry.virtual_page] = entry
        self.insertions += 1
        return evicted

    def invalidate(self, virtual_page: int) -> bool:
        if virtual_page in self._entries:
            del self._entries[virtual_page]
            return True
        return False

    def invalidate_all(self) -> None:
        self._entries.clear()

    # -- snapshot (repro.snapshot state_dict contract) ---------------------------

    def state_dict(self) -> dict:

        return {
            # LRU order is significant (oldest first, like the OrderedDict).
            # Entries are stored by value as well as by page number so the
            # loader can fall back when a page has no LPT entry, but the
            # normal path re-links the *shared* LPT entry object: the LTLB
            # caches references, and block-status updates made through the
            # page table must stay visible after a restore.
            "entries": [[page, encode_value(entry)]
                        for page, entry in self._entries.items()],
            "hits": self.hits,
            "misses": self.misses,
            "insertions": self.insertions,
            "evictions": self.evictions,
        }

    def load_state_dict(self, state: dict, page_table=None) -> None:

        self._entries = OrderedDict()
        for page, encoded in state["entries"]:
            entry = page_table.lookup_page(page) if page_table is not None else None
            if entry is None:
                entry = decode_value(encoded)
            self._entries[page] = entry
        self.hits = state["hits"]
        self.misses = state["misses"]
        self.insertions = state["insertions"]
        self.evictions = state["evictions"]

    # -- introspection -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, virtual_page: int) -> bool:
        return virtual_page in self._entries

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __repr__(self) -> str:
        return f"Ltlb({self.name!r}, {len(self)}/{self.num_entries} entries)"
