"""Seeded random-program generator for differential fuzzing.

The generator emits *legal-by-construction* multi-thread scenarios over the
instruction mixes the M-Machine paper cares about: register compute loops,
user-level SEND traffic (the hardware message queues), remote-memory reads,
and guarded-pointer derives/accesses (Section 4.4).  Fault-density knobs add
protection violators (out-of-segment derives, permission violations, forged
pointers), injected SECDED single/double-bit flips through
:mod:`repro.memory.secded`, and forced NACK storms (undersized message
queues with aggressive retransmit).

Everything is deterministic from ``(seed, knobs)``: the RNG is seeded with
the SHA-256 of the seed and the knobs' :func:`config_fingerprint`, so the
same pair always yields byte-identical programs — which is what lets CI pin
seeds and lets a repro file replay a failure in a fresh process.

A :class:`GeneratedProgram` is plain structured data (thread kinds +
parameters, mappings, initial words, bit flips), so it JSON round-trips for
repro files and shrinks structurally; assembly sources are rendered from the
structure at machine-build time.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import MachineConfig, apply_overrides
from repro.core.machine import MMachine
from repro.memory.guarded_pointer import PointerPermission, make_pointer
from repro.sweep.spec import config_fingerprint

#: Private per-thread heap slices (one page each) start here.
HEAP_BASE = 0x10000
#: Slice read by the SECDED victim thread (single-bit flips land here).
SECDED_BASE = 0x30000
#: Region homed on the far node for message / remote-read traffic.
REMOTE_BASE = 0x40000
#: Words that receive double-bit flips; mapped but never read by programs,
#: so the poisoned codewords travel through snapshots without being decoded.
POISON_BASE = 0x60000

#: Address stride between private slices (>= one 512-word page).
_PAGE_STRIDE = 0x1000

#: 32-bit mask compute loops apply every iteration to keep values bounded.
_COMPUTE_MASK = (1 << 32) - 1

#: Binary ALU ops compute loops draw from (all total on ints).
_COMPUTE_OPS = ("add", "sub", "and", "or", "xor", "min", "max", "mul")

#: Protection-violation modes the ``violator`` thread kind draws from.
VIOLATION_MODES = ("plain-int", "oob-ld", "ro-store", "oob-lea", "forge")


@dataclass(frozen=True)
class GeneratorKnobs:
    """Tuning knobs of the generator (all deterministic given a seed)."""

    mesh: Tuple[int, int, int] = (2, 1, 1)
    max_threads: int = 4
    max_iterations: int = 8
    max_messages: int = 6
    #: Probability that a drawn thread is a protection violator; any violator
    #: switches the whole machine to ``runtime.protection_enabled``.
    fault_density: float = 0.25
    #: Upper bound on injected correctable (single-bit) SECDED flips.
    secded_single_flips: int = 2
    #: Upper bound on injected uncorrectable (double-bit) SECDED flips.
    secded_double_flips: int = 1
    #: Shrink the receive queues and retransmit interval when the program
    #: contains message traffic, forcing NACK/retransmit storms.
    nack_storm: bool = False
    max_cycles: int = 120_000

    def to_params(self) -> Dict[str, object]:
        """JSON-safe dict of the knobs (the fingerprint input)."""
        return {
            "mesh": list(self.mesh),
            "max_threads": self.max_threads,
            "max_iterations": self.max_iterations,
            "max_messages": self.max_messages,
            "fault_density": self.fault_density,
            "secded_single_flips": self.secded_single_flips,
            "secded_double_flips": self.secded_double_flips,
            "nack_storm": self.nack_storm,
            "max_cycles": self.max_cycles,
        }

    @classmethod
    def from_params(cls, params: Dict[str, object]) -> "GeneratorKnobs":
        params = dict(params)
        params["mesh"] = tuple(params.get("mesh", (2, 1, 1)))
        return cls(**params)

    @property
    def fingerprint(self) -> str:
        """The 8-hex config fingerprint of these knobs (see sweep.spec)."""
        return config_fingerprint("fuzz-generator", self.to_params())


@dataclass
class ThreadSpec:
    """One generated H-Thread: placement, kind and render parameters."""

    node: int
    slot: int
    cluster: int
    kind: str
    params: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "node": self.node,
            "slot": self.slot,
            "cluster": self.cluster,
            "kind": self.kind,
            "params": dict(self.params),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ThreadSpec":
        return cls(
            node=int(data["node"]),
            slot=int(data["slot"]),
            cluster=int(data["cluster"]),
            kind=str(data["kind"]),
            params=dict(data.get("params") or {}),
        )


@dataclass
class GeneratedProgram:
    """A complete generated scenario, serialisable for repro files."""

    seed: int
    knobs: GeneratorKnobs
    mesh: Tuple[int, int, int]
    config_overrides: Dict[str, object] = field(default_factory=dict)
    #: ``(node, base_vaddr, num_pages)`` page-group mappings.
    mappings: List[Tuple[int, int, int]] = field(default_factory=list)
    #: ``(vaddr, value)`` words written before the run starts.
    initial_words: List[Tuple[int, int]] = field(default_factory=list)
    #: ``(node, vaddr, bit)`` correctable single-bit flips.
    single_flips: List[Tuple[int, int, int]] = field(default_factory=list)
    #: ``(node, vaddr, bit_a, bit_b)`` uncorrectable double-bit flips.
    double_flips: List[Tuple[int, int, int, int]] = field(default_factory=list)
    threads: List[ThreadSpec] = field(default_factory=list)
    #: Mid-run snapshot point as a fraction of the reference run's cycles.
    snapshot_fraction: float = 0.5
    max_cycles: int = 120_000

    @property
    def fingerprint(self) -> str:
        """Identity of this program: seed + knobs fingerprint."""
        return config_fingerprint(
            "fuzz-program", {"seed": self.seed, "knobs": self.knobs.to_params()}
        )

    # -- serialisation (repro files) ------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "version": 1,
            "seed": self.seed,
            "knobs": self.knobs.to_params(),
            "fingerprint": self.fingerprint,
            "mesh": list(self.mesh),
            "config_overrides": dict(self.config_overrides),
            "mappings": [list(entry) for entry in self.mappings],
            "initial_words": [list(entry) for entry in self.initial_words],
            "single_flips": [list(entry) for entry in self.single_flips],
            "double_flips": [list(entry) for entry in self.double_flips],
            "threads": [thread.to_dict() for thread in self.threads],
            "snapshot_fraction": self.snapshot_fraction,
            "max_cycles": self.max_cycles,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "GeneratedProgram":
        return cls(
            seed=int(data["seed"]),
            knobs=GeneratorKnobs.from_params(dict(data["knobs"])),
            mesh=tuple(data["mesh"]),
            config_overrides=dict(data.get("config_overrides") or {}),
            mappings=[tuple(entry) for entry in data.get("mappings") or []],
            initial_words=[tuple(entry) for entry in data.get("initial_words") or []],
            single_flips=[tuple(entry) for entry in data.get("single_flips") or []],
            double_flips=[tuple(entry) for entry in data.get("double_flips") or []],
            threads=[ThreadSpec.from_dict(t) for t in data.get("threads") or []],
            snapshot_fraction=float(data.get("snapshot_fraction", 0.5)),
            max_cycles=int(data.get("max_cycles", 120_000)),
        )

    # -- machine construction -------------------------------------------------

    def build_machine(
        self, kernel: str = "event", compile_dispatch: bool = True
    ) -> MMachine:
        """Build (but do not run) the machine this program describes."""
        config = MachineConfig.small(*self.mesh)
        config.sim.kernel = kernel
        config.sim.compile_dispatch = compile_dispatch
        apply_overrides(config, dict(self.config_overrides))
        machine = MMachine(config)
        for node, base, pages in self.mappings:
            machine.map_on_node(node, base, num_pages=pages)
        for address, value in self.initial_words:
            machine.write_word(address, value)
        # Start every run cold: data reads must refill from SDRAM, which is
        # where the SECDED decode (and therefore the injected flips) lives.
        for node in machine.nodes:
            node.memory.flush_cache()
        for node, address, bit in self.single_flips:
            self._inject(machine, node, address, (bit,))
        for node, address, bit_a, bit_b in self.double_flips:
            self._inject(machine, node, address, (bit_a, bit_b))
        dip = machine.runtime.dip("remote_store")
        for thread in self.threads:
            source, registers = render_thread(thread, dip)
            machine.load_hthread(
                thread.node, thread.slot, thread.cluster, source, registers=registers
            )
        return machine

    @staticmethod
    def _inject(machine: MMachine, node: int, address: int, bits) -> None:
        memory = machine.nodes[node].memory
        physical = memory.translate(address)
        if physical is None:
            raise ValueError(f"flip target {address:#x} is not mapped on node {node}")
        memory.sdram.inject_bit_error(physical, bits)

    def run(self, machine: MMachine) -> int:
        """Run *machine* to quiescence under this program's cycle budget.

        ``run_until_quiescent`` (not ``run_until_user_done``) because faulted
        threads are never *finished*: a violator parks in
        ``ThreadState.FAULTED`` and the machine must still wind down cleanly.
        """
        return machine.run_until_quiescent(max_cycles=self.max_cycles)


# ---------------------------------------------------------------------------
# Thread rendering: structure -> assembly + registers
# ---------------------------------------------------------------------------


def render_thread(thread: ThreadSpec, remote_store_dip: int) -> Tuple[str, Dict[str, object]]:
    """Render one :class:`ThreadSpec` to ``(assembly_source, registers)``."""
    params = thread.params
    if thread.kind == "compute":
        return _render_compute(params)
    if thread.kind == "local-memory":
        return _render_local_memory(params)
    if thread.kind == "pointer-walk":
        return _render_pointer_walk(params)
    if thread.kind == "message":
        return _render_message(params, remote_store_dip)
    if thread.kind == "remote-read":
        return _render_remote_read(params)
    if thread.kind == "secded-read":
        return _render_secded_read(params)
    if thread.kind == "violator":
        return _render_violator(params)
    raise ValueError(f"unknown generated thread kind {thread.kind!r}")


def _loop(body_lines: Sequence[str], iterations: int) -> str:
    lines = ["        mov i4, #0", "        mov i5, #0"]
    lines.append("loop:")
    lines.extend(f"        {line}" for line in body_lines)
    lines.append("        add i4, i4, #1")
    lines.append(f"        lt i8, i4, #{iterations}")
    lines.append("        br i8, loop")
    lines.append("        halt")
    return "\n".join(lines)


def _render_compute(params: Dict[str, object]) -> Tuple[str, Dict[str, object]]:
    body = [f"mov i2, #{params['seed_a']}", f"mov i3, #{params['seed_b']}"]
    loop_body: List[str] = []
    for name, dst, lhs, rhs in params["ops"]:
        loop_body.append(f"{name} {dst}, {lhs}, {rhs}")
    # Re-bound everything each iteration so mul chains stay 32-bit.
    loop_body.extend(
        ["and i2, i2, i7", "and i3, i3, i7", "add i5, i5, i2", "and i5, i5, i7"]
    )
    source = "\n".join(
        f"        {line}" for line in body
    ) + "\n" + _loop(loop_body, int(params["iterations"]))
    return source, {"i7": _COMPUTE_MASK}


def _render_local_memory(params: Dict[str, object]) -> Tuple[str, Dict[str, object]]:
    loop_body: List[str] = []
    for index, offset in enumerate(params["offsets"]):
        value = int(params["values"][index])
        loop_body.append(f"mov i6, #{value}")
        loop_body.append(f"st i6, i1, #{offset}")
        loop_body.append(f"ld i3, i1, #{offset}")
        loop_body.append("add i5, i5, i3")
    source = _loop(loop_body, int(params["iterations"]))
    pointer = make_pointer(int(params["base"]), 64, PointerPermission.rw())
    return source, {"i1": pointer}


def _render_pointer_walk(params: Dict[str, object]) -> Tuple[str, Dict[str, object]]:
    loop_body: List[str] = []
    for offset in params["offsets"]:
        loop_body.append(f"lea i2, i1, #{offset}")
        loop_body.append("ld i3, i2")
        loop_body.append("add i5, i5, i3")
    source = _loop(loop_body, int(params["iterations"]))
    pointer = make_pointer(int(params["base"]), 64, PointerPermission.rw())
    return source, {"i1": pointer}


def _render_message(params: Dict[str, object], dip: int) -> Tuple[str, Dict[str, object]]:
    count = int(params["messages"])
    source = f"""
        mov i2, #{count}
        mov i3, #0
        mov i6, #{params['value_base']}
loop:   mov m0, i6
        send i1, #{dip}, #1
        add i1, i1, #1
        add i6, i6, #1
        add i3, i3, #1
        lt i5, i3, i2
        br i5, loop
        halt
"""
    return source, {"i1": int(params["dest"])}


def _render_remote_read(params: Dict[str, object]) -> Tuple[str, Dict[str, object]]:
    loop_body = ["ld i3, i1", "add i5, i5, i3"]
    source = _loop(loop_body, int(params["repeats"]))
    pointer = make_pointer(int(params["address"]), 64, PointerPermission.rw())
    return source, {"i1": pointer}


def _render_secded_read(params: Dict[str, object]) -> Tuple[str, Dict[str, object]]:
    loop_body: List[str] = []
    for offset in range(int(params["words"])):
        loop_body.append(f"ld i3, i1, #{offset}")
        loop_body.append("add i5, i5, i3")
    source = _loop(loop_body, 1)
    pointer = make_pointer(int(params["base"]), 64, PointerPermission.rw())
    return source, {"i1": pointer}


def _render_violator(params: Dict[str, object]) -> Tuple[str, Dict[str, object]]:
    mode = params["mode"]
    base = int(params["base"])
    rw_pointer = make_pointer(base, 64, PointerPermission.rw())
    if mode == "plain-int":
        return "        mov i5, #1\n        ld i6, i1\n        halt", {"i1": base}
    if mode == "oob-ld":
        return (
            f"        ld i6, i1, #{rw_pointer.segment_size << 2}\n        halt",
            {"i1": rw_pointer},
        )
    if mode == "ro-store":
        pointer = make_pointer(base, 64, PointerPermission.READ)
        return "        mov i6, #7\n        st i6, i1\n        halt", {"i1": pointer}
    if mode == "oob-lea":
        return (
            f"        lea i2, i1, #{rw_pointer.segment_size << 2}\n        halt",
            {"i1": rw_pointer},
        )
    if mode == "forge":
        return "        setptr i1, i2, #9, #7\n        halt", {"i2": base}
    raise ValueError(f"unknown violation mode {mode!r}")


# ---------------------------------------------------------------------------
# Generation
# ---------------------------------------------------------------------------


def _derived_rng(seed: int, fingerprint: str) -> random.Random:
    digest = hashlib.sha256(f"{seed}:{fingerprint}".encode()).hexdigest()
    return random.Random(int(digest, 16))


def generate_program(seed: int, knobs: Optional[GeneratorKnobs] = None) -> GeneratedProgram:
    """Generate the program for ``(seed, knobs)`` — always the same one."""
    knobs = knobs or GeneratorKnobs()
    rng = _derived_rng(seed, knobs.fingerprint)
    num_nodes = knobs.mesh[0] * knobs.mesh[1] * knobs.mesh[2]
    far = num_nodes - 1

    program = GeneratedProgram(
        seed=seed,
        knobs=knobs,
        mesh=tuple(knobs.mesh),
        snapshot_fraction=rng.uniform(0.1, 0.6),
        max_cycles=knobs.max_cycles,
    )

    kinds: List[str] = []
    for _ in range(rng.randint(1, max(1, knobs.max_threads))):
        if rng.random() < knobs.fault_density:
            kinds.append("violator")
        else:
            pool = ["compute", "local-memory", "pointer-walk"]
            if num_nodes > 1:
                pool += ["message", "remote-read"]
            kinds.append(rng.choice(pool))
    single_flips = rng.randint(0, knobs.secded_single_flips) if knobs.secded_single_flips else 0
    if single_flips:
        kinds.append("secded-read")
    double_flips = rng.randint(0, knobs.secded_double_flips) if knobs.secded_double_flips else 0

    if "violator" in kinds:
        program.config_overrides["runtime.protection_enabled"] = True
    if knobs.nack_storm and "message" in kinds:
        program.config_overrides["network.message_queue_words"] = 6
        program.config_overrides["network.retransmit_interval"] = 16

    used_contexts: set = set()

    def place(node: int) -> Tuple[int, int, int]:
        for slot in range(4):  # user slots only
            for cluster in range(4):
                if (node, slot, cluster) not in used_contexts:
                    used_contexts.add((node, slot, cluster))
                    return node, slot, cluster
        raise ValueError(f"node {node} has no free user contexts")

    slice_index = 0
    message_words = 0
    remote_words: List[int] = []
    remote_needed = any(kind in ("message", "remote-read") for kind in kinds)

    for kind in kinds:
        if kind in ("compute",):
            node, slot, cluster = place(rng.randrange(num_nodes))
            ops = []
            for _ in range(rng.randint(2, 5)):
                name = rng.choice(_COMPUTE_OPS)
                dst = rng.choice(("i2", "i3"))
                lhs = rng.choice(("i2", "i3", "i5"))
                rhs = rng.choice(("i2", "i3", f"#{rng.randint(1, 255)}"))
                ops.append([name, dst, lhs, rhs])
            params = {
                "iterations": rng.randint(2, knobs.max_iterations),
                "seed_a": rng.randint(1, 10_000),
                "seed_b": rng.randint(1, 10_000),
                "ops": ops,
            }
        elif kind in ("local-memory", "pointer-walk", "violator"):
            node, slot, cluster = place(rng.randrange(num_nodes))
            base = HEAP_BASE + slice_index * _PAGE_STRIDE
            slice_index += 1
            program.mappings.append((node, base, 1))
            if kind == "local-memory":
                offsets = rng.sample(range(48), rng.randint(1, 4))
                params = {
                    "base": base,
                    "offsets": sorted(offsets),
                    "values": [rng.randint(1, 1_000_000) for _ in offsets],
                    "iterations": rng.randint(2, knobs.max_iterations),
                }
            elif kind == "pointer-walk":
                offsets = sorted(rng.sample(range(48), rng.randint(2, 4)))
                for offset in offsets:
                    program.initial_words.append((base + offset, rng.randint(1, 1_000_000)))
                params = {
                    "base": base,
                    "offsets": offsets,
                    "iterations": rng.randint(2, knobs.max_iterations),
                }
            else:
                params = {"base": base, "mode": rng.choice(VIOLATION_MODES)}
        elif kind == "message":
            node, slot, cluster = place(rng.randrange(max(1, far)))
            count = rng.randint(1, knobs.max_messages)
            params = {
                "messages": count,
                "dest": REMOTE_BASE + message_words,
                "value_base": rng.randint(1_000, 9_000),
            }
            message_words += count
        elif kind == "remote-read":
            node, slot, cluster = place(rng.randrange(max(1, far)))
            address = REMOTE_BASE + 256 + len(remote_words)
            remote_words.append(address)
            program.initial_words.append((address, rng.randint(1, 1_000_000)))
            params = {"address": address, "repeats": rng.randint(1, 5)}
        elif kind == "secded-read":
            node, slot, cluster = place(0)
            words = rng.randint(max(2, single_flips), 10)
            program.mappings.append((0, SECDED_BASE, 1))
            for offset in range(words):
                program.initial_words.append((SECDED_BASE + offset, rng.randint(1, 1_000_000)))
            for offset in rng.sample(range(words), single_flips):
                program.single_flips.append((0, SECDED_BASE + offset, rng.randrange(72)))
            params = {"base": SECDED_BASE, "words": words}
        else:  # pragma: no cover - kinds list is closed above
            raise AssertionError(kind)
        program.threads.append(
            ThreadSpec(node=node, slot=slot, cluster=cluster, kind=kind, params=params)
        )

    if remote_needed:
        program.mappings.append((far, REMOTE_BASE, 1))
    if double_flips:
        program.mappings.append((0, POISON_BASE, 1))
        for offset in rng.sample(range(16), double_flips):
            address = POISON_BASE + offset
            program.initial_words.append((address, rng.randint(1, 1_000_000)))
            bit_a, bit_b = rng.sample(range(72), 2)
            program.double_flips.append((0, address, bit_a, bit_b))

    return program
