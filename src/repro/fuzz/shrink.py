"""Greedy structural shrinker for failing generated programs.

When the differential harness finds a mismatch, the raw generated program is
usually noisy: half a dozen threads, fault injections, and message traffic,
most of it irrelevant to the actual divergence.  The shrinker repeatedly
applies structure-preserving reductions — drop a thread, halve an iteration
count, drop a bit flip — keeping a candidate only if it still fails the
harness.  The result is the smallest program (under this reduction grammar)
that still reproduces the failure, which is what gets written to the repro
file for a human to stare at.

This is deliberately a plain greedy fixpoint loop, not a generic delta
debugger: the program structure is shallow (a list of threads plus scalar
knobs), so greedy passes converge in a handful of rounds and every candidate
evaluation costs five full simulations.
"""

from __future__ import annotations

import copy
from typing import Callable, Optional

from repro.fuzz.generator import GeneratedProgram

#: Thread parameters that can be shrunk towards 1 without changing legality.
_SHRINKABLE_PARAMS = ("iterations", "messages", "words", "repeats")

#: Upper bound on candidate evaluations per shrink call.  Each evaluation is
#: five full simulator runs, so this caps shrinking at a few hundred runs.
_MAX_EVALUATIONS = 60


def _clone(program: GeneratedProgram) -> GeneratedProgram:
    return GeneratedProgram.from_dict(copy.deepcopy(program.to_dict()))


def _default_predicate(program: GeneratedProgram) -> bool:
    from repro.fuzz.harness import check_program  # noqa: PLC0415 - import cycle

    return not check_program(program).ok


def shrink_program(
    program: GeneratedProgram,
    is_failing: Optional[Callable[[GeneratedProgram], bool]] = None,
    max_rounds: int = 8,
) -> GeneratedProgram:
    """Return the smallest variant of *program* for which *is_failing* holds.

    ``is_failing`` defaults to "the differential harness reports a failure".
    If the input program does not satisfy the predicate it is returned
    unchanged (there is nothing to reproduce).
    """
    predicate = is_failing if is_failing is not None else _default_predicate
    evaluations = [0]

    def still_fails(candidate: GeneratedProgram) -> bool:
        if evaluations[0] >= _MAX_EVALUATIONS:
            return False
        evaluations[0] += 1
        return predicate(candidate)

    if not still_fails(program):
        return program

    current = _clone(program)
    for _ in range(max_rounds):
        changed = False
        changed |= _drop_threads(current, still_fails)
        changed |= _shrink_params(current, still_fails)
        changed |= _drop_flips(current, still_fails)
        if not changed or evaluations[0] >= _MAX_EVALUATIONS:
            break
    return current


def _drop_threads(
    program: GeneratedProgram, still_fails: Callable[[GeneratedProgram], bool]
) -> bool:
    """Remove threads one at a time while the failure persists."""
    changed = False
    index = 0
    while len(program.threads) > 1 and index < len(program.threads):
        candidate = _clone(program)
        del candidate.threads[index]
        if still_fails(candidate):
            program.threads = candidate.threads
            changed = True
        else:
            index += 1
    return changed


def _shrink_params(
    program: GeneratedProgram, still_fails: Callable[[GeneratedProgram], bool]
) -> bool:
    """Halve iteration-like thread parameters towards 1."""
    changed = False
    for index, thread in enumerate(program.threads):
        for key in _SHRINKABLE_PARAMS:
            value = thread.params.get(key)
            if not isinstance(value, int):
                continue
            while value > 1:
                candidate = _clone(program)
                candidate.threads[index].params[key] = value // 2
                if not still_fails(candidate):
                    break
                value //= 2
                program.threads[index].params[key] = value
                changed = True
    return changed


def _drop_flips(
    program: GeneratedProgram, still_fails: Callable[[GeneratedProgram], bool]
) -> bool:
    """Remove injected bit flips one at a time while the failure persists."""
    changed = False
    for attribute in ("single_flips", "double_flips"):
        flips = getattr(program, attribute)
        index = 0
        while index < len(flips):
            candidate = _clone(program)
            del getattr(candidate, attribute)[index]
            if still_fails(candidate):
                del flips[index]
                changed = True
            else:
                index += 1
    return changed
