"""Seeded differential fuzzing for the simulator's correctness contracts.

``repro.fuzz`` generates small legal-by-construction multiprogrammed
workloads (compute, message traffic, remote memory, guarded-pointer faults,
SECDED bit flips, NACK storms), runs each one under every clock driver the
simulator has — event vs naive kernel, compiled dispatch on and off — and
asserts that all observables are bit-identical, including a snapshot
round-trip at a seeded mid-run cycle.  Failures shrink to a minimal program
and are dumped to replayable repro files.

Entry points: :func:`generate_program`, :func:`check_program`,
:func:`fuzz_many`, and the ``repro fuzz`` CLI command.
"""

from repro.fuzz.generator import (
    GeneratedProgram,
    GeneratorKnobs,
    ThreadSpec,
    generate_program,
)
from repro.fuzz.harness import (
    FuzzOutcome,
    check_program,
    dump_repro,
    first_difference,
    fuzz_many,
    load_repro,
    observe,
)
from repro.fuzz.shrink import shrink_program

__all__ = [
    "FuzzOutcome",
    "GeneratedProgram",
    "GeneratorKnobs",
    "ThreadSpec",
    "check_program",
    "dump_repro",
    "first_difference",
    "fuzz_many",
    "generate_program",
    "load_repro",
    "observe",
    "shrink_program",
]
