"""Differential harness: one generated program, every clock driver.

Each generated program runs under the 2x2 grid of simulation back ends —
event vs naive kernel x compiled dispatch on/off — and every observable the
repository's equivalence suites guard must be identical: final cycle,
machine statistics, per-context microarchitectural state including the
per-reason stall strings, SECDED error counters, and the full event trace.
A fifth run snapshot-round-trips at a seeded mid-run cycle and must land on
the same final state (the PR-3 bit-exact-resume guarantee).

The harness is the fuzzing analogue of
``tests/integration/test_kernel_equivalence.py`` and
``test_dispatch_equivalence.py``: those pin hand-picked workloads, this one
pins whatever :mod:`repro.fuzz.generator` dreams up.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.core.machine import MMachine
from repro.fuzz.generator import GeneratedProgram, GeneratorKnobs, generate_program

#: The differential grid: the baseline back end first, then every variant
#: compared against it.
BASELINE = ("event", True)
VARIANTS = (("event", False), ("naive", True), ("naive", False))


def observe(machine: MMachine) -> Dict[str, object]:
    """Everything the equivalence suites compare, as one JSON-safe dict."""
    stats = machine.stats()
    contexts = []
    for node in machine.nodes:
        for cluster in node.clusters:
            for context in cluster.contexts:
                contexts.append(
                    {
                        "state": context.state.name,
                        "pc": context.pc,
                        "issued": context.instructions_issued,
                        "stall_cycles": context.stall_cycles,
                        "stall_reasons": dict(context.stall_reasons),
                    }
                )
    return json.loads(
        json.dumps(
            {
                "cycle": machine.cycle,
                "summary": stats.summary(),
                "node_stats": stats.node_stats,
                "contexts": contexts,
                "icache_fetches": [
                    cluster.icache.fetches
                    for node in machine.nodes
                    for cluster in node.clusters
                ],
                "secded": [
                    {
                        "corrected": node.memory.sdram.corrected_errors,
                        "detected": node.memory.sdram.detected_errors,
                    }
                    for node in machine.nodes
                ],
                "trace": [str(event) for event in machine.tracer.events],
            }
        )
    )


def first_difference(expected: object, actual: object, path: str = "$") -> Optional[str]:
    """Human-readable path + values of the first mismatch (None when equal)."""
    if type(expected) is not type(actual):
        return f"{path}: type {type(expected).__name__} != {type(actual).__name__}"
    if isinstance(expected, dict):
        for key in expected:
            if key not in actual:
                return f"{path}.{key}: missing"
            diff = first_difference(expected[key], actual[key], f"{path}.{key}")
            if diff is not None:
                return diff
        extra = [key for key in actual if key not in expected]
        if extra:
            return f"{path}: unexpected keys {extra}"
        return None
    if isinstance(expected, list):
        for index, (left, right) in enumerate(zip(expected, actual)):
            diff = first_difference(left, right, f"{path}[{index}]")
            if diff is not None:
                return diff
        if len(expected) != len(actual):
            return f"{path}: length {len(expected)} != {len(actual)}"
        return None
    if expected != actual:
        return f"{path}: {expected!r} != {actual!r}"
    return None


@dataclass
class FuzzOutcome:
    """Result of the full differential + snapshot check for one program."""

    seed: int
    fingerprint: str
    ok: bool = True
    cycles: int = 0
    threads: int = 0
    failures: List[Dict[str, str]] = field(default_factory=list)

    def fail(self, stage: str, detail: str) -> None:
        self.ok = False
        self.failures.append({"stage": stage, "detail": detail})

    def to_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "fingerprint": self.fingerprint,
            "ok": self.ok,
            "cycles": self.cycles,
            "threads": self.threads,
            "failures": list(self.failures),
        }


Mutator = Callable[[MMachine, str, bool], None]


def check_program(
    program: GeneratedProgram, _mutate: Optional[Mutator] = None
) -> FuzzOutcome:
    """Run *program* through the whole grid; report the first mismatch per
    stage.

    ``_mutate`` is the mutation-testing seam: a callable applied to each
    finished machine (before observation) so tests can inject a deliberate
    "kernel bug" and prove the harness catches it.
    """
    outcome = FuzzOutcome(
        seed=program.seed, fingerprint=program.fingerprint, threads=len(program.threads)
    )

    def run_grid_point(kernel: str, compile_dispatch: bool) -> Optional[Dict[str, object]]:
        machine = program.build_machine(kernel=kernel, compile_dispatch=compile_dispatch)
        try:
            program.run(machine)
        except TimeoutError as error:
            outcome.fail(f"run[{kernel},dispatch={compile_dispatch}]", str(error))
            return None
        if _mutate is not None:
            _mutate(machine, kernel, compile_dispatch)
        return observe(machine)

    baseline = run_grid_point(*BASELINE)
    if baseline is None:
        return outcome
    outcome.cycles = baseline["cycle"]

    for kernel, compile_dispatch in VARIANTS:
        observed = run_grid_point(kernel, compile_dispatch)
        if observed is None:
            continue
        diff = first_difference(baseline, observed)
        if diff is not None:
            outcome.fail(f"differential[{kernel},dispatch={compile_dispatch}]", diff)

    _check_snapshot_roundtrip(program, baseline, outcome, _mutate)
    return outcome


def _check_snapshot_roundtrip(
    program: GeneratedProgram,
    baseline: Dict[str, object],
    outcome: FuzzOutcome,
    _mutate: Optional[Mutator],
) -> None:
    """Snapshot at the seeded mid-run cycle, restore from the JSON document,
    run the exact remaining cycle budget, and compare against the
    uninterrupted baseline."""
    final_cycle = int(baseline["cycle"])
    snapshot_cycle = max(1, min(int(final_cycle * program.snapshot_fraction), final_cycle))
    machine = program.build_machine(*BASELINE)
    machine.run(snapshot_cycle)
    document = json.loads(json.dumps(machine.snapshot_document()))
    restored = MMachine.from_snapshot(document)
    if restored.cycle != machine.cycle:
        outcome.fail(
            "snapshot",
            f"restored cycle {restored.cycle} != snapshot cycle {machine.cycle}",
        )
        return
    remaining = final_cycle - restored.cycle
    if remaining > 0:
        restored.run(remaining)
    if _mutate is not None:
        _mutate(restored, "snapshot", True)
    diff = first_difference(baseline, observe(restored))
    if diff is not None:
        outcome.fail(f"snapshot[cycle={snapshot_cycle}]", diff)


# ---------------------------------------------------------------------------
# Campaign driver (the `repro fuzz` engine)
# ---------------------------------------------------------------------------


def dump_repro(
    program: GeneratedProgram,
    outcome: FuzzOutcome,
    path: str,
    shrunk: Optional[GeneratedProgram] = None,
) -> str:
    """Write a self-contained repro file a fresh process can replay."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    payload = {
        "fuzz_repro": 1,
        "failure": outcome.to_dict(),
        "program": program.to_dict(),
        "shrunk": shrunk.to_dict() if shrunk is not None else None,
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_repro(path: str) -> GeneratedProgram:
    """Load a repro file; prefers the shrunk program when present."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) or "program" not in payload:
        raise ValueError(f"{path} is not a fuzz repro file")
    data = payload.get("shrunk") or payload["program"]
    return GeneratedProgram.from_dict(data)


def fuzz_many(
    seed: int = 0,
    runs: int = 10,
    knobs: Optional[GeneratorKnobs] = None,
    shrink: bool = False,
    repro_dir: Optional[str] = None,
    log: Optional[Callable[[str], None]] = None,
) -> Dict[str, object]:
    """Check ``runs`` consecutive seeds starting at ``seed``.

    Returns a JSON-safe campaign summary.  On failure, the offending program
    (optionally shrunk first) is dumped to ``repro_dir/fuzz-seed-N.json``.
    """
    from repro.fuzz.shrink import shrink_program  # noqa: PLC0415 - import cycle

    emit = log if log is not None else (lambda message: None)
    summary: Dict[str, object] = {
        "seed": seed,
        "runs": runs,
        "knobs": (knobs or GeneratorKnobs()).to_params(),
        "passed": 0,
        "failed": [],
        "repro_files": [],
    }
    for current_seed in range(seed, seed + runs):
        program = generate_program(current_seed, knobs)
        outcome = check_program(program)
        if outcome.ok:
            summary["passed"] = int(summary["passed"]) + 1
            emit(
                f"seed {current_seed}: ok "
                f"({outcome.threads} threads, {outcome.cycles} cycles)"
            )
            continue
        emit(f"seed {current_seed}: FAIL {outcome.failures[0]['stage']}: "
             f"{outcome.failures[0]['detail']}")
        entry = outcome.to_dict()
        shrunk = None
        if shrink:
            shrunk = shrink_program(program)
            entry["shrunk_threads"] = len(shrunk.threads)
            emit(
                f"seed {current_seed}: shrunk {len(program.threads)} -> "
                f"{len(shrunk.threads)} threads"
            )
        if repro_dir is not None:
            path = os.path.join(repro_dir, f"fuzz-seed-{current_seed}.json")
            dump_repro(program, outcome, path, shrunk=shrunk)
            entry["repro_file"] = path
            summary["repro_files"].append(path)
            emit(f"seed {current_seed}: repro written to {path}")
        summary["failed"].append(entry)
    summary["ok"] = not summary["failed"]
    return summary
