"""Register name spaces of the MAP cluster.

Each H-Thread context (one per V-Thread slot per cluster) holds:

* 16 general-purpose 64-bit integer registers   ``i0 .. i15``
* 16 general-purpose 64-bit floating registers  ``f0 .. f15``
* 4  local single-bit condition-code registers  ``cc0 .. cc3``
* its cluster's copy of 8 global condition-code registers ``gcc0 .. gcc7``
  (four *pairs*; cluster ``k`` may broadcast only to the pair
  ``gcc(2k)``/``gcc(2k+1)`` but may read and empty any local copy -- see
  Section 3.1 of the paper)
* 8 message-composition registers ``m0 .. m7`` used as the body of a
  ``SEND``

Every register has an associated *scoreboard* bit ("full"/"empty") used for
synchronisation; the scoreboard itself lives in
:mod:`repro.cluster.regfile`.

In addition a handful of *special*, queue- or identity-mapped registers are
architecturally visible:

* ``net``  -- head of the hardware message queue of the cluster's priority
  (readable only by the event V-Thread on clusters 2 and 3); reading it
  dequeues one word and stalls while the queue is empty.
* ``evq``  -- head of the hardware event queue of the cluster's event class
  (readable only by the event V-Thread on clusters 0 and 1).
* ``nid``, ``cid``, ``vid`` -- read-only identity registers holding the node
  identifier, cluster index and V-Thread slot of the reading H-Thread.
* ``zero`` -- always reads as integer 0.

A destination may also name a register of *another* H-Thread in the same
V-Thread, written ``c<k>.<reg>`` (e.g. ``c1.i7``); such writes travel over
the C-Switch and set the destination's scoreboard bit full on arrival.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass
from typing import Optional

NUM_INT_REGS = 16
NUM_FP_REGS = 16
NUM_CC_REGS = 4
NUM_GCC_REGS = 8
NUM_MC_REGS = 8

#: Number of clusters on a MAP chip (fixed by the architecture; kept here so
#: the ISA layer can validate ``c<k>.<reg>`` references without importing the
#: hardware configuration).
NUM_CLUSTERS = 4


class RegFile(enum.Enum):
    """The architectural register file a register reference names."""

    INT = "i"
    FP = "f"
    CC = "cc"
    GCC = "gcc"
    MC = "m"
    SPECIAL = "special"

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"RegFile.{self.name}"


#: Names of the special registers and whether they may be written.
SPECIAL_REGISTERS = {
    "net": {"writable": False, "queue": True},
    "evq": {"writable": False, "queue": True},
    "nid": {"writable": False, "queue": False},
    "cid": {"writable": False, "queue": False},
    "vid": {"writable": False, "queue": False},
    "zero": {"writable": False, "queue": False},
}

_FILE_SIZES = {
    RegFile.INT: NUM_INT_REGS,
    RegFile.FP: NUM_FP_REGS,
    RegFile.CC: NUM_CC_REGS,
    RegFile.GCC: NUM_GCC_REGS,
    RegFile.MC: NUM_MC_REGS,
}

_REGISTER_RE = re.compile(
    r"^(?:c(?P<cluster>\d)\.)?"
    r"(?P<body>(?P<prefix>gcc|cc|i|f|m)(?P<index>\d+)|net|evq|nid|cid|vid|zero)$"
)

_PREFIX_TO_FILE = {
    "i": RegFile.INT,
    "f": RegFile.FP,
    "cc": RegFile.CC,
    "gcc": RegFile.GCC,
    "m": RegFile.MC,
}


@dataclass(frozen=True)
class RegisterRef:
    """A reference to an architectural register.

    Parameters
    ----------
    file:
        Which register file the reference names.
    index:
        Register index within the file.  For :attr:`RegFile.SPECIAL` the
        index is unused and ``name`` identifies the register.
    cluster:
        ``None`` for the issuing H-Thread's own cluster, otherwise the index
        of the target cluster in the same V-Thread (inter-cluster register
        write over the C-Switch).
    name:
        Only used for special registers (``net``, ``evq``, ...).
    """

    file: RegFile
    index: int = 0
    cluster: Optional[int] = None
    name: str = ""

    def __post_init__(self) -> None:
        if self.file is RegFile.SPECIAL:
            if self.name not in SPECIAL_REGISTERS:
                raise ValueError(f"unknown special register {self.name!r}")
        else:
            size = _FILE_SIZES[self.file]
            if not 0 <= self.index < size:
                raise ValueError(
                    f"register index {self.index} out of range for "
                    f"{self.file.name} file (size {size})"
                )
        if self.cluster is not None and not 0 <= self.cluster < NUM_CLUSTERS:
            raise ValueError(f"cluster index {self.cluster} out of range")

    # -- classification helpers -------------------------------------------------

    @property
    def is_remote(self) -> bool:
        """True when the reference targets a register on another cluster."""
        return self.cluster is not None

    @property
    def is_special(self) -> bool:
        return self.file is RegFile.SPECIAL

    @property
    def is_queue(self) -> bool:
        """True for queue-mapped special registers (``net``, ``evq``)."""
        return self.is_special and SPECIAL_REGISTERS[self.name]["queue"]

    @property
    def is_identity(self) -> bool:
        """True for the read-only identity registers (``nid``/``cid``/``vid``/``zero``)."""
        return self.is_special and not SPECIAL_REGISTERS[self.name]["queue"]

    @property
    def is_float(self) -> bool:
        return self.file is RegFile.FP

    # -- formatting -------------------------------------------------------------

    def __str__(self) -> str:
        if self.file is RegFile.SPECIAL:
            body = self.name
        else:
            body = f"{self.file.value}{self.index}"
        if self.cluster is not None:
            return f"c{self.cluster}.{body}"
        return body

    def local(self) -> "RegisterRef":
        """Return the same register reference without the cluster qualifier."""
        if self.cluster is None:
            return self
        return RegisterRef(self.file, self.index, None, self.name)


def parse_register(text: str) -> RegisterRef:
    """Parse a textual register reference.

    Accepts the plain forms (``i3``, ``f0``, ``cc1``, ``gcc5``, ``m2``,
    ``net``, ``evq``, ``nid``, ``cid``, ``vid``, ``zero``) and the
    cluster-qualified form ``c<k>.<reg>`` used for inter-cluster register
    writes.

    Raises
    ------
    ValueError
        If the text does not name a register.
    """
    match = _REGISTER_RE.match(text.strip())
    if match is None:
        raise ValueError(f"not a register: {text!r}")
    cluster = match.group("cluster")
    cluster_idx = int(cluster) if cluster is not None else None
    body = match.group("body")
    if body in SPECIAL_REGISTERS:
        if cluster_idx is not None:
            raise ValueError(f"special register {body!r} cannot be cluster-qualified")
        return RegisterRef(RegFile.SPECIAL, 0, None, body)
    prefix = match.group("prefix")
    index = int(match.group("index"))
    return RegisterRef(_PREFIX_TO_FILE[prefix], index, cluster_idx)


def is_register(text: str) -> bool:
    """Return True when *text* parses as a register reference."""
    return _REGISTER_RE.match(text.strip()) is not None


# ---------------------------------------------------------------------------
# Register-spec packing.
#
# The runtime's event records and the privileged ``xregwr`` operation refer to
# an arbitrary thread register with a packed integer "regspec" so that event
# and message handlers (which only manipulate 64-bit integers) can carry a
# register destination around.  The packing is part of the architectural
# contract between hardware (which emits regspecs in event records) and the
# software runtime (which passes them to ``xregwr``).
# ---------------------------------------------------------------------------

_FILE_CODES = {
    RegFile.INT: 0,
    RegFile.FP: 1,
    RegFile.CC: 2,
    RegFile.GCC: 3,
    RegFile.MC: 4,
}
_CODE_FILES = {code: file for file, code in _FILE_CODES.items()}

REGSPEC_BITS = 16


def pack_regspec(vthread: int, cluster: int, ref: RegisterRef) -> int:
    """Pack a (V-Thread slot, cluster, register) triple into a 16-bit regspec.

    Layout (least-significant bit first)::

        [4:0]   register index
        [7:5]   register-file code (int/fp/cc/gcc/mc)
        [10:8]  cluster index
        [14:11] V-Thread slot
    """
    if ref.is_special:
        raise ValueError("special registers cannot be packed into a regspec")
    if not 0 <= vthread < 16:
        raise ValueError(f"V-Thread slot {vthread} out of range")
    if not 0 <= cluster < 8:
        raise ValueError(f"cluster {cluster} out of range")
    return (
        (ref.index & 0x1F)
        | (_FILE_CODES[ref.file] << 5)
        | ((cluster & 0x7) << 8)
        | ((vthread & 0xF) << 11)
    )


def unpack_regspec(spec: int):
    """Unpack a regspec into ``(vthread, cluster, RegisterRef)``."""
    index = spec & 0x1F
    file_code = (spec >> 5) & 0x7
    cluster = (spec >> 8) & 0x7
    vthread = (spec >> 11) & 0xF
    if file_code not in _CODE_FILES:
        raise ValueError(f"invalid register-file code in regspec {spec:#x}")
    ref = RegisterRef(_CODE_FILES[file_code], index)
    return vthread, cluster, ref
