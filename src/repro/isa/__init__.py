"""MAP instruction set architecture.

The M-Machine's MAP chip executes 3-wide instructions; each instruction
contains at most one operation for each of the three function units of a
cluster (integer unit, memory unit, floating-point unit).  This package
defines:

* :mod:`repro.isa.registers` -- register name spaces (integer, floating
  point, condition-code, global condition-code, message-composition and
  special queue-mapped registers) and references to registers of other
  clusters in the same V-Thread.
* :mod:`repro.isa.operations` -- the operation set (opcodes, operand shapes,
  latencies, privilege and unit requirements).
* :mod:`repro.isa.instruction` -- the 3-wide instruction container.
* :mod:`repro.isa.program`     -- an assembled program (instructions plus
  label map).
* :mod:`repro.isa.assembler`   -- a small two-pass assembler for the textual
  MAP assembly used throughout the repository.
"""

from repro.isa.registers import (
    RegFile,
    RegisterRef,
    parse_register,
    NUM_INT_REGS,
    NUM_FP_REGS,
    NUM_CC_REGS,
    NUM_GCC_REGS,
    NUM_MC_REGS,
)
from repro.isa.operations import Opcode, Operation, OpClass, Unit, OPCODES
from repro.isa.instruction import Instruction
from repro.isa.program import Program
from repro.isa.assembler import assemble, AssemblyError

__all__ = [
    "RegFile",
    "RegisterRef",
    "parse_register",
    "NUM_INT_REGS",
    "NUM_FP_REGS",
    "NUM_CC_REGS",
    "NUM_GCC_REGS",
    "NUM_MC_REGS",
    "Opcode",
    "Operation",
    "OpClass",
    "Unit",
    "OPCODES",
    "Instruction",
    "Program",
    "assemble",
    "AssemblyError",
]
