"""A two-pass assembler for the textual MAP assembly.

Syntax
------

* One instruction per line.  Up to three operations separated by ``|``::

      loop: add i1, i1, #1 | ld f2, i3, #8 | fadd f4, f4, f2

* ``;`` and ``#!`` start a comment (``#`` alone introduces an immediate, so
  comments use ``;``).
* Labels are identifiers followed by ``:`` at the start of a line; a label
  may stand on its own line or prefix an instruction.
* Operands are separated by commas.  An operand is either a register
  (``i3``, ``f0``, ``cc1``, ``gcc5``, ``m2``, ``net``, ``evq``, ``nid``,
  ``cid``, ``vid``, ``zero``, or the cluster-qualified ``c2.i7``), an
  immediate (``#42``, ``#-3``, ``#1.5``, ``#0x1f`` -- the ``#`` is optional
  for plain integers), or a label reference (for branches).

Slot assignment
---------------

Floating-point operations go to the FPU slot, memory/system operations to the
memory-unit slot, and integer/control operations to the integer-ALU slot --
falling back to the memory-unit slot (the second integer ALU) when the
integer slot is already taken, mirroring the two-integer-ALU cluster of the
paper.  Over-committing a slot is an assembly error.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.isa.instruction import Instruction
from repro.isa.operations import (
    LabelRef,
    OPCODES,
    Operation,
    OpClass,
    Unit,
)
from repro.isa.registers import RegisterRef, is_register, parse_register


class AssemblyError(Exception):
    """Raised for any syntactic or semantic error in an assembly source."""

    def __init__(self, message: str, line: Optional[int] = None, text: str = ""):
        self.line = line
        self.text = text
        location = f" (line {line})" if line is not None else ""
        detail = f": {text.strip()!r}" if text else ""
        super().__init__(f"{message}{location}{detail}")


_LABEL_RE = re.compile(r"^\s*([A-Za-z_][A-Za-z0-9_.]*)\s*:\s*(.*)$")
_INT_RE = re.compile(r"^[+-]?(0x[0-9a-fA-F]+|\d+)$")
_FLOAT_RE = re.compile(r"^[+-]?(\d+\.\d*|\.\d+|\d+\.)([eE][+-]?\d+)?$|^[+-]?\d+[eE][+-]?\d+$")


#: Opcodes that take no destination operands; every operand is a source.
_NO_DEST_OPCODES = {
    "st", "st.ef", "st.xf", "st.xe", "st.ff", "pst",
    "send", "sendp",
    "xregwr", "ltlbw", "bsset", "syncset",
    "br", "brz", "jmp", "halt", "nop", "mark",
}

#: Opcodes for which *every* operand is a destination.
_ALL_DEST_OPCODES = {"empty"}

#: Minimum/maximum operand counts per opcode (None means unchecked).
_ARITY: Dict[str, Tuple[int, Optional[int]]] = {
    "nop": (0, 0),
    "halt": (0, 0),
    "mark": (1, 1),
    "mov": (2, 2),
    "not": (2, 2),
    "neg": (2, 2),
    "empty": (1, None),
    "br": (2, 2),
    "brz": (2, 2),
    "jmp": (1, 1),
    "ld": (2, 3),
    "ld.ff": (2, 3),
    "ld.fe": (2, 3),
    "ld.xf": (2, 3),
    "ld.xe": (2, 3),
    "st": (2, 3),
    "st.ef": (2, 3),
    "st.xf": (2, 3),
    "st.xe": (2, 3),
    "st.ff": (2, 3),
    "pld": (2, 3),
    "pst": (2, 3),
    "send": (3, 4),
    "sendp": (3, 4),
    "xregwr": (2, 2),
    "ltlbw": (3, 3),
    "ltlbp": (2, 2),
    "gprobe": (2, 2),
    "bsset": (2, 2),
    "bsget": (2, 2),
    "syncset": (2, 2),
    "setptr": (4, 4),
    "ptrinfo": (3, 3),
    "lea": (3, 3),
    "fmadd": (4, 4),
    "fmov": (2, 2),
    "fneg": (2, 2),
    "fabs": (2, 2),
    "itof": (2, 2),
    "ftoi": (2, 2),
}


def _parse_operand(token: str, line_no: int, text: str):
    token = token.strip()
    if not token:
        raise AssemblyError("empty operand", line_no, text)
    if token.startswith("#"):
        literal = token[1:]
        if _INT_RE.match(literal):
            return int(literal, 0)
        if _FLOAT_RE.match(literal):
            return float(literal)
        raise AssemblyError(f"bad immediate {token!r}", line_no, text)
    if is_register(token):
        return parse_register(token)
    if _INT_RE.match(token):
        return int(token, 0)
    if _FLOAT_RE.match(token):
        return float(token)
    if re.match(r"^[A-Za-z_][A-Za-z0-9_.]*$", token):
        return LabelRef(token)
    raise AssemblyError(f"cannot parse operand {token!r}", line_no, text)


def _split_operands(body: str) -> List[str]:
    return [tok for tok in (t.strip() for t in body.split(",")) if tok]


def _build_operation(mnemonic: str, operands: List, line_no: int, text: str) -> Operation:
    opcode = OPCODES.get(mnemonic)
    if opcode is None:
        raise AssemblyError(f"unknown opcode {mnemonic!r}", line_no, text)

    arity = _ARITY.get(mnemonic)
    if arity is not None:
        lo, hi = arity
        if len(operands) < lo or (hi is not None and len(operands) > hi):
            expected = f"{lo}" if hi == lo else f"{lo}..{'∞' if hi is None else hi}"
            raise AssemblyError(
                f"{mnemonic} expects {expected} operands, got {len(operands)}",
                line_no,
                text,
            )
    elif opcode.op_class in (OpClass.INT, OpClass.FP) and len(operands) != 3:
        raise AssemblyError(
            f"{mnemonic} expects 3 operands (dst, src1, src2), got {len(operands)}",
            line_no,
            text,
        )

    if mnemonic in _ALL_DEST_OPCODES:
        dests, srcs = operands, []
    elif mnemonic in _NO_DEST_OPCODES:
        dests, srcs = [], operands
    else:
        if not operands:
            raise AssemblyError(f"{mnemonic} requires a destination operand", line_no, text)
        dests, srcs = operands[:1], operands[1:]

    for dest in dests:
        if not isinstance(dest, RegisterRef):
            raise AssemblyError(
                f"destination of {mnemonic} must be a register, got {dest!r}", line_no, text
            )
        if dest.is_identity or (dest.is_queue):
            raise AssemblyError(
                f"special register {dest} cannot be a destination", line_no, text
            )

    return Operation(opcode=opcode, dests=list(dests), srcs=list(srcs))


def _assign_slot(instr: Instruction, op: Operation, line_no: int, text: str) -> None:
    opcode = op.opcode
    if opcode.units == (Unit.FPU,):
        preferred = [Unit.FPU]
    elif opcode.units == (Unit.MEM,):
        preferred = [Unit.MEM]
    else:
        preferred = [Unit.IALU, Unit.MEM]
    for unit in preferred:
        if unit not in instr.ops:
            instr.add(op, unit)
            return
    raise AssemblyError(
        f"no free slot for operation {op} (slots used: "
        f"{', '.join(u.value for u in instr.ops)})",
        line_no,
        text,
    )


def _parse_line(text: str, line_no: int) -> Tuple[Optional[str], Optional[Instruction]]:
    """Parse one source line into (label, instruction)."""
    # Strip comments.  ';' always starts a comment.
    code = text.split(";", 1)[0].rstrip()
    if not code.strip():
        return None, None

    label = None
    match = _LABEL_RE.match(code)
    if match:
        label = match.group(1)
        code = match.group(2)
    if not code.strip():
        return label, None

    instr = Instruction(label=label, source_line=line_no, source_text=text.strip())
    for op_text in code.split("|"):
        op_text = op_text.strip()
        if not op_text:
            continue
        pieces = op_text.split(None, 1)
        mnemonic = pieces[0].lower()
        operand_text = pieces[1] if len(pieces) > 1 else ""
        operands = [
            _parse_operand(tok, line_no, text) for tok in _split_operands(operand_text)
        ]
        op = _build_operation(mnemonic, operands, line_no, text)
        _assign_slot(instr, op, line_no, text)
    if instr.is_empty:
        return label, None
    return label, instr


def _resolve_labels(instructions: List[Instruction], labels: Dict[str, int]) -> None:
    for index, instr in enumerate(instructions):
        for op in instr:
            new_srcs = []
            for src in op.srcs:
                if isinstance(src, LabelRef):
                    if src.name not in labels:
                        raise AssemblyError(
                            f"undefined label {src.name!r}",
                            instr.source_line,
                            instr.source_text,
                        )
                    op.target = labels[src.name]
                new_srcs.append(src)
            op.srcs = new_srcs
            # A branch with an immediate integer target is taken as an absolute
            # instruction index (used by generated code).
            if op.opcode.is_branch and op.target is None:
                for src in op.srcs:
                    if isinstance(src, int) and not isinstance(src, bool):
                        op.target = src
                        break


def assemble(source: str, name: str = "program") -> "Program":
    """Assemble *source* into a :class:`~repro.isa.program.Program`.

    Raises
    ------
    AssemblyError
        For unknown opcodes, malformed operands, slot over-commitment,
        undefined labels or duplicate labels.
    """
    from repro.isa.program import Program  # noqa: PLC0415

    instructions: List[Instruction] = []
    labels: Dict[str, int] = {}
    pending_labels: List[Tuple[str, int]] = []

    for line_no, raw in enumerate(source.splitlines(), start=1):
        label, instr = _parse_line(raw, line_no)
        if label is not None:
            if label in labels or any(label == existing for existing, _ in pending_labels):
                raise AssemblyError(f"duplicate label {label!r}", line_no, raw)
            pending_labels.append((label, line_no))
        if instr is not None:
            for pending, _ in pending_labels:
                labels[pending] = len(instructions)
            pending_labels.clear()
            instructions.append(instr)

    # Labels at end of program point one past the last instruction.
    for pending, _ in pending_labels:
        labels[pending] = len(instructions)

    _resolve_labels(instructions, labels)
    return Program(name=name, instructions=instructions, labels=labels, source=source)
