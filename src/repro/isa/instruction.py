"""The 3-wide MAP instruction.

"Each map instruction contains 1, 2, or 3 operations, one for each ALU.  All
operations in a single instruction issue together but may complete out of
order." (Section 2 of the paper.)

An :class:`Instruction` therefore holds at most one operation per
:class:`~repro.isa.operations.Unit`.  The issue logic of a cluster treats the
instruction as the unit of issue: the instruction is held in the
synchronization stage until *every* operation's source operands are full and
every required resource is available, then all of its operations issue in the
same cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.isa.operations import Operation, Unit


@dataclass
class Instruction:
    """A single 3-wide instruction."""

    ops: Dict[Unit, Operation] = field(default_factory=dict)
    label: Optional[str] = None
    source_line: Optional[int] = None
    source_text: str = ""

    def add(self, op: Operation, unit: Unit) -> None:
        """Assign *op* to *unit*; raises if the slot is already occupied."""
        if unit in self.ops:
            raise ValueError(f"instruction already has an operation in the {unit.value} slot")
        op.unit = unit
        self.ops[unit] = op

    # -- queries ---------------------------------------------------------------

    def __iter__(self) -> Iterator[Operation]:
        return iter(self.ops.values())

    def __len__(self) -> int:
        return len(self.ops)

    @property
    def operations(self) -> List[Operation]:
        return list(self.ops.values())

    def op_in(self, unit: Unit) -> Optional[Operation]:
        return self.ops.get(unit)

    @property
    def has_branch(self) -> bool:
        return any(op.opcode.is_branch for op in self.ops.values())

    @property
    def has_memory(self) -> bool:
        return any(op.opcode.is_memory or op.opcode.is_send for op in self.ops.values())

    @property
    def is_empty(self) -> bool:
        return not self.ops

    # -- formatting ------------------------------------------------------------

    def __str__(self) -> str:
        parts = []
        for unit in (Unit.IALU, Unit.MEM, Unit.FPU):
            op = self.ops.get(unit)
            if op is not None:
                parts.append(str(op))
        body = " | ".join(parts) if parts else "nop"
        if self.label:
            return f"{self.label}: {body}"
        return body
