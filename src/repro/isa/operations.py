"""Operation set of the MAP cluster.

A MAP instruction contains up to three *operations*, one per function unit:

* the **integer unit** executes arithmetic/logic operations, comparisons,
  condition-code writes, branches and the ``empty`` scoreboard operation;
* the **memory unit** (the second integer ALU of the cluster) executes loads,
  stores, the atomic ``send`` instruction and the privileged
  memory-management operations used by the software runtime, and can also
  execute plain integer operations;
* the **floating-point unit** executes floating-point arithmetic and
  conversions.

Each opcode carries:

``op_class``
    The semantic class (integer / memory / floating point / control).
``units``
    Which function units may execute it.
``latency``
    The result latency in cycles for operations whose result is produced by
    the function unit itself (memory operations get their latency from the
    memory system instead).
``privileged``
    Privileged operations may only be issued from the event or exception
    V-Thread slots; issuing one from a user slot raises a protection
    exception.

The latencies are configuration defaults; the cluster model reads them from
:class:`repro.core.config.ClusterConfig` which is initialised from this
table.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

from repro.isa.registers import RegisterRef


class Unit(enum.Enum):
    """Function units of a cluster."""

    IALU = "ialu"
    MEM = "mem"
    FPU = "fpu"


class OpClass(enum.Enum):
    """Semantic class of an operation."""

    INT = "int"
    MEM = "mem"
    FP = "fp"
    CONTROL = "control"
    SYSTEM = "system"


@dataclass(frozen=True)
class Opcode:
    """Static description of one opcode."""

    name: str
    op_class: OpClass
    units: Tuple[Unit, ...]
    latency: int = 1
    privileged: bool = False
    is_branch: bool = False
    is_memory: bool = False
    is_store: bool = False
    is_send: bool = False
    reads_queue: bool = False
    description: str = ""

    def __str__(self) -> str:
        return self.name


def _op(
    name: str,
    op_class: OpClass,
    units: Sequence[Unit],
    latency: int = 1,
    **kwargs,
) -> Opcode:
    return Opcode(name=name, op_class=op_class, units=tuple(units), latency=latency, **kwargs)


_INT_UNITS = (Unit.IALU, Unit.MEM)
_MEM_UNITS = (Unit.MEM,)
_FP_UNITS = (Unit.FPU,)


def _integer_ops() -> List[Opcode]:
    ops = []
    arith = {
        "add": "integer addition",
        "sub": "integer subtraction",
        "mul": "integer multiplication",
        "div": "integer division (truncating)",
        "mod": "integer remainder",
        "and": "bitwise AND",
        "or": "bitwise OR",
        "xor": "bitwise XOR",
        "shl": "logical shift left",
        "shr": "logical shift right",
        "min": "integer minimum",
        "max": "integer maximum",
    }
    lat = {"mul": 2, "div": 8, "mod": 8}
    for name, desc in arith.items():
        ops.append(_op(name, OpClass.INT, _INT_UNITS, lat.get(name, 1), description=desc))
    unary = {
        "not": "bitwise complement",
        "neg": "integer negation",
        "mov": "copy register or immediate",
    }
    for name, desc in unary.items():
        ops.append(_op(name, OpClass.INT, _INT_UNITS, 1, description=desc))
    compare = {
        "eq": "set destination to 1 if equal",
        "ne": "set destination to 1 if not equal",
        "lt": "set destination to 1 if less than",
        "le": "set destination to 1 if less or equal",
        "gt": "set destination to 1 if greater than",
        "ge": "set destination to 1 if greater or equal",
    }
    for name, desc in compare.items():
        ops.append(_op(name, OpClass.INT, _INT_UNITS, 1, description=desc))
    ops.append(
        _op(
            "empty",
            OpClass.INT,
            _INT_UNITS,
            1,
            description="mark the listed registers' scoreboard bits empty",
        )
    )
    ops.append(
        _op(
            "lea",
            OpClass.INT,
            _INT_UNITS,
            1,
            description="guarded-pointer add with segment bounds check",
        )
    )
    ops.append(
        _op(
            "setptr",
            OpClass.INT,
            _INT_UNITS,
            1,
            privileged=True,
            description="forge a guarded pointer (privileged)",
        )
    )
    ops.append(
        _op(
            "ptrinfo",
            OpClass.INT,
            _INT_UNITS,
            1,
            description="extract the permission/length fields of a guarded pointer",
        )
    )
    ops.append(_op("nop", OpClass.INT, _INT_UNITS, 1, description="no operation"))
    ops.append(
        _op(
            "mark",
            OpClass.INT,
            _INT_UNITS,
            1,
            description="debug/trace marker; records (cycle, id) in the machine trace",
        )
    )
    return ops


def _control_ops() -> List[Opcode]:
    return [
        _op("br", OpClass.CONTROL, _INT_UNITS, 1, is_branch=True,
            description="branch to label if the source register is non-zero"),
        _op("brz", OpClass.CONTROL, _INT_UNITS, 1, is_branch=True,
            description="branch to label if the source register is zero"),
        _op("jmp", OpClass.CONTROL, _INT_UNITS, 1, is_branch=True,
            description="jump to label or register target (reading 'net' dispatches a message)"),
        _op("halt", OpClass.CONTROL, _INT_UNITS, 1, is_branch=True,
            description="terminate this H-Thread"),
    ]


def _memory_ops() -> List[Opcode]:
    ops = []
    # Plain and synchronising loads/stores.  The two-letter suffix gives the
    # precondition and postcondition on the word's synchronisation bit:
    #   x = don't care / leave unchanged, f = full, e = empty.
    load_variants = {
        "ld": ("x", "x", "load word"),
        "ld.ff": ("f", "f", "load word; requires sync bit full, leaves it full"),
        "ld.fe": ("f", "e", "load word; requires sync bit full, leaves it empty (consume)"),
        "ld.xf": ("x", "f", "load word; sets sync bit full"),
        "ld.xe": ("x", "e", "load word; sets sync bit empty"),
    }
    store_variants = {
        "st": ("x", "x", "store word"),
        "st.ef": ("e", "f", "store word; requires sync bit empty, sets it full (produce)"),
        "st.xf": ("x", "f", "store word; sets sync bit full"),
        "st.xe": ("x", "e", "store word; sets sync bit empty"),
        "st.ff": ("f", "f", "store word; requires sync bit full, leaves it full"),
    }
    for name, (_pre, _post, desc) in load_variants.items():
        ops.append(
            _op(name, OpClass.MEM, _MEM_UNITS, 1, is_memory=True, description=desc)
        )
    for name, (_pre, _post, desc) in store_variants.items():
        ops.append(
            _op(name, OpClass.MEM, _MEM_UNITS, 1, is_memory=True, is_store=True, description=desc)
        )
    ops.append(
        _op("send", OpClass.MEM, _MEM_UNITS, 1, is_send=True,
            description="atomically launch a message: send <dest-va>, <dip>, #<len> [, #<priority>]")
    )
    ops.append(
        _op("sendp", OpClass.MEM, _MEM_UNITS, 1, is_send=True, privileged=True,
            description="privileged physical-destination send (system replies, priority 1)")
    )
    return ops


def _system_ops() -> List[Opcode]:
    """Privileged operations used by the software runtime (event handlers)."""
    return [
        _op("xregwr", OpClass.SYSTEM, _MEM_UNITS, 1, privileged=True,
            description="write a value into an arbitrary thread register named by a packed regspec"),
        _op("ltlbw", OpClass.SYSTEM, _MEM_UNITS, 1, privileged=True,
            description="install a translation: ltlbw <va>, <pa-frame>, <flags>"),
        _op("ltlbp", OpClass.SYSTEM, _MEM_UNITS, 1, privileged=True,
            description="probe the LTLB/page table: destination gets the physical frame or -1"),
        _op("gprobe", OpClass.SYSTEM, _MEM_UNITS, 1, privileged=True,
            description="probe the GTLB: destination gets the home node id of a virtual address or -1"),
        _op("bsset", OpClass.SYSTEM, _MEM_UNITS, 1, privileged=True,
            description="set the block-status bits of the block containing <va>"),
        _op("bsget", OpClass.SYSTEM, _MEM_UNITS, 1, privileged=True,
            description="read the block-status bits of the block containing <va>"),
        _op("pld", OpClass.SYSTEM, _MEM_UNITS, 1, privileged=True, is_memory=True,
            description="physical (untranslated) load"),
        _op("pst", OpClass.SYSTEM, _MEM_UNITS, 1, privileged=True, is_memory=True, is_store=True,
            description="physical (untranslated) store"),
        _op("syncset", OpClass.SYSTEM, _MEM_UNITS, 1, privileged=True,
            description="set the synchronisation bit of the word at <va> to <value>"),
    ]


def _fp_ops() -> List[Opcode]:
    ops = []
    binary = {
        "fadd": ("floating-point addition", 3),
        "fsub": ("floating-point subtraction", 3),
        "fmul": ("floating-point multiplication", 3),
        "fdiv": ("floating-point division", 10),
        "fmin": ("floating-point minimum", 1),
        "fmax": ("floating-point maximum", 1),
    }
    for name, (desc, lat) in binary.items():
        ops.append(_op(name, OpClass.FP, _FP_UNITS, lat, description=desc))
    ops.append(_op("fmadd", OpClass.FP, _FP_UNITS, 3,
                   description="fused multiply-add: dst = src1*src2 + src3"))
    unary = {
        "fneg": "floating-point negation",
        "fabs": "floating-point absolute value",
        "fmov": "floating-point copy (register or immediate)",
        "itof": "convert integer to floating point",
        "ftoi": "convert floating point to integer (truncating)",
    }
    for name, desc in unary.items():
        ops.append(_op(name, OpClass.FP, _FP_UNITS, 1, description=desc))
    compare = {
        "feq": "set destination to 1 if equal",
        "flt": "set destination to 1 if less than",
        "fle": "set destination to 1 if less or equal",
    }
    for name, desc in compare.items():
        ops.append(_op(name, OpClass.FP, _FP_UNITS, 1, description=desc))
    return ops


def _build_opcode_table() -> dict:
    table = {}
    for op in _integer_ops() + _control_ops() + _memory_ops() + _system_ops() + _fp_ops():
        if op.name in table:
            raise RuntimeError(f"duplicate opcode {op.name}")
        table[op.name] = op
    return table


#: The full opcode table, keyed by mnemonic.
OPCODES = _build_opcode_table()


#: Synchronisation-bit pre/post conditions for the load/store variants.
#: Maps mnemonic -> (precondition, postcondition); conditions are one of
#: ``"x"`` (don't care / unchanged), ``"f"`` (full) or ``"e"`` (empty).
SYNC_CONDITIONS = {
    "ld": ("x", "x"),
    "ld.ff": ("f", "f"),
    "ld.fe": ("f", "e"),
    "ld.xf": ("x", "f"),
    "ld.xe": ("x", "e"),
    "st": ("x", "x"),
    "st.ef": ("e", "f"),
    "st.xf": ("x", "f"),
    "st.xe": ("x", "e"),
    "st.ff": ("f", "f"),
    "pld": ("x", "x"),
    "pst": ("x", "x"),
}


#: Operand type used for immediates and label references.
Immediate = Union[int, float]


@dataclass(frozen=True)
class LabelRef:
    """A reference to a program label, resolved by the assembler."""

    name: str

    def __str__(self) -> str:
        return self.name


Operand = Union[RegisterRef, Immediate, LabelRef]


@dataclass
class Operation:
    """One operation of a 3-wide MAP instruction.

    Attributes
    ----------
    opcode:
        The :class:`Opcode` describing the operation.
    dests:
        Destination operands.  Most operations have zero or one destination;
        ``empty`` lists every register it marks empty.
    srcs:
        Source operands (registers, immediates or label references).
    unit:
        The function unit the assembler assigned the operation to.
    target:
        Resolved branch target (instruction index) for control operations
        whose source is a label; filled in by the assembler.
    """

    opcode: Opcode
    dests: List[RegisterRef] = field(default_factory=list)
    srcs: List[Operand] = field(default_factory=list)
    unit: Optional[Unit] = None
    target: Optional[int] = None

    # -- convenience -----------------------------------------------------------

    @property
    def name(self) -> str:
        return self.opcode.name

    @property
    def dest(self) -> Optional[RegisterRef]:
        return self.dests[0] if self.dests else None

    def register_sources(self) -> List[RegisterRef]:
        """Source operands that are registers."""
        return [s for s in self.srcs if isinstance(s, RegisterRef)]

    def register_dests(self) -> List[RegisterRef]:
        return list(self.dests)

    def __str__(self) -> str:
        parts = []
        for dest in self.dests:
            parts.append(str(dest))
        for src in self.srcs:
            if isinstance(src, (int, float)) and not isinstance(src, bool):
                parts.append(f"#{src}")
            else:
                parts.append(str(src))
        if parts:
            return f"{self.opcode.name} " + ", ".join(parts)
        return self.opcode.name
