"""Assembled MAP programs.

A :class:`Program` is the unit of code loaded into one H-Thread: an ordered
list of 3-wide instructions plus the label map produced by the assembler.
Programs are stored by the loader in the (always-hit) per-cluster instruction
cache model; the simulator addresses instructions by index (the program
counter is an instruction index).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List

from repro.isa.instruction import Instruction


@dataclass
class Program:
    """An assembled program for a single H-Thread."""

    name: str = "program"
    instructions: List[Instruction] = field(default_factory=list)
    labels: Dict[str, int] = field(default_factory=dict)
    source: str = ""

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __getitem__(self, index: int) -> Instruction:
        return self.instructions[index]

    def label_address(self, label: str) -> int:
        """Return the instruction index a label refers to."""
        try:
            return self.labels[label]
        except KeyError:
            raise KeyError(f"label {label!r} not defined in program {self.name!r}") from None

    @property
    def static_length(self) -> int:
        """Number of (3-wide) instructions in the program.

        This is the "static depth of the instruction sequence" metric used in
        Section 3.1 / Figure 5 of the paper when comparing single- and
        multi-H-Thread schedules of the stencil kernels.
        """
        return len(self.instructions)

    @property
    def operation_count(self) -> int:
        """Total number of operations across all instructions."""
        return sum(len(instr) for instr in self.instructions)

    def listing(self) -> str:
        """Return a human-readable listing with instruction indices."""
        lines = [f"; program {self.name} ({len(self)} instructions)"]
        reverse_labels: Dict[int, List[str]] = {}
        for label, index in self.labels.items():
            reverse_labels.setdefault(index, []).append(label)
        for index, instr in enumerate(self.instructions):
            for label in reverse_labels.get(index, []):
                lines.append(f"{label}:")
            body = " | ".join(str(op) for op in instr.operations) or "nop"
            lines.append(f"  {index:4d}: {body}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return f"Program({self.name!r}, {len(self)} instructions)"
