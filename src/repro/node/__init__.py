"""M-Machine nodes.

Each node consists of a multi-ALU (MAP) chip and 1 MW (8 MB) of synchronous
DRAM (Section 2).  :class:`~repro.node.node.Node` assembles the four
execution clusters, the two on-chip switches, the memory system, the event
and message queues, the GTLB and the network interface into one simulated
node; :mod:`repro.node.map_chip` documents the on-chip/off-chip split.
"""

from repro.node.node import Node
from repro.node.map_chip import MapChip

__all__ = ["Node", "MapChip"]
