"""One M-Machine node: a MAP chip plus its local SDRAM.

The node is the integration point of the simulator.  It owns the four
execution clusters, the C-Switch and M-Switch, the memory system, the
asynchronous event queues, the per-cluster synchronous exception queues, the
two register-mapped message queues, the GTLB and the network interface, and
it drives them in a fixed phase order each cycle:

1. deliver C-Switch transfers (register writes become visible),
2. apply each cluster's local result writebacks,
3. enqueue asynchronous events whose formatting delay has elapsed,
4. advance the memory system and forward its responses to the C-Switch,
5. run any native (Python) runtime handlers attached to the node,
6. let each cluster's synchronization stage issue one instruction,
7. advance the network interface (retransmission of returned messages).

Because writebacks and deliveries precede issue, result latencies observed by
dependent instructions match the configured unit/switch latencies exactly.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.cluster.cluster import Cluster, RegWrite
from repro.core.config import (
    EVENT_CLUSTER_LTLB,
    EVENT_CLUSTER_MSG_P0,
    EVENT_CLUSTER_MSG_P1,
    EVENT_CLUSTER_SYNC_STATUS,
    EVENT_SLOT,
    EXCEPTION_SLOT,
    MachineConfig,
)
from repro.events.queue import EventQueue, HardwareQueue
from repro.events.records import EventRecord, EventType
from repro.isa.program import Program
from repro.isa.registers import unpack_regspec
from repro.memory.cache import InterleavedCache
from repro.memory.ltlb import Ltlb
from repro.memory.memory_system import MemorySystem
from repro.memory.page_table import (
    BLOCK_SIZE_WORDS,
    BlockStatus,
    LocalPageTable,
    LptEntry,
    LPT_ENTRY_WORDS,
)
from repro.memory.requests import MemRequest
from repro.memory.sdram import Sdram, SdramTiming
from repro.network.gtlb import GlobalDestinationTable, Gtlb
from repro.network.interface import NetworkInterface
from repro.network.mesh import MeshNetwork, coords_to_id
from repro.network.message import Message
from repro.snapshot.values import SnapshotError, decode_value, encode_value
from repro.switches.crossbar import BROADCAST, Crossbar


class Node:
    """One node (MAP chip + SDRAM) of the M-Machine."""

    def __init__(
        self,
        node_id: int,
        coords: Tuple[int, int, int],
        config: MachineConfig,
        mesh: MeshNetwork,
        gdt: GlobalDestinationTable,
        tracer=None,
        request_ids=None,
        message_ids=None,
    ):
        self.node_id = node_id
        self.coords = coords
        self.config = config
        self.mesh = mesh
        self.tracer = tracer
        self.protection_enabled = config.runtime.protection_enabled
        #: Memory-request id allocator, shared machine-wide so numbering is
        #: per-machine deterministic (falls back to the module source for
        #: nodes built standalone in tests).
        if request_ids is None:
            from repro.memory.requests import _request_ids as request_ids  # noqa: PLC0415
        self.request_ids = request_ids

        memory_config = config.memory
        node_config = config.node
        network_config = config.network

        # --- memory subsystem -------------------------------------------------
        self.sdram = Sdram(
            size_words=memory_config.sdram_size_words,
            timing=SdramTiming(
                row_activate=memory_config.sdram_row_activate,
                cas=memory_config.sdram_cas,
                cycles_per_word=memory_config.sdram_cycles_per_word,
                row_size_words=memory_config.sdram_row_size_words,
            ),
            secded_enabled=memory_config.secded_enabled,
            name=f"sdram{node_id}",
        )
        self.cache = InterleavedCache(
            num_banks=memory_config.cache_banks,
            bank_size_words=memory_config.bank_size_words,
            line_size_words=memory_config.line_size_words,
            associativity=memory_config.cache_associativity,
            name=f"cache{node_id}",
        )
        self.ltlb = Ltlb(
            num_entries=memory_config.ltlb_entries,
            page_size=memory_config.page_size_words,
            name=f"ltlb{node_id}",
        )
        self.page_table = LocalPageTable(
            num_entries=memory_config.lpt_entries,
            page_size=memory_config.page_size_words,
        )
        #: Physical word address of the memory-resident LPT image (at the top
        #: of the node's SDRAM); the assembly LTLB-miss handler walks it with
        #: physical loads.
        self.lpt_phys_base = (
            memory_config.sdram_size_words - memory_config.lpt_entries * LPT_ENTRY_WORDS
        )
        self.page_table.attach_writeback(self._write_lpt_image)
        self.memory = MemorySystem(
            node_id,
            self.cache,
            self.ltlb,
            self.page_table,
            self.sdram,
            bank_latency=memory_config.bank_latency,
            mif_latency=memory_config.mif_latency,
            ltlb_latency=memory_config.ltlb_latency,
            fill_latency=memory_config.fill_latency,
            event_enqueue_latency=memory_config.event_enqueue_latency,
            event_sink=self.schedule_event,
            tracer=tracer,
        )

        # --- queues -----------------------------------------------------------
        self.event_queue_sync = EventQueue(node_config.event_queue_records,
                                           name=f"n{node_id}-evq-sync")
        self.event_queue_ltlb = EventQueue(node_config.event_queue_records,
                                           name=f"n{node_id}-evq-ltlb")
        self.msg_queue_p0 = HardwareQueue(network_config.message_queue_words,
                                          name=f"n{node_id}-msgq-p0")
        self.msg_queue_p1 = HardwareQueue(network_config.message_queue_words,
                                          name=f"n{node_id}-msgq-p1")
        self.exception_queues = [
            EventQueue(node_config.exception_queue_records, name=f"n{node_id}-excq-c{c}")
            for c in range(node_config.num_clusters)
        ]
        self._pending_events: List[Tuple[int, EventRecord]] = []

        # --- network ------------------------------------------------------------
        self.gtlb = Gtlb(gdt, name=f"gtlb{node_id}")
        self.net = NetworkInterface(
            node_id,
            network_config,
            mesh,
            self.gtlb,
            self.msg_queue_p0,
            self.msg_queue_p1,
            tracer=tracer,
            message_ids=message_ids,
        )

        # --- execution ------------------------------------------------------------
        self.cswitch = Crossbar(
            num_outputs=node_config.num_clusters,
            latency=node_config.cswitch_latency,
            max_transfers_per_cycle=node_config.switch_transfers_per_cycle,
            name=f"n{node_id}-cswitch",
        )
        self.mswitch_latency = node_config.mswitch_latency
        self.clusters = [
            Cluster(index, self, config.cluster, node_config,
                    compile_dispatch=config.sim.compile_dispatch)
            for index in range(node_config.num_clusters)
        ]

        #: Native (Python) runtime handlers attached to this node; each is an
        #: object with ``tick(node, cycle)``.
        self.native_handlers: List[object] = []

        # --- physical memory allocation -------------------------------------------
        self._next_frame = 0
        self._max_frames = self.lpt_phys_base // memory_config.page_size_words

        # Statistics
        self.events_enqueued = 0
        self.instructions_last_cycle = 0

    # ------------------------------------------------------------------- tracing

    def trace(self, cycle: int, category: str, **info) -> None:
        if self.tracer is not None:
            self.tracer.record(cycle, self.node_id, category, **info)

    # ------------------------------------------------------------------- LPT image

    def _write_lpt_image(self, slot: int, words: List[int]) -> None:
        self.sdram.write_block(self.lpt_phys_base + slot * LPT_ENTRY_WORDS, words)

    # -------------------------------------------------------------- frame allocation

    def allocate_frame(self) -> int:
        if self._next_frame >= self._max_frames:
            raise MemoryError(f"node {self.node_id} is out of physical page frames")
        frame = self._next_frame
        self._next_frame += 1
        return frame

    def map_page(
        self,
        virtual_page: int,
        frame: Optional[int] = None,
        writable: bool = True,
        block_status: BlockStatus = BlockStatus.READ_WRITE,
        preload_ltlb: bool = True,
    ) -> LptEntry:
        """Create a local mapping for *virtual_page* (loader / runtime API)."""
        if frame is None:
            frame = self.allocate_frame()
        blocks = self.config.memory.page_size_words // BLOCK_SIZE_WORDS
        entry = LptEntry(
            virtual_page=virtual_page,
            physical_frame=frame,
            writable=writable,
            block_status=[block_status] * blocks,
        )
        self.page_table.insert(entry)
        if preload_ltlb:
            self.ltlb.insert(entry)
        return entry

    # ------------------------------------------------------------------ memory API

    def write_word(self, address: int, value, sync_bit: Optional[int] = None) -> None:
        self.memory.debug_write(address, value, sync_bit)

    def read_word(self, address: int):
        return self.memory.debug_read(address)

    # ---------------------------------------------------------------- thread loading

    def load_hthread(
        self,
        slot: int,
        cluster: int,
        program: Program,
        registers: Optional[dict] = None,
        entry: Optional[str] = None,
    ):
        """Load a program into one H-Thread (one slot on one cluster)."""
        return self.clusters[cluster].load_program(slot, program, registers, entry)

    def load_vthread(
        self,
        slot: int,
        programs: Dict[int, Program],
        registers: Optional[Dict[int, dict]] = None,
        entries: Optional[Dict[int, str]] = None,
    ) -> None:
        """Load a V-Thread: one program per cluster (missing clusters stay idle)."""
        registers = registers or {}
        entries = entries or {}
        for cluster, program in programs.items():
            self.load_hthread(slot, cluster, program, registers.get(cluster), entries.get(cluster))

    def context(self, slot: int, cluster: int):
        return self.clusters[cluster].context(slot)

    # -------------------------------------------------------- cluster-facing services

    def queue_for(self, cluster_id: int, slot: int, name: str) -> Optional[HardwareQueue]:
        """The hardware queue behind the ``net``/``evq`` register for a given
        H-Thread, or None if that H-Thread has no such queue (Section 3.3)."""
        if name == "net":
            if slot != EVENT_SLOT:
                return None
            if cluster_id == EVENT_CLUSTER_MSG_P0:
                return self.msg_queue_p0
            if cluster_id == EVENT_CLUSTER_MSG_P1:
                return self.msg_queue_p1
            return None
        if name == "evq":
            if slot == EVENT_SLOT:
                if cluster_id == EVENT_CLUSTER_SYNC_STATUS:
                    return self.event_queue_sync
                if cluster_id == EVENT_CLUSTER_LTLB:
                    return self.event_queue_ltlb
                return None
            if slot == EXCEPTION_SLOT:
                return self.exception_queues[cluster_id]
        return None

    def memory_port_available(self, cluster_id: int) -> bool:
        """Each cluster has one memory-unit port onto the M-Switch; the switch
        accepts one request per cluster per cycle, which the one-instruction-
        per-cycle issue limit already guarantees."""
        return True

    def submit_memory_request(self, request: MemRequest, cycle: int) -> None:
        self.memory.submit(request, cycle + self.mswitch_latency)

    def can_send(self, priority: int) -> bool:
        return self.net.can_send(priority)

    def send_message(
        self,
        cycle: int,
        cluster: int,
        vthread: int,
        dest_address,
        dip: int,
        body: List[object],
        priority: int,
        physical_node: Optional[int],
    ) -> Message:
        message = self.net.send(
            cycle=cycle,
            dest_address=dest_address,
            dip=dip,
            body=body,
            priority=priority,
            physical_node=physical_node,
            check_dip=self.protection_enabled and vthread not in (EVENT_SLOT, EXCEPTION_SLOT),
        )
        self.trace(cycle, "send", cluster=cluster, slot=vthread, msg=message.msg_id,
                   dest=message.dest_node, priority=priority)
        return message

    def cswitch_register_write(self, dest_cluster: int, write: RegWrite, cycle: int) -> None:
        self.cswitch.submit(dest_cluster, write, cycle)

    def cswitch_broadcast(self, write: RegWrite, cycle: int) -> None:
        self.cswitch.submit(BROADCAST, write, cycle)

    def xregwr(self, spec: int, value, cycle: int) -> None:
        """Privileged write of an arbitrary thread register (used by the
        software runtime to deliver remote-load results, Section 4.2)."""
        vthread, cluster, ref = unpack_regspec(int(spec))
        self.cswitch.submit(
            cluster,
            RegWrite(vthread=vthread, ref=ref, value=value, clear_pending=True, origin="xregwr"),
            cycle,
        )
        self.trace(cycle, "xregwr", slot=vthread, cluster=cluster, reg=str(ref))

    def gtlb_node_of(self, address: int) -> int:
        coords = self.gtlb.node_coords_of(address)
        if coords is None:
            return -1
        return coords_to_id(coords, self.mesh.shape)

    def post_exception(self, cluster_id: int, record: EventRecord, cycle: int) -> None:
        if not self.exception_queues[cluster_id].push_record(record):
            raise RuntimeError(
                f"node {self.node_id}: exception queue of cluster {cluster_id} overflowed"
            )

    # -------------------------------------------------------------------- events

    def schedule_event(self, record: EventRecord, at_cycle: int) -> None:
        """Called by the memory system: the event record becomes visible in
        its hardware queue at *at_cycle*."""
        self._pending_events.append((at_cycle, record))

    def _enqueue_due_events(self, cycle: int) -> None:
        if not self._pending_events:
            return
        due = [entry for entry in self._pending_events if entry[0] <= cycle]
        if not due:
            return
        self._pending_events = [entry for entry in self._pending_events if entry[0] > cycle]
        for at_cycle, record in sorted(due, key=lambda entry: entry[0]):
            queue = (
                self.event_queue_ltlb
                if record.event_type is EventType.LTLB_MISS
                else self.event_queue_sync
            )
            if not queue.push_record(record):
                raise RuntimeError(
                    f"node {self.node_id}: event queue {queue.name!r} overflowed "
                    f"(the M-Machine sizes event queues so this cannot happen)"
                )
            self.events_enqueued += 1
            self.trace(cycle, "event_enqueue", type=record.event_type.name,
                       address=record.address, queue=queue.name)

    # ---------------------------------------------------------------------- tick

    def tick(self, cycle: int) -> int:
        """Advance the node one cycle; returns the number of instructions
        issued (used for quiescence detection)."""
        # 1. C-Switch deliveries.
        for dest_cluster, payload in self.cswitch.deliver(cycle):
            self.clusters[dest_cluster].receive(payload, cycle)
            if isinstance(payload, RegWrite) and payload.origin:
                self.trace(cycle, "reg_write", cluster=dest_cluster, slot=payload.vthread,
                           reg=str(payload.ref), origin=payload.origin)

        # 2. Local writebacks (skip the per-cluster call when nothing is in
        # flight -- the common case on memory- or message-bound cycles).
        for cluster in self.clusters:
            if cluster._writebacks:
                cluster.apply_writebacks(cycle)

        # 3. Events whose hardware formatting delay has elapsed.
        self._enqueue_due_events(cycle)

        # 4. Memory system; its responses return over the C-Switch.
        for response in self.memory.tick(cycle):
            if response.dest is not None and not response.faulted:
                self.cswitch.submit(
                    response.cluster,
                    RegWrite(
                        vthread=response.vthread,
                        ref=response.dest,
                        value=response.value,
                        clear_pending=True,
                        origin="memory",
                    ),
                    cycle,
                )
                self.trace(cycle, "mem_response", req=response.request.req_id,
                           cluster=response.cluster, slot=response.vthread)

        # 5. Native runtime handlers.
        for handler in self.native_handlers:
            handler.tick(self, cycle)

        # 6. Issue.
        issued = 0
        for cluster in self.clusters:
            if cluster.issue(cycle):
                issued += 1
        self.instructions_last_cycle = issued

        # 7. Network interface housekeeping.
        self.net.tick(cycle)
        return issued

    # ------------------------------------------------------------------ liveness

    @property
    def has_pending_work(self) -> bool:
        """True when anything inside the node is still in flight (used by the
        machine's quiescence detector together with issue counts).  Every
        native handler exposes an explicit ``busy`` property
        (:class:`~repro.runtime.native.NativeHandler`)."""
        return (
            self.memory.busy
            or bool(self._pending_events)
            or self.cswitch.pending > 0
            or not self.msg_queue_p0.is_empty
            or not self.msg_queue_p1.is_empty
            or not self.event_queue_sync.is_empty
            or not self.event_queue_ltlb.is_empty
            or self.net.busy
            or any(handler.busy for handler in self.native_handlers)
        )

    # ------------------------------------------------------- kernel scheduling
    #
    # The three methods below are the node's half of the event-kernel
    # contract (see repro.core.component): when a tick issues nothing, the
    # kernel asks when the node's internal machinery next does anything by
    # itself (next_event_cycle), whether the issue stage could make progress
    # (idle_issue_profile returning None), and -- once the node has slept --
    # how to replay the per-cycle idle statistics of the naive loop in bulk
    # (account_idle_cycles).

    def next_event_cycle(self, cycle: int) -> Optional[int]:
        """Earliest cycle after *cycle* at which this node's state changes
        without external input (a mesh delivery), or None if it never will."""
        candidates = []
        ready = self.cswitch.next_ready_cycle()
        if ready is not None:
            candidates.append(ready)
        for cluster in self.clusters:
            due = cluster.next_writeback_cycle()
            if due is not None:
                candidates.append(due)
        if self._pending_events:
            candidates.append(min(at_cycle for at_cycle, _ in self._pending_events))
        due = self.memory.next_event_cycle(cycle)
        if due is not None:
            candidates.append(due)
        for handler in self.native_handlers:
            due = handler.next_event_cycle(cycle)
            if due is not None:
                candidates.append(due)
        due = self.net.next_event_cycle(cycle)
        if due is not None:
            candidates.append(due)
        if not candidates:
            return None
        # Work that was due in the past but rationed by per-cycle bandwidth
        # limits (switch budgets, one bank service per cycle) is due again on
        # the very next cycle.
        return max(min(candidates), cycle + 1)

    def idle_issue_profile(self):
        """One frozen issue-stage profile per cluster, or None if any cluster
        could make progress next cycle (in which case the node must stay
        awake)."""
        profiles = []
        for cluster in self.clusters:
            profile = cluster.idle_profile()
            if profile is None:
                return None
            profiles.append(profile)
        return profiles

    def account_idle_cycles(self, profiles, start_cycle: int, num_cycles: int) -> None:
        """Replay the statistics of *num_cycles* naive no-op ticks at once
        (the node slept through them; its state is provably unchanged)."""
        for cluster, profile in zip(self.clusters, profiles):
            cluster.account_idle_cycles(profile, start_cycle, num_cycles)
        # The C-Switch arbitration pointer rotates every cycle, traffic or not.
        self.cswitch.advance_idle(num_cycles)
        self.instructions_last_cycle = 0

    @property
    def user_threads_finished(self) -> bool:
        return all(cluster.user_threads_finished for cluster in self.clusters)

    # ------------------------------------------------------------------ snapshot
    #
    # The node's half of the repro.snapshot state_dict contract: capture (and
    # restore) every piece of mutable state in construction-independent form.
    # Restore order matters in exactly one place: the page table is loaded
    # before the LTLB so the LTLB re-links the *shared* LptEntry objects, and
    # before the SDRAM so the memory image comes from the snapshot rather
    # than from re-mirroring.

    def state_dict(self) -> dict:
        return {
            "sdram": self.sdram.state_dict(),
            "cache": self.cache.state_dict(),
            "page_table": self.page_table.state_dict(),
            "ltlb": self.ltlb.state_dict(),
            "memory": self.memory.state_dict(),
            "gtlb": self.gtlb.state_dict(),
            "net": self.net.state_dict(),
            "cswitch": self.cswitch.state_dict(),
            "event_queue_sync": self.event_queue_sync.state_dict(),
            "event_queue_ltlb": self.event_queue_ltlb.state_dict(),
            "msg_queue_p0": self.msg_queue_p0.state_dict(),
            "msg_queue_p1": self.msg_queue_p1.state_dict(),
            "exception_queues": [queue.state_dict() for queue in self.exception_queues],
            "pending_events": [[at_cycle, encode_value(record)]
                               for at_cycle, record in self._pending_events],
            "clusters": [cluster.state_dict() for cluster in self.clusters],
            "native_handlers": [handler.state_dict() for handler in self.native_handlers],
            "next_frame": self._next_frame,
            "events_enqueued": self.events_enqueued,
            "instructions_last_cycle": self.instructions_last_cycle,
        }

    def load_state_dict(self, state: dict) -> None:
        self.page_table.load_state_dict(state["page_table"])
        self.ltlb.load_state_dict(state["ltlb"], page_table=self.page_table)
        self.sdram.load_state_dict(state["sdram"])
        self.cache.load_state_dict(state["cache"])
        self.memory.load_state_dict(state["memory"])
        self.gtlb.load_state_dict(state["gtlb"])
        self.net.load_state_dict(state["net"])
        self.cswitch.load_state_dict(state["cswitch"])
        self.event_queue_sync.load_state_dict(state["event_queue_sync"])
        self.event_queue_ltlb.load_state_dict(state["event_queue_ltlb"])
        self.msg_queue_p0.load_state_dict(state["msg_queue_p0"])
        self.msg_queue_p1.load_state_dict(state["msg_queue_p1"])
        for queue, queue_state in zip(self.exception_queues, state["exception_queues"]):
            queue.load_state_dict(queue_state)
        self._pending_events = [(at_cycle, decode_value(record))
                                for at_cycle, record in state["pending_events"]]
        for cluster, cluster_state in zip(self.clusters, state["clusters"]):
            cluster.load_state_dict(cluster_state)
        if len(state["native_handlers"]) != len(self.native_handlers):
            raise SnapshotError(
                f"node {self.node_id}: snapshot has {len(state['native_handlers'])} "
                f"native handlers, machine has {len(self.native_handlers)}"
            )
        for handler, handler_state in zip(self.native_handlers, state["native_handlers"]):
            handler.load_state_dict(handler_state)
        self._next_frame = state["next_frame"]
        self.events_enqueued = state["events_enqueued"]
        self.instructions_last_cycle = state["instructions_last_cycle"]

    # ------------------------------------------------------------------ statistics

    def stats(self) -> dict:
        return {
            "node_id": self.node_id,
            "coords": self.coords,
            "clusters": [cluster.stats() for cluster in self.clusters],
            "cache": {
                "hits": self.cache.hits,
                "misses": self.cache.misses,
                "hit_rate": self.cache.hit_rate,
                "writebacks": self.cache.writebacks,
            },
            "ltlb": {
                "hits": self.ltlb.hits,
                "misses": self.ltlb.misses,
            },
            "events": self.events_enqueued,
            "messages_sent": self.net.messages_sent,
            "messages_received": self.net.messages_received,
            "sdram_reads": self.sdram.reads,
            "sdram_writes": self.sdram.writes,
        }

    def __repr__(self) -> str:
        return f"Node({self.node_id}, coords={self.coords})"
