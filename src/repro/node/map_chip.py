"""The MAP chip.

The paper draws a hardware boundary between the MAP chip (clusters, switches,
cache banks, memory interface, LTLB, GTLB, network interfaces and router) and
the off-chip SDRAM (Figure 2).  The simulator models both sides inside a
single :class:`~repro.node.node.Node` object because nothing in the paper's
evaluation depends on where the boundary falls -- only on the latencies
across it, which are configured in :class:`repro.core.config.MemoryConfig`.

:class:`MapChip` is an alias kept so code and documentation can refer to the
on-chip component by its architectural name.
"""

from repro.node.node import Node


class MapChip(Node):
    """Alias of :class:`~repro.node.node.Node`; see the module docstring."""


__all__ = ["MapChip"]
