"""The bidirectional 3-D mesh network.

Messages are routed in dimension order (X, then Y, then Z), one hop per
router.  The model is message-granular rather than flit-granular: a message
occupies each link of its path for ``length_words`` cycles (wormhole-like
pipelining is approximated by letting the head advance one hop per
``router_latency + channel_latency`` cycles while each traversed link stays
busy for the message length), which captures the two effects that matter for
the paper's evaluation -- the ~5-cycle neighbour delivery latency of
Section 4.2 and contention when many messages share a link.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.config import NetworkConfig
from repro.network.message import Message
from repro.snapshot.values import decode_value, encode_value

Coords = Tuple[int, int, int]


def coords_to_id(coords: Coords, shape: Coords) -> int:
    """Linear node identifier of mesh coordinates (X fastest)."""
    x, y, z = coords
    sx, sy, sz = shape
    if not (0 <= x < sx and 0 <= y < sy and 0 <= z < sz):
        raise ValueError(f"coordinates {coords} outside mesh {shape}")
    return x + sx * (y + sy * z)


def id_to_coords(node_id: int, shape: Coords) -> Coords:
    sx, sy, sz = shape
    if not 0 <= node_id < sx * sy * sz:
        raise ValueError(f"node id {node_id} outside mesh {shape}")
    x = node_id % sx
    y = (node_id // sx) % sy
    z = node_id // (sx * sy)
    return (x, y, z)


@dataclass
class _InFlight:
    message: Message
    deliver_cycle: int


class MeshNetwork:
    """The 3-D mesh connecting the MAP routers."""

    def __init__(self, config: Optional[NetworkConfig] = None):
        self.config = config or NetworkConfig()
        self.shape: Coords = tuple(self.config.mesh_shape)
        self._in_flight: List[_InFlight] = []
        #: Link occupancy: (from_id, to_id) -> first cycle the link is free.
        self._link_free: Dict[Tuple[int, int], int] = {}
        #: Delivery callbacks per node, installed by the machine.
        self._delivery: Dict[int, Callable[[Message, int], None]] = {}
        #: Optional :class:`~repro.core.component.MeshObserver` (the event
        #: kernel), told about every delivery so it can wake the target node.
        self._observer = None
        # Statistics
        self.messages_injected = 0
        self.messages_delivered = 0
        self.total_latency = 0
        self.total_hops = 0
        self.link_contention_cycles = 0

    # -- wiring ------------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        sx, sy, sz = self.shape
        return sx * sy * sz

    def attach(self, node_id: int, deliver: Callable[[Message, int], None]) -> None:
        """Register the delivery callback of a node's network input interface."""
        self._delivery[node_id] = deliver

    def attach_observer(self, observer) -> None:
        """Register a :class:`~repro.core.component.MeshObserver` notified of
        every message delivery (data, ACK and NACK alike)."""
        self._observer = observer

    # -- routing -----------------------------------------------------------------

    def route(self, source: int, dest: int) -> List[Tuple[int, int]]:
        """Dimension-order route as a list of (from_id, to_id) hops."""
        path: List[Tuple[int, int]] = []
        current = list(id_to_coords(source, self.shape))
        target = id_to_coords(dest, self.shape)
        for dim in range(3):
            while current[dim] != target[dim]:
                step = 1 if target[dim] > current[dim] else -1
                next_coords = list(current)
                next_coords[dim] += step
                path.append(
                    (coords_to_id(tuple(current), self.shape),
                     coords_to_id(tuple(next_coords), self.shape))
                )
                current = next_coords
        return path

    def hop_count(self, source: int, dest: int) -> int:
        a = id_to_coords(source, self.shape)
        b = id_to_coords(dest, self.shape)
        return sum(abs(x - y) for x, y in zip(a, b))

    # -- injection / delivery ------------------------------------------------------

    def inject(self, message: Message, cycle: int) -> int:
        """Inject a message; returns the cycle at which it will be delivered
        to the destination node's input interface."""
        self.messages_injected += 1
        cfg = self.config
        time = cycle + cfg.inject_latency
        path = self.route(message.source_node, message.dest_node)
        for link in path:
            free_at = self._link_free.get(link, 0)
            depart = max(time, free_at)
            self.link_contention_cycles += max(0, free_at - time)
            # The link stays busy while the message body streams through it.
            self._link_free[link] = depart + max(message.length_words, 1)
            time = depart + cfg.router_latency + cfg.channel_latency
        deliver_cycle = time + cfg.eject_latency
        self._in_flight.append(_InFlight(message=message, deliver_cycle=deliver_cycle))
        self.total_hops += len(path)
        return deliver_cycle

    def tick(self, cycle: int) -> None:
        """Deliver every message whose arrival cycle has come."""
        if not self._in_flight:
            return
        remaining: List[_InFlight] = []
        for flight in self._in_flight:
            if flight.deliver_cycle <= cycle:
                deliver = self._delivery.get(flight.message.dest_node)
                if deliver is None:
                    raise KeyError(
                        f"no node attached at id {flight.message.dest_node} for {flight.message}"
                    )
                self.messages_delivered += 1
                self.total_latency += flight.deliver_cycle - flight.message.send_cycle
                deliver(flight.message, cycle)
                if self._observer is not None:
                    self._observer.message_delivered(flight.message.dest_node, cycle)
            else:
                remaining.append(flight)
        self._in_flight = remaining

    # -- snapshot (repro.snapshot state_dict contract) -----------------------------

    def state_dict(self) -> dict:

        return {
            "in_flight": [[encode_value(flight.message), flight.deliver_cycle]
                          for flight in self._in_flight],
            "link_free": [[list(link), free] for link, free in self._link_free.items()],
            "messages_injected": self.messages_injected,
            "messages_delivered": self.messages_delivered,
            "total_latency": self.total_latency,
            "total_hops": self.total_hops,
            "link_contention_cycles": self.link_contention_cycles,
        }

    def load_state_dict(self, state: dict) -> None:

        self._in_flight = [
            _InFlight(message=decode_value(message), deliver_cycle=deliver_cycle)
            for message, deliver_cycle in state["in_flight"]
        ]
        self._link_free = {tuple(link): free for link, free in state["link_free"]}
        self.messages_injected = state["messages_injected"]
        self.messages_delivered = state["messages_delivered"]
        self.total_latency = state["total_latency"]
        self.total_hops = state["total_hops"]
        self.link_contention_cycles = state["link_contention_cycles"]

    # -- introspection -----------------------------------------------------------

    @property
    def in_flight(self) -> int:
        return len(self._in_flight)

    @property
    def busy(self) -> bool:
        return bool(self._in_flight)

    def next_delivery_cycle(self) -> Optional[int]:
        """Earliest delivery cycle of an in-flight message, or None.  Used by
        the event kernel to jump the clock over spans where the only activity
        anywhere is messages streaming through the mesh."""
        if not self._in_flight:
            return None
        return min(flight.deliver_cycle for flight in self._in_flight)

    @property
    def average_latency(self) -> float:
        return self.total_latency / self.messages_delivered if self.messages_delivered else 0.0

    def __repr__(self) -> str:
        return f"MeshNetwork(shape={self.shape}, in_flight={self.in_flight})"
