"""Dimension-order routing.

Each MAP chip integrates a router for the bidirectional 3-D mesh (Figure 2).
Routing is deterministic dimension order -- the message is first moved to the
correct X coordinate, then Y, then Z -- which is deadlock-free on a mesh and
is what this class of machines (J-Machine, Cray T3D) used.

:class:`Router` captures the per-node routing decision and per-port traffic
statistics; :class:`~repro.network.mesh.MeshNetwork` composes routers into the
full network and adds link occupancy/latency.
"""

from __future__ import annotations

from collections import Counter
from typing import List, Optional, Tuple

Coords = Tuple[int, int, int]

#: Output port names of a 3-D mesh router (plus the ejection port).
PORTS = ("+x", "-x", "+y", "-y", "+z", "-z", "eject")


def next_hop(current: Coords, dest: Coords) -> Tuple[Optional[str], Coords]:
    """One dimension-order routing step.

    Returns ``(port, next_coords)``; port is ``"eject"`` (and the coordinates
    are unchanged) when the message has arrived.
    """
    axes = ("x", "y", "z")
    for dim in range(3):
        if current[dim] != dest[dim]:
            step = 1 if dest[dim] > current[dim] else -1
            port = ("+" if step > 0 else "-") + axes[dim]
            next_coords = list(current)
            next_coords[dim] += step
            return port, tuple(next_coords)
    return "eject", current


def dimension_order_path(source: Coords, dest: Coords) -> List[Coords]:
    """The full sequence of coordinates visited from *source* to *dest*,
    inclusive of both endpoints."""
    path = [source]
    current = source
    while current != dest:
        _, current = next_hop(current, dest)
        path.append(current)
    return path


class Router:
    """The router of one node: routing decision plus traffic accounting."""

    def __init__(self, coords: Coords, name: str = "router"):
        self.coords = coords
        self.name = name
        self.port_traffic = Counter()
        self.messages_routed = 0

    def route(self, dest: Coords) -> Tuple[Optional[str], Coords]:
        port, next_coords = next_hop(self.coords, dest)
        self.port_traffic[port] += 1
        self.messages_routed += 1
        return port, next_coords

    def __repr__(self) -> str:
        return f"Router({self.coords}, routed={self.messages_routed})"
