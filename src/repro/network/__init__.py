"""Inter-node communication subsystem.

The M-Machine nodes are connected by a bidirectional 3-D mesh (Figure 1).
The MAP chip integrates the network interfaces and the router (Figure 2) and
provides (Section 4.1):

* a user-level atomic ``SEND`` instruction whose destination is a *virtual
  address*, translated to a physical node by the GTLB (backed by the GDT);
* two message priorities (user requests at priority 0, system replies at
  priority 1) with register-mapped hardware message queues read by the event
  V-Thread;
* protection: a program can only send to addresses in its own address space,
  and only to registered dispatch instruction pointers (DIPs);
* return-to-sender throttling so a node cannot inject messages faster than
  the destination can consume them.
"""

from repro.network.message import Message, MessageKind
from repro.network.gtlb import Gtlb, GtlbEntry, GlobalDestinationTable
from repro.network.mesh import MeshNetwork, coords_to_id, id_to_coords
from repro.network.interface import NetworkInterface

__all__ = [
    "Message",
    "MessageKind",
    "Gtlb",
    "GtlbEntry",
    "GlobalDestinationTable",
    "MeshNetwork",
    "coords_to_id",
    "id_to_coords",
    "NetworkInterface",
]
