"""Per-node network input and output interfaces.

The output interface implements the user-level ``SEND``: destination
translation through the GTLB, the protection checks (a program may only send
to virtual addresses mapped in its address space and only to registered
dispatch instruction pointers), atomic injection, and the sender side of the
return-to-sender throttling protocol (a counter of reserved return-buffer
slots that is decremented on send and incremented when the destination
acknowledges consumption).

The input interface enqueues arriving messages in the register-mapped queue
of the appropriate priority and returns the hardware ACK, or -- when the
queue is full -- returns the message contents to the sender (NACK), which
buffers and retransmits them later (Section 4.1, "Throttling").
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from repro.core.config import NetworkConfig
from repro.events.queue import HardwareQueue
from repro.memory.guarded_pointer import GuardedPointer, ProtectionError
from repro.network.gtlb import Gtlb
from repro.network.mesh import MeshNetwork, coords_to_id
from repro.network.message import Message, MessageKind
from repro.snapshot.values import decode_optional_set, decode_value, encode_optional_set, encode_value


class NetworkInterface:
    """Combined network input/output interface of one node."""

    def __init__(
        self,
        node_id: int,
        config: NetworkConfig,
        mesh: MeshNetwork,
        gtlb: Gtlb,
        queue_p0: HardwareQueue,
        queue_p1: HardwareQueue,
        tracer=None,
        message_ids=None,
    ):
        self.node_id = node_id
        self.config = config
        self.mesh = mesh
        self.gtlb = gtlb
        self.queues = {0: queue_p0, 1: queue_p1}
        self.tracer = tracer
        #: Message-id allocator, shared machine-wide so numbering is
        #: per-machine deterministic (falls back to the module source for
        #: interfaces built standalone in tests).
        if message_ids is None:
            from repro.network.message import _message_ids as message_ids  # noqa: PLC0415
        self.message_ids = message_ids
        #: Send credits: return-buffer slots reserved for unacknowledged
        #: priority-0 messages.
        self.credits = config.send_credits
        #: Registered dispatch instruction pointers user sends may target;
        #: ``None`` disables the check (protection off).
        self.allowed_dips: Optional[Set[int]] = None
        #: Returned messages awaiting retransmission: (retry_cycle, message).
        self._retransmit: List[Tuple[int, Message]] = []
        # Statistics
        self.messages_sent = 0
        self.messages_received = 0
        self.acks_received = 0
        self.nacks_received = 0
        self.retransmissions = 0
        self.enqueue_rejections = 0
        self.send_stall_cycles = 0

        mesh.attach(node_id, self.deliver)

    # -- tracing ------------------------------------------------------------------

    def _trace(self, cycle: int, category: str, **info) -> None:
        if self.tracer is not None:
            self.tracer.record(cycle, self.node_id, category, **info)

    # -- output side ----------------------------------------------------------------

    def can_send(self, priority: int) -> bool:
        """Resource check used by the issue stage: a priority-0 SEND needs a
        free return-buffer slot (credit)."""
        if priority == 0:
            return self.credits > 0
        return True

    def register_dips(self, dips) -> None:
        """Restrict the set of user-accessible DIPs (protection)."""
        self.allowed_dips = set(dips)

    def translate_destination(self, dest_address) -> int:
        """GTLB translation of a destination virtual address to a node id."""
        address = dest_address.address if isinstance(dest_address, GuardedPointer) else int(dest_address)
        coords = self.gtlb.node_coords_of(address)
        if coords is None:
            raise ProtectionError(
                f"SEND to virtual address {address:#x} which is not mapped by the GTLB/GDT"
            )
        return coords_to_id(coords, self.mesh.shape)

    def send(
        self,
        cycle: int,
        dest_address,
        dip: int,
        body: List[object],
        priority: int = 0,
        physical_node: Optional[int] = None,
        check_dip: bool = True,
        allow_long: bool = False,
    ) -> Message:
        """Inject a message (the semantics of ``send``/``sendp``).

        Raises :class:`ProtectionError` for GTLB misses or illegal DIPs,
        which the cluster converts into a fault on the sending thread --
        "If an illegal DIP is used, a fault will occur on the sending thread
        before the message is sent" (Section 4.1).

        ``allow_long`` is used by system-level (native) runtime senders whose
        payloads exceed the MC-register limit; such messages model the
        packetised transfers the paper mentions ("larger messages can be
        packetized and reassembled with very low overhead") and still occupy
        the network for their full length.
        """
        if not allow_long and len(body) > self.config.max_body_words:
            raise ProtectionError(
                f"message body of {len(body)} words exceeds the maximum of "
                f"{self.config.max_body_words}"
            )
        if physical_node is None:
            dest_node = self.translate_destination(dest_address)
            address_word = (
                dest_address.address
                if isinstance(dest_address, GuardedPointer)
                else int(dest_address)
            )
        else:
            dest_node = int(physical_node)
            address_word = int(dest_address) if dest_address is not None else None
        if (
            check_dip
            and priority == 0
            and self.allowed_dips is not None
            and dip not in self.allowed_dips
        ):
            raise ProtectionError(f"illegal dispatch instruction pointer {dip}")

        if priority == 0:
            if self.credits <= 0:
                raise RuntimeError(
                    "SEND issued without a send credit (the issue stage should have stalled)"
                )
            self.credits -= 1

        message = Message(
            kind=MessageKind.DATA,
            source_node=self.node_id,
            dest_node=dest_node,
            priority=priority,
            dip=dip,
            dest_address=address_word,
            body=list(body),
            send_cycle=cycle,
            msg_id=self.message_ids(),
        )
        deliver_cycle = self.mesh.inject(message, cycle)
        self.messages_sent += 1
        self._trace(cycle, "msg_inject", msg=message.msg_id, dest=dest_node,
                    priority=priority, dip=dip, body_words=len(body),
                    deliver_cycle=deliver_cycle)
        return message

    # -- input side -------------------------------------------------------------------

    def deliver(self, message: Message, cycle: int) -> None:
        """Called by the mesh when a message arrives at this node."""
        if message.kind is MessageKind.ACK:
            self.acks_received += 1
            self.credits = min(self.credits + 1, self.config.send_credits)
            self._trace(cycle, "msg_ack", msg=message.msg_id)
            return
        if message.kind is MessageKind.NACK:
            self.nacks_received += 1
            retry_cycle = cycle + self.config.retransmit_interval
            if message.returned is not None:
                self._retransmit.append((retry_cycle, message.returned))
            self._trace(cycle, "msg_nack", msg=message.msg_id, retry_cycle=retry_cycle)
            return

        self.messages_received += 1
        queue = self.queues[message.priority]
        words = message.queue_words
        if queue.can_accept(len(words)):
            queue.push_words(words)
            self._trace(cycle, "msg_deliver", msg=message.msg_id, priority=message.priority,
                        source=message.source_node, dip=message.dip)
            if message.priority == 0:
                self._reply(message, MessageKind.ACK, cycle)
        else:
            # Return-to-sender: the contents of the original message are sent
            # back to be buffered and retransmitted later.
            self.enqueue_rejections += 1
            self._trace(cycle, "msg_reject", msg=message.msg_id, priority=message.priority)
            self._reply(message, MessageKind.NACK, cycle, returned=message)

    def _reply(self, original: Message, kind: MessageKind, cycle: int,
               returned: Optional[Message] = None) -> None:
        reply = Message(
            kind=kind,
            source_node=self.node_id,
            dest_node=original.source_node,
            priority=1,
            send_cycle=cycle,
            returned=returned,
            msg_id=self.message_ids(),
        )
        self.mesh.inject(reply, cycle)

    # -- housekeeping -------------------------------------------------------------------

    def tick(self, cycle: int) -> None:
        """Retransmit returned messages whose back-off has expired."""
        if not self._retransmit:
            return
        ready = [entry for entry in self._retransmit if entry[0] <= cycle]
        if not ready:
            return
        self._retransmit = [entry for entry in self._retransmit if entry[0] > cycle]
        for _, message in ready:
            message.send_cycle = cycle
            self.mesh.inject(message, cycle)
            self.retransmissions += 1
            self._trace(cycle, "msg_retransmit", msg=message.msg_id, dest=message.dest_node)

    @property
    def busy(self) -> bool:
        return bool(self._retransmit)

    def next_event_cycle(self, cycle: int) -> Optional[int]:
        """SimComponent contract: the earliest retransmission back-off
        expiry, or None when nothing awaits retransmission."""
        if not self._retransmit:
            return None
        return min(retry_cycle for retry_cycle, _ in self._retransmit)

    @property
    def credits_in_use(self) -> int:
        return self.config.send_credits - self.credits

    # -- snapshot (repro.snapshot state_dict contract) ---------------------------

    def state_dict(self) -> dict:
        """The message queues themselves snapshot with the node (they are the
        node's register-mapped queues); this covers the interface's own
        state: credits, the DIP allow-list and the retransmission buffer."""

        return {
            "credits": self.credits,
            "allowed_dips": encode_optional_set(self.allowed_dips),
            "retransmit": [[retry_cycle, encode_value(message)]
                           for retry_cycle, message in self._retransmit],
            "messages_sent": self.messages_sent,
            "messages_received": self.messages_received,
            "acks_received": self.acks_received,
            "nacks_received": self.nacks_received,
            "retransmissions": self.retransmissions,
            "enqueue_rejections": self.enqueue_rejections,
            "send_stall_cycles": self.send_stall_cycles,
        }

    def load_state_dict(self, state: dict) -> None:

        self.credits = state["credits"]
        self.allowed_dips = decode_optional_set(state["allowed_dips"])
        self._retransmit = [
            (retry_cycle, decode_value(message))
            for retry_cycle, message in state["retransmit"]
        ]
        self.messages_sent = state["messages_sent"]
        self.messages_received = state["messages_received"]
        self.acks_received = state["acks_received"]
        self.nacks_received = state["nacks_received"]
        self.retransmissions = state["retransmissions"]
        self.enqueue_rejections = state["enqueue_rejections"]
        self.send_stall_cycles = state["send_stall_cycles"]
