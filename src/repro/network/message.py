"""Messages.

"A message is composed in a cluster's general registers and transmitted
atomically with a single SEND instruction that takes as arguments a
destination virtual address, a dispatch instruction pointer (DIP), and the
message body length.  Hardware composes the message by prepending the
destination and DIP to the message body and injects it into the network."
(Section 4.1.)

At the destination the message appears in the register-mapped queue as the
word sequence ``[DIP, destination address, body...]`` -- exactly the order
the receive code of Figure 7 consumes: ``JMP Rnet`` dispatches on the DIP,
then the handler dequeues the address and the body words.

Two additional message kinds exist below the software level and are consumed
by the network input/output interfaces rather than enqueued: the ACK/NACK
replies of the return-to-sender throttling protocol.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.ids import IdSource


class MessageKind(enum.Enum):
    #: An ordinary (software-visible) message.
    DATA = "data"
    #: Hardware acknowledgement: the destination consumed the message; the
    #: source releases the reserved return buffer (increments its counter).
    ACK = "ack"
    #: Hardware negative acknowledgement: the destination queue was full; the
    #: original message contents are returned to the source for buffering and
    #: later retransmission.
    NACK = "nack"


#: Fallback allocator for messages constructed outside a machine (tests,
#: ad-hoc scripts).  Machine-injected messages draw from the machine's own
#: :class:`~repro.core.ids.IdSource` (passed as an explicit ``msg_id``), so
#: this source never influences simulation state.
_message_ids = IdSource()


@dataclass
class Message:
    """A message travelling through the mesh."""

    kind: MessageKind
    source_node: int
    dest_node: int
    priority: int = 0
    #: Dispatch instruction pointer (instruction index in the receiving
    #: message handler's program).
    dip: int = 0
    #: The destination virtual address named by the SEND (None for the
    #: privileged physical-destination sends used by system reply handlers).
    dest_address: Optional[int] = None
    body: List[object] = field(default_factory=list)
    #: Cycle the SEND issued (source timestamp, for traces).
    send_cycle: int = 0
    #: For NACKs: the returned original message.
    returned: Optional["Message"] = None
    msg_id: int = field(default_factory=_message_ids)

    @property
    def queue_words(self) -> List[object]:
        """Word sequence pushed into the destination's register-mapped queue."""
        address_word = self.dest_address if self.dest_address is not None else 0
        return [self.dip, address_word] + list(self.body)

    @property
    def length_words(self) -> int:
        """Total message length in words (header + body), used for channel
        occupancy in the mesh model."""
        return 2 + len(self.body)

    def __str__(self) -> str:
        return (
            f"Message#{self.msg_id}({self.kind.value}, {self.source_node}->{self.dest_node}, "
            f"pri={self.priority}, dip={self.dip}, body={len(self.body)}w)"
        )
