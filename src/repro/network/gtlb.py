"""The global translation lookaside buffer (GTLB) and global destination table.

"The map implements a Global Translation Lookaside Buffer (GTLB), backed by a
software Global Destination Table (GDT), to hold mappings of virtual address
regions to node numbers ...  With a single GTLB entry, a range of virtual
addresses (called a page-group) is mapped across a region of processors.  In
order to simplify encoding, the page-group must be a power of 2 pages in
size.  The mapped processors must be in a contiguous 3-D rectangular region
with a power of 2 number of nodes on a side. ...  The pages-per-node field
indicates the number of pages placed on each consecutive processor, and is
used to implement a spectrum of block and cyclic interleavings."
(Section 4.1, Figure 8.)

Node-assignment order within the region is X-fastest (X, then Y, then Z);
when the page-group holds more pages than ``pages_per_node x region size``
the assignment wraps around the region, which yields the cyclic
interleavings the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple
from repro.snapshot.values import decode_value, encode_value

#: Bit widths of the packed GDT/GTLB entry (Figure 8).
VIRTUAL_PAGE_BITS = 42
LENGTH_BITS = 16
NODE_COORD_BITS = 6
PAGES_PER_NODE_BITS = 16
EXTENT_BITS = 3


def _is_power_of_two(value: int) -> bool:
    return value > 0 and value & (value - 1) == 0


@dataclass(frozen=True)
class GtlbEntry:
    """One page-group mapping."""

    #: First virtual page of the page-group (the tag of the entry).
    base_page: int
    #: Number of pages in the page-group (power of two).
    page_group_length: int
    #: Coordinates of the origin of the mapped processor region.
    start_node: Tuple[int, int, int]
    #: Base-2 logarithm of the X, Y and Z extents of the region.
    extent: Tuple[int, int, int]
    #: Pages placed on each consecutive processor before moving to the next.
    pages_per_node: int = 1
    #: Page size in words (kept per entry so translation is self-contained).
    page_size_words: int = 512

    def __post_init__(self) -> None:
        if not _is_power_of_two(self.page_group_length):
            raise ValueError("page-group length must be a power of two pages")
        if not _is_power_of_two(self.pages_per_node):
            raise ValueError("pages-per-node must be a power of two")
        if any(e < 0 or e >= (1 << EXTENT_BITS) for e in self.extent):
            raise ValueError("extent exponents out of range")
        if any(c < 0 for c in self.start_node):
            raise ValueError("start node coordinates must be non-negative")

    # -- geometry ----------------------------------------------------------------

    @property
    def region_shape(self) -> Tuple[int, int, int]:
        return tuple(1 << e for e in self.extent)

    @property
    def region_size(self) -> int:
        dx, dy, dz = self.region_shape
        return dx * dy * dz

    @property
    def base_address(self) -> int:
        return self.base_page * self.page_size_words

    @property
    def limit_address(self) -> int:
        return (self.base_page + self.page_group_length) * self.page_size_words

    def covers(self, address: int) -> bool:
        page = address // self.page_size_words
        return self.base_page <= page < self.base_page + self.page_group_length

    # -- translation -------------------------------------------------------------

    def node_coords_of(self, address: int) -> Tuple[int, int, int]:
        """Map a covered virtual address to the coordinates of its home node."""
        if not self.covers(address):
            raise ValueError(f"address {address:#x} not covered by this page-group")
        page_offset = address // self.page_size_words - self.base_page
        node_index = (page_offset // self.pages_per_node) % self.region_size
        dx, dy, _dz = self.region_shape
        x = node_index % dx
        y = (node_index // dx) % dy
        z = node_index // (dx * dy)
        sx, sy, sz = self.start_node
        return (sx + x, sy + y, sz + z)

    def pages_on_node(self, coords: Tuple[int, int, int]) -> List[int]:
        """All virtual pages of this page-group homed on *coords* (helper for
        the loader, which must create local page-table entries there)."""
        pages = []
        for offset in range(self.page_group_length):
            address = (self.base_page + offset) * self.page_size_words
            if self.node_coords_of(address) == coords:
                pages.append(self.base_page + offset)
        return pages

    # -- packing (Figure 8) --------------------------------------------------------

    def pack(self) -> int:
        """Pack into the Figure 8 bit layout.

        The fields exceed 64 bits in total, so the packed entry occupies two
        words; this method returns the combined integer and
        :meth:`pack_words` splits it.
        """
        if self.base_page >= (1 << VIRTUAL_PAGE_BITS):
            raise ValueError("virtual page number does not fit the 42-bit field")
        value = self.base_page
        value = (value << LENGTH_BITS) | (self.page_group_length & ((1 << LENGTH_BITS) - 1))
        for coord in self.start_node:
            value = (value << NODE_COORD_BITS) | (coord & ((1 << NODE_COORD_BITS) - 1))
        value = (value << PAGES_PER_NODE_BITS) | (self.pages_per_node & ((1 << PAGES_PER_NODE_BITS) - 1))
        for e in self.extent:
            value = (value << EXTENT_BITS) | (e & ((1 << EXTENT_BITS) - 1))
        return value

    def pack_words(self) -> Tuple[int, int]:
        packed = self.pack()
        return (packed >> 64) & ((1 << 64) - 1), packed & ((1 << 64) - 1)

    @classmethod
    def unpack(cls, value: int, page_size_words: int = 512) -> "GtlbEntry":
        extent = []
        for _ in range(3):
            extent.append(value & ((1 << EXTENT_BITS) - 1))
            value >>= EXTENT_BITS
        extent = tuple(reversed(extent))
        pages_per_node = value & ((1 << PAGES_PER_NODE_BITS) - 1)
        value >>= PAGES_PER_NODE_BITS
        start = []
        for _ in range(3):
            start.append(value & ((1 << NODE_COORD_BITS) - 1))
            value >>= NODE_COORD_BITS
        start = tuple(reversed(start))
        length = value & ((1 << LENGTH_BITS) - 1)
        value >>= LENGTH_BITS
        base_page = value
        return cls(
            base_page=base_page,
            page_group_length=length,
            start_node=start,
            extent=extent,
            pages_per_node=pages_per_node,
            page_size_words=page_size_words,
        )


class GlobalDestinationTable:
    """The software GDT: the complete list of page-group mappings.

    System software owns this table; the GTLB caches its entries.
    """

    def __init__(self):
        self._entries: List[GtlbEntry] = []

    def add(self, entry: GtlbEntry) -> None:
        for existing in self._entries:
            overlap = not (
                entry.limit_address <= existing.base_address
                or existing.limit_address <= entry.base_address
            )
            if overlap:
                raise ValueError(
                    f"page-group [{entry.base_address:#x}, {entry.limit_address:#x}) overlaps "
                    f"existing [{existing.base_address:#x}, {existing.limit_address:#x})"
                )
        self._entries.append(entry)

    def lookup(self, address: int) -> Optional[GtlbEntry]:
        for entry in self._entries:
            if entry.covers(address):
                return entry
        return None

    def entries(self) -> List[GtlbEntry]:
        return list(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    # -- snapshot (repro.snapshot state_dict contract) ---------------------------

    def state_dict(self) -> dict:

        return {"entries": [encode_value(entry) for entry in self._entries]}

    def load_state_dict(self, state: dict) -> None:

        self._entries = [decode_value(entry) for entry in state["entries"]]


class Gtlb:
    """The per-node GTLB: a small fully-associative cache of GDT entries.

    On a miss the hardware consults the backing GDT (in the real machine a
    software fill; the fill cost is charged as a configurable penalty that
    callers may add to translation latency).
    """

    def __init__(self, gdt: GlobalDestinationTable, num_entries: int = 16, name: str = "gtlb"):
        self.gdt = gdt
        self.num_entries = num_entries
        self.name = name
        self._entries: List[GtlbEntry] = []
        # Statistics
        self.hits = 0
        self.misses = 0
        self.fills = 0

    def lookup(self, address: int) -> Optional[GtlbEntry]:
        for index, entry in enumerate(self._entries):
            if entry.covers(address):
                self.hits += 1
                # Move-to-front LRU.
                self._entries.insert(0, self._entries.pop(index))
                return entry
        self.misses += 1
        entry = self.gdt.lookup(address)
        if entry is not None:
            self.fills += 1
            self._entries.insert(0, entry)
            del self._entries[self.num_entries:]
        return entry

    def node_coords_of(self, address: int) -> Optional[Tuple[int, int, int]]:
        entry = self.lookup(address)
        if entry is None:
            return None
        return entry.node_coords_of(address)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    # -- snapshot (repro.snapshot state_dict contract) ---------------------------

    def state_dict(self) -> dict:

        return {
            # MRU-first order is significant (move-to-front LRU).  GtlbEntry
            # is a frozen value type, so equal entries are interchangeable
            # and no identity with the GDT needs restoring.
            "entries": [encode_value(entry) for entry in self._entries],
            "hits": self.hits,
            "misses": self.misses,
            "fills": self.fills,
        }

    def load_state_dict(self, state: dict) -> None:

        self._entries = [decode_value(entry) for entry in state["entries"]]
        self.hits = state["hits"]
        self.misses = state["misses"]
        self.fills = state["fills"]
