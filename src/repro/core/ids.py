"""Deterministic id allocation for hardware records.

Memory requests and network messages carry small integer ids that appear in
traces, completion tables and NACK bookkeeping.  Each :class:`MMachine` owns
one :class:`IdSource` per record kind, so

* two machines in the same process never perturb each other's numbering,
* the sequence a machine allocates is a pure function of its execution, and
* a snapshot can capture the allocator (:meth:`state`) and a restored
  machine can continue it (:meth:`load_state`) bit-exactly.

Records constructed outside a machine (unit tests building a bare
``MemRequest``) fall back to a module-level source in their own module; the
fallback never feeds machine-owned state.
"""

from __future__ import annotations


class IdSource:
    """A restorable monotonic id allocator (callable, like ``itertools.count``
    but with readable/settable state)."""

    __slots__ = ("next_id",)

    def __init__(self, start: int = 0):
        self.next_id = start

    def __call__(self) -> int:
        value = self.next_id
        self.next_id += 1
        return value

    def state(self) -> int:
        """The next id that would be allocated (snapshot support)."""
        return self.next_id

    def load_state(self, next_id: int) -> None:
        """Restore the allocator (snapshot support)."""
        self.next_id = int(next_id)

    def __repr__(self) -> str:
        return f"IdSource(next_id={self.next_id})"
