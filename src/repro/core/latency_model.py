"""Analytical latency composition model for Table 1 and Figure 9.

Section 4.2 of the paper decomposes a remote read into seven steps (hardware
and software), and Table 1 reports the resulting access times for the twelve
combinations of {read, write} x {local, remote} x {cache hit, cache miss,
LTLB miss}.  This module:

* records the paper's published values (:data:`PAPER_TABLE1`,
  :data:`PAPER_REMOTE_READ_STEPS`) so benchmarks can print paper-vs-measured
  comparisons, and
* composes *predicted* latencies from a machine configuration plus measured
  (or assumed) software-handler costs, mirroring the way the paper's numbers
  are built out of hardware steps and handler run times.

The predictions are used as a cross-check of the cycle-level simulator: the
simulator's measured latencies and the analytic compositions should agree to
within a few cycles, and both should have the same *shape* as the paper's
numbers even though our re-written handlers differ in exact length from the
authors' unpublished ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.config import MachineConfig


#: Table 1 of the paper (cycles).
PAPER_TABLE1: Dict[str, Dict[str, int]] = {
    "local_cache_hit": {"read": 3, "write": 2},
    "local_cache_miss": {"read": 13, "write": 19},
    "local_ltlb_miss": {"read": 61, "write": 67},
    "remote_cache_hit": {"read": 138, "write": 74},
    "remote_cache_miss": {"read": 154, "write": 90},
    "remote_ltlb_miss": {"read": 202, "write": 138},
}

#: The remote-read step breakdown of Section 4.2 (cycles per step).
PAPER_REMOTE_READ_STEPS: Dict[str, int] = {
    "cache_miss_detect": 2,
    "ltlb_miss_event": 2,
    "local_handler": 48,
    "request_network": 5,
    "remote_handler": 29,
    "reply_network": 5,
    "reply_decode": 41,
}


@dataclass
class HandlerCosts:
    """Software handler costs (cycles) used by the analytic composition.

    Defaults are the paper's published step costs; benchmarks overwrite them
    with the costs measured from this repository's handlers so the analytic
    and simulated numbers can be compared like-for-like.
    """

    ltlb_miss_local: int = 46
    ltlb_miss_remote_request: int = 48
    remote_read_handler: int = 29
    remote_write_handler: int = 25
    reply_decode: int = 41


class LatencyModel:
    """Analytic composition of the Table 1 latencies."""

    def __init__(self, config: Optional[MachineConfig] = None,
                 handler_costs: Optional[HandlerCosts] = None):
        self.config = config or MachineConfig()
        self.handlers = handler_costs or HandlerCosts()

    # -- hardware building blocks ---------------------------------------------------

    @property
    def cache_hit_read(self) -> int:
        memory = self.config.memory
        node = self.config.node
        return node.mswitch_latency + memory.bank_latency + node.cswitch_latency

    @property
    def cache_hit_write(self) -> int:
        memory = self.config.memory
        node = self.config.node
        return node.mswitch_latency + memory.bank_latency

    def _sdram_block_latency(self, critical_word_only: bool) -> int:
        memory = self.config.memory
        base = memory.sdram_row_activate + memory.sdram_cas
        if critical_word_only:
            return base
        return base + (memory.line_size_words - 1) * memory.sdram_cycles_per_word

    @property
    def cache_miss_read(self) -> int:
        memory = self.config.memory
        node = self.config.node
        return (
            node.mswitch_latency
            + memory.bank_latency            # miss detection in the bank
            + memory.mif_latency
            + memory.ltlb_latency
            + self._sdram_block_latency(critical_word_only=True)
            + memory.fill_latency
            + node.cswitch_latency
        )

    @property
    def cache_miss_write(self) -> int:
        memory = self.config.memory
        node = self.config.node
        return (
            node.mswitch_latency
            + memory.bank_latency
            + memory.mif_latency
            + memory.ltlb_latency
            + self._sdram_block_latency(critical_word_only=False)
            + memory.fill_latency
        )

    @property
    def ltlb_miss_detect(self) -> int:
        """Cycles from issue to the LTLB-miss event record being enqueued."""
        memory = self.config.memory
        node = self.config.node
        return (
            node.mswitch_latency
            + memory.bank_latency
            + memory.mif_latency
            + memory.ltlb_latency
            + memory.event_enqueue_latency
        )

    def network_one_way(self, hops: int = 1) -> int:
        network = self.config.network
        return (
            network.inject_latency
            + hops * (network.router_latency + network.channel_latency)
            + network.eject_latency
        )

    # -- composed latencies -------------------------------------------------------------

    def predict(self, hops: int = 1) -> Dict[str, Dict[str, int]]:
        """Predict all twelve Table 1 entries."""
        handler = self.handlers
        local_ltlb_read = self.ltlb_miss_detect + handler.ltlb_miss_local + self.cache_miss_read
        local_ltlb_write = self.ltlb_miss_detect + handler.ltlb_miss_local + self.cache_miss_write
        remote_base = (
            self.ltlb_miss_detect
            + handler.ltlb_miss_remote_request
            + self.network_one_way(hops)
        )
        remote_read_tail = self.network_one_way(hops) + handler.reply_decode
        return {
            "local_cache_hit": {"read": self.cache_hit_read, "write": self.cache_hit_write},
            "local_cache_miss": {"read": self.cache_miss_read, "write": self.cache_miss_write},
            "local_ltlb_miss": {"read": local_ltlb_read, "write": local_ltlb_write},
            "remote_cache_hit": {
                "read": remote_base + handler.remote_read_handler + self.cache_hit_read
                + remote_read_tail,
                "write": remote_base + handler.remote_write_handler + self.cache_hit_write,
            },
            "remote_cache_miss": {
                "read": remote_base + handler.remote_read_handler + self.cache_miss_read
                + remote_read_tail,
                "write": remote_base + handler.remote_write_handler + self.cache_miss_write,
            },
            "remote_ltlb_miss": {
                "read": remote_base + handler.remote_read_handler
                + self.ltlb_miss_detect + handler.ltlb_miss_local + self.cache_miss_read
                + remote_read_tail,
                "write": remote_base + handler.remote_write_handler
                + self.ltlb_miss_detect + handler.ltlb_miss_local + self.cache_miss_write,
            },
        }

    # -- comparisons ---------------------------------------------------------------------

    @staticmethod
    def ratio_table(measured: Dict[str, Dict[str, int]],
                    reference: Dict[str, Dict[str, int]] = None) -> Dict[str, Dict[str, float]]:
        """Element-wise measured/reference ratios (reference defaults to the
        paper's Table 1)."""
        reference = reference or PAPER_TABLE1
        ratios: Dict[str, Dict[str, float]] = {}
        for row, cells in measured.items():
            ratios[row] = {}
            for column, value in cells.items():
                paper = reference.get(row, {}).get(column)
                ratios[row][column] = value / paper if paper else float("nan")
        return ratios
