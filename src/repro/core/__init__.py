"""Core package: machine configuration, the top-level machine model,
statistics, and the analytical area/latency models used by the paper's
technology argument."""

from repro.core.config import (
    ClusterConfig,
    MachineConfig,
    MemoryConfig,
    NetworkConfig,
    NodeConfig,
    RuntimeConfig,
)
from repro.core.machine import MMachine
from repro.core.stats import MachineStats
from repro.core.area_model import TechnologyPoint, AreaModel
from repro.core.latency_model import LatencyModel

__all__ = [
    "ClusterConfig",
    "MachineConfig",
    "MemoryConfig",
    "NetworkConfig",
    "NodeConfig",
    "RuntimeConfig",
    "MMachine",
    "MachineStats",
    "TechnologyPoint",
    "AreaModel",
    "LatencyModel",
]
