"""The event-driven simulation kernel.

The naive loop in :class:`~repro.core.machine.MMachine` costs
``O(cycles x nodes)`` host time: every node, cluster, memory system and
handler is ticked on every cycle even when a whole node is idle waiting for
a remote reply.  This kernel makes the same simulation cost ``O(work)``:

* **Activity ledger.**  Every node is either *awake* (ticked each cycle,
  exactly like the naive loop) or *asleep*.  A node is put to sleep only
  when a real tick proves there is nothing it can do: it issued nothing, no
  cluster has a ready instruction, and no internal machinery (switch
  transfers, writebacks, memory pipeline, event formatting, native
  handlers, retransmissions) has work due on the next cycle.

* **Scheduled wakeups.**  A sleeping node with *future-dated* internal work
  (a memory response completing at cycle ``t``, a handler busy until ``t``,
  a NACK retransmission backed off until ``t``, ...) declares the earliest
  such cycle through the :class:`~repro.core.component.SimComponent`
  protocol and is woken exactly then.  Mesh deliveries -- the only way one
  node can affect another -- wake the destination node via the
  :class:`~repro.core.component.MeshObserver` hook.

* **Cycle skipping.**  When every node is asleep, the clock jumps straight
  to the next scheduled wakeup or mesh delivery instead of stepping one
  cycle at a time.

Equivalence with the naive loop is bit-exact, including statistics: the
naive loop's issue stage accrues ``idle_cycles`` / ``no_ready_cycles`` /
per-thread stall counters / I-cache fetch counts on every blocked cycle.
Because a sleeping node's state is frozen, those per-cycle increments are a
pure function of the state at sleep time; the kernel captures that *idle
profile* once (:meth:`~repro.node.node.Node.idle_issue_profile`) and
applies it in bulk (:meth:`~repro.node.node.Node.account_idle_cycles`)
when the node is woken or when statistics are read.  The differential test
``tests/integration/test_kernel_equivalence.py`` pins this down for every
workload class.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional


class SimulationKernel:
    """Activity-tracked, cycle-skipping scheduler for one
    :class:`~repro.core.machine.MMachine`."""

    def __init__(self, machine):
        self.machine = machine
        self.mesh = machine.mesh
        self.nodes = machine.nodes
        num_nodes = len(self.nodes)

        #: Per-node sleep flag; every node starts awake.
        self._asleep: List[bool] = [False] * num_nodes
        self._num_asleep = 0
        #: First naive-loop tick a sleeping node has not yet been charged for.
        self._idle_from: List[int] = [0] * num_nodes
        #: Frozen issue-stage profile captured when the node went to sleep.
        self._idle_profile: List[Optional[list]] = [None] * num_nodes
        #: ``has_pending_work`` / ``user_threads_finished`` frozen at sleep
        #: time (a sleeping node's state cannot change, so these are exact).
        self._pending_flag: List[bool] = [False] * num_nodes
        self._users_flag: List[bool] = [True] * num_nodes
        #: Count of sleeping nodes with pending work / unfinished users, so
        #: the run loops' busy checks cost O(awake) instead of O(nodes).
        self._sleeping_pending = 0
        self._sleeping_users_unfinished = 0
        #: Min-heap of scheduled wakeups, encoded as single ints
        #: ``(cycle << shift) | node_id`` so heap operations compare machine
        #: integers instead of allocating tuples.  The encoding preserves the
        #: (cycle, node_id) lexicographic order of the old tuple heap.
        #: Entries are never removed eagerly; waking an already-awake node is
        #: a no-op and waking a node early just costs one provably-idle tick.
        self._wakeup_shift = max(num_nodes - 1, 1).bit_length()
        self._node_mask = (1 << self._wakeup_shift) - 1
        self._wakeups: List[int] = []
        #: Earliest queued wakeup cycle per node (-1 when none is known), so
        #: re-sleeping with an unchanged next event skips the duplicate push.
        self._queued_wakeup: List[int] = [-1] * num_nodes

        self.mesh.attach_observer(self)

        # Diagnostics (reported by benchmarks; no architectural effect).
        self.node_ticks = 0
        self.cycles_skipped = 0

    # ------------------------------------------------------------- mesh observer

    def message_delivered(self, node_id: int, cycle: int) -> None:
        """MeshObserver hook: any delivery (data, ACK or NACK) can unblock
        the destination node."""
        if self._asleep[node_id]:
            self._wake(node_id, cycle)

    # ------------------------------------------------------------ sleep bookkeeping

    def _flush_idle(self, node_id: int, upto_cycle: int) -> None:
        """Charge a sleeping node the per-cycle issue-stage statistics the
        naive loop would have accrued for ticks ``[idle_from, upto_cycle)``."""
        start = self._idle_from[node_id]
        delta = upto_cycle - start
        if delta <= 0:
            return
        self.nodes[node_id].account_idle_cycles(self._idle_profile[node_id], start, delta)
        self._idle_from[node_id] = upto_cycle
        self.cycles_skipped += delta

    def _wake(self, node_id: int, cycle: int) -> None:
        self._flush_idle(node_id, cycle)
        self._asleep[node_id] = False
        self._num_asleep -= 1
        self._idle_profile[node_id] = None
        if self._pending_flag[node_id]:
            self._pending_flag[node_id] = False
            self._sleeping_pending -= 1
        if not self._users_flag[node_id]:
            self._users_flag[node_id] = True
            self._sleeping_users_unfinished -= 1

    def _maybe_sleep(self, node, cycle: int) -> None:
        """Called after a tick that issued nothing: put the node to sleep if
        the tick proved it has nothing to do before its next known event."""
        next_event = node.next_event_cycle(cycle)
        if next_event is not None and next_event <= cycle + 1:
            return  # work is due immediately; keep ticking
        profile = node.idle_issue_profile()
        if profile is None:
            return  # some cluster can issue (or halt a thread) next cycle
        node_id = node.node_id
        self._asleep[node_id] = True
        self._num_asleep += 1
        self._idle_from[node_id] = cycle + 1
        self._idle_profile[node_id] = profile
        pending = node.has_pending_work
        self._pending_flag[node_id] = pending
        if pending:
            self._sleeping_pending += 1
        users_finished = node.user_threads_finished
        self._users_flag[node_id] = users_finished
        if not users_finished:
            self._sleeping_users_unfinished += 1
        if next_event is not None:
            queued = self._queued_wakeup[node_id]
            if queued < 0 or next_event < queued:
                heapq.heappush(
                    self._wakeups, (next_event << self._wakeup_shift) | node_id
                )
                self._queued_wakeup[node_id] = next_event

    def wake_all(self) -> None:
        """Reactivate every node (used at the start of every public run so
        that loader/test mutations made while nodes slept take effect)."""
        if self._num_asleep == 0:
            return
        cycle = self.machine.cycle
        for node_id in range(len(self.nodes)):
            if self._asleep[node_id]:
                self._wake(node_id, cycle)

    def sync(self) -> None:
        """Flush the lazy idle accounting of all sleeping nodes so external
        observers (``machine.stats()``, tests poking at clusters) see exactly
        the counters the naive loop would have produced.  Idempotent; leaves
        nodes asleep."""
        cycle = self.machine.cycle
        for node_id in range(len(self.nodes)):
            if self._asleep[node_id]:
                self._flush_idle(node_id, cycle)

    # ------------------------------------------------------------------ stepping

    def step(self) -> int:
        """Public single-step: equivalent to the naive ``MMachine.step``.

        External code may have mutated the machine (loaded threads, written
        memory) since the last step, so every node is conservatively woken;
        run loops use :meth:`_step` directly and rely on wakeups instead."""
        self.wake_all()
        return self._step()

    def _step(self) -> int:
        """Advance one cycle, ticking only awake nodes."""
        machine = self.machine
        cycle = machine.cycle
        wakeups = self._wakeups
        if wakeups:
            shift = self._wakeup_shift
            mask = self._node_mask
            queued = self._queued_wakeup
            while wakeups and (wakeups[0] >> shift) <= cycle:
                entry = heapq.heappop(wakeups)
                node_id = entry & mask
                if queued[node_id] == entry >> shift:
                    queued[node_id] = -1
                if self._asleep[node_id]:
                    self._wake(node_id, cycle)
        mesh = self.mesh
        if mesh.busy:
            # Deliveries wake their destination nodes via message_delivered.
            mesh.tick(cycle)
        issued = 0
        asleep = self._asleep
        for node in self.nodes:
            if asleep[node.node_id]:
                continue
            node_issued = node.tick(cycle)
            self.node_ticks += 1
            issued += node_issued
            if node_issued == 0:
                self._maybe_sleep(node, cycle)
        machine.cycle = cycle + 1
        if machine._checkpoint is not None:
            machine._checkpoint.on_cycle(machine)
        return issued

    # ----------------------------------------------------------- frozen-span logic

    def _next_event(self) -> Optional[int]:
        """The next cycle at which anything in the machine can happen while
        every node is asleep: a scheduled wakeup or a mesh delivery."""
        next_cycle = (self._wakeups[0] >> self._wakeup_shift) if self._wakeups else None
        delivery = self.mesh.next_delivery_cycle()
        if delivery is not None and (next_cycle is None or delivery < next_cycle):
            next_cycle = delivery
        return next_cycle

    def _machine_busy(self, issued: int) -> bool:
        """The naive loops' quiescence predicate, with sleeping nodes served
        from their frozen flags."""
        if issued > 0 or self.mesh.busy or self._sleeping_pending > 0:
            return True
        asleep = self._asleep
        return any(node.has_pending_work for node in self.nodes if not asleep[node.node_id])

    def _users_done(self) -> bool:
        if self._sleeping_users_unfinished > 0:
            return False
        asleep = self._asleep
        return all(node.user_threads_finished for node in self.nodes
                   if not asleep[node.node_id])

    # ------------------------------------------------------------------ run loops
    #
    # Each loop mirrors the corresponding naive MMachine loop cycle for
    # cycle.  Whenever every node is asleep and nothing is due at the
    # current cycle the machine state is frozen, so the loop's predicates
    # are constant and the outcome of stepping through the span can be
    # computed in closed form -- the clock jumps instead.

    def run(self, max_cycles: int, until: Optional[Callable] = None) -> int:
        machine = self.machine
        self.wake_all()
        limit = machine.cycle + max_cycles
        num_nodes = len(self.nodes)
        while machine.cycle < limit:
            if until is None and self._num_asleep == num_nodes:
                cycle = machine.cycle
                next_event = self._next_event()
                if next_event is None or next_event > cycle:
                    machine.cycle = min(next_event, limit) if next_event is not None else limit
                    if machine._checkpoint is not None:
                        machine._checkpoint.on_cycle(machine)
                    continue
            self._step()
            # *until* may be cycle-dependent, so spans are never skipped
            # past it: with a predicate the loop steps every cycle (each
            # step is O(awake nodes), zero when all are asleep).  The lazy
            # idle accounting is settled first so a predicate reading
            # statistics of a sleeping node sees the naive loop's counters.
            if until is not None:
                if self._num_asleep:
                    self.sync()
                if until(machine):
                    break
        self.sync()
        return machine.cycle

    def run_until(self, predicate: Callable, max_cycles: int = 100_000) -> int:
        machine = self.machine
        self.wake_all()
        limit = machine.cycle + max_cycles
        while machine.cycle < limit:
            self._step()
            if self._num_asleep:
                # Settle lazy idle accounting so predicates that read node
                # statistics (not just architectural state) match the naive
                # loop cycle for cycle.
                self.sync()
            if predicate(machine):
                return machine.cycle
        raise TimeoutError(
            f"condition not reached within {max_cycles} cycles (cycle {machine.cycle})"
        )

    def run_until_quiescent(self, max_cycles: int = 100_000, settle_cycles: int = 4) -> int:
        machine = self.machine
        self.wake_all()
        limit = machine.cycle + max_cycles
        num_nodes = len(self.nodes)
        quiet = 0
        while machine.cycle < limit:
            cycle = machine.cycle
            if self._num_asleep == num_nodes:
                next_event = self._next_event()
                if next_event is None or next_event > cycle:
                    horizon = min(next_event, limit) if next_event is not None else limit
                    if self.mesh.busy or self._sleeping_pending > 0:
                        quiet = 0
                        machine.cycle = horizon
                    else:
                        target = cycle + (settle_cycles - quiet)
                        if target <= horizon:
                            machine.cycle = target
                            self.sync()
                            return machine.cycle
                        quiet += horizon - cycle
                        machine.cycle = horizon
                    if machine._checkpoint is not None:
                        machine._checkpoint.on_cycle(machine)
                    continue
            issued = self._step()
            quiet = 0 if self._machine_busy(issued) else quiet + 1
            if quiet >= settle_cycles:
                self.sync()
                return machine.cycle
        self.sync()
        raise TimeoutError(f"machine did not quiesce within {max_cycles} cycles")

    def run_until_user_done(self, max_cycles: int = 100_000, settle_cycles: int = 4) -> int:
        machine = self.machine
        self.wake_all()
        limit = machine.cycle + max_cycles
        num_nodes = len(self.nodes)
        quiet = 0
        while machine.cycle < limit:
            cycle = machine.cycle
            if self._num_asleep == num_nodes:
                next_event = self._next_event()
                if next_event is None or next_event > cycle:
                    horizon = min(next_event, limit) if next_event is not None else limit
                    busy = self.mesh.busy or self._sleeping_pending > 0
                    if self._sleeping_users_unfinished == 0 and not busy:
                        target = cycle + (settle_cycles - quiet)
                        if target <= horizon:
                            machine.cycle = target
                            self.sync()
                            return machine.cycle
                        quiet += horizon - cycle
                    else:
                        quiet = 0
                    machine.cycle = horizon
                    if machine._checkpoint is not None:
                        machine._checkpoint.on_cycle(machine)
                    continue
            issued = self._step()
            if self._users_done() and not self._machine_busy(issued):
                quiet += 1
            else:
                quiet = 0
            if quiet >= settle_cycles:
                self.sync()
                return machine.cycle
        self.sync()
        raise TimeoutError(f"user threads did not finish within {max_cycles} cycles")

    # ---------------------------------------------------------------- diagnostics

    @property
    def awake_nodes(self) -> int:
        return len(self.nodes) - self._num_asleep

    def __repr__(self) -> str:
        return (
            f"SimulationKernel({len(self.nodes)} nodes, {self.awake_nodes} awake, "
            f"{self.cycles_skipped} node-cycles skipped)"
        )
