"""The component contract of the event-driven simulation kernel.

The naive loop ticks every model object every cycle, so a component never
has to say when it next has work -- it is simply asked.  The event kernel
(:mod:`repro.core.scheduler`) instead keeps an *activity ledger*: a node is
ticked only while it is **active**, and an inactive node is woken either by
an external stimulus (a mesh delivery) or by a **scheduled wakeup** at a
cycle the component declared in advance.

For that to be exact, every time-dependent sub-component must be able to
answer one question: *given that you receive no external input, at which
future cycle does your state next change by itself?*  That is the
:class:`SimComponent` protocol.  Implementations in this tree:

* :meth:`repro.memory.memory_system.MemorySystem.next_event_cycle` -- queued
  bank/MIF requests and pending response completion times;
* :meth:`repro.switches.crossbar.Crossbar.next_ready_cycle` -- in-flight
  switch transfers;
* :meth:`repro.network.interface.NetworkInterface.next_event_cycle` --
  retransmission back-off expiries;
* :meth:`repro.runtime.native.NativeHandler.next_event_cycle` -- queued
  records gated behind the handler's ``busy_until`` charge, plus deferred
  synchronizing-fault retries;
* :meth:`repro.node.node.Node.next_event_cycle` -- the fold of all of the
  above plus cluster writebacks and pending asynchronous event records.

The contract has two rules:

1. **No silent self-activation.**  If ``next_event_cycle(cycle)`` returns
   ``None``, the component's observable state must not change on any later
   cycle unless external input arrives first.  Returning a cycle earlier
   than strictly necessary is always safe (the kernel ticks the component,
   finds nothing to do, and asks again); returning one too late is a
   correctness bug.
2. **Ticks with no due work must be pure.**  Between "now" and the returned
   cycle, a tick of the component must neither change architectural state
   nor statistics, so the kernel may skip those ticks entirely.  (Per-cycle
   statistics of the *issue* stage -- idle/stall counters -- are the one
   exception, and the kernel reproduces them in bulk via
   :meth:`repro.node.node.Node.account_idle_cycles`.)
"""

from __future__ import annotations

from typing import Optional, Protocol, runtime_checkable


@runtime_checkable
class SimComponent(Protocol):
    """Anything the kernel can put to sleep and wake at a declared cycle."""

    def next_event_cycle(self, cycle: int) -> Optional[int]:
        """The earliest cycle strictly after *cycle* at which this
        component's state will change without external input, or ``None``
        if it will not."""
        ...


@runtime_checkable
class MeshObserver(Protocol):
    """Callback interface the kernel registers on the mesh so message
    deliveries (data, ACKs and NACKs alike) reactivate their destination
    node."""

    def message_delivered(self, node_id: int, cycle: int) -> None:
        """A message was just delivered to *node_id* at *cycle*."""
        ...


@runtime_checkable
class StatefulComponent(Protocol):
    """The snapshot half of the component contract (:mod:`repro.snapshot`).

    Every component that holds mutable simulation state implements this
    pair.  The rules:

    1. **Completeness.**  ``state_dict()`` must capture every piece of state
       that can influence future architectural behaviour *or statistics* --
       an omitted counter breaks the bit-exact-resume guarantee just as an
       omitted queue does.  Structure that is rebuilt by construction from
       the :class:`~repro.core.config.MachineConfig` (geometry, wiring,
       callbacks, handler objects) is *not* captured; restore always runs on
       a freshly-constructed, identically-configured machine.
    2. **Plain data.**  The returned dict must be JSON-compatible.  Domain
       values (guarded pointers, event records, messages, requests, register
       writes, programs) go through :func:`repro.snapshot.values.encode_value`;
       mappings whose iteration order matters (and all non-string-keyed
       mappings) are stored as ordered ``[key, value]`` pair lists.
    3. **Exact inversion.**  ``load_state_dict(state_dict())`` on a
       same-configured component must reproduce a component whose observable
       behaviour is indistinguishable, including shared-object identity that
       behaviour depends on (the LTLB re-links the page table's own
       ``LptEntry`` objects, an instruction cache and its thread contexts
       share ``Program`` objects).
    """

    def state_dict(self) -> dict:
        """This component's complete mutable state as plain JSON data."""
        ...

    def load_state_dict(self, state: dict) -> None:
        """Restore state captured by :meth:`state_dict`."""
        ...
