"""Machine statistics aggregation and report formatting."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


@dataclass
class MachineStats:
    """A summary of a finished (or in-progress) simulation."""

    cycles: int
    node_stats: List[dict] = field(default_factory=list)

    # -- aggregates --------------------------------------------------------------

    @property
    def total_instructions(self) -> int:
        return sum(
            cluster["instructions_issued"]
            for node in self.node_stats
            for cluster in node["clusters"]
        )

    @property
    def total_operations(self) -> int:
        return sum(
            cluster["operations_issued"]
            for node in self.node_stats
            for cluster in node["clusters"]
        )

    @property
    def instructions_per_cycle(self) -> float:
        return self.total_instructions / self.cycles if self.cycles else 0.0

    @property
    def operations_per_cycle(self) -> float:
        return self.total_operations / self.cycles if self.cycles else 0.0

    @property
    def cache_hit_rate(self) -> float:
        hits = sum(node["cache"]["hits"] for node in self.node_stats)
        misses = sum(node["cache"]["misses"] for node in self.node_stats)
        total = hits + misses
        return hits / total if total else 0.0

    @property
    def messages_sent(self) -> int:
        return sum(node["messages_sent"] for node in self.node_stats)

    @property
    def events(self) -> int:
        return sum(node["events"] for node in self.node_stats)

    def summary(self) -> Dict[str, object]:
        return {
            "cycles": self.cycles,
            "instructions": self.total_instructions,
            "operations": self.total_operations,
            "ipc": round(self.instructions_per_cycle, 4),
            "opc": round(self.operations_per_cycle, 4),
            "cache_hit_rate": round(self.cache_hit_rate, 4),
            "messages": self.messages_sent,
            "events": self.events,
            "nodes": len(self.node_stats),
        }

    def __str__(self) -> str:
        parts = [f"{key}={value}" for key, value in self.summary().items()]
        return "MachineStats(" + ", ".join(parts) + ")"


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: Optional[str] = None) -> str:
    """Format an ASCII table (used by the benchmark harness to print the
    rows/series the paper's tables and figures report)."""
    columns = [list(map(str, column)) for column in zip(headers, *rows)] if rows else [[h] for h in headers]
    widths = [max(len(cell) for cell in column) for column in columns]

    def format_row(cells) -> str:
        return " | ".join(str(cell).ljust(width) for cell, width in zip(cells, widths))

    lines = []
    if title:
        lines.append(title)
    lines.append(format_row(headers))
    lines.append("-+-".join("-" * width for width in widths))
    for row in rows:
        lines.append(format_row(row))
    return "\n".join(lines)
