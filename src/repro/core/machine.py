"""The top-level M-Machine model.

:class:`MMachine` builds the mesh of nodes described by a
:class:`~repro.core.config.MachineConfig`, provides the address-space and
thread-loading API used by examples, tests and benchmarks, installs the
software runtime (Section 4.2/4.3 handlers) and drives the global clock.

Two clock drivers are available, selected by ``MachineConfig.sim.kernel``:
the **event kernel** (default, :mod:`repro.core.scheduler`) tracks which
nodes can make progress and skips everything else, and the **naive loop**
(the reference implementation kept inline below) ticks every node every
cycle.  Both produce identical cycle counts and statistics; the naive loop
is retained for differential testing.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.core.config import MachineConfig
from repro.core.ids import IdSource
from repro.core.scheduler import SimulationKernel
from repro.core.stats import MachineStats
from repro.core.trace import Tracer, sink_for_config
from repro.isa.assembler import assemble
from repro.isa.program import Program
from repro.isa.registers import parse_register
from repro.network.gtlb import GlobalDestinationTable, GtlbEntry
from repro.network.mesh import MeshNetwork, coords_to_id, id_to_coords
from repro.node.node import Node
from repro.snapshot.checkpoint import attach_machine
from repro.snapshot.values import SnapshotError

ProgramLike = Union[Program, str]


def _as_program(program: ProgramLike, name: str = "program") -> Program:
    if isinstance(program, Program):
        return program
    return assemble(program, name=name)


#: Construction hooks (see :func:`construction_hooks`).  Config hooks run on
#: the resolved :class:`MachineConfig` before it is validated and before any
#: component is built; machine hooks run on the fully-constructed machine.
#: Workload factories build their machines internally, so this is how the
#: ``repro.api`` experiment builder applies config overrides and attaches
#: probes to machines it never sees being constructed — the same underneath
#: pattern :mod:`repro.snapshot.checkpoint` uses for its policy.
_CONFIG_HOOKS: List[Callable[[MachineConfig], None]] = []
_MACHINE_HOOKS: List[Callable[["MMachine"], None]] = []


@contextmanager
def construction_hooks(
    config_hook: Optional[Callable[[MachineConfig], None]] = None,
    machine_hook: Optional[Callable[["MMachine"], None]] = None,
) -> Iterator[None]:
    """Install hooks on every :class:`MMachine` constructed in the block.

    The hook lists are **process-global and not thread-safe**: nested
    blocks compose (hooks run in installation order, which is what lets an
    experiment layer overrides on top of another context), but two threads
    constructing machines under different hook sets would see each other's
    hooks — run concurrent experiments in separate processes, as the sweep
    runner does.
    """
    if config_hook is not None:
        _CONFIG_HOOKS.append(config_hook)
    if machine_hook is not None:
        _MACHINE_HOOKS.append(machine_hook)
    try:
        yield
    finally:
        if config_hook is not None:
            _CONFIG_HOOKS.remove(config_hook)
        if machine_hook is not None:
            _MACHINE_HOOKS.remove(machine_hook)


class MMachine:
    """A complete M-Machine: nodes, mesh network, runtime and clock."""

    def __init__(self, config: Optional[MachineConfig] = None, install_runtime: bool = True):
        self.config = config or MachineConfig()
        for config_hook in _CONFIG_HOOKS:
            config_hook(self.config)
        self.config.validate()
        self.tracer = Tracer(self.config.trace_enabled, sink=sink_for_config(self.config))
        self.gdt = GlobalDestinationTable()
        self.mesh = MeshNetwork(self.config.network)
        #: Machine-owned id allocators: request/message numbering is a pure
        #: function of this machine's execution (other machines in the same
        #: process cannot perturb it), and snapshots capture/restore it.
        self.request_ids = IdSource()
        self.message_ids = IdSource()
        shape = self.config.network.mesh_shape
        self.nodes: List[Node] = [
            Node(
                node_id=node_id,
                coords=id_to_coords(node_id, shape),
                config=self.config,
                mesh=self.mesh,
                gdt=self.gdt,
                tracer=self.tracer,
                request_ids=self.request_ids,
                message_ids=self.message_ids,
            )
            for node_id in range(self.config.num_nodes)
        ]
        self.cycle = 0
        self.runtime = None
        if install_runtime and self.config.runtime.shared_memory_mode != "none":
            from repro.runtime import install_runtime as _install  # noqa: PLC0415

            self.runtime = _install(self)
        #: The event-driven clock driver, or None when the reference loop is
        #: selected (``config.sim.kernel == "naive"``).
        self.kernel: Optional[SimulationKernel] = None
        if self.config.sim.kernel == "event":
            self.kernel = SimulationKernel(self)
        #: Per-machine checkpoint runtime, or None when no checkpoint policy
        #: is active (see :mod:`repro.snapshot.checkpoint`).
        self._checkpoint = attach_machine(self)
        for machine_hook in _MACHINE_HOOKS:
            machine_hook(self)

    # ------------------------------------------------------------------ topology

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    def node(self, node_id: int) -> Node:
        return self.nodes[node_id]

    def node_at(self, coords: Tuple[int, int, int]) -> Node:
        return self.nodes[coords_to_id(coords, self.config.network.mesh_shape)]

    # -------------------------------------------------------------- address space

    @property
    def page_size(self) -> int:
        return self.config.memory.page_size_words

    def map_region(
        self,
        base_address: int,
        num_pages: int,
        start_node: Tuple[int, int, int] = (0, 0, 0),
        extent: Tuple[int, int, int] = (0, 0, 0),
        pages_per_node: int = 1,
        writable: bool = True,
        preload_ltlb: bool = True,
    ) -> GtlbEntry:
        """Map a page-group of the global virtual address space over a 3-D
        region of nodes (creates the GDT entry and the local page-table
        entries on every home node).

        ``extent`` gives the base-2 logarithms of the region's X/Y/Z sizes,
        exactly as in the GTLB entry format of Figure 8.
        """
        if base_address % self.page_size:
            raise ValueError("region base address must be page aligned")
        entry = GtlbEntry(
            base_page=base_address // self.page_size,
            page_group_length=num_pages,
            start_node=start_node,
            extent=extent,
            pages_per_node=pages_per_node,
            page_size_words=self.page_size,
        )
        self.gdt.add(entry)
        for node in self.nodes:
            pages = entry.pages_on_node(node.coords)
            for page in pages:
                node.map_page(page, writable=writable, preload_ltlb=preload_ltlb)
        return entry

    def map_on_node(
        self,
        node_id: int,
        base_address: int,
        num_pages: int = 1,
        writable: bool = True,
        preload_ltlb: bool = True,
    ) -> GtlbEntry:
        """Map a page-group entirely on one node."""
        coords = self.nodes[node_id].coords
        return self.map_region(
            base_address,
            num_pages,
            start_node=coords,
            extent=(0, 0, 0),
            pages_per_node=num_pages,
            writable=writable,
            preload_ltlb=preload_ltlb,
        )

    def home_node_of(self, address: int) -> Node:
        entry = self.gdt.lookup(address)
        if entry is None:
            raise KeyError(f"address {address:#x} is not mapped by any page-group")
        coords = entry.node_coords_of(address)
        return self.node_at(coords)

    def write_word(self, address: int, value, sync_bit: Optional[int] = None) -> None:
        """Write a word of the global address space directly (loader/test API)."""
        self.home_node_of(address).write_word(address, value, sync_bit)

    def read_word(self, address: int):
        return self.home_node_of(address).read_word(address)

    def write_block(self, address: int, values: Sequence[object]) -> None:
        for offset, value in enumerate(values):
            self.write_word(address + offset, value)

    def read_block(self, address: int, count: int) -> List[object]:
        return [self.read_word(address + offset) for offset in range(count)]

    # -------------------------------------------------------------- thread loading

    def load_hthread(
        self,
        node_id: int,
        slot: int,
        cluster: int,
        program: ProgramLike,
        registers: Optional[dict] = None,
        entry: Optional[str] = None,
        name: str = "user",
    ):
        return self.nodes[node_id].load_hthread(
            slot, cluster, _as_program(program, name), registers, entry
        )

    def load_vthread(
        self,
        node_id: int,
        slot: int,
        programs: Dict[int, ProgramLike],
        registers: Optional[Dict[int, dict]] = None,
        entries: Optional[Dict[int, str]] = None,
        name: str = "user",
    ) -> None:
        compiled = {
            cluster: _as_program(program, f"{name}-c{cluster}")
            for cluster, program in programs.items()
        }
        self.nodes[node_id].load_vthread(slot, compiled, registers, entries)

    # ---------------------------------------------------------------- register API

    def register_value(self, node_id: int, slot: int, cluster: int, register: str):
        context = self.nodes[node_id].context(slot, cluster)
        return context.registers.peek(parse_register(register))

    def register_full(self, node_id: int, slot: int, cluster: int, register: str) -> bool:
        context = self.nodes[node_id].context(slot, cluster)
        return context.registers.is_full(parse_register(register))

    def thread_halted(self, node_id: int, slot: int, cluster: int) -> bool:
        from repro.cluster.hthread import ThreadState  # noqa: PLC0415

        return self.nodes[node_id].context(slot, cluster).state is ThreadState.HALTED

    # ------------------------------------------------------------------- execution

    def step(self) -> int:
        """Advance the whole machine by one cycle; returns the number of
        instructions issued across all nodes."""
        if self.kernel is not None:
            return self.kernel.step()
        cycle = self.cycle
        self.mesh.tick(cycle)
        issued = 0
        for node in self.nodes:
            issued += node.tick(cycle)
        self.cycle += 1
        if self._checkpoint is not None:
            self._checkpoint.on_cycle(self)
        return issued

    def run(self, max_cycles: int, until: Optional[Callable[["MMachine"], bool]] = None) -> int:
        """Run for at most *max_cycles* more cycles, stopping early when
        *until* (if given) returns True.  Returns the cycle count reached.

        Every ``run*`` method flushes the tracer on exit (even on timeout),
        so a disk-backed trace is always complete and readable afterwards;
        the flush is a no-op for the default in-memory sink.
        """
        if self._checkpoint is not None:
            self._checkpoint.on_run_start(self)
        try:
            if self.kernel is not None:
                return self.kernel.run(max_cycles, until)
            limit = self.cycle + max_cycles
            while self.cycle < limit:
                self.step()
                if until is not None and until(self):
                    break
            return self.cycle
        finally:
            self.tracer.flush()

    def run_until(self, predicate: Callable[["MMachine"], bool], max_cycles: int = 100_000) -> int:
        """Run until *predicate* holds; raises TimeoutError if it never does."""
        if self._checkpoint is not None:
            self._checkpoint.on_run_start(self)
        try:
            if self.kernel is not None:
                return self.kernel.run_until(predicate, max_cycles)
            limit = self.cycle + max_cycles
            while self.cycle < limit:
                self.step()
                if predicate(self):
                    return self.cycle
            raise TimeoutError(
                f"condition not reached within {max_cycles} cycles (cycle {self.cycle})"
            )
        finally:
            self.tracer.flush()

    def run_until_quiescent(self, max_cycles: int = 100_000, settle_cycles: int = 4) -> int:
        """Run until nothing has issued and nothing is in flight anywhere for
        *settle_cycles* consecutive cycles."""
        if self._checkpoint is not None:
            self._checkpoint.on_run_start(self)
        try:
            if self.kernel is not None:
                return self.kernel.run_until_quiescent(max_cycles, settle_cycles)
            limit = self.cycle + max_cycles
            quiet = 0
            while self.cycle < limit:
                issued = self.step()
                busy = (
                    issued > 0
                    or self.mesh.busy
                    or any(node.has_pending_work for node in self.nodes)
                )
                quiet = 0 if busy else quiet + 1
                if quiet >= settle_cycles:
                    return self.cycle
            raise TimeoutError(f"machine did not quiesce within {max_cycles} cycles")
        finally:
            self.tracer.flush()

    def run_until_user_done(self, max_cycles: int = 100_000, settle_cycles: int = 4) -> int:
        """Run until every user H-Thread has halted and the machine is
        otherwise quiescent (handlers drained, network idle)."""
        if self._checkpoint is not None:
            self._checkpoint.on_run_start(self)
        try:
            if self.kernel is not None:
                return self.kernel.run_until_user_done(max_cycles, settle_cycles)
            limit = self.cycle + max_cycles
            quiet = 0
            while self.cycle < limit:
                issued = self.step()
                users_done = all(node.user_threads_finished for node in self.nodes)
                busy = (
                    issued > 0
                    or self.mesh.busy
                    or any(node.has_pending_work for node in self.nodes)
                )
                if users_done and not busy:
                    quiet += 1
                else:
                    quiet = 0
                if quiet >= settle_cycles:
                    return self.cycle
            raise TimeoutError(f"user threads did not finish within {max_cycles} cycles")
        finally:
            self.tracer.flush()

    # ------------------------------------------------------------------- snapshot

    def state_dict(self) -> Dict[str, object]:
        """Capture the complete architectural state of the machine as a
        JSON-compatible structure (the machine half of the repro.snapshot
        state_dict contract).

        The event kernel's lazy idle accounting is settled first, so the
        captured statistics are exactly the naive loop's; the kernel's own
        sleep ledger is *not* captured -- every public run loop begins by
        waking all nodes, so a restored machine starting all-awake continues
        bit-exactly.
        """
        if self.kernel is not None:
            self.kernel.sync()
        return {
            "cycle": self.cycle,
            "id_counters": {
                "mem_request": self.request_ids.state(),
                "message": self.message_ids.state(),
            },
            "gdt": self.gdt.state_dict(),
            "mesh": self.mesh.state_dict(),
            "tracer": self.tracer.state_dict(),
            "nodes": [node.state_dict() for node in self.nodes],
            "coherence": (
                self.runtime.coherence.state_dict()
                if self.runtime is not None and self.runtime.coherence is not None
                else None
            ),
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Load a :meth:`state_dict` into this machine (which must have been
        built from the same configuration).  Only this machine's state is
        touched -- the id allocators are machine-owned, so other machines in
        the process are unaffected."""

        counters = state["id_counters"]
        self.request_ids.load_state(counters["mem_request"])
        self.message_ids.load_state(counters["message"])
        self.gdt.load_state_dict(state["gdt"])
        self.mesh.load_state_dict(state["mesh"])
        self.tracer.load_state_dict(state["tracer"])
        if len(state["nodes"]) != len(self.nodes):
            raise SnapshotError(
                f"snapshot has {len(state['nodes'])} nodes, machine has {len(self.nodes)}"
            )
        for node, node_state in zip(self.nodes, state["nodes"]):
            node.load_state_dict(node_state)
        coherence_state = state["coherence"]
        if coherence_state is not None:
            if self.runtime is None or self.runtime.coherence is None:
                raise SnapshotError(
                    "snapshot carries coherence-runtime state but this machine "
                    "has no coherence runtime installed"
                )
            self.runtime.coherence.load_state_dict(coherence_state)
        self.cycle = state["cycle"]
        # Rebuild the clock driver: all nodes awake, no stale wakeups.
        if self.kernel is not None:
            self.kernel = SimulationKernel(self)

    def snapshot_document(self) -> Dict[str, object]:
        """The machine as a self-describing snapshot document (schema
        version + full config + state)."""
        from repro.snapshot.format import make_document  # noqa: PLC0415

        return make_document(self.config, self.state_dict())

    def save_snapshot(self, path: str) -> str:
        """Write a snapshot of the machine to *path* (gzip when the path
        ends in ``.gz``); returns the path.  The machine can keep running
        afterwards -- taking a snapshot does not perturb the simulation."""
        from repro.snapshot.format import write_snapshot  # noqa: PLC0415

        return write_snapshot(self.snapshot_document(), path)

    def restore_snapshot(self, document: Dict[str, object]) -> None:
        """Load a snapshot *document* into this machine, refusing with
        :class:`~repro.snapshot.format.ConfigMismatchError` when the
        machine's configuration differs from the embedded one."""
        from repro.snapshot.format import check_config_matches, validate_document  # noqa: PLC0415

        validate_document(document)
        check_config_matches(self.config, document)
        self.load_state_dict(document["machine"])

    @classmethod
    def from_snapshot(cls, source) -> "MMachine":
        """Rebuild a machine from a snapshot: *source* is a path or an
        already-loaded document.  The machine is constructed from the
        embedded configuration, then the state is loaded into it."""
        from repro.snapshot.format import (  # noqa: PLC0415
            config_from_dict,
            read_snapshot,
            validate_document,
        )

        if isinstance(source, dict):
            document = source
            validate_document(document)
        else:

            document = read_snapshot(os.fspath(source))
        machine = cls(config_from_dict(document["config"]))
        machine.load_state_dict(document["machine"])
        return machine

    # ------------------------------------------------------------------ statistics

    def stats(self) -> MachineStats:
        if self.kernel is not None:
            # Settle the kernel's lazy idle accounting so sleeping nodes
            # report exactly the counters the naive loop would have.
            self.kernel.sync()
        return MachineStats(cycles=self.cycle, node_stats=[node.stats() for node in self.nodes])

    def __repr__(self) -> str:
        shape = self.config.network.mesh_shape
        return f"MMachine({self.num_nodes} nodes, mesh {shape}, cycle {self.cycle})"
