"""Machine configuration.

All structural and timing parameters of the simulated M-Machine live here as
plain dataclasses so that tests, benchmarks and ablations can build machines
that differ in exactly one parameter.  The defaults reproduce the machine
described in the paper:

* a bidirectional 3-D mesh of nodes (Figure 1);
* each node a MAP chip with four 64-bit three-issue clusters, a four-bank
  32 KB on-chip cache, an external memory interface to 1 MW (8 MB) of SDRAM,
  a GTLB, and the network interfaces and router (Figure 2);
* six resident V-Thread slots per node: four user slots, one event slot and
  one exception slot (Section 3.2);
* pages of 512 words, eight-word cache/coherence blocks, two block-status
  bits per block (Sections 2 and 4.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Dict, List, Mapping, Optional, Tuple, Type

# ---------------------------------------------------------------------------
# Architectural constants (fixed by the paper's description of the MAP chip).
# ---------------------------------------------------------------------------

#: Clusters per MAP chip.
NUM_CLUSTERS = 4
#: Resident V-Thread slots per node.
NUM_VTHREAD_SLOTS = 6
#: User V-Thread slots (slots 0..3).
NUM_USER_SLOTS = 4
#: The V-Thread slot reserved for asynchronous event and message handlers.
EVENT_SLOT = 4
#: The V-Thread slot reserved for synchronous exception handlers.
EXCEPTION_SLOT = 5

#: Event-handler H-Thread assignment within the event V-Thread (Section 3.3):
#: memory synchronization and block-status faults on cluster 0, LTLB misses on
#: cluster 1, priority-0 messages on cluster 2, priority-1 messages on
#: cluster 3.
EVENT_CLUSTER_SYNC_STATUS = 0
EVENT_CLUSTER_LTLB = 1
EVENT_CLUSTER_MSG_P0 = 2
EVENT_CLUSTER_MSG_P1 = 3


@dataclass
class ClusterConfig:
    """Per-cluster structure and issue behaviour."""

    num_int_regs: int = 16
    num_fp_regs: int = 16
    num_cc_regs: int = 4
    num_gcc_regs: int = 8
    num_mc_regs: int = 8
    #: Instruction-cache capacity in words (1 KW = 8 KB per the paper); the
    #: cache model is always-hit but the loader checks capacity.
    icache_words: int = 1024
    #: Words one 3-wide instruction is assumed to occupy in the I-cache.
    words_per_instruction: int = 4
    #: Thread-selection policy of the synchronization stage:
    #: ``"event-priority"`` (exception slot, then event slot, then user slots
    #: round-robin) or ``"round-robin"`` (pure round-robin over all slots) or
    #: ``"hep"`` (forced round-robin over *resident* slots even when only one
    #: thread is ready, modelling HEP/MASA-style barrel scheduling for the
    #: single-thread-performance ablation of Section 3.4).
    issue_policy: str = "event-priority"
    #: Enforce the global-CC pairing rule: cluster ``k`` may broadcast only to
    #: gcc ``2k`` and ``2k+1``.
    enforce_gcc_pairs: bool = True


@dataclass
class MemoryConfig:
    """On-chip cache, LTLB, page table and SDRAM parameters."""

    cache_banks: int = 4
    bank_size_words: int = 4096
    line_size_words: int = 8
    cache_associativity: int = 2
    ltlb_entries: int = 64
    page_size_words: int = 512
    lpt_entries: int = 1024
    sdram_size_words: int = 1 << 20
    sdram_row_activate: int = 5
    sdram_cas: int = 2
    sdram_cycles_per_word: int = 1
    sdram_row_size_words: int = 1024
    secded_enabled: bool = True
    #: Cache-bank access latency (the 3-cycle load hit of the paper is
    #: M-Switch traversal + bank access + C-Switch traversal).
    bank_latency: int = 1
    mif_latency: int = 1
    ltlb_latency: int = 1
    fill_latency: int = 1
    #: Cycles to format and enqueue an asynchronous event record
    #: (Section 4.2 step 2: "LTLB miss occurs, enqueueing an event (2 cycles)").
    event_enqueue_latency: int = 2


@dataclass
class NetworkConfig:
    """3-D mesh network and network-interface parameters."""

    #: Mesh dimensions (X, Y, Z).  The paper's prototype target is a 3-D mesh;
    #: small examples use e.g. (2, 1, 1).
    mesh_shape: Tuple[int, int, int] = (2, 2, 2)
    #: Per-hop router latency (cycles).
    router_latency: int = 1
    #: Channel (link) traversal latency.
    channel_latency: int = 1
    #: Cycles from SEND issue to the head flit entering the router.
    inject_latency: int = 1
    #: Cycles from router ejection to the message appearing in the queue.
    eject_latency: int = 1
    #: Capacity of each priority's register-mapped message queue, in words.
    message_queue_words: int = 128
    #: Return-to-sender throttling: number of outstanding unacknowledged
    #: priority-0 messages a node may have in flight (buffer reservations).
    send_credits: int = 16
    #: Cycles between retransmission attempts of returned (NACKed) messages.
    retransmit_interval: int = 32
    #: Maximum message body length in words (bounded by the MC register count).
    max_body_words: int = 8


@dataclass
class NodeConfig:
    """Per-node structural parameters."""

    num_clusters: int = NUM_CLUSTERS
    num_vthread_slots: int = NUM_VTHREAD_SLOTS
    event_slot: int = EVENT_SLOT
    exception_slot: int = EXCEPTION_SLOT
    #: Capacity of each asynchronous event queue, in records.
    event_queue_records: int = 64
    #: Capacity of each per-cluster synchronous-exception queue, in records.
    exception_queue_records: int = 16
    #: C-Switch and M-Switch transfer budgets.
    switch_transfers_per_cycle: int = 4
    mswitch_latency: int = 1
    cswitch_latency: int = 1


@dataclass
class RuntimeConfig:
    """Software runtime configuration."""

    #: Enable guarded-pointer protection checks on memory operations and the
    #: send-DIP check.  Off by default so that plain integer addresses can be
    #: used in microbenchmarks; protection-focused tests switch it on.
    protection_enabled: bool = False
    #: Shared-memory mode:
    #: ``"none"``     -- no remote-memory handlers installed;
    #: ``"remote"``   -- Section 4.2 non-cached remote access via assembly
    #:                    handlers in the event V-Thread;
    #: ``"coherent"`` -- Section 4.3 software DRAM caching with block-status
    #:                    bits (native handlers).
    shared_memory_mode: str = "remote"
    #: Cycle cost charged per native-handler invocation step (used only by the
    #: coherence runtime, whose handlers the paper does not specify in code).
    native_handler_dispatch_cycles: int = 6
    native_handler_cycles_per_word: int = 1
    #: Retry interval for the default synchronizing-fault handler.
    sync_fault_retry_cycles: int = 24


@dataclass
class SimConfig:
    """Host-side simulation-kernel configuration.

    This selects how the simulator spends *host* time; it has no
    architectural effect -- both kernels produce identical cycle counts and
    statistics (enforced by ``tests/integration/test_kernel_equivalence.py``).
    """

    #: ``"event"`` -- the activity-tracked, cycle-skipping kernel of
    #: :mod:`repro.core.scheduler` (default): idle nodes are not ticked and
    #: the clock jumps over globally-idle spans, so host cost is O(work).
    #: ``"naive"`` -- the reference loop: tick every node every cycle,
    #: O(cycles x nodes); kept for differential testing.
    kernel: str = "event"
    #: Precompile each loaded program to bound executors (closures with
    #: pre-resolved operand offsets and readiness checks) so the issue stage
    #: skips per-cycle opcode dispatch and operand decoding.  Purely a host
    #: optimisation: results, statistics, traces and snapshots are bit-exact
    #: with the interpreted path (``tests/integration/
    #: test_dispatch_equivalence.py``).  Compiled plans are derived state:
    #: they are never serialised and are rebuilt after a snapshot restore.
    compile_dispatch: bool = True


@dataclass
class MachineConfig:
    """Top-level configuration of an M-Machine."""

    cluster: ClusterConfig = field(default_factory=ClusterConfig)
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    network: NetworkConfig = field(default_factory=NetworkConfig)
    node: NodeConfig = field(default_factory=NodeConfig)
    runtime: RuntimeConfig = field(default_factory=RuntimeConfig)
    sim: SimConfig = field(default_factory=SimConfig)
    #: Collect a detailed trace (required by the Figure 9 timeline analysis;
    #: cheap enough to leave on by default).
    trace_enabled: bool = True
    #: When set, each machine streams its trace to a ``machine-N``
    #: subdirectory of this path (chunked JSONL+gzip, see ``docs/traces.md``)
    #: instead of holding events in memory — bounded RSS on long runs.
    trace_dir: Optional[str] = None
    #: Events per on-disk trace chunk (buffer high-water mark per machine).
    trace_chunk_events: int = 4096

    @property
    def num_nodes(self) -> int:
        x, y, z = self.network.mesh_shape
        return x * y * z

    def copy(self, **overrides) -> "MachineConfig":
        """Return a deep-ish copy with selected sub-configs replaced."""
        return MachineConfig(
            cluster=overrides.get("cluster", replace(self.cluster)),
            memory=overrides.get("memory", replace(self.memory)),
            network=overrides.get("network", replace(self.network)),
            node=overrides.get("node", replace(self.node)),
            runtime=overrides.get("runtime", replace(self.runtime)),
            sim=overrides.get("sim", replace(self.sim)),
            trace_enabled=overrides.get("trace_enabled", self.trace_enabled),
            trace_dir=overrides.get("trace_dir", self.trace_dir),
            trace_chunk_events=overrides.get(
                "trace_chunk_events", self.trace_chunk_events
            ),
        )

    @classmethod
    def small(cls, nodes_x: int = 2, nodes_y: int = 1, nodes_z: int = 1) -> "MachineConfig":
        """A small machine suitable for unit tests and microbenchmarks."""
        config = cls()
        config.network.mesh_shape = (nodes_x, nodes_y, nodes_z)
        return config

    @classmethod
    def single_node(cls) -> "MachineConfig":
        return cls.small(1, 1, 1)

    def validate(self) -> None:
        """Sanity-check structural parameters; raises ValueError on nonsense."""
        if self.node.num_clusters <= 0:
            raise ValueError("a MAP chip needs at least one cluster")
        if self.node.event_slot >= self.node.num_vthread_slots:
            raise ValueError("event slot outside the V-Thread slot range")
        if self.node.exception_slot >= self.node.num_vthread_slots:
            raise ValueError("exception slot outside the V-Thread slot range")
        if self.memory.page_size_words % self.memory.line_size_words:
            raise ValueError("page size must be a whole number of blocks")
        if any(dim <= 0 for dim in self.network.mesh_shape):
            raise ValueError("mesh dimensions must be positive")
        if self.network.max_body_words > self.cluster.num_mc_regs:
            raise ValueError(
                "message body length cannot exceed the number of message-composition registers"
            )
        if self.runtime.shared_memory_mode not in ("none", "remote", "coherent"):
            raise ValueError(f"unknown shared-memory mode {self.runtime.shared_memory_mode!r}")
        if self.cluster.issue_policy not in ("event-priority", "round-robin", "hep"):
            raise ValueError(f"unknown issue policy {self.cluster.issue_policy!r}")
        if self.sim.kernel not in ("event", "naive"):
            raise ValueError(f"unknown simulation kernel {self.sim.kernel!r}")
        if self.trace_chunk_events <= 0:
            raise ValueError("trace_chunk_events must be a positive event count")


# ---------------------------------------------------------------------------
# Dotted-key configuration overrides (``"section.attr"``).
#
# Workload factories, the sweep subsystem and the ``repro.api`` experiment
# builder all accept flat ``{"network.send_credits": 2}``-style overrides;
# this is the one place that decides which keys exist, so a typo fails loudly
# instead of silently setting a dead attribute.
# ---------------------------------------------------------------------------

#: ``section name -> section dataclass`` for the dotted override namespace.
_SECTIONS: Dict[str, Type[object]] = {
    "cluster": ClusterConfig,
    "memory": MemoryConfig,
    "network": NetworkConfig,
    "node": NodeConfig,
    "runtime": RuntimeConfig,
    "sim": SimConfig,
}

#: Top-level ``MachineConfig`` attributes addressable without a section.
_TOP_LEVEL_KEYS: Tuple[str, ...] = ("trace_enabled", "trace_dir", "trace_chunk_events")


def override_keys() -> List[str]:
    """Every valid dotted override key, sorted (``"section.attr"`` plus the
    top-level trace keys)."""
    keys = list(_TOP_LEVEL_KEYS)
    for section, section_type in _SECTIONS.items():
        keys.extend(f"{section}.{spec.name}" for spec in fields(section_type))
    return sorted(keys)


def validate_override_key(key: str) -> None:
    """Raise ``ValueError`` unless *key* names a real configuration attribute.

    The error lists the valid alternatives: all section names for an unknown
    section, the section's own keys for an unknown attribute.
    """
    if key in _TOP_LEVEL_KEYS:
        return
    section, _, attr = key.partition(".")
    if section not in _SECTIONS:
        valid = ", ".join(sorted(_SECTIONS) + list(_TOP_LEVEL_KEYS))
        raise ValueError(
            f"unknown config override {key!r}: no section {section!r} "
            f"(valid: {valid})"
        )
    section_keys = [spec.name for spec in fields(_SECTIONS[section])]
    if attr not in section_keys:
        valid = ", ".join(f"{section}.{name}" for name in section_keys)
        raise ValueError(
            f"unknown config override {key!r} (valid {section}.* keys: {valid})"
        )


def apply_overrides(config: MachineConfig, overrides: Mapping[str, object]) -> MachineConfig:
    """Apply dotted-key *overrides* to *config* in place and return it.

    Every key is validated first (:func:`validate_override_key`), so a typo'd
    key raises before any attribute is mutated.
    """
    for key in overrides:
        validate_override_key(key)
    for key, value in overrides.items():
        if key in _TOP_LEVEL_KEYS:
            setattr(config, key, value)
            continue
        section, _, attr = key.partition(".")
        setattr(getattr(config, section), attr, value)
    return config
