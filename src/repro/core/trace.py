"""Machine-wide event tracing.

The tracer is the common instrumentation channel used by the memory system,
the clusters, the network interfaces and the runtime handlers.  The
Figure 9 timelines, the Table 1 latency measurements and several integration
tests are all computed from the trace, so categories and fields are treated
as a stable (documented) interface:

=================  ===========================================================
category           emitted when
=================  ===========================================================
``mem_issue``      a load/store issues from a cluster
``cache_hit``      a request hits in the on-chip cache
``cache_miss``     a request misses and is forwarded to the memory interface
``ltlb_miss``      translation misses; an LTLB-miss event will be enqueued
``block_status_fault`` / ``sync_fault``  the corresponding faults
``store_complete`` a store's data is resident in the cache/SDRAM
``mem_response``   a load value starts back toward its cluster
``reg_write``      a C-Switch register write is applied
``event_enqueue``  an asynchronous event record enters its hardware queue
``handler_*``      emitted by runtime handlers (dispatch, completion)
``msg_inject`` / ``msg_deliver`` / ``msg_ack`` / ``msg_nack`` / ``msg_reject``
/ ``msg_retransmit``
                   network interface activity
``send``           a SEND instruction executed
``xregwr``         a privileged register write was performed
``mark``           the ``mark`` debug operation
``halt``           an H-Thread executed ``halt``
``exception``      a synchronous exception was raised
=================  ===========================================================

The machine-readable form of this table is :data:`TRACE_CATEGORIES` (plus
the ``handler_`` prefix for runtime-handler events); the contract test
``tests/integration/test_trace_contract.py`` checks that every category the
simulator emits appears there and that a representative workload mix
exercises each one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional
from repro.snapshot.values import decode_value, encode_value

#: Every trace category the simulator can emit, as documented in the table
#: above.  This is a stable interface: analyses and tests may rely on these
#: names, and new instrumentation must extend this set (and the table).
TRACE_CATEGORIES = frozenset({
    "mem_issue",
    "cache_hit",
    "cache_miss",
    "ltlb_miss",
    "block_status_fault",
    "sync_fault",
    "store_complete",
    "mem_response",
    "reg_write",
    "event_enqueue",
    "handler_dispatch",
    "handler_sync_retry",
    "msg_inject",
    "msg_deliver",
    "msg_ack",
    "msg_nack",
    "msg_reject",
    "msg_retransmit",
    "send",
    "xregwr",
    "mark",
    "halt",
    "exception",
})

#: Prefix of the runtime-handler categories (``handler_dispatch``, ...).
HANDLER_CATEGORY_PREFIX = "handler_"


@dataclass
class TraceEvent:
    cycle: int
    node: int
    category: str
    info: Dict[str, object] = field(default_factory=dict)

    def __getattr__(self, name: str):
        try:
            return self.info[name]
        except KeyError:
            raise AttributeError(name) from None

    def __str__(self) -> str:
        details = ", ".join(f"{key}={value}" for key, value in sorted(self.info.items()))
        return f"[{self.cycle:6d}] node {self.node} {self.category}: {details}"


class Tracer:
    """Collects :class:`TraceEvent` records for later analysis."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.events: List[TraceEvent] = []
        #: Encoded-event cache for :meth:`state_dict`.  The event list is
        #: append-only between snapshots, so periodic checkpointing encodes
        #: each event once instead of re-encoding the whole (ever-growing)
        #: trace on every save.
        self._encoded_events: List[list] = []

    def record(self, cycle: int, node: int, category: str, **info) -> None:
        if not self.enabled:
            return
        self.events.append(TraceEvent(cycle=cycle, node=node, category=category, info=info))

    # -- queries -----------------------------------------------------------------

    def filter(
        self,
        category: Optional[str] = None,
        node: Optional[int] = None,
        since: Optional[int] = None,
        predicate: Optional[Callable[[TraceEvent], bool]] = None,
    ) -> List[TraceEvent]:
        result = []
        for event in self.events:
            if category is not None and event.category != category:
                continue
            if node is not None and event.node != node:
                continue
            if since is not None and event.cycle < since:
                continue
            if predicate is not None and not predicate(event):
                continue
            result.append(event)
        return result

    def first(self, category: str, **match) -> Optional[TraceEvent]:
        for event in self.events:
            if event.category != category:
                continue
            if all(event.info.get(key) == value for key, value in match.items()):
                return event
        return None

    def last(self, category: str, **match) -> Optional[TraceEvent]:
        found = None
        for event in self.events:
            if event.category != category:
                continue
            if all(event.info.get(key) == value for key, value in match.items()):
                found = event
        return found

    def count(self, category: str) -> int:
        return sum(1 for event in self.events if event.category == category)

    def clear(self) -> None:
        self.events.clear()
        self._encoded_events = []

    def __len__(self) -> int:
        return len(self.events)

    # -- snapshot (repro.snapshot state_dict contract) ---------------------------

    def state_dict(self) -> dict:
        """The full trace is part of a snapshot: several workloads verify
        their results (and the Figure 9 analyses measure latencies) from
        events recorded *before* the snapshot point, so a resumed run must
        see the complete history, not just its own tail."""

        def encode_info(info):
            # Fast path: almost every info dict holds only plain scalars.
            for value in info.values():
                value_type = type(value)
                if not (value_type is int or value_type is str
                        or value_type is bool or value is None):
                    return encode_value(info)
            return dict(info)

        # Only events recorded since the previous state_dict call need
        # encoding; the cache keeps periodic checkpointing O(new events)
        # instead of O(total trace) per save.
        encoded = self._encoded_events
        for event in self.events[len(encoded):]:
            encoded.append(
                [event.cycle, event.node, event.category, encode_info(event.info)]
            )
        return {"enabled": self.enabled, "events": list(encoded)}

    def load_state_dict(self, state: dict) -> None:

        self.enabled = state["enabled"]
        self.events = [
            TraceEvent(cycle=cycle, node=node, category=category,
                       info=decode_value(info))
            for cycle, node, category, info in state["events"]
        ]
        self._encoded_events = []

    def dump(self, categories: Optional[Iterable[str]] = None) -> str:
        """Human-readable dump (debugging aid)."""
        wanted = set(categories) if categories is not None else None
        lines = []
        for event in self.events:
            if wanted is None or event.category in wanted:
                lines.append(str(event))
        return "\n".join(lines)
