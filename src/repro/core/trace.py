"""Machine-wide event tracing.

The tracer is the common instrumentation channel used by the memory system,
the clusters, the network interfaces and the runtime handlers.  The
Figure 9 timelines, the Table 1 latency measurements and several integration
tests are all computed from the trace, so categories and fields are treated
as a stable (documented) interface.  The full category/field table lives in
``docs/traces.md``; its machine-readable form is :data:`TRACE_CATEGORIES`
(plus the ``handler_`` prefix for runtime-handler events), and the contract
test ``tests/integration/test_trace_contract.py`` checks that the simulator,
the table here and the documentation page cannot drift apart.

Storage is pluggable behind a sink object:

* :class:`MemoryTraceSink` (the default) keeps events in a plain list —
  bit-exact with the historical in-memory tracer, including the snapshot
  ``state_dict`` shape.
* :class:`repro.core.trace_disk.DiskTraceSink` streams events to an
  append-only chunked JSONL+gzip directory with a per-chunk category/node
  index, keeping trace memory bounded on million-cycle runs.  Selected by
  setting ``MachineConfig.trace_dir``.

Every query goes through :meth:`Tracer.iter_filter`, a streaming iterator
that works identically over both sinks (the disk sink uses its index to
skip whole chunks), so analyses never need the full trace in memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Optional

from repro.snapshot.values import decode_value, encode_value

#: Every trace category the simulator can emit, as documented in
#: ``docs/traces.md``.  This is a stable interface: analyses and tests may
#: rely on these names, and new instrumentation must extend this set (and
#: the documentation table).
TRACE_CATEGORIES = frozenset({
    "mem_issue",
    "cache_hit",
    "cache_miss",
    "ltlb_miss",
    "block_status_fault",
    "sync_fault",
    "store_complete",
    "mem_response",
    "reg_write",
    "event_enqueue",
    "handler_dispatch",
    "handler_sync_retry",
    "msg_inject",
    "msg_deliver",
    "msg_ack",
    "msg_nack",
    "msg_reject",
    "msg_retransmit",
    "send",
    "xregwr",
    "mark",
    "halt",
    "exception",
})

#: Prefix of the runtime-handler categories (``handler_dispatch``, ...).
HANDLER_CATEGORY_PREFIX = "handler_"


@dataclass
class TraceEvent:
    cycle: int
    node: int
    category: str
    info: Dict[str, object] = field(default_factory=dict)

    def __getattr__(self, name: str):
        try:
            return self.info[name]
        except KeyError:
            raise AttributeError(name) from None

    def __str__(self) -> str:
        details = ", ".join(f"{key}={value}" for key, value in sorted(self.info.items()))
        return f"[{self.cycle:6d}] node {self.node} {self.category}: {details}"


def encode_event(event: TraceEvent) -> list:
    """Encode one event into its serialised row ``[cycle, node, category,
    info]`` — the format shared by snapshots and on-disk trace chunks."""
    info = event.info
    # Fast path: almost every info dict holds only plain scalars.
    for value in info.values():
        value_type = type(value)
        if not (value_type is int or value_type is str
                or value_type is bool or value is None):
            return [event.cycle, event.node, event.category, encode_value(info)]
    return [event.cycle, event.node, event.category, dict(info)]


def decode_event(row: Iterable) -> TraceEvent:
    """Inverse of :func:`encode_event`."""
    cycle, node, category, info = row
    return TraceEvent(cycle=cycle, node=node, category=category,
                      info=decode_value(info))


def _match(event: TraceEvent, category, node, since) -> bool:
    if category is not None and event.category != category:
        return False
    if node is not None and event.node != node:
        return False
    if since is not None and event.cycle < since:
        return False
    return True


class MemoryTraceSink:
    """The default sink: events in a plain list, encoded lazily for
    snapshots.  Identical behaviour (and snapshot bytes) to the historical
    in-memory tracer."""

    kind = "memory"

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []
        #: Encoded-event cache for :meth:`state_dict`.  The event list is
        #: append-only between snapshots, so periodic checkpointing encodes
        #: each event once instead of re-encoding the whole (ever-growing)
        #: trace on every save.
        self._encoded: List[list] = []

    def append(self, event: TraceEvent) -> None:
        self.events.append(event)

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass

    def clear(self) -> None:
        self.events.clear()
        self._encoded = []

    def __len__(self) -> int:
        return len(self.events)

    def iter_events(
        self,
        category: Optional[str] = None,
        node: Optional[int] = None,
        since: Optional[int] = None,
    ) -> Iterator[TraceEvent]:
        for event in self.events:
            if _match(event, category, node, since):
                yield event

    def count(self, category: str) -> int:
        return sum(1 for event in self.events if event.category == category)

    # -- snapshot -----------------------------------------------------------------

    def state_dict(self) -> dict:
        # Only events recorded since the previous state_dict call need
        # encoding; the cache keeps periodic checkpointing O(new events)
        # instead of O(total trace) per save.
        encoded = self._encoded
        for event in self.events[len(encoded):]:
            encoded.append(encode_event(event))
        return {"events": list(encoded)}

    def load(self, rows: List[list]) -> None:
        self.events = [decode_event(row) for row in rows]
        # The loaded rows *are* the encoded form: repopulating the cache
        # keeps the first post-restore checkpoint O(new events) instead of
        # re-encoding the entire restored history.
        self._encoded = list(rows)


class Tracer:
    """Collects :class:`TraceEvent` records for later analysis.

    The tracer is a thin facade over a sink object; pass ``sink`` to select
    storage (default: :class:`MemoryTraceSink`).  Use
    :func:`sink_for_config` to build the sink a :class:`MachineConfig`
    asks for, and :meth:`Tracer.open` to attach read-only to a trace
    directory a previous run left on disk.
    """

    def __init__(self, enabled: bool = True, sink=None):
        self.enabled = enabled
        self._sink = sink if sink is not None else MemoryTraceSink()
        self._rebind()

    def _rebind(self) -> None:
        # record() is on the node tick path; bind the sink's append once so
        # the default memory sink costs exactly one list.append per event.
        sink = self._sink
        self._append = sink.events.append if isinstance(sink, MemoryTraceSink) else sink.append

    @property
    def sink(self):
        """The storage sink behind this tracer."""
        return self._sink

    @property
    def events(self) -> List[TraceEvent]:
        """The full event list.  For the memory sink this is the live list;
        for a disk sink it *materialises* the whole trace — use
        :meth:`iter_filter` for bounded-memory access."""
        sink = self._sink
        if isinstance(sink, MemoryTraceSink):
            return sink.events
        return list(sink.iter_events())

    def record(self, cycle: int, node: int, category: str, **info) -> None:
        if not self.enabled:
            return
        self._append(TraceEvent(cycle=cycle, node=node, category=category, info=info))

    # -- queries -----------------------------------------------------------------

    def iter_filter(
        self,
        category: Optional[str] = None,
        node: Optional[int] = None,
        since: Optional[int] = None,
        predicate: Optional[Callable[[TraceEvent], bool]] = None,
    ) -> Iterator[TraceEvent]:
        """Stream matching events in recording order without materialising
        the trace (on the disk sink, whole chunks are skipped via the
        per-chunk category/node index)."""
        events = self._sink.iter_events(category=category, node=node, since=since)
        if predicate is None:
            return iter(events)
        return (event for event in events if predicate(event))

    def filter(
        self,
        category: Optional[str] = None,
        node: Optional[int] = None,
        since: Optional[int] = None,
        predicate: Optional[Callable[[TraceEvent], bool]] = None,
    ) -> List[TraceEvent]:
        return list(self.iter_filter(category, node, since, predicate))

    def first(self, category: str, **match) -> Optional[TraceEvent]:
        for event in self._sink.iter_events(category=category):
            if all(event.info.get(key) == value for key, value in match.items()):
                return event
        return None

    def last(self, category: str, **match) -> Optional[TraceEvent]:
        found = None
        for event in self._sink.iter_events(category=category):
            if all(event.info.get(key) == value for key, value in match.items()):
                found = event
        return found

    def count(self, category: str) -> int:
        return self._sink.count(category)

    def clear(self) -> None:
        self._sink.clear()

    def flush(self) -> None:
        """Persist buffered events (no-op on the memory sink).  The machine
        calls this when a run method returns, so an on-disk trace is always
        complete and readable after the run."""
        self._sink.flush()

    def close(self) -> None:
        self._sink.close()

    def __len__(self) -> int:
        return len(self._sink)

    def __iter__(self) -> Iterator[TraceEvent]:
        return self._sink.iter_events()

    # -- snapshot (repro.snapshot state_dict contract) ---------------------------

    def state_dict(self) -> dict:
        """The trace is part of a snapshot: several workloads verify their
        results (and the Figure 9 analyses measure latencies) from events
        recorded *before* the snapshot point, so a resumed run must see the
        complete history.  The memory sink embeds the full event list; the
        disk sink records its directory, flushed-chunk offsets and
        unflushed tail, so a resumed run re-attaches and appends."""
        state = {"enabled": self.enabled}
        state.update(self._sink.state_dict())
        return state

    def load_state_dict(self, state: dict) -> None:
        self.enabled = state["enabled"]
        if state.get("sink") == "disk":
            from repro.core.trace_disk import DiskTraceSink  # noqa: PLC0415

            if not isinstance(self._sink, DiskTraceSink):
                self._sink = DiskTraceSink(
                    state["trace_dir"], chunk_events=state["chunk_events"]
                )
            self._sink.restore(state)
        else:
            if not isinstance(self._sink, MemoryTraceSink):
                self._sink = MemoryTraceSink()
            self._sink.load(state["events"])
        self._rebind()

    @classmethod
    def open(cls, path, machine: int = 0) -> "Tracer":
        """Attach read-only to a trace directory on disk (out-of-core
        analysis of a finished run).  *path* may be a machine trace
        directory (holding ``index.json``) or the ``trace_dir`` a run was
        given, in which case the *machine*-th machine of that run is
        opened."""
        from repro.core.trace_disk import DiskTraceSink, resolve_trace_dir  # noqa: PLC0415

        sink = DiskTraceSink(resolve_trace_dir(path, machine), readonly=True)
        return cls(enabled=False, sink=sink)

    def dump(self, categories: Optional[Iterable[str]] = None) -> str:
        """Human-readable dump (debugging aid).  Streams from the sink —
        bounded memory apart from the returned string itself."""
        wanted = set(categories) if categories is not None else None
        lines = []
        for event in self._sink.iter_events():
            if wanted is None or event.category in wanted:
                lines.append(str(event))
        return "\n".join(lines)


def sink_for_config(config):
    """The sink a :class:`MachineConfig` asks for: a
    :class:`~repro.core.trace_disk.DiskTraceSink` under a fresh
    ``machine-N`` subdirectory of ``config.trace_dir`` when set, else None
    (the Tracer's default memory sink)."""
    trace_dir = getattr(config, "trace_dir", None)
    if not trace_dir:
        return None
    from repro.core.trace_disk import DiskTraceSink, machine_trace_dir  # noqa: PLC0415

    return DiskTraceSink(
        machine_trace_dir(trace_dir),
        chunk_events=getattr(config, "trace_chunk_events", 4096),
    )
