"""Machine-wide event tracing.

The tracer is the common instrumentation channel used by the memory system,
the clusters, the network interfaces and the runtime handlers.  The
Figure 9 timelines, the Table 1 latency measurements and several integration
tests are all computed from the trace, so categories and fields are treated
as a stable (documented) interface:

=================  ===========================================================
category           emitted when
=================  ===========================================================
``mem_issue``      a load/store issues from a cluster
``cache_hit``      a request hits in the on-chip cache
``cache_miss``     a request misses and is forwarded to the memory interface
``ltlb_miss``      translation misses; an LTLB-miss event will be enqueued
``block_status_fault`` / ``sync_fault``  the corresponding faults
``store_complete`` a store's data is resident in the cache/SDRAM
``mem_response``   a load value starts back toward its cluster
``reg_write``      a C-Switch register write is applied
``event_enqueue``  an asynchronous event record enters its hardware queue
``handler_*``      emitted by runtime handlers (dispatch, completion)
``msg_inject`` / ``msg_deliver`` / ``msg_ack`` / ``msg_nack`` / ``msg_reject``
                   network interface activity
``send``           a SEND instruction executed
``xregwr``         a privileged register write was performed
``mark``           the ``mark`` debug operation
``exception``      a synchronous exception was raised
=================  ===========================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional


@dataclass
class TraceEvent:
    cycle: int
    node: int
    category: str
    info: Dict[str, object] = field(default_factory=dict)

    def __getattr__(self, name: str):
        try:
            return self.info[name]
        except KeyError:
            raise AttributeError(name) from None

    def __str__(self) -> str:
        details = ", ".join(f"{key}={value}" for key, value in sorted(self.info.items()))
        return f"[{self.cycle:6d}] node {self.node} {self.category}: {details}"


class Tracer:
    """Collects :class:`TraceEvent` records for later analysis."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.events: List[TraceEvent] = []

    def record(self, cycle: int, node: int, category: str, **info) -> None:
        if not self.enabled:
            return
        self.events.append(TraceEvent(cycle=cycle, node=node, category=category, info=info))

    # -- queries -----------------------------------------------------------------

    def filter(
        self,
        category: Optional[str] = None,
        node: Optional[int] = None,
        since: Optional[int] = None,
        predicate: Optional[Callable[[TraceEvent], bool]] = None,
    ) -> List[TraceEvent]:
        result = []
        for event in self.events:
            if category is not None and event.category != category:
                continue
            if node is not None and event.node != node:
                continue
            if since is not None and event.cycle < since:
                continue
            if predicate is not None and not predicate(event):
                continue
            result.append(event)
        return result

    def first(self, category: str, **match) -> Optional[TraceEvent]:
        for event in self.events:
            if event.category != category:
                continue
            if all(event.info.get(key) == value for key, value in match.items()):
                return event
        return None

    def last(self, category: str, **match) -> Optional[TraceEvent]:
        found = None
        for event in self.events:
            if event.category != category:
                continue
            if all(event.info.get(key) == value for key, value in match.items()):
                found = event
        return found

    def count(self, category: str) -> int:
        return sum(1 for event in self.events if event.category == category)

    def clear(self) -> None:
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)

    def dump(self, categories: Optional[Iterable[str]] = None) -> str:
        """Human-readable dump (debugging aid)."""
        wanted = set(categories) if categories is not None else None
        lines = []
        for event in self.events:
            if wanted is None or event.category in wanted:
                lines.append(str(event))
        return "\n".join(lines)
