"""Append-only chunked on-disk trace sink.

The disk sink streams :class:`~repro.core.trace.TraceEvent` records to a
directory of gzip-compressed JSONL chunks plus one ``index.json``, so a
million-cycle run holds at most one chunk of events in memory.  The layout
(documented in ``docs/traces.md``) is::

    <trace_dir>/machine-<N>/        one directory per machine of the run
        index.json                  format tag + per-chunk summaries
        chunk-00000.jsonl.gz        chunk_events encoded rows, one per line
        chunk-00001.jsonl.gz
        ...

Each chunk line is the snapshot row ``[cycle, node, category, info]``
produced by :func:`repro.core.trace.encode_event` — the same incremental
encoding the snapshot cache uses, so appending a chunk is O(new events).
The index records per-chunk event counts, cycle ranges and category/node
histograms; :meth:`DiskTraceSink.iter_events` uses those to skip whole
chunks on filtered reads.

Lifecycle.  A freshly-constructed writable sink is *pending*: it has not
decided between starting fresh and resuming.  The first ``append`` wipes
whatever a previous run left in the directory and starts a new trace;
``restore`` (snapshot resume, which always happens before the first
post-restore event) instead attaches at the snapshot's flushed-chunk
offset, truncating any chunks written after the snapshot was taken, so a
killed-and-resumed run appends to the same files with exact event ids.
"""

from __future__ import annotations

import gzip
import json
import os
from typing import Dict, Iterator, List, Optional

from repro.core.trace import TraceEvent, _match, decode_event, encode_event

TRACE_INDEX_NAME = "index.json"
TRACE_FORMAT_NAME = "repro-trace"
TRACE_FORMAT_VERSION = 1
DEFAULT_CHUNK_EVENTS = 4096


class TraceDirError(RuntimeError):
    """A trace directory is missing, inconsistent, or used incorrectly."""


# Machines created in one process against the same trace_dir get successive
# machine-N subdirectories; a fresh process (e.g. a resumed run) starts at
# machine-0 again, matching construction order — the same ordinal scheme the
# checkpoint subsystem uses for its machine-N.json files.
_DIR_ORDINALS: Dict[str, int] = {}


def machine_trace_dir(base_dir: str) -> str:
    """Allocate the next ``machine-N`` subdirectory of *base_dir* for a
    newly-constructed machine (process-local, by construction order)."""
    key = os.path.abspath(os.fspath(base_dir))
    ordinal = _DIR_ORDINALS.get(key, 0)
    _DIR_ORDINALS[key] = ordinal + 1
    return os.path.join(os.fspath(base_dir), f"machine-{ordinal}")


def resolve_trace_dir(path, machine: int = 0) -> str:
    """Resolve *path* to a machine trace directory: either *path* itself
    holds ``index.json``, or its ``machine-<machine>`` subdirectory does."""
    path = os.fspath(path)
    if os.path.isfile(os.path.join(path, TRACE_INDEX_NAME)):
        return path
    candidate = os.path.join(path, f"machine-{machine}")
    if os.path.isfile(os.path.join(candidate, TRACE_INDEX_NAME)):
        return candidate
    raise TraceDirError(
        f"no trace found at {path!r}: neither it nor its machine-{machine}/ "
        f"subdirectory holds {TRACE_INDEX_NAME}"
    )


def _empty_index(chunk_events: int) -> dict:
    return {
        "format": TRACE_FORMAT_NAME,
        "format_version": TRACE_FORMAT_VERSION,
        "chunk_events": chunk_events,
        "total_events": 0,
        "chunks": [],
    }


def _read_index(directory: str) -> Optional[dict]:
    path = os.path.join(directory, TRACE_INDEX_NAME)
    if not os.path.isfile(path):
        return None
    with open(path, "r", encoding="utf-8") as handle:
        index = json.load(handle)
    if index.get("format") != TRACE_FORMAT_NAME:
        raise TraceDirError(f"{path} is not a {TRACE_FORMAT_NAME} index")
    if index.get("format_version") != TRACE_FORMAT_VERSION:
        raise TraceDirError(
            f"{path} has format_version {index.get('format_version')!r}; "
            f"this build reads version {TRACE_FORMAT_VERSION}"
        )
    return index


def _write_index(directory: str, index: dict) -> None:
    # Atomic write-then-rename, same discipline as snapshot documents: a
    # reader (or a killed run's resume) never sees a half-written index.
    path = os.path.join(directory, TRACE_INDEX_NAME)
    tmp_path = path + ".tmp"
    with open(tmp_path, "w", encoding="utf-8") as handle:
        json.dump(index, handle, indent=1, sort_keys=True)
        handle.write("\n")
    os.replace(tmp_path, path)


def _write_chunk(path: str, rows: List[list]) -> None:
    tmp_path = path + ".tmp"
    # mtime=0 keeps chunk bytes deterministic for identical event streams.
    with open(tmp_path, "wb") as raw:
        with gzip.GzipFile(fileobj=raw, mode="wb", mtime=0) as handle:
            for row in rows:
                handle.write(json.dumps(row, separators=(",", ":")).encode("utf-8"))
                handle.write(b"\n")
    os.replace(tmp_path, path)


def _iter_chunk_rows(path: str) -> Iterator[list]:
    with gzip.open(path, "rt", encoding="utf-8") as handle:
        for line in handle:
            if line.strip():
                yield json.loads(line)


class DiskTraceSink:
    """Sink that appends events to chunked JSONL+gzip files under one
    machine trace directory.  See the module docstring for layout and
    lifecycle; select it per-run via ``MachineConfig.trace_dir``."""

    kind = "disk"

    def __init__(self, directory, chunk_events: int = DEFAULT_CHUNK_EVENTS,
                 readonly: bool = False) -> None:
        if chunk_events <= 0:
            raise ValueError("chunk_events must be a positive event count")
        self.directory = os.fspath(directory)
        self.chunk_events = int(chunk_events)
        self.readonly = readonly
        self._tail: List[TraceEvent] = []
        #: Encoded prefix of the tail — the same incremental-encoding cache
        #: the memory sink keeps, shared between flush() and state_dict().
        self._encoded_tail: List[list] = []
        self._index = _read_index(self.directory)
        #: High-water mark of in-memory (unflushed) events, recorded so the
        #: bounded-RSS tests can assert trace memory never exceeded a chunk.
        self.peak_tail_events = 0
        if readonly:
            if self._index is None:
                raise TraceDirError(
                    f"{self.directory!r} holds no trace ({TRACE_INDEX_NAME} missing)"
                )
            self.chunk_events = int(self._index["chunk_events"])
            self._pending = False
        else:
            # Pending: fresh-vs-resume is decided by the first append (fresh)
            # or by restore() (attach at the snapshot's offsets).
            self._pending = True

    # -- write path ---------------------------------------------------------------

    def append(self, event: TraceEvent) -> None:
        if self.readonly:
            raise TraceDirError(f"trace at {self.directory!r} is open read-only")
        if self._pending:
            self._start_fresh()
        tail = self._tail
        tail.append(event)
        if len(tail) > self.peak_tail_events:
            self.peak_tail_events = len(tail)
        if len(tail) >= self.chunk_events:
            self.flush()

    def _start_fresh(self) -> None:
        # Wipe whatever a previous run left behind so the directory always
        # describes exactly one run.
        if self._index is not None:
            for chunk in self._index["chunks"]:
                self._remove_chunk(chunk["file"])
        os.makedirs(self.directory, exist_ok=True)
        self._index = _empty_index(self.chunk_events)
        _write_index(self.directory, self._index)
        self._pending = False

    def _remove_chunk(self, filename: str) -> None:
        path = os.path.join(self.directory, filename)
        if os.path.isfile(path):
            os.remove(path)

    def _encode_pending(self) -> None:
        encoded = self._encoded_tail
        for event in self._tail[len(encoded):]:
            encoded.append(encode_event(event))

    def flush(self) -> None:
        """Write the buffered tail as the next chunk and update the index.
        Called automatically when the tail reaches ``chunk_events`` and by
        the machine when a run method returns (so final short chunks are
        persisted too)."""
        if self.readonly or self._pending or not self._tail:
            return
        self._encode_pending()
        ordinal = len(self._index["chunks"])
        filename = f"chunk-{ordinal:05d}.jsonl.gz"
        _write_chunk(os.path.join(self.directory, filename), self._encoded_tail)
        categories: Dict[str, int] = {}
        nodes: Dict[str, int] = {}
        for event in self._tail:
            categories[event.category] = categories.get(event.category, 0) + 1
            node_key = str(event.node)
            nodes[node_key] = nodes.get(node_key, 0) + 1
        self._index["chunks"].append({
            "file": filename,
            "events": len(self._tail),
            "first_cycle": self._tail[0].cycle,
            "last_cycle": self._tail[-1].cycle,
            "categories": categories,
            "nodes": nodes,
        })
        self._index["total_events"] += len(self._tail)
        _write_index(self.directory, self._index)
        self._tail = []
        self._encoded_tail = []

    def close(self) -> None:
        self.flush()

    def clear(self) -> None:
        if self.readonly:
            raise TraceDirError(f"trace at {self.directory!r} is open read-only")
        self._tail = []
        self._encoded_tail = []
        self._start_fresh()

    # -- queries ------------------------------------------------------------------

    def __len__(self) -> int:
        flushed = 0
        if not self._pending and self._index is not None:
            flushed = self._index["total_events"]
        return flushed + len(self._tail)

    def _flushed_chunks(self) -> List[dict]:
        if self._pending or self._index is None:
            return []
        return self._index["chunks"]

    def iter_events(
        self,
        category: Optional[str] = None,
        node: Optional[int] = None,
        since: Optional[int] = None,
    ) -> Iterator[TraceEvent]:
        node_key = None if node is None else str(node)
        for chunk in self._flushed_chunks():
            # The per-chunk histograms let filtered reads skip whole chunks
            # without decompressing them.
            if category is not None and category not in chunk["categories"]:
                continue
            if node_key is not None and node_key not in chunk["nodes"]:
                continue
            if since is not None and chunk["last_cycle"] < since:
                continue
            for row in _iter_chunk_rows(os.path.join(self.directory, chunk["file"])):
                event = decode_event(row)
                if _match(event, category, node, since):
                    yield event
        for event in self._tail:
            if _match(event, category, node, since):
                yield event

    def count(self, category: str) -> int:
        total = sum(
            chunk["categories"].get(category, 0) for chunk in self._flushed_chunks()
        )
        return total + sum(1 for event in self._tail if event.category == category)

    def stats(self) -> dict:
        """Summary of the stored trace (the ``repro trace stats`` payload)."""
        chunks = self._flushed_chunks()
        categories: Dict[str, int] = {}
        nodes: Dict[str, int] = {}
        first_cycle: Optional[int] = None
        last_cycle: Optional[int] = None
        compressed_bytes = 0
        for chunk in chunks:
            for name, count in chunk["categories"].items():
                categories[name] = categories.get(name, 0) + count
            for name, count in chunk["nodes"].items():
                nodes[name] = nodes.get(name, 0) + count
            if first_cycle is None:
                first_cycle = chunk["first_cycle"]
            last_cycle = chunk["last_cycle"]
            path = os.path.join(self.directory, chunk["file"])
            if os.path.isfile(path):
                compressed_bytes += os.path.getsize(path)
        for event in self._tail:
            categories[event.category] = categories.get(event.category, 0) + 1
            node_key = str(event.node)
            nodes[node_key] = nodes.get(node_key, 0) + 1
            if first_cycle is None:
                first_cycle = event.cycle
            last_cycle = event.cycle
        return {
            "trace_dir": self.directory,
            "events": len(self),
            "chunks": len(chunks),
            "chunk_events": self.chunk_events,
            "first_cycle": first_cycle,
            "last_cycle": last_cycle,
            "compressed_bytes": compressed_bytes,
            "categories": {name: categories[name] for name in sorted(categories)},
            "nodes": {name: nodes[name] for name in sorted(nodes, key=int)},
        }

    # -- snapshot -----------------------------------------------------------------

    def state_dict(self) -> dict:
        """Path + offsets + unflushed tail.  Unlike the memory sink, the
        flushed history stays on disk — a snapshot of a long disk-backed run
        is O(tail), not O(trace)."""
        self._encode_pending()
        chunks = self._flushed_chunks()
        return {
            "sink": "disk",
            "trace_dir": self.directory,
            "chunk_events": self.chunk_events,
            "flushed_chunks": len(chunks),
            "flushed_events": sum(chunk["events"] for chunk in chunks),
            "tail": list(self._encoded_tail),
        }

    def restore(self, state: dict) -> None:
        """Attach at the snapshot's offsets: re-point to the snapshot's
        directory, drop any chunks flushed after the snapshot was taken,
        and reload the unflushed tail, so the resumed run appends exactly
        where the snapshotted run stood."""
        directory = os.fspath(state["trace_dir"])
        self.directory = directory
        self.chunk_events = int(state["chunk_events"])
        self.readonly = False
        flushed_chunks = state["flushed_chunks"]
        index = _read_index(directory)
        if flushed_chunks > 0:
            if index is None:
                raise TraceDirError(
                    f"snapshot references trace at {directory!r} but "
                    f"{TRACE_INDEX_NAME} is missing"
                )
            if len(index["chunks"]) < flushed_chunks:
                raise TraceDirError(
                    f"trace at {directory!r} holds {len(index['chunks'])} "
                    f"chunks but the snapshot expects {flushed_chunks}"
                )
            for chunk in index["chunks"][flushed_chunks:]:
                self._remove_chunk(chunk["file"])
            index["chunks"] = index["chunks"][:flushed_chunks]
            index["total_events"] = sum(
                chunk["events"] for chunk in index["chunks"]
            )
            if index["total_events"] != state["flushed_events"]:
                raise TraceDirError(
                    f"trace at {directory!r} holds {index['total_events']} "
                    f"flushed events but the snapshot expects "
                    f"{state['flushed_events']}"
                )
            _write_index(directory, index)
        else:
            if index is not None:
                for chunk in index["chunks"]:
                    self._remove_chunk(chunk["file"])
            os.makedirs(directory, exist_ok=True)
            index = _empty_index(self.chunk_events)
            _write_index(directory, index)
        self._index = index
        self._tail = [decode_event(row) for row in state["tail"]]
        # As with the memory sink, the loaded rows are already encoded:
        # reuse them so the first post-restore flush/checkpoint stays
        # O(new events).
        self._encoded_tail = list(state["tail"])
        self._pending = False
