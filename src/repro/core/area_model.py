"""The silicon-area / peak-performance model of Sections 1 and 5.

The paper's technology argument is quantitative:

* the normalised area of a VLSI chip grows ~50%/year while gate speed and
  communication bandwidth grow ~20%/year;
* a 64-bit processor with a pipelined FPU occupies ~400 Mlambda^2, which is
  11% of a 3.6 Glambda^2 1993 (0.5 um) chip and 4% of a 10 Glambda^2 1996
  (0.35 um) chip, and only 0.52% (1993, 64 MB) or 0.13% (1996, 256 MB) of the
  silicon area of a whole system;
* the MAP chip is ~5 Glambda^2 of which the four clusters are 32%, and the
  clusters are 11% of an 8 MB six-chip node;
* a 32-node M-Machine with 256 MB has 128x the peak performance of a 1996
  uniprocessor with the same memory at ~1.5x the area -- an ~85:1 improvement
  in peak performance per unit area.

This module encodes those numbers as an explicit model so the claims can be
recomputed (benchmark E7) and perturbed (what-if sweeps in the examples).
Areas are expressed in Mlambda^2 (10^6 lambda^2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

#: Area of a 64-bit processor with pipelined FPU (Mlambda^2), from Section 1.
PROCESSOR_AREA_MLAMBDA2 = 400.0

#: DRAM system area per MByte in Mlambda^2, derived from the paper's numbers:
#: the processor's 400 Mlambda^2 is 0.52% of a 64 MB 1993 system and 0.13% of
#: a 256 MB 1996 system, both of which give ~1.2 Glambda^2 per MByte.
DRAM_AREA_PER_MBYTE_MLAMBDA2 = 1200.0

#: MAP chip area (Mlambda^2) and the fraction occupied by the four clusters.
MAP_CHIP_AREA_MLAMBDA2 = 5000.0
MAP_CLUSTER_FRACTION = 0.32

#: Issue width used for peak-performance accounting (operations per cycle per
#: cluster and per conventional processor).
OPERATIONS_PER_CLUSTER = 3
CLUSTERS_PER_NODE = 4
NODE_MEMORY_MBYTES = 8


@dataclass(frozen=True)
class TechnologyPoint:
    """One technology generation as characterised in Section 1."""

    year: int
    feature_size_um: float
    chip_area_mlambda2: float
    system_memory_mbytes: int

    @property
    def processor_fraction_of_chip(self) -> float:
        return PROCESSOR_AREA_MLAMBDA2 / self.chip_area_mlambda2

    @property
    def system_area_mlambda2(self) -> float:
        return PROCESSOR_AREA_MLAMBDA2 + self.system_memory_mbytes * DRAM_AREA_PER_MBYTE_MLAMBDA2

    @property
    def processor_fraction_of_system(self) -> float:
        return PROCESSOR_AREA_MLAMBDA2 / self.system_area_mlambda2


#: The two technology points the paper quotes.
TECH_1993 = TechnologyPoint(year=1993, feature_size_um=0.5, chip_area_mlambda2=3600.0,
                            system_memory_mbytes=64)
TECH_1996 = TechnologyPoint(year=1996, feature_size_um=0.35, chip_area_mlambda2=10000.0,
                            system_memory_mbytes=256)

#: Annual growth rates quoted from Hennessy & Jouppi.
CHIP_AREA_GROWTH_PER_YEAR = 0.50
GATE_SPEED_GROWTH_PER_YEAR = 0.20


class AreaModel:
    """Recomputes the paper's area and peak-performance/area claims."""

    def __init__(
        self,
        processor_area: float = PROCESSOR_AREA_MLAMBDA2,
        dram_area_per_mbyte: float = DRAM_AREA_PER_MBYTE_MLAMBDA2,
        map_chip_area: float = MAP_CHIP_AREA_MLAMBDA2,
        cluster_fraction: float = MAP_CLUSTER_FRACTION,
        node_memory_mbytes: int = NODE_MEMORY_MBYTES,
        clusters_per_node: int = CLUSTERS_PER_NODE,
        operations_per_cluster: int = OPERATIONS_PER_CLUSTER,
    ):
        self.processor_area = processor_area
        self.dram_area_per_mbyte = dram_area_per_mbyte
        self.map_chip_area = map_chip_area
        self.cluster_fraction = cluster_fraction
        self.node_memory_mbytes = node_memory_mbytes
        self.clusters_per_node = clusters_per_node
        self.operations_per_cluster = operations_per_cluster

    # -- node-level figures --------------------------------------------------------

    @property
    def cluster_area(self) -> float:
        """Area of the four execution clusters of one MAP chip."""
        return self.map_chip_area * self.cluster_fraction

    @property
    def node_area(self) -> float:
        """Area of one node: the MAP chip plus its SDRAM."""
        return self.map_chip_area + self.node_memory_mbytes * self.dram_area_per_mbyte

    @property
    def cluster_fraction_of_node(self) -> float:
        """Fraction of a node's silicon devoted to the execution clusters
        (the paper's "11% of an 8 MByte (six-chip) node")."""
        return self.cluster_area / self.node_area

    # -- machine-level figures -------------------------------------------------------

    def machine_area(self, num_nodes: int) -> float:
        return num_nodes * self.node_area

    def machine_memory_mbytes(self, num_nodes: int) -> int:
        return num_nodes * self.node_memory_mbytes

    def machine_peak_operations(self, num_nodes: int) -> int:
        """Peak operations per cycle of an M-Machine."""
        return num_nodes * self.clusters_per_node * self.operations_per_cluster

    def uniprocessor_area(self, memory_mbytes: int) -> float:
        """Area of a conventional uniprocessor system with the same memory."""
        return self.processor_area + memory_mbytes * self.dram_area_per_mbyte

    def uniprocessor_peak_operations(self) -> int:
        return self.operations_per_cluster

    # -- the paper's headline comparison ---------------------------------------------

    def comparison(self, num_nodes: int = 32) -> Dict[str, float]:
        """The Section 1 / Section 5 comparison of an M-Machine against a
        uniprocessor with the same memory capacity."""
        memory = self.machine_memory_mbytes(num_nodes)
        m_area = self.machine_area(num_nodes)
        u_area = self.uniprocessor_area(memory)
        m_peak = self.machine_peak_operations(num_nodes)
        u_peak = self.uniprocessor_peak_operations()
        area_ratio = m_area / u_area
        peak_ratio = m_peak / u_peak
        return {
            "num_nodes": num_nodes,
            "memory_mbytes": memory,
            "mmachine_area_mlambda2": m_area,
            "uniprocessor_area_mlambda2": u_area,
            "area_ratio": area_ratio,
            "peak_ratio": peak_ratio,
            "peak_per_area_improvement": peak_ratio / area_ratio,
            "cluster_fraction_of_node": self.cluster_fraction_of_node,
            "uniprocessor_fraction_of_system": self.processor_area / u_area,
        }

    # -- technology scaling ------------------------------------------------------------

    @staticmethod
    def scale_chip_area(base_area: float, years: float,
                        growth: float = CHIP_AREA_GROWTH_PER_YEAR) -> float:
        """Scale a chip area forward by *years* at the quoted growth rate."""
        return base_area * (1.0 + growth) ** years

    @staticmethod
    def processor_fraction_over_time(start: TechnologyPoint, years: int) -> Dict[int, float]:
        """Processor fraction of the chip, year by year, as chips grow 50%/yr
        while the processor stays the same size (the trend motivating the
        M-Machine's increased processor/memory ratio)."""
        result = {}
        for offset in range(years + 1):
            area = AreaModel.scale_chip_area(start.chip_area_mlambda2, offset)
            result[start.year + offset] = PROCESSOR_AREA_MLAMBDA2 / area
        return result
