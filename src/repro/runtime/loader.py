"""Address-space and data-placement helpers.

The paper's programming model is a flat, shared, global virtual address space
whose page-groups are distributed across nodes by GTLB entries (Section 4.1)
with local caching of remote data handled either by the remote-access
handlers (Section 4.2) or the DRAM-caching layer (Section 4.3).  These
helpers build the common layouts used by the examples, tests and benchmarks:

* :func:`setup_private_heap` -- one page-group per node, homed entirely on
  that node (private working storage);
* :func:`setup_interleaved_heap` -- a single page-group spread over a 3-D
  region of nodes with a chosen pages-per-node interleaving (the distributed
  data of the stencil and traffic workloads);
* :class:`SharedArray` -- a convenience wrapper for reading/writing a dense
  array held in the global address space from the host (loader) side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.machine import MMachine
from repro.network.gtlb import GtlbEntry


def _log2_exact(value: int) -> int:
    if value <= 0 or value & (value - 1):
        raise ValueError(f"{value} is not a positive power of two")
    return value.bit_length() - 1


def region_extent_for(machine: MMachine) -> Tuple[int, int, int]:
    """The extent exponents covering the whole mesh (requires power-of-two
    mesh dimensions, as the GTLB entry format does)."""
    shape = machine.config.network.mesh_shape
    return tuple(_log2_exact(dim) for dim in shape)


def setup_private_heap(machine: MMachine, node_id: int, base_address: int,
                       num_pages: int = 1) -> GtlbEntry:
    """Map *num_pages* pages starting at *base_address* entirely on one node."""
    return machine.map_on_node(node_id, base_address, num_pages)


def setup_interleaved_heap(
    machine: MMachine,
    base_address: int,
    num_pages: int,
    pages_per_node: int = 1,
    start_node: Tuple[int, int, int] = (0, 0, 0),
    extent: Optional[Tuple[int, int, int]] = None,
) -> GtlbEntry:
    """Map a page-group across a region of nodes (defaults to the whole mesh)."""
    if extent is None:
        extent = region_extent_for(machine)
    return machine.map_region(
        base_address,
        num_pages,
        start_node=start_node,
        extent=extent,
        pages_per_node=pages_per_node,
    )


@dataclass
class SharedArray:
    """A dense array of words in the global virtual address space."""

    machine: MMachine
    base_address: int
    length: int

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise ValueError("array length must be positive")

    def address_of(self, index: int) -> int:
        if not 0 <= index < self.length:
            raise IndexError(f"index {index} out of range for array of {self.length}")
        return self.base_address + index

    def __len__(self) -> int:
        return self.length

    def __getitem__(self, index: int):
        return self.machine.read_word(self.address_of(index))

    def __setitem__(self, index: int, value) -> None:
        self.machine.write_word(self.address_of(index), value)

    def fill(self, values: Sequence[object]) -> None:
        if len(values) > self.length:
            raise ValueError("too many values for the array")
        for index, value in enumerate(values):
            self[index] = value

    def to_list(self) -> List[object]:
        return [self[index] for index in range(self.length)]

    def home_nodes(self) -> Dict[int, int]:
        """Map each element index to its home node id (placement check)."""
        return {
            index: self.machine.home_node_of(self.address_of(index)).node_id
            for index in range(self.length)
        }


def make_shared_array(
    machine: MMachine,
    base_address: int,
    length: int,
    pages_per_node: int = 1,
    interleaved: bool = True,
    node_id: int = 0,
) -> SharedArray:
    """Map enough pages for *length* words and return a :class:`SharedArray`.

    The page count is rounded up to the next power of two as required by the
    GTLB entry format.
    """
    page_size = machine.page_size
    pages_needed = max(1, -(-length // page_size))
    num_pages = 1
    while num_pages < pages_needed:
        num_pages *= 2
    if interleaved and machine.num_nodes > 1:
        setup_interleaved_heap(machine, base_address, num_pages, pages_per_node=pages_per_node)
    else:
        setup_private_heap(machine, node_id, base_address, num_pages)
    return SharedArray(machine, base_address, length)
