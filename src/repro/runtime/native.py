"""Native (Python) runtime handlers.

The paper publishes the mechanism of its Section 4.3 software DRAM-caching /
coherence layer (block-status bits, a home-node directory, handlers invoked
through the same event V-Thread machinery) but not the handler code itself.
Per the reproduction's substitution rule those handlers are implemented here
as *native handlers*: Python callbacks attached to a node's hardware queues
that consume the same event records / message words an assembly handler
would, perform their effects through the node's architectural interfaces
(memory system, network interface, ``xregwr``), and charge an explicit cycle
cost during which they are busy and process nothing else.

The native-handler framework is also used for the default
memory-synchronizing-fault policy (retry after a back-off), which the paper
mentions but does not specify.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.core.config import RuntimeConfig
from repro.events.queue import EventQueue, HardwareQueue
from repro.events.records import EventRecord, EventType
from repro.snapshot.values import SnapshotError, decode_value, encode_value


class NativeHandler:
    """Base class: a handler bound to one hardware queue of one node."""

    def __init__(self, node, runtime_config: RuntimeConfig, name: str = "native"):
        self.node = node
        self.runtime_config = runtime_config
        self.name = name
        self.busy_until = -1
        self.invocations = 0
        self.cycles_busy = 0

    # -- framework -----------------------------------------------------------------
    #
    # Every handler exposes three things to the node and the event kernel:
    #
    # ``busy``             -- True while the handler holds deferred work that
    #                         is not visible in any hardware queue (part of
    #                         the node's quiescence predicate);
    # ``has_queued_work``  -- True when the bound hardware queue would make
    #                         the next ``poll`` do something;
    # ``next_event_cycle`` -- SimComponent contract: the next cycle a tick of
    #                         this handler can have an effect, or None.
    #
    # Handlers that buffer their own future work (like the synchronizing-
    # fault retry handler) must override ``busy`` and ``next_event_cycle``;
    # a handler whose ``tick`` does per-cycle work the kernel cannot see
    # would violate the contract in :mod:`repro.core.component`.

    @property
    def busy(self) -> bool:
        """True while the handler holds work outside its hardware queue."""
        return False

    def has_queued_work(self) -> bool:
        """True when the bound hardware queue has something to consume."""
        return False

    def next_event_cycle(self, cycle: int) -> Optional[int]:
        if self.has_queued_work():
            # Queued items are consumed as soon as the busy charge of the
            # previous invocation has been paid.
            return max(self.busy_until, cycle + 1)
        return None

    def tick(self, node, cycle: int) -> None:
        if cycle < self.busy_until:
            return
        cost = self.poll(cycle)
        if cost:
            self.invocations += 1
            self.cycles_busy += cost
            self.busy_until = cycle + cost

    def poll(self, cycle: int) -> int:
        """Check the bound queue; handle at most one item; return its cycle
        cost (0 when there was nothing to do)."""
        raise NotImplementedError

    # -- cost helpers ----------------------------------------------------------------

    def dispatch_cost(self, words_touched: int = 0) -> int:
        return (
            self.runtime_config.native_handler_dispatch_cycles
            + self.runtime_config.native_handler_cycles_per_word * words_touched
        )

    def trace(self, cycle: int, category: str, **info) -> None:
        self.node.trace(cycle, category, handler=self.name, **info)

    # -- snapshot (repro.snapshot state_dict contract) -------------------------
    #
    # Handlers are rebuilt structurally when the runtime is reinstalled on a
    # restored machine; only their mutable state is captured here.  Handlers
    # that buffer deferred work extend these dicts.

    def state_dict(self) -> dict:
        return {
            "name": self.name,
            "busy_until": self.busy_until,
            "invocations": self.invocations,
            "cycles_busy": self.cycles_busy,
        }

    def load_state_dict(self, state: dict) -> None:
        if state["name"] != self.name:

            raise SnapshotError(
                f"native-handler mismatch: snapshot has {state['name']!r}, "
                f"machine has {self.name!r} (runtime layout changed?)"
            )
        self.busy_until = state["busy_until"]
        self.invocations = state["invocations"]
        self.cycles_busy = state["cycles_busy"]


class EventNativeHandler(NativeHandler):
    """A native handler that consumes :class:`EventRecord` objects."""

    def __init__(self, node, runtime_config: RuntimeConfig, queue: EventQueue, name: str):
        super().__init__(node, runtime_config, name)
        self.queue = queue

    def has_queued_work(self) -> bool:
        return self.queue.pending_records > 0

    def poll(self, cycle: int) -> int:
        if self.queue.pending_records == 0:
            return 0
        record = self.queue.pop_record()
        self.trace(cycle, "handler_dispatch", event=record.event_type.name,
                   address=record.address)
        return self.handle(record, cycle)

    def handle(self, record: EventRecord, cycle: int) -> int:
        raise NotImplementedError


class MessageNativeHandler(NativeHandler):
    """A native handler that consumes messages from a register-mapped queue.

    Message word layout is ``[DIP, address, body...]``; the body length is a
    function of the DIP, supplied by the ``body_lengths`` table.
    """

    def __init__(
        self,
        node,
        runtime_config: RuntimeConfig,
        queue: HardwareQueue,
        body_lengths: Dict[int, int],
        name: str,
    ):
        super().__init__(node, runtime_config, name)
        self.queue = queue
        self.body_lengths = body_lengths
        self.unknown_dips = 0

    def has_queued_work(self) -> bool:
        # A partially-streamed message keeps the node polling, exactly as the
        # naive loop does, until the remaining words arrive.
        return not self.queue.is_empty

    def poll(self, cycle: int) -> int:
        if self.queue.is_empty:
            return 0
        dip = int(self.queue.peek_word())
        if dip not in self.body_lengths:
            # Unknown message type: drop the DIP word and count it.  This is
            # the native analogue of jumping to an unregistered DIP.
            self.queue.pop_word()
            self.unknown_dips += 1
            return self.dispatch_cost()
        body_length = self.body_lengths[dip]
        if len(self.queue) < 2 + body_length:
            # The message is still streaming in; try again next cycle.
            return 0
        self.queue.pop_word()  # the DIP we peeked
        address = self.queue.pop_word()
        body = [self.queue.pop_word() for _ in range(body_length)]
        self.trace(cycle, "handler_dispatch", dip=dip, address=address, body_words=body_length)
        return self.handle_message(dip, address, body, cycle)

    def handle_message(self, dip: int, address: int, body: List[object], cycle: int) -> int:
        raise NotImplementedError

    def state_dict(self) -> dict:
        state = super().state_dict()
        state["unknown_dips"] = self.unknown_dips
        return state

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        self.unknown_dips = state["unknown_dips"]


class SyncStatusFaultHandler(EventNativeHandler):
    """Default handler for the cluster-0 event queue (memory-synchronizing
    faults and -- in remote mode -- unexpected block-status faults).

    A synchronizing load/store whose precondition failed is retried after a
    back-off, so producer/consumer code using the full/empty bits makes
    progress as soon as the producer stores (Section 2's synchronizing memory
    operations).  A block-status fault is delegated to ``on_block_status``
    when a coherence runtime installed one, and is an error otherwise.
    """

    def __init__(self, node, runtime_config: RuntimeConfig, queue: EventQueue,
                 on_block_status: Optional[Callable[[EventRecord, int], int]] = None):
        super().__init__(node, runtime_config, queue, name=f"sync-status-n{node.node_id}")
        self.on_block_status = on_block_status
        self.retries = 0
        self._deferred: List[tuple] = []

    @property
    def busy(self) -> bool:
        return bool(self._deferred)

    def next_event_cycle(self, cycle: int) -> Optional[int]:
        queued = super().next_event_cycle(cycle)
        if not self._deferred:
            return queued
        retry = min(at for at, _ in self._deferred)
        return retry if queued is None else min(queued, retry)

    def tick(self, node, cycle: int) -> None:
        # Re-submit deferred (backed-off) retries whose time has come, then
        # process the queue as usual.
        if self._deferred:
            due = [entry for entry in self._deferred if entry[0] <= cycle]
            self._deferred = [entry for entry in self._deferred if entry[0] > cycle]
            for _, request in due:
                self.node.memory.submit(request, cycle)
                self.retries += 1
        super().tick(node, cycle)

    def handle(self, record: EventRecord, cycle: int) -> int:
        if record.event_type is EventType.SYNC_FAULT:
            request = record.extra.get("request")
            if request is None:
                return self.dispatch_cost()
            retry_at = cycle + self.runtime_config.sync_fault_retry_cycles
            self._deferred.append((retry_at, request))
            self.trace(cycle, "handler_sync_retry", address=record.address, retry_at=retry_at)
            return self.dispatch_cost(words_touched=1)
        if record.event_type is EventType.BLOCK_STATUS:
            if self.on_block_status is not None:
                return self.on_block_status(record, cycle)
            raise RuntimeError(
                f"node {self.node.node_id}: block-status fault at {record.address:#x} "
                f"but no coherence runtime is installed (shared_memory_mode='remote')"
            )
        raise RuntimeError(f"unexpected event {record} on the sync/status queue")

    def state_dict(self) -> dict:

        state = super().state_dict()
        state["retries"] = self.retries
        state["deferred"] = [[retry_at, encode_value(request)]
                             for retry_at, request in self._deferred]
        return state

    def load_state_dict(self, state: dict) -> None:

        super().load_state_dict(state)
        self.retries = state["retries"]
        self._deferred = [(retry_at, decode_value(request))
                          for retry_at, request in state["deferred"]]
