"""Assembly event and message handlers (the Section 4.2 runtime).

These are the software handlers that, together with the hardware mechanisms,
implement transparent non-cached access to remote memory:

* the **priority-0 message dispatch handler** runs in the event V-Thread on
  cluster 2; it blocks on the register-mapped message queue, jumps to the
  DIP of each arriving message and executes the remote-store / remote-load
  handlers (Figure 7 of the paper shows exactly this code shape);
* the **priority-1 handler** runs on cluster 3 and decodes reply messages,
  writing the returned data directly into the destination register of the
  faulting load with the privileged ``xregwr`` operation;
* the **LTLB-miss handler** runs on cluster 1; it walks the memory-resident
  LPT image with physical loads, installs the translation and replays the
  access if the page is local, or probes the GTLB and sends a remote
  read/write request message if the page is homed on another node
  (Section 4.2's seven-step remote read).

The handlers are genuine MAP assembly assembled by :mod:`repro.isa.assembler`
and executed by the simulator, so every latency reported by the Table 1 /
Figure 9 benchmarks is measured, not asserted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core.config import MachineConfig
from repro.events.records import INFO_IS_STORE_SHIFT, INFO_REGSPEC_MASK
from repro.isa.assembler import assemble
from repro.isa.program import Program
from repro.memory.page_table import LPT_ENTRY_WORDS
from repro.runtime.layout import RETURN_NODE_SHIFT, RETURN_REGSPEC_MASK


@dataclass
class AsmRuntimePrograms:
    """The assembled event-V-Thread programs plus the DIP table."""

    ltlb_handler: Program
    message_p0_handler: Program
    message_p1_handler: Program
    dips: Dict[str, int]


def message_p1_source() -> str:
    """Priority-1 (system reply) handler: decode a remote-load reply."""
    return """
    ; Priority-1 message handler (event V-Thread, cluster 3).
    ; Replies carry [regspec, data]; the handler writes the data directly
    ; into the destination register of the faulting load (Section 4.2 step 7).
dispatch:
    jmp net                    ; wait for a message, jump to its DIP
reply_load:
    mov i1, net                ; destination-address word (unused for replies)
    mov i2, net                ; regspec of the original load destination
    mov i3, net                ; the data value
    xregwr i2, i3              ; deliver it to the faulting thread's register
    jmp dispatch
"""


def message_p0_source(reply_dip: int) -> str:
    """Priority-0 (user request) handler: remote store and remote load."""
    return f"""
    ; Priority-0 message handler (event V-Thread, cluster 2).
    ; Message queue words arrive as [DIP, address, body...]; "jmp net"
    ; dequeues the DIP and dispatches (Figure 7(b) of the paper).
dispatch:
    jmp net
remote_store:
    mov i1, net                ; destination virtual address
    st net, i1                 ; store the single body word at that address
    jmp dispatch
remote_load:
    mov i1, net                ; virtual address to read
    mov i2, net                ; return info: (source node << {RETURN_NODE_SHIFT}) | regspec
    ld i3, i1                  ; perform the load from local memory
    shr i4, i2, #{RETURN_NODE_SHIFT}     ; requesting node id
    and i5, i2, #{RETURN_REGSPEC_MASK:#x} ; destination regspec
    mov m0, i5                 ; reply body word 0: regspec
    mov m1, i3                 ; reply body word 1: data (waits for the load)
    sendp i4, #{reply_dip}, #2 ; system reply at priority 1
    jmp dispatch
"""


def ltlb_miss_source(
    page_shift: int,
    lpt_slot_mask: int,
    lpt_phys_base: int,
    remote_load_dip: int,
    remote_store_dip: int,
) -> str:
    """LTLB-miss handler (event V-Thread, cluster 1)."""
    return f"""
    ; LTLB-miss handler (event V-Thread, cluster 1).
    ; Event records are 4 words: [type, va, data, info].
loop:
    mov i1, evq                ; event type (always an LTLB miss on this queue)
    mov i2, evq                ; faulting virtual address
    mov i3, evq                ; store data (0 for loads)
    mov i4, evq                ; info word (regspec | is-store | ...)
    shr i5, i2, #{page_shift}  ; virtual page number
    and i6, i5, #{lpt_slot_mask:#x}   ; direct-mapped LPT image slot
    shl i7, i6, #{(LPT_ENTRY_WORDS - 1).bit_length()}  ; slot * entry size
    add i7, i7, #{lpt_phys_base}      ; physical address of the LPT entry
    pld i8, i7                 ; entry word 0: (vpage << 1) | valid
    pld i9, i7, #1             ; entry word 1: (frame << 1) | writable
    and i10, i8, #1
    brz i10, not_local         ; invalid entry: page is not local
    shr i11, i8, #1
    eq i12, i11, i5
    brz i12, not_local         ; tag mismatch: page is not local
    ; --- the page is local: install the translation and replay ---
    shr i13, i9, #1            ; physical frame
    and i14, i9, #1            ; writable flag
    or i14, i14, #2            ; ltlbw flags: writable | blocks-valid
    ltlbw i2, i13, i14
    shr i15, i4, #{INFO_IS_STORE_SHIFT}
    and i15, i15, #1
    br i15, local_store
    ld i13, i2                 ; replay the load
    and i14, i4, #{INFO_REGSPEC_MASK:#x}
    xregwr i14, i13            ; deliver the value to the original destination
    jmp loop
local_store:
    st i3, i2                  ; replay the store
    jmp loop
    ; --- the page is homed on another node: forward over the network ---
not_local:
    gprobe i8, i2              ; home node of the faulting address
    lt i9, i8, #0
    br i9, unmapped
    shr i15, i4, #{INFO_IS_STORE_SHIFT}
    and i15, i15, #1
    br i15, remote_store_req
    and i10, i4, #{INFO_REGSPEC_MASK:#x}
    mov i11, nid
    shl i11, i11, #{RETURN_NODE_SHIFT}
    or i10, i10, i11           ; return info: (this node << shift) | regspec
    mov m0, i10
    send i2, #{remote_load_dip}, #1   ; request message to the home node
    jmp loop
remote_store_req:
    mov m0, i3                 ; the data to store
    send i2, #{remote_store_dip}, #1
    jmp loop
unmapped:
    halt                       ; address mapped by no page-group: fatal
"""


def build_asm_runtime(config: MachineConfig, lpt_phys_base: int) -> AsmRuntimePrograms:
    """Assemble the three event-V-Thread handler programs for a machine.

    All nodes share the same configuration, hence the same LPT image base, so
    a single set of programs is loaded on every node.
    """
    p1_program = assemble(message_p1_source(), name="runtime-msg-p1")
    reply_dip = p1_program.label_address("reply_load")

    p0_program = assemble(message_p0_source(reply_dip), name="runtime-msg-p0")
    remote_store_dip = p0_program.label_address("remote_store")
    remote_load_dip = p0_program.label_address("remote_load")

    page_shift = (config.memory.page_size_words - 1).bit_length()
    lpt_slot_mask = config.memory.lpt_entries - 1
    ltlb_program = assemble(
        ltlb_miss_source(
            page_shift=page_shift,
            lpt_slot_mask=lpt_slot_mask,
            lpt_phys_base=lpt_phys_base,
            remote_load_dip=remote_load_dip,
            remote_store_dip=remote_store_dip,
        ),
        name="runtime-ltlb-miss",
    )

    return AsmRuntimePrograms(
        ltlb_handler=ltlb_program,
        message_p0_handler=p0_program,
        message_p1_handler=p1_program,
        dips={
            "remote_store": remote_store_dip,
            "remote_load": remote_load_dip,
            "reply_load": reply_dip,
        },
    )
