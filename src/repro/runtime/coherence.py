"""Software DRAM caching and coherence with block-status bits (Section 4.3).

"To reduce overall latency and improve bandwidth utilization, each M-Machine
node may use its local memory to cache data from remote nodes. ... When a
memory reference occurs, the block status bits corresponding to the global
virtual address are checked in hardware.  If the attempted operation is not
allowed by the state of the block, a software trap called a block status
fault occurs. ... The block status handler sends a message to the home node,
which can be determined using the GTLB, requesting the cache block containing
the data.  The home node logs the requesting node in a software managed
directory and sends the block back.  When the block is received, the data is
written to memory and the block status bits are marked valid."

This module implements that policy -- extended with the invalidation needed
to keep a single writer, which the paper leaves to "a variety of coherence
policies and protocols" implementable in the same handlers -- as a set of
native handlers (see :mod:`repro.runtime.native`):

* requester side: the LTLB-miss handler creates a local mapping with INVALID
  blocks for remote pages; the block-status handler sends a read or write
  request to the home node and replays the faulting access when the block
  arrives;
* home side: a software-managed directory per node tracks sharers and the
  exclusive owner of each block; read requests return a READ-ONLY copy,
  write requests invalidate other copies (collecting dirty data) before
  granting a READ/WRITE copy;
* dirty blocks are returned to the home node when invalidated, and writes to
  granted READ/WRITE blocks are marked DIRTY automatically by the hardware
  block-status check, exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.config import RuntimeConfig
from repro.events.records import EventRecord
from repro.memory.page_table import BLOCK_SIZE_WORDS, BlockStatus, block_base, page_of
from repro.memory.requests import MemRequest
from repro.runtime.layout import (
    DIP_BLOCK_DATA,
    DIP_BLOCK_READ_REQ,
    DIP_BLOCK_WRITE_REQ,
    DIP_INVALIDATE,
    DIP_INVAL_ACK,
)
from repro.runtime.native import (
    EventNativeHandler,
    MessageNativeHandler,
    SyncStatusFaultHandler,
)
from repro.snapshot.values import decode_value, encode_value

#: Body lengths (in words) of the coherence protocol messages.
COHERENCE_BODY_LENGTHS_P0 = {
    DIP_BLOCK_READ_REQ: 1,          # [requester]
    DIP_BLOCK_WRITE_REQ: 1,         # [requester]
    DIP_INVALIDATE: 1,              # [home]
}
COHERENCE_BODY_LENGTHS_P1 = {
    DIP_BLOCK_DATA: 1 + BLOCK_SIZE_WORDS,       # [mode, 8 data words]
    DIP_INVAL_ACK: 2 + BLOCK_SIZE_WORDS,        # [sharer, dirty, 8 data words]
}

#: BLOCK_DATA modes.
MODE_READ_ONLY = 0
MODE_READ_WRITE = 1

#: Marker used in place of a node id when the home node itself is the
#: requester of a recall.
HOME_REQUESTER = -1


@dataclass
class DirectoryEntry:
    """Home-node bookkeeping for one block."""

    sharers: set = field(default_factory=set)
    owner: Optional[int] = None
    #: Requests queued while a grant is in progress: (requester, mode, requests)
    queue: List[Tuple[int, int, List[MemRequest]]] = field(default_factory=list)
    busy: bool = False


@dataclass
class PendingGrant:
    """An in-progress grant at the home node, waiting for invalidation acks."""

    requester: int
    mode: int
    acks_needed: int
    #: Faulting requests to replay locally when the requester is the home node.
    local_requests: List[MemRequest] = field(default_factory=list)


@dataclass
class PendingFetch:
    """An in-progress block fetch at a requesting node."""

    mode: int
    requests: List[MemRequest] = field(default_factory=list)


class CoherenceRuntime:
    """Machine-wide state of the coherence protocol (directories and pending
    operations) plus construction of the per-node native handlers."""

    def __init__(self, machine):
        self.machine = machine
        self.config: RuntimeConfig = machine.config.runtime
        self.directories: Dict[int, Dict[int, DirectoryEntry]] = {
            node.node_id: {} for node in machine.nodes
        }
        self.pending_grants: Dict[int, Dict[int, PendingGrant]] = {
            node.node_id: {} for node in machine.nodes
        }
        self.pending_fetches: Dict[int, Dict[int, PendingFetch]] = {
            node.node_id: {} for node in machine.nodes
        }
        # Statistics
        self.block_fetches = 0
        self.write_upgrades = 0
        self.invalidations = 0
        self.dirty_writebacks = 0

    # ------------------------------------------------------------------ install

    def install(self) -> Dict[int, list]:
        handlers: Dict[int, list] = {}
        for node in self.machine.nodes:
            node_handlers = [
                CoherentLtlbHandler(node, self.config, node.event_queue_ltlb, self),
                SyncStatusFaultHandler(
                    node,
                    self.config,
                    node.event_queue_sync,
                    on_block_status=_BlockStatusCallback(self, node),
                ),
                CoherentRequestHandler(node, self.config, node.msg_queue_p0, self),
                CoherentReplyHandler(node, self.config, node.msg_queue_p1, self),
            ]
            node.native_handlers.extend(node_handlers)
            handlers[node.node_id] = node_handlers
        return handlers

    # ----------------------------------------------------------- shared helpers

    def directory_entry(self, home_id: int, block_va: int) -> DirectoryEntry:
        return self.directories[home_id].setdefault(block_va, DirectoryEntry())

    def read_block(self, node, block_va: int) -> List[object]:
        """Read a block's current contents at its home or holder, seeing
        through the on-chip cache."""
        return node.memory.read_block_virtual(block_va)

    def write_block(self, node, block_va: int, data: List[object]) -> None:
        node.memory.write_block_virtual(block_va, data)

    def send(self, node, cycle: int, dest_node: int, dip: int, address: int,
             body: List[object], priority: int) -> None:
        """Send a protocol message from *node*.  Protocol replies and
        invalidations name their destination node directly (system-level
        physical sends); data words beyond the MC-register limit model the
        packetised system messages the paper mentions."""
        node.net.send(
            cycle=cycle,
            dest_address=address,
            dip=dip,
            body=body,
            priority=priority,
            physical_node=dest_node,
            check_dip=False,
            allow_long=True,
        )

    def replay(self, node, requests: List[MemRequest], cycle: int) -> None:
        for request in requests:
            node.memory.submit(request, cycle)

    # --------------------------------------------------------------- home logic

    def home_handle_request(self, home_node, requester: int, mode: int, block_va: int,
                            cycle: int, local_requests: Optional[List[MemRequest]] = None) -> int:
        """Process a read/write request for a block homed at *home_node*.

        Returns the handler cycle cost.  ``requester == HOME_REQUESTER`` (with
        ``local_requests``) means the home node itself faulted on the block.
        """
        entry = self.directory_entry(home_node.node_id, block_va)
        if entry.busy:
            entry.queue.append((requester, mode, list(local_requests or [])))
            return 4
        entry.busy = True
        return self._home_service(home_node, entry, requester, mode, block_va, cycle,
                                  local_requests or [])

    def _home_service(self, home_node, entry: DirectoryEntry, requester: int, mode: int,
                      block_va: int, cycle: int, local_requests: List[MemRequest]) -> int:
        home_id = home_node.node_id
        # Copies that must be invalidated before this request can be granted.
        victims = set()
        if entry.owner is not None and entry.owner != requester:
            victims.add(entry.owner)
        if mode == MODE_READ_WRITE:
            victims |= {s for s in entry.sharers if s not in (requester, home_id)}
            if entry.owner is not None and entry.owner != requester:
                victims.add(entry.owner)
        victims.discard(home_id)
        victims.discard(requester if requester != HOME_REQUESTER else home_id)

        grant = PendingGrant(requester=requester, mode=mode, acks_needed=len(victims),
                             local_requests=local_requests)
        self.pending_grants[home_id][block_va] = grant

        cost = 8
        for victim in sorted(victims):
            self.invalidations += 1
            self.send(home_node, cycle, victim, DIP_INVALIDATE, block_va, [home_id], priority=0)
            cost += 2

        if grant.acks_needed == 0:
            cost += self._home_grant(home_node, block_va, cycle)
        return cost

    def _home_grant(self, home_node, block_va: int, cycle: int) -> int:
        """All invalidations are complete: hand the block to the requester."""
        home_id = home_node.node_id
        grant = self.pending_grants[home_id].pop(block_va)
        entry = self.directory_entry(home_id, block_va)
        cost = 4 + BLOCK_SIZE_WORDS

        if grant.requester == HOME_REQUESTER:
            # The home node itself reclaims the block.
            status = BlockStatus.READ_WRITE if grant.mode == MODE_READ_WRITE else BlockStatus.READ_ONLY
            home_node.memory.set_block_status(block_va, status)
            entry.owner = None
            entry.sharers = {home_id}
            self.replay(home_node, grant.local_requests, cycle + cost)
        else:
            data = self.read_block(home_node, block_va)
            self.send(home_node, cycle, grant.requester, DIP_BLOCK_DATA, block_va,
                      [grant.mode] + data, priority=1)
            self.block_fetches += 1
            if grant.mode == MODE_READ_WRITE:
                self.write_upgrades += 1
                entry.owner = grant.requester
                entry.sharers = {grant.requester}
                # The home's copy is stale once a remote writer exists.
                home_node.memory.invalidate_block(block_va)
                home_node.memory.set_block_status(block_va, BlockStatus.INVALID)
            else:
                entry.owner = None
                entry.sharers |= {grant.requester, home_id}
                # Downgrade the home's own copy so its future writes fault and
                # go through the protocol.
                if home_node.memory.get_block_status(block_va) in (
                    int(BlockStatus.READ_WRITE), int(BlockStatus.DIRTY)
                ):
                    home_node.memory.set_block_status(block_va, BlockStatus.READ_ONLY)

        entry.busy = False
        if entry.queue:
            requester, mode, local_requests = entry.queue.pop(0)
            cost += self.home_handle_request(home_node, requester, mode, block_va,
                                             cycle + cost, local_requests)
        return cost

    def home_handle_inval_ack(self, home_node, block_va: int, sharer: int, dirty: bool,
                              data: List[object], cycle: int) -> int:
        home_id = home_node.node_id
        entry = self.directory_entry(home_id, block_va)
        entry.sharers.discard(sharer)
        if entry.owner == sharer:
            entry.owner = None
        cost = 4
        if dirty:
            self.dirty_writebacks += 1
            self.write_block(home_node, block_va, data)
            cost += BLOCK_SIZE_WORDS
        grant = self.pending_grants[home_id].get(block_va)
        if grant is not None:
            grant.acks_needed -= 1
            if grant.acks_needed <= 0:
                cost += self._home_grant(home_node, block_va, cycle + cost)
        return cost

    # ----------------------------------------------------------- requester logic

    def requester_fault(self, node, record: EventRecord, cycle: int) -> int:
        """Handle a block-status fault at a requesting node."""
        block_va = block_base(record.address)
        mode = MODE_READ_WRITE if record.is_store else MODE_READ_ONLY
        request = record.extra.get("request")
        home_id = node.gtlb_node_of(record.address)
        if home_id < 0:
            raise RuntimeError(f"block-status fault for unmapped address {record.address:#x}")

        if home_id == node.node_id:
            # The home node faulted on its own block (it was recalled or
            # downgraded): run the directory logic directly.
            return self.home_handle_request(
                node, HOME_REQUESTER, mode, block_va, cycle,
                local_requests=[request] if request is not None else [],
            )

        pending = self.pending_fetches[node.node_id].get(block_va)
        if pending is not None:
            if request is not None:
                pending.requests.append(request)
            if mode == MODE_READ_WRITE and pending.mode == MODE_READ_ONLY:
                # Upgrade the outstanding fetch; the home will see a second
                # (write) request once the first completes and this access
                # faults again, which keeps the protocol simple and correct.
                pass
            return 4

        self.pending_fetches[node.node_id][block_va] = PendingFetch(
            mode=mode, requests=[request] if request is not None else []
        )
        dip = DIP_BLOCK_WRITE_REQ if mode == MODE_READ_WRITE else DIP_BLOCK_READ_REQ
        self.send(node, cycle, home_id, dip, block_va, [node.node_id], priority=0)
        return 10

    def requester_block_data(self, node, block_va: int, mode: int, data: List[object],
                             cycle: int) -> int:
        """A requested block arrived: install it and replay the faulting
        accesses."""
        pending = self.pending_fetches[node.node_id].pop(block_va, None)
        self.write_block(node, block_va, data)
        status = BlockStatus.READ_WRITE if mode == MODE_READ_WRITE else BlockStatus.READ_ONLY
        node.memory.set_block_status(block_va, status)
        cost = 6 + BLOCK_SIZE_WORDS
        if pending is not None:
            self.replay(node, pending.requests, cycle + cost)
        return cost

    def holder_invalidate(self, node, block_va: int, home_id: int, cycle: int) -> int:
        """This node holds a copy the home wants back: write back if dirty,
        invalidate, and acknowledge."""
        status = node.memory.get_block_status(block_va)
        dirty = status == int(BlockStatus.DIRTY)
        data = self.read_block(node, block_va) if dirty else [0] * BLOCK_SIZE_WORDS
        node.memory.invalidate_block(block_va)
        node.memory.set_block_status(block_va, BlockStatus.INVALID)
        self.send(node, cycle, home_id, DIP_INVAL_ACK, block_va,
                  [node.node_id, int(dirty)] + data, priority=1)
        return 8 + (BLOCK_SIZE_WORDS if dirty else 0)

    # ------------------------------------------------------------------ queries

    def stats(self) -> dict:
        return {
            "block_fetches": self.block_fetches,
            "write_upgrades": self.write_upgrades,
            "invalidations": self.invalidations,
            "dirty_writebacks": self.dirty_writebacks,
        }

    # -- snapshot (repro.snapshot state_dict contract) -------------------------

    def state_dict(self) -> dict:

        return {
            "directories": [
                [
                    node_id,
                    [
                        [
                            block_va,
                            {
                                "sharers": sorted(entry.sharers),
                                "owner": entry.owner,
                                "busy": entry.busy,
                                "queue": [
                                    [requester, mode,
                                     [encode_value(request) for request in requests]]
                                    for requester, mode, requests in entry.queue
                                ],
                            },
                        ]
                        for block_va, entry in directory.items()
                    ],
                ]
                for node_id, directory in self.directories.items()
            ],
            "pending_grants": [
                [
                    node_id,
                    [
                        [
                            block_va,
                            {
                                "requester": grant.requester,
                                "mode": grant.mode,
                                "acks_needed": grant.acks_needed,
                                "local_requests": [encode_value(request)
                                                   for request in grant.local_requests],
                            },
                        ]
                        for block_va, grant in grants.items()
                    ],
                ]
                for node_id, grants in self.pending_grants.items()
            ],
            "pending_fetches": [
                [
                    node_id,
                    [
                        [
                            block_va,
                            {
                                "mode": fetch.mode,
                                "requests": [encode_value(request)
                                             for request in fetch.requests],
                            },
                        ]
                        for block_va, fetch in fetches.items()
                    ],
                ]
                for node_id, fetches in self.pending_fetches.items()
            ],
            "block_fetches": self.block_fetches,
            "write_upgrades": self.write_upgrades,
            "invalidations": self.invalidations,
            "dirty_writebacks": self.dirty_writebacks,
        }

    def load_state_dict(self, state: dict) -> None:

        self.directories = {
            node_id: {
                block_va: DirectoryEntry(
                    sharers=set(entry["sharers"]),
                    owner=entry["owner"],
                    busy=entry["busy"],
                    queue=[
                        (requester, mode, [decode_value(request) for request in requests])
                        for requester, mode, requests in entry["queue"]
                    ],
                )
                for block_va, entry in directory
            }
            for node_id, directory in state["directories"]
        }
        self.pending_grants = {
            node_id: {
                block_va: PendingGrant(
                    requester=grant["requester"],
                    mode=grant["mode"],
                    acks_needed=grant["acks_needed"],
                    local_requests=[decode_value(request)
                                    for request in grant["local_requests"]],
                )
                for block_va, grant in grants
            }
            for node_id, grants in state["pending_grants"]
        }
        self.pending_fetches = {
            node_id: {
                block_va: PendingFetch(
                    mode=fetch["mode"],
                    requests=[decode_value(request) for request in fetch["requests"]],
                )
                for block_va, fetch in fetches
            }
            for node_id, fetches in state["pending_fetches"]
        }
        self.block_fetches = state["block_fetches"]
        self.write_upgrades = state["write_upgrades"]
        self.invalidations = state["invalidations"]
        self.dirty_writebacks = state["dirty_writebacks"]


class _BlockStatusCallback:
    """Adapter: plugs the coherence requester logic into the generic
    sync/status fault handler."""

    def __init__(self, runtime: CoherenceRuntime, node):
        self.runtime = runtime
        self.node = node

    def __call__(self, record: EventRecord, cycle: int) -> int:
        return self.runtime.requester_fault(self.node, record, cycle)


class CoherentLtlbHandler(EventNativeHandler):
    """LTLB-miss handler of the coherent runtime.

    Local pages are simply (re)installed in the LTLB.  Remote pages get a
    fresh local mapping whose blocks are all INVALID, so the replayed access
    immediately takes a block-status fault and enters the coherence protocol
    -- "If the virtual page containing the block is not mapped to a local
    physical page, a new page table entry is created and only the newly
    arrived block is marked valid" (Section 4.3).
    """

    def __init__(self, node, runtime_config, queue, runtime: CoherenceRuntime):
        super().__init__(node, runtime_config, queue, name=f"coherent-ltlb-n{node.node_id}")
        self.runtime = runtime
        self.remote_pages_mapped = 0

    def handle(self, record: EventRecord, cycle: int) -> int:
        node = self.node
        request = record.extra.get("request")
        page = page_of(record.address, node.config.memory.page_size_words)
        entry = node.page_table.lookup_page(page)
        cost = self.dispatch_cost(words_touched=2)
        if entry is not None:
            node.ltlb.insert(entry)
        else:
            home_id = node.gtlb_node_of(record.address)
            if home_id < 0:
                raise RuntimeError(
                    f"LTLB miss for address {record.address:#x} not mapped by any page-group"
                )
            if home_id == node.node_id:
                raise RuntimeError(
                    f"address {record.address:#x} is homed on node {home_id} but has no "
                    f"local page-table entry"
                )
            node.map_page(page, writable=True, block_status=BlockStatus.INVALID,
                          preload_ltlb=True)
            self.remote_pages_mapped += 1
            cost += 6
        if request is not None:
            node.memory.submit(request, cycle + cost)
        return cost

    def state_dict(self) -> dict:
        state = super().state_dict()
        state["remote_pages_mapped"] = self.remote_pages_mapped
        return state

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        self.remote_pages_mapped = state["remote_pages_mapped"]


class CoherentRequestHandler(MessageNativeHandler):
    """Priority-0 protocol messages: block requests arriving at the home node
    and invalidations arriving at sharers."""

    def __init__(self, node, runtime_config, queue, runtime: CoherenceRuntime):
        super().__init__(node, runtime_config, queue, COHERENCE_BODY_LENGTHS_P0,
                         name=f"coherent-req-n{node.node_id}")
        self.runtime = runtime

    def handle_message(self, dip: int, address: int, body: List[object], cycle: int) -> int:
        if dip == DIP_BLOCK_READ_REQ:
            return self.runtime.home_handle_request(
                self.node, int(body[0]), MODE_READ_ONLY, block_base(address), cycle
            )
        if dip == DIP_BLOCK_WRITE_REQ:
            return self.runtime.home_handle_request(
                self.node, int(body[0]), MODE_READ_WRITE, block_base(address), cycle
            )
        if dip == DIP_INVALIDATE:
            return self.runtime.holder_invalidate(
                self.node, block_base(address), int(body[0]), cycle
            )
        raise RuntimeError(f"unexpected priority-0 coherence DIP {dip:#x}")


class CoherentReplyHandler(MessageNativeHandler):
    """Priority-1 protocol messages: block data arriving at a requester and
    invalidation acknowledgements arriving at the home node."""

    def __init__(self, node, runtime_config, queue, runtime: CoherenceRuntime):
        super().__init__(node, runtime_config, queue, COHERENCE_BODY_LENGTHS_P1,
                         name=f"coherent-reply-n{node.node_id}")
        self.runtime = runtime

    def handle_message(self, dip: int, address: int, body: List[object], cycle: int) -> int:
        if dip == DIP_BLOCK_DATA:
            mode = int(body[0])
            data = list(body[1:1 + BLOCK_SIZE_WORDS])
            return self.runtime.requester_block_data(self.node, block_base(address), mode,
                                                     data, cycle)
        if dip == DIP_INVAL_ACK:
            sharer = int(body[0])
            dirty = bool(body[1])
            data = list(body[2:2 + BLOCK_SIZE_WORDS])
            return self.runtime.home_handle_inval_ack(self.node, block_base(address), sharer,
                                                      dirty, data, cycle)
        raise RuntimeError(f"unexpected priority-1 coherence DIP {dip:#x}")
