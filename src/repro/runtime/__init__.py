"""The M-Machine software runtime.

The paper's fast remote memory access and DRAM caching are co-designed
hardware/software mechanisms: the hardware detects the condition (LTLB miss,
block-status fault, message arrival) and dedicated H-Threads of the resident
event V-Thread run the software that completes the operation.  This package
provides that software in two flavours selected by
``MachineConfig.runtime.shared_memory_mode``:

``"remote"`` (Section 4.2, the configuration evaluated in Table 1/Figure 9)
    Assembly handlers for the LTLB miss, remote read/write request and reply
    paths, plus a native retry handler for memory-synchronizing faults.

``"coherent"`` (Section 4.3)
    Native handlers implementing software DRAM caching of remote blocks with
    block-status bits and a home-node directory.

``"none"``
    No handlers; LTLB misses and faults are left in their queues (useful for
    unit tests of the hardware mechanisms in isolation).
"""

from __future__ import annotations

from repro.core.config import (
    EVENT_CLUSTER_LTLB,
    EVENT_CLUSTER_MSG_P0,
    EVENT_CLUSTER_MSG_P1,
    EVENT_SLOT,
)
from repro.runtime.asm_handlers import AsmRuntimePrograms, build_asm_runtime
from repro.runtime.coherence import CoherenceRuntime
from repro.runtime.layout import RuntimeEnvironment, pack_return_info, unpack_return_info
from repro.runtime.loader import (
    SharedArray,
    make_shared_array,
    setup_interleaved_heap,
    setup_private_heap,
)
from repro.runtime.native import SyncStatusFaultHandler

__all__ = [
    "install_runtime",
    "RuntimeEnvironment",
    "AsmRuntimePrograms",
    "build_asm_runtime",
    "CoherenceRuntime",
    "SharedArray",
    "make_shared_array",
    "setup_interleaved_heap",
    "setup_private_heap",
    "pack_return_info",
    "unpack_return_info",
]


def install_runtime(machine) -> RuntimeEnvironment:
    """Install the runtime selected by the machine's configuration on every
    node and return the resulting :class:`RuntimeEnvironment`."""
    mode = machine.config.runtime.shared_memory_mode
    if mode == "none":
        return RuntimeEnvironment(mode=mode)
    if mode == "remote":
        return _install_remote_runtime(machine)
    if mode == "coherent":
        return _install_coherent_runtime(machine)
    raise ValueError(f"unknown shared-memory mode {mode!r}")


def _install_remote_runtime(machine) -> RuntimeEnvironment:
    """Section 4.2: assembly handlers in the event V-Thread of every node."""
    lpt_base = machine.nodes[0].lpt_phys_base
    programs = build_asm_runtime(machine.config, lpt_base)
    environment = RuntimeEnvironment(
        mode="remote",
        dips=dict(programs.dips),
        programs={
            "ltlb": programs.ltlb_handler,
            "msg_p0": programs.message_p0_handler,
            "msg_p1": programs.message_p1_handler,
        },
    )
    for node in machine.nodes:
        node.load_hthread(EVENT_SLOT, EVENT_CLUSTER_LTLB, programs.ltlb_handler)
        node.load_hthread(EVENT_SLOT, EVENT_CLUSTER_MSG_P0, programs.message_p0_handler)
        node.load_hthread(EVENT_SLOT, EVENT_CLUSTER_MSG_P1, programs.message_p1_handler)
        sync_handler = SyncStatusFaultHandler(
            node, machine.config.runtime, node.event_queue_sync
        )
        node.native_handlers.append(sync_handler)
        environment.native_handlers[node.node_id] = [sync_handler]
        if machine.config.runtime.protection_enabled:
            node.net.register_dips(
                {programs.dips["remote_store"], programs.dips["remote_load"]}
            )
    return environment


def _install_coherent_runtime(machine) -> RuntimeEnvironment:
    """Section 4.3: native handlers implementing software DRAM caching."""
    coherence = CoherenceRuntime(machine)
    handlers = coherence.install()
    environment = RuntimeEnvironment(mode="coherent", native_handlers=handlers)
    environment.coherence = coherence
    return environment
