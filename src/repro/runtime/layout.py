"""Runtime constants and address-space layout helpers.

The software runtime needs a small number of conventions shared between the
hardware model and the handler code:

* where the memory-resident LPT image lives (at the top of each node's SDRAM,
  computed by the node; exposed here for handler generation),
* the dispatch-instruction-pointer (DIP) name space, and
* the packing of the "return info" word carried by remote-load request
  messages: ``(source node id << RETURN_NODE_SHIFT) | regspec``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.isa.program import Program

#: Shift used to pack the requesting node id above the 16-bit regspec in the
#: return-info word of a remote-load request (Section 4.2 step 3).
RETURN_NODE_SHIFT = 20
RETURN_REGSPEC_MASK = 0xFFFF

#: DIPs used by the native (Section 4.3) coherence protocol.  They live in a
#: separate number space from the assembly handlers' DIPs (which are
#: instruction indices into the event-thread message handler programs).
DIP_BLOCK_READ_REQ = 0x100
DIP_BLOCK_WRITE_REQ = 0x101
DIP_BLOCK_DATA = 0x102
DIP_INVALIDATE = 0x103
DIP_INVAL_ACK = 0x104


@dataclass
class RuntimeEnvironment:
    """Everything the rest of the system needs to know about the installed
    runtime: the handler programs, the DIP table and the mode."""

    mode: str
    dips: Dict[str, int] = field(default_factory=dict)
    programs: Dict[str, Program] = field(default_factory=dict)
    #: Per-node native handler objects (coherent mode and the sync-fault
    #: retry handler of remote mode), for tests/statistics.
    native_handlers: Dict[int, list] = field(default_factory=dict)
    #: The coherence runtime object in ``coherent`` mode (None otherwise).
    coherence = None

    def dip(self, name: str) -> int:
        try:
            return self.dips[name]
        except KeyError:
            raise KeyError(f"no DIP named {name!r} in the installed runtime") from None


def pack_return_info(node_id: int, regspec: int) -> int:
    return (node_id << RETURN_NODE_SHIFT) | (regspec & RETURN_REGSPEC_MASK)


def unpack_return_info(info: int):
    return info >> RETURN_NODE_SHIFT, info & RETURN_REGSPEC_MASK
