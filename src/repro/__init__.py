"""repro: a reproduction of "The M-Machine Multicomputer" (Fillo, Keckler,
Dally, Carter, Chang, Gurevich & Lee, 1995).

The package provides a cycle-level simulator of the MAP multi-ALU processor,
the 3-D mesh multicomputer built from it, and the software runtime (event,
message and coherence handlers) that the paper's evaluation depends on,
together with the workloads and analysis harnesses that regenerate the
paper's tables and figures.

Quick start — the typed experiment API (see ``docs/api.md``)::

    from repro import Experiment, run_workload

    result = run_workload("ping-pong", rounds=8)        # one-shot
    assert result.verified and result.cycles is not None

    with (                                              # full builder
        Experiment.builder()
        .workload("flood", messages=16)
        .override("network.send_credits", 2)
        .build()
    ) as experiment:
        result = experiment.run()

Or drive a machine by hand::

    from repro import MMachine, MachineConfig

    machine = MMachine(MachineConfig.small(2, 1, 1))
    machine.map_on_node(0, 0x10000, num_pages=1)
    machine.write_word(0x10000, 41)
    machine.load_hthread(0, slot=0, cluster=0,
                         program="ld i2, i1\\nadd i2, i2, #1\\nst i2, i1\\nhalt",
                         registers={"i1": 0x10000})
    machine.run_until_user_done()
    assert machine.read_word(0x10000) == 42

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for the
paper-vs-measured results.
"""

from repro.api import (
    Experiment,
    ExperimentBuilder,
    Provenance,
    ReproDeprecationWarning,
    RunResult,
    Workload,
    WorkloadSpec,
    get_workload,
    run_workload,
    workload,
)
from repro.core.config import (
    ClusterConfig,
    MachineConfig,
    MemoryConfig,
    NetworkConfig,
    NodeConfig,
    RuntimeConfig,
    SimConfig,
    EVENT_SLOT,
    EXCEPTION_SLOT,
    NUM_CLUSTERS,
    NUM_VTHREAD_SLOTS,
)
from repro.core.machine import MMachine
from repro.core.stats import MachineStats, format_table
from repro.core.area_model import AreaModel, TechnologyPoint, TECH_1993, TECH_1996
from repro.core.latency_model import LatencyModel, PAPER_TABLE1, PAPER_REMOTE_READ_STEPS
from repro.isa import Program, assemble, AssemblyError
from repro.memory.guarded_pointer import GuardedPointer, PointerPermission, ProtectionError
from repro.memory.page_table import BlockStatus
from repro.runtime.loader import SharedArray, make_shared_array

__version__ = "0.9.0"

__all__ = [
    "Experiment",
    "ExperimentBuilder",
    "Provenance",
    "ReproDeprecationWarning",
    "RunResult",
    "Workload",
    "WorkloadSpec",
    "get_workload",
    "run_workload",
    "workload",
    "MMachine",
    "MachineConfig",
    "ClusterConfig",
    "MemoryConfig",
    "NetworkConfig",
    "NodeConfig",
    "RuntimeConfig",
    "SimConfig",
    "EVENT_SLOT",
    "EXCEPTION_SLOT",
    "NUM_CLUSTERS",
    "NUM_VTHREAD_SLOTS",
    "MachineStats",
    "format_table",
    "AreaModel",
    "TechnologyPoint",
    "TECH_1993",
    "TECH_1996",
    "LatencyModel",
    "PAPER_TABLE1",
    "PAPER_REMOTE_READ_STEPS",
    "Program",
    "assemble",
    "AssemblyError",
    "GuardedPointer",
    "PointerPermission",
    "ProtectionError",
    "BlockStatus",
    "SharedArray",
    "make_shared_array",
    "__version__",
]
