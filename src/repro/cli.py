"""The ``repro`` command-line interface.

Subcommands:

* ``repro list`` — available workloads and built-in sweep specs.
* ``repro info`` — the default machine configuration as JSON.
* ``repro run WORKLOAD [--param k=v ...] [--trace-dir DIR]`` — one
  workload, metrics as JSON; ``--trace-dir`` streams each machine's trace
  to disk (``docs/traces.md``) for ``repro trace`` to inspect.
* ``repro trace {stats,dump,filter} DIR [--machine N] [--category C]
  [--node N] [--since C]`` — inspect a stored on-disk trace: summary
  stats, human-readable dump, or JSONL rows, streamed without loading
  the trace into memory.
* ``repro profile WORKLOAD [--sort cumtime|tottime|calls] [--limit N]`` —
  run one workload under :mod:`cProfile` and print the hottest functions
  (host-side cost, for tuning the simulator itself).
* ``repro snapshot WORKLOAD --at-cycle C --out FILE`` — run a workload's
  machine to cycle C, save a snapshot, and stop.
* ``repro resume SNAPSHOT [--fanout K]`` — restore a snapshot (in this
  fresh process) and run it to completion; with ``--fanout`` the same
  warmed-up state is fanned out to K measurement runs.
* ``repro sweep SPEC [--jobs N] [--results-dir D] [--force] [--dry-run]
  [--checkpoint-every N] [--report]`` — expand a built-in spec (or
  ``--spec-file``) and fan the runs out over a worker pool; completed runs
  found in the results directory are skipped, with ``--checkpoint-every``
  interrupted runs resume from their latest mid-run checkpoint instead of
  from cycle 0, and ``--report`` renders the paper-figure report when the
  sweep completes.
* ``repro report MANIFEST [-o DIR] [--check] [--format md|svg|both]`` —
  render a ``sweep-results.json`` manifest (or a results directory) into
  the paper's figures and tables; ``--check`` exits nonzero iff a measured
  metric falls outside its tolerance vs the paper's published values.
* ``repro validate RESULTS.json [--roundtrip]`` — schema-check a merged
  results file and exit nonzero on invalid, missing or failed records;
  ``--roundtrip`` additionally requires every record to survive the
  ``record -> RunResult -> record`` round-trip byte-identically.
* ``repro fuzz [--seed N] [--runs K] [--shrink] [--repro-dir D]
  [--knob k=v ...]`` — differential fuzzing (``docs/fuzzing.md``): each
  seeded generated program must be bit-identical across event/naive
  kernels x compiled dispatch on/off and across a mid-run snapshot
  round-trip; failures shrink to a minimal program and are written as
  replayable repro files (``repro fuzz --replay FILE``).

All workload execution goes through the typed :mod:`repro.api` facade.
"""

from __future__ import annotations

import argparse
import cProfile
import io
import json
import os
import pstats
import sys
import tempfile
from typing import Dict, List, Optional, Sequence

from repro.api.experiment import run_workload
from repro.api.result import roundtrip_problems
from repro.api.workload import get_workload, workload_names, workload_specs
from repro.sweep.runner import SweepRunner
from repro.sweep.schema import validate_results
from repro.sweep.spec import SweepSpec
from repro.sweep.specs import builtin_spec_names, get_spec


def parse_param(text: str) -> object:
    """Parse one ``--param`` value: JSON when possible, else a string.

    ``n_hthreads=4`` gives an int, ``mesh=[4,4,1]`` a list, ``kind=7pt`` the
    literal string (``7pt`` is not valid JSON and falls through).
    """
    try:
        return json.loads(text)
    except json.JSONDecodeError:
        return text


def parse_params(pairs: Sequence[str]) -> Dict[str, object]:
    params: Dict[str, object] = {}
    for pair in pairs:
        key, separator, value = pair.partition("=")
        if not separator or not key:
            raise argparse.ArgumentTypeError(f"--param needs key=value, got {pair!r}")
        params[key] = parse_param(value)
    return params


def build_parser() -> argparse.ArgumentParser:
    from repro import __version__  # noqa: PLC0415

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Run and sweep M-Machine reproduction experiments.",
    )
    parser.add_argument("--version", action="version", version=f"%(prog)s {__version__}")
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list workloads and built-in sweep specs")

    subparsers.add_parser("info", help="print the default machine configuration as JSON")

    run = subparsers.add_parser("run", help="run one workload and print its metrics")
    run.add_argument("workload", help="workload name (see 'repro list')")
    run.add_argument(
        "--param",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help=(
            "override one workload parameter (repeatable); values are "
            "parsed as JSON when possible"
        ),
    )
    run.add_argument(
        "--trace-dir",
        default=None,
        metavar="DIR",
        help=(
            "stream each machine's trace to a machine-N subdirectory of DIR "
            "(chunked JSONL+gzip; inspect with 'repro trace')"
        ),
    )
    run.add_argument(
        "--trace-chunk-events",
        type=int,
        default=None,
        metavar="N",
        help="events per on-disk trace chunk (default 4096; needs --trace-dir)",
    )

    profile = subparsers.add_parser(
        "profile",
        help="run one workload under cProfile and print the hottest functions",
    )
    profile.add_argument("workload", help="workload name (see 'repro list')")
    profile.add_argument(
        "--param",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help=(
            "override one workload parameter (repeatable); values are "
            "parsed as JSON when possible"
        ),
    )
    profile.add_argument(
        "--sort",
        choices=("cumtime", "tottime", "calls"),
        default="cumtime",
        help="pstats sort column (default: cumtime)",
    )
    profile.add_argument(
        "--limit",
        type=int,
        default=25,
        metavar="N",
        help="number of rows to print (default: 25)",
    )

    snapshot = subparsers.add_parser(
        "snapshot",
        help="run a workload to a given cycle, save a machine snapshot, stop",
    )
    snapshot.add_argument("workload", help="workload name (see 'repro list')")
    snapshot.add_argument(
        "--at-cycle",
        type=int,
        required=True,
        metavar="C",
        help="simulated cycle at (or just after) which to snapshot",
    )
    snapshot.add_argument(
        "--out",
        required=True,
        metavar="FILE",
        help="snapshot file to write (.json, or .json.gz for compression)",
    )
    snapshot.add_argument(
        "--param",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="override one workload parameter (repeatable)",
    )

    resume = subparsers.add_parser("resume", help="restore a snapshot and run it to completion")
    resume.add_argument("snapshot", help="snapshot file written by 'repro snapshot'")
    resume.add_argument(
        "--max-cycles",
        type=int,
        default=1_000_000,
        metavar="N",
        help="cycle budget for the resumed run (default 1000000)",
    )
    resume.add_argument(
        "--fanout",
        type=int,
        default=1,
        metavar="K",
        help=(
            "warm-start mode: fan the snapshot out to K measurement runs "
            "(default 1)"
        ),
    )
    resume.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for --fanout (default 1: run inline)",
    )

    sweep = subparsers.add_parser(
        "sweep", help="expand a sweep spec and run it on a worker pool"
    )
    sweep.add_argument(
        "spec",
        nargs="?",
        default=None,
        help=f"built-in spec name ({', '.join(builtin_spec_names())})",
    )
    sweep.add_argument(
        "--spec-file",
        default=None,
        help="load the spec from a JSON (or YAML, if PyYAML is installed) file",
    )
    sweep.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=1,
        metavar="N",
        help="worker processes (default 1: run inline)",
    )
    sweep.add_argument(
        "--results-dir",
        default="sweep-results",
        metavar="DIR",
        help=(
            "where per-run records and sweep-results.json go "
            "(default: ./sweep-results)"
        ),
    )
    sweep.add_argument(
        "--force",
        action="store_true",
        help="re-run runs whose result files already exist",
    )
    sweep.add_argument(
        "--dry-run",
        action="store_true",
        help="print the expanded run ids without executing anything",
    )
    sweep.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        metavar="N",
        help=(
            "snapshot each run's machine every N simulated cycles so an "
            "interrupted sweep resumes mid-run instead of from cycle 0"
        ),
    )
    sweep.add_argument(
        "--report",
        action="store_true",
        help=(
            "render the paper-figure report into <results-dir>/report when "
            "the sweep completes"
        ),
    )

    report = subparsers.add_parser(
        "report",
        help="render a sweep manifest into the paper's figures and tables",
    )
    report.add_argument(
        "manifest",
        help="path to sweep-results.json (or a results directory)",
    )
    report.add_argument(
        "--out",
        "-o",
        default=None,
        metavar="DIR",
        help="output directory (default: <manifest dir>/report)",
    )
    report.add_argument(
        "--format",
        choices=["md", "svg", "both"],
        default="both",
        help="what to write: the Markdown report, the SVG charts, or both",
    )
    report.add_argument(
        "--check",
        action="store_true",
        help=(
            "exit nonzero iff any measured metric falls outside its "
            "tolerance vs the paper's published values"
        ),
    )

    trace = subparsers.add_parser(
        "trace", help="inspect an on-disk trace written with --trace-dir"
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    trace_commands = {
        "stats": "print summary statistics of a stored trace as JSON",
        "dump": "print matching events human-readably (streamed)",
        "filter": "print matching events as JSONL rows (streamed)",
    }
    for name, help_text in trace_commands.items():
        sub = trace_sub.add_parser(name, help=help_text)
        sub.add_argument(
            "trace_dir",
            help="a machine trace directory, or the --trace-dir of a run",
        )
        sub.add_argument(
            "--machine",
            type=int,
            default=0,
            metavar="N",
            help="which machine-N subdirectory to open (default 0)",
        )
        if name in ("dump", "filter"):
            sub.add_argument(
                "--category", default=None, help="keep only this trace category"
            )
            sub.add_argument(
                "--node", type=int, default=None, help="keep only this node's events"
            )
            sub.add_argument(
                "--since", type=int, default=None, metavar="C",
                help="keep only events at or after cycle C",
            )
            sub.add_argument(
                "--limit", type=int, default=None, metavar="N",
                help="stop after printing N events",
            )

    validate = subparsers.add_parser(
        "validate", help="schema-check a merged sweep-results.json"
    )
    validate.add_argument("results", help="path to sweep-results.json")
    validate.add_argument(
        "--allow-failed",
        action="store_true",
        help="do not treat failed run records as validation errors",
    )
    validate.add_argument(
        "--roundtrip",
        action="store_true",
        help=(
            "additionally require every record to round-trip byte-"
            "identically through the typed RunResult interchange form"
        ),
    )

    fuzz = subparsers.add_parser(
        "fuzz",
        help="differentially fuzz the simulator with seeded random programs",
    )
    fuzz.add_argument(
        "--seed",
        type=int,
        default=0,
        metavar="N",
        help="first seed of the campaign (default 0)",
    )
    fuzz.add_argument(
        "--runs",
        type=int,
        default=10,
        metavar="K",
        help="number of consecutive seeds to check (default 10)",
    )
    fuzz.add_argument(
        "--shrink",
        action="store_true",
        help="shrink failing programs to a minimal reproducer before dumping",
    )
    fuzz.add_argument(
        "--repro-dir",
        default=None,
        metavar="DIR",
        help="write failing programs as replayable repro files into DIR",
    )
    fuzz.add_argument(
        "--replay",
        default=None,
        metavar="FILE",
        help="re-check one repro file instead of running a seeded campaign",
    )
    fuzz.add_argument(
        "--knob",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help=(
            "override one generator knob, e.g. mesh=[2,2,1], max_threads=8, "
            "fault_density=0.5, nack_storm=true (repeatable; see "
            "docs/fuzzing.md)"
        ),
    )

    return parser


def _cmd_list() -> int:
    print("workloads:")
    for spec in workload_specs():
        rendered = ", ".join(f"{key}={value}" for key, value in spec.defaults.items())
        line = f"  {spec.name}" + (f"  ({rendered})" if rendered else "")
        if spec.section:
            line += f"  [{spec.section}]"
        print(line)
    print("sweep specs:")
    for name in builtin_spec_names():
        spec = get_spec(name)
        print(f"  {name}  ({len(spec.expand())} runs) - {spec.description}")
    return 0


def _cmd_info() -> int:
    from repro import MachineConfig, __version__  # noqa: PLC0415
    from repro.snapshot.format import SNAPSHOT_SCHEMA_VERSION, config_to_dict  # noqa: PLC0415

    config = MachineConfig()
    mesh = config.network.mesh_shape
    payload = {
        "version": __version__,
        "snapshot_schema_version": SNAPSHOT_SCHEMA_VERSION,
        "defaults": {
            "mesh_shape": list(mesh),
            "num_nodes": config.num_nodes,
            "clusters_per_node": config.node.num_clusters,
            "vthread_slots": config.node.num_vthread_slots,
            "cache_words": config.memory.cache_banks * config.memory.bank_size_words,
            "sdram_words": config.memory.sdram_size_words,
            "page_size_words": config.memory.page_size_words,
            "kernel": config.sim.kernel,
            "shared_memory_mode": config.runtime.shared_memory_mode,
        },
        "config": config_to_dict(config),
    }
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


def _cmd_snapshot(args: argparse.Namespace) -> int:
    from repro.snapshot.checkpoint import SnapshotTaken, checkpoint_context  # noqa: PLC0415

    try:
        params = parse_params(args.param)
    except argparse.ArgumentTypeError as error:
        print(f"repro snapshot: {error}", file=sys.stderr)
        return 2
    if args.at_cycle < 0:
        print("repro snapshot: --at-cycle must be non-negative", file=sys.stderr)
        return 2
    with tempfile.TemporaryDirectory(prefix="repro-snapshot-") as staging:
        try:
            policy_path: Optional[str] = None
            with checkpoint_context(staging, snapshot_at=args.at_cycle, stop_after_snapshot=True):
                try:
                    get_workload(args.workload).call(params)
                except SnapshotTaken as taken:
                    policy_path = taken.path
        except (KeyError, TypeError, ValueError) as error:
            message = error.args[0] if error.args else error
            print(f"repro snapshot: {message}", file=sys.stderr)
            return 2
        if policy_path is None:
            print(
                f"repro snapshot: workload {args.workload!r} finished before "
                f"cycle {args.at_cycle}; nothing to snapshot",
                file=sys.stderr,
            )
            return 1
        from repro.snapshot.format import read_snapshot, write_snapshot  # noqa: PLC0415

        document = read_snapshot(policy_path)
        write_snapshot(document, args.out)
    payload = {
        "snapshot": args.out,
        "workload": args.workload,
        "cycle": document["machine"]["cycle"],
        "schema_version": document["schema_version"],
    }
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


def _cmd_resume(args: argparse.Namespace) -> int:
    from repro.snapshot import SnapshotError  # noqa: PLC0415
    from repro.snapshot.warmstart import fan_out_parallel  # noqa: PLC0415

    if args.fanout < 1 or args.jobs < 1:
        print("repro resume: --fanout and --jobs must be >= 1", file=sys.stderr)
        return 2
    try:
        results = fan_out_parallel(
            args.snapshot, args.fanout, jobs=args.jobs, max_cycles=args.max_cycles
        )
    except SnapshotError as error:
        print(f"repro resume: {error}", file=sys.stderr)
        return 2
    except TimeoutError as error:
        print(f"repro resume: {error}", file=sys.stderr)
        return 1
    payload = {"snapshot": args.snapshot, "runs": results}
    if args.fanout == 1:
        payload.update(results[0])
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    try:
        params = parse_params(args.param)
    except argparse.ArgumentTypeError as error:
        print(f"repro run: {error}", file=sys.stderr)
        return 2
    if args.trace_chunk_events is not None and args.trace_dir is None:
        print("repro run: --trace-chunk-events needs --trace-dir", file=sys.stderr)
        return 2
    try:
        if args.trace_dir is not None:
            from repro.api.experiment import Experiment  # noqa: PLC0415

            builder = Experiment.builder().workload(args.workload, **params)
            builder.trace(args.trace_dir, chunk_events=args.trace_chunk_events)
            result = builder.build().run()
        else:
            result = run_workload(args.workload, params)
    except (KeyError, TypeError, ValueError) as error:
        message = error.args[0] if error.args else error
        print(f"repro run: {message}", file=sys.stderr)
        return 2
    payload = {"run_id": result.run_id, "metrics": dict(result.metrics)}
    if args.trace_dir is not None:
        payload["trace_dir"] = args.trace_dir
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0 if result.ok else 1


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.core.trace import Tracer, encode_event  # noqa: PLC0415
    from repro.core.trace_disk import TraceDirError  # noqa: PLC0415

    try:
        tracer = Tracer.open(args.trace_dir, machine=args.machine)
    except TraceDirError as error:
        print(f"repro trace: {error}", file=sys.stderr)
        return 2
    if args.trace_command == "stats":
        print(json.dumps(tracer.sink.stats(), indent=2, sort_keys=True))
        return 0
    # dump and filter stream event by event: constant memory regardless of
    # trace size.
    events = tracer.iter_filter(
        category=args.category, node=args.node, since=args.since
    )
    printed = 0
    for event in events:
        if args.limit is not None and printed >= args.limit:
            break
        if args.trace_command == "dump":
            print(event)
        else:
            print(json.dumps(encode_event(event), separators=(",", ":")))
        printed += 1
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    try:
        params = parse_params(args.param)
    except argparse.ArgumentTypeError as error:
        print(f"repro profile: {error}", file=sys.stderr)
        return 2
    if args.limit < 1:
        print("repro profile: --limit must be >= 1", file=sys.stderr)
        return 2
    profiler = cProfile.Profile()
    try:
        profiler.enable()
        try:
            result = run_workload(args.workload, params)
        finally:
            profiler.disable()
    except (KeyError, TypeError, ValueError) as error:
        message = error.args[0] if error.args else error
        print(f"repro profile: {message}", file=sys.stderr)
        return 2
    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.strip_dirs().sort_stats(args.sort).print_stats(args.limit)
    print(f"workload {args.workload}  run_id {result.run_id}  "
          f"sort {args.sort}  top {args.limit}")
    print(stream.getvalue(), end="")
    return 0 if result.ok else 1


def _load_spec(args: argparse.Namespace) -> SweepSpec:
    if (args.spec is None) == (args.spec_file is None):
        raise ValueError("give exactly one of a built-in spec name or --spec-file")
    if args.spec_file is not None:
        return SweepSpec.from_file(args.spec_file)
    return get_spec(args.spec)


def _cmd_sweep(args: argparse.Namespace) -> int:
    try:
        spec = _load_spec(args)
    except (KeyError, ValueError, OSError) as error:
        message = error.args[0] if error.args else error
        print(f"repro sweep: {message}", file=sys.stderr)
        return 2
    problems = spec.validate(known_workloads=workload_names())
    if problems:
        for problem in problems:
            print(f"repro sweep: {problem}", file=sys.stderr)
        return 2
    if args.dry_run:
        for run in spec.expand():
            print(run.run_id)
        return 0
    try:
        runner = SweepRunner(
            results_dir=args.results_dir,
            jobs=args.jobs,
            force=args.force,
            checkpoint_every=args.checkpoint_every,
            report=args.report,
        )
        result = runner.run(spec)
    except ValueError as error:
        print(f"repro sweep: {error}", file=sys.stderr)
        return 2
    if result.failed:
        for record in result.failed:
            error_lines = str(record.get("error", "")).strip().splitlines() or ["?"]
            print(
                f"repro sweep: run {record['run_id']} failed: {error_lines[-1]}",
                file=sys.stderr,
            )
        print(
            f"repro sweep: {len(result.failed)} of {len(result.records)} runs "
            f"failed; partial results in {result.results_path}",
            file=sys.stderr,
        )
        return 1
    print(result.results_path)
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.report import Manifest, ManifestError, render_report  # noqa: PLC0415
    from repro.report.compare import failures, summary_line  # noqa: PLC0415

    try:
        manifest = Manifest.load(args.manifest)
    except ManifestError as error:
        print(f"repro report: {error}", file=sys.stderr)
        return 2
    for problem in manifest.problems:
        print(f"repro report: skipped invalid record: {problem}", file=sys.stderr)
    if not manifest.records:
        print(f"repro report: {args.manifest} holds no valid records", file=sys.stderr)
        return 2
    base = args.manifest if os.path.isdir(args.manifest) else os.path.dirname(args.manifest)
    out_dir = args.out if args.out is not None else os.path.join(base, "report")
    result = render_report(manifest, out_dir, fmt=args.format)
    for path in result.chart_paths:
        print(path)
    if result.markdown_path is not None:
        print(result.markdown_path)
    print(f"reproduction check: {summary_line(result.check_rows)}", file=sys.stderr)
    if args.check:
        for row in failures(result.check_rows):
            measured = ", ".join(str(value) for value in row.measured)
            print(
                f"repro report: {row.key}: measured {measured} outside "
                f"[{row.lo}, {row.hi}]",
                file=sys.stderr,
            )
        return 0 if result.check_ok else 1
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    try:
        with open(args.results, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        print(f"repro validate: cannot read {args.results}: {error}", file=sys.stderr)
        return 2
    problems = validate_results(document, allow_failed=args.allow_failed)
    if args.roundtrip and isinstance(document, dict):
        # Schema problems are already reported above; add only the
        # round-trip drift findings.
        problems += [
            problem
            for problem in roundtrip_problems(document)
            if problem not in problems
        ]
    if problems:
        for problem in problems:
            print(f"repro validate: {problem}", file=sys.stderr)
        print(
            f"repro validate: {args.results}: {len(problems)} problem(s)",
            file=sys.stderr,
        )
        return 1
    runs = document.get("runs", [])
    print(f"{args.results}: valid ({len(runs)} records)")
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.fuzz import GeneratorKnobs, check_program, fuzz_many, load_repro  # noqa: PLC0415

    if args.replay is not None:
        try:
            program = load_repro(args.replay)
        except (OSError, ValueError, KeyError, json.JSONDecodeError) as error:
            print(f"repro fuzz: cannot load {args.replay}: {error}", file=sys.stderr)
            return 2
        outcome = check_program(program)
        print(json.dumps(outcome.to_dict(), indent=2, sort_keys=True))
        return 0 if outcome.ok else 1
    if args.runs < 1:
        print("repro fuzz: --runs must be >= 1", file=sys.stderr)
        return 2
    try:
        knob_overrides = parse_params(args.knob)
    except argparse.ArgumentTypeError as error:
        print(f"repro fuzz: {error}", file=sys.stderr)
        return 2
    try:
        params = GeneratorKnobs().to_params()
        params.update(knob_overrides)
        knobs = GeneratorKnobs.from_params(params)
    except (TypeError, ValueError) as error:
        print(f"repro fuzz: bad --knob: {error}", file=sys.stderr)
        return 2
    summary = fuzz_many(
        seed=args.seed,
        runs=args.runs,
        knobs=knobs,
        shrink=args.shrink,
        repro_dir=args.repro_dir,
        log=lambda message: print(f"repro fuzz: {message}", file=sys.stderr),
    )
    print(json.dumps(summary, indent=2, sort_keys=True))
    return 0 if summary["ok"] else 1


def main(argv: Optional[List[str]] = None) -> int:
    try:
        return _dispatch(build_parser().parse_args(argv))
    except BrokenPipeError:
        # Streaming output (e.g. 'repro trace dump | head') may close the
        # pipe early; that is a normal way to stop, not an error.  Point
        # stdout at devnull so interpreter shutdown does not re-raise.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "list":
        return _cmd_list()
    if args.command == "info":
        return _cmd_info()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "snapshot":
        return _cmd_snapshot(args)
    if args.command == "resume":
        return _cmd_resume(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "validate":
        return _cmd_validate(args)
    if args.command == "fuzz":
        return _cmd_fuzz(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
