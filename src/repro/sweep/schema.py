"""Result-record schema for sweep runs.

Every run — whether executed by ``repro sweep``, by a benchmark under
pytest, or by hand — is recorded as one JSON object with the same shape, so
results from different harnesses can be merged and compared.  A record is
the serialised form of a :class:`repro.api.result.RunResult` (see
``RunResult.to_record``/``from_record`` for the typed view; this module
stays dependency-free so workers can validate without importing the
facade).  Validation is hand-rolled (the simulator is pure stdlib);
``repro validate`` and the CI ``sweep-smoke`` job both go through
:func:`validate_results`, and ``repro validate --roundtrip`` additionally
checks that every record survives the ``record -> RunResult -> record``
round-trip byte-identically.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

#: Bump when the record shape changes incompatibly.
SCHEMA_VERSION = 1

#: The ``error`` text of a record whose workload ran to completion but
#: failed its own correctness check.
VERIFICATION_FAILED = "workload verification failed"

#: Fields every record must carry, with their accepted types.
_REQUIRED_FIELDS = {
    "schema_version": (int,),
    "run_id": (str,),
    "workload": (str,),
    "params": (dict,),
    "status": (str,),
    "metrics": (dict,),
    "wall_seconds": (int, float),
}

_STATUSES = ("ok", "failed")

_SCALAR_TYPES = (str, int, float, bool, type(None))


def make_record(
    run_id: str,
    workload: str,
    params: Dict[str, object],
    status: str,
    metrics: Optional[Dict[str, object]] = None,
    wall_seconds: float = 0.0,
    error: Optional[str] = None,
    tags: Optional[Dict[str, str]] = None,
) -> Dict[str, object]:
    """Build a schema-valid result record."""
    record: Dict[str, object] = {
        "schema_version": SCHEMA_VERSION,
        "run_id": run_id,
        "workload": workload,
        "params": dict(params),
        "status": status,
        "metrics": dict(metrics or {}),
        "wall_seconds": round(float(wall_seconds), 6),
    }
    if error is not None:
        record["error"] = error
    if tags:
        record["tags"] = dict(tags)
    problems = validate_record(record)
    if problems:
        raise ValueError(f"constructed an invalid record: {problems}")
    return record


def validate_record(record: object) -> List[str]:
    """Problems with one result record (empty list when valid)."""
    if not isinstance(record, dict):
        return [f"record is {type(record).__name__}, not an object"]
    problems = []
    for name, types in _REQUIRED_FIELDS.items():
        if name not in record:
            problems.append(f"missing field {name!r}")
        elif not isinstance(record[name], types) or isinstance(record[name], bool):
            problems.append(f"field {name!r} has type {type(record[name]).__name__}")
    if problems:
        return problems
    if record["schema_version"] != SCHEMA_VERSION:
        problems.append(f"schema_version {record['schema_version']} != {SCHEMA_VERSION}")
    if record["status"] not in _STATUSES:
        problems.append(f"status {record['status']!r} not in {_STATUSES}")
    if record["status"] == "failed" and "error" not in record:
        problems.append("failed record carries no 'error' field")
    if record["wall_seconds"] < 0:
        problems.append("wall_seconds is negative")
    for key, value in record["metrics"].items():
        if not isinstance(value, _SCALAR_TYPES):
            problems.append(f"metric {key!r} is not a JSON scalar ({type(value).__name__})")
    if record["status"] == "ok":
        metrics = record["metrics"]
        if "verified" in metrics and metrics["verified"] is not True:
            problems.append("ok record has verified != true")
    return problems


def validate_results(
    document: object,
    expected_run_ids: Optional[Sequence[str]] = None,
    allow_failed: bool = False,
) -> List[str]:
    """Problems with a merged ``sweep-results.json`` document.

    When *expected_run_ids* is given (or the document carries its own
    ``expected_run_ids``), missing and unexpected records are reported too.
    """
    if not isinstance(document, dict):
        return [f"document is {type(document).__name__}, not an object"]
    problems = []
    if document.get("schema_version") != SCHEMA_VERSION:
        problems.append("document schema_version missing or unsupported")
    runs = document.get("runs")
    if not isinstance(runs, list):
        return problems + ["document has no 'runs' list"]
    seen = []
    seen_set = set()
    for index, record in enumerate(runs):
        for problem in validate_record(record):
            problems.append(f"runs[{index}]: {problem}")
        if isinstance(record, dict):
            if record.get("run_id") in seen_set:
                problems.append(f"runs[{index}]: duplicate run_id {record['run_id']!r}")
            seen.append(record.get("run_id"))
            seen_set.add(record.get("run_id"))
            if not allow_failed and record.get("status") == "failed":
                problems.append(
                    f"runs[{index}]: run {record.get('run_id')!r} failed: "
                    f"{record.get('error', 'unknown error')!s:.200}"
                )
    if expected_run_ids is None:
        expected = document.get("expected_run_ids")
        expected_run_ids = expected if isinstance(expected, list) else None
    if expected_run_ids is not None:
        expected_set = set(expected_run_ids)
        missing = [run_id for run_id in expected_run_ids if run_id not in seen_set]
        unexpected = [run_id for run_id in seen if run_id not in expected_set]
        for run_id in missing:
            problems.append(f"missing record for run {run_id!r}")
        for run_id in unexpected:
            problems.append(f"unexpected record {run_id!r}")
    return problems
