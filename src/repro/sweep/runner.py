"""Parallel, resumable execution of sweep specs.

The runner expands a :class:`~repro.sweep.spec.SweepSpec` into run
descriptors, fans them out over a ``multiprocessing`` pool (``jobs=1`` runs
inline, which is also the path coverage measurement sees), writes one JSON
record per run under ``<results_dir>/runs/``, and merges everything into
``<results_dir>/sweep-results.json``.

Resume: a run whose per-run record already exists, validates against the
schema and has ``status == "ok"`` is *not* re-executed — its record is
loaded from disk, the way a cached download is skipped by a build pipeline.
Failed records are retried.  ``force=True`` re-runs everything.

A worker failure (the workload raises) produces a ``status="failed"`` record
with the traceback; the sweep keeps going, the merged manifest still lists
every run, and :meth:`SweepRunner.run` reports the failure count so the CLI
can exit nonzero while leaving a partial-results manifest behind.

Runs execute through the typed facade: each worker builds a
:class:`repro.api.result.RunResult` and serialises it at the process
boundary, so the on-disk records are exactly the ``RunResult`` interchange
form the report subsystem parses back.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import shutil
import sys
import time
import traceback
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover - lazy at runtime (import cycle)
    from repro.api.result import RunResult

from repro.api.workload import get_workload, workload_names
from repro.sweep.schema import (  # noqa: F401  (VERIFICATION_FAILED re-exported)
    SCHEMA_VERSION,
    VERIFICATION_FAILED,
    validate_record,
)
from repro.sweep.spec import RunSpec, SweepSpec

RESULTS_FILENAME = "sweep-results.json"
RUNS_DIRNAME = "runs"
CHECKPOINTS_DIRNAME = "checkpoints"


def record_from_metrics(
    spec: RunSpec,
    metrics: Dict[str, object],
    wall_seconds: float,
    tags: Optional[Dict[str, str]] = None,
) -> Dict[str, object]:
    """The (schema-valid) record for a completed workload run.

    Shared by the sweep runner and the pytest benchmark harness so that both
    map ``verified`` to the record status the same way; the record is the
    serialised form of a :class:`~repro.api.result.RunResult`.
    """
    from repro.api.result import RunResult  # noqa: PLC0415

    return RunResult.from_metrics(
        workload=spec.workload,
        params=spec.params,
        metrics=metrics,
        wall_seconds=wall_seconds,
        tags=tags if tags is not None else spec.tags,
        run_id=spec.run_id,
    ).to_record()


def store_record(record: Dict[str, object], directory: str) -> str:
    """Write one record to ``<directory>/<run_id>.json``; returns the path."""
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, str(record["run_id"]) + ".json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def execute_run(
    spec: RunSpec,
    checkpoint_dir: Optional[str] = None,
    checkpoint_every: Optional[int] = None,
) -> Dict[str, object]:
    """Execute one run in-process and return its (schema-valid) record.

    Record construction is inside the try as well: a factory returning
    schema-invalid metrics (e.g. a non-scalar value) yields a failed record
    like any other workload error, not an aborted sweep.

    With ``checkpoint_every`` set, the workload's machines snapshot to
    ``checkpoint_dir`` every N simulated cycles and a re-execution after an
    interruption resumes from the latest checkpoint instead of from cycle 0
    (:mod:`repro.snapshot.checkpoint`).  Once the run produces a record the
    checkpoints are deleted -- they only serve killed runs.
    """
    start = time.perf_counter()
    resumed_from = None
    try:
        workload = get_workload(spec.workload)
        if checkpoint_every is not None and checkpoint_dir is not None:
            from repro.snapshot.checkpoint import checkpoint_context  # noqa: PLC0415

            with checkpoint_context(checkpoint_dir, every=checkpoint_every) as policy:
                metrics = workload.call(spec.params)
            if policy.resumes:
                resumed_from = policy.resumes[0][1]
        else:
            metrics = workload.call(spec.params)
        record = record_from_metrics(spec, metrics, time.perf_counter() - start)
    except Exception:
        from repro.api.result import RunResult  # noqa: PLC0415

        record = RunResult.from_error(
            workload=spec.workload,
            params=spec.params,
            error=traceback.format_exc(limit=20),
            wall_seconds=time.perf_counter() - start,
            tags=spec.tags,
            run_id=spec.run_id,
        ).to_record()
    if resumed_from is not None:
        record["tags"] = dict(record.get("tags") or {})
        record["tags"]["resumed_from_cycle"] = str(resumed_from)
    if checkpoint_dir is not None:
        shutil.rmtree(checkpoint_dir, ignore_errors=True)
    return record


def _pool_worker(payload: Dict[str, object]) -> Dict[str, object]:
    """Top-level (picklable) pool entry point."""
    return execute_run(
        RunSpec.from_dict(payload["spec"]),
        checkpoint_dir=payload.get("checkpoint_dir"),
        checkpoint_every=payload.get("checkpoint_every"),
    )


@dataclass
class SweepResult:
    """Outcome of one :meth:`SweepRunner.run` invocation."""

    spec_name: str
    results_path: str
    records: List[Dict[str, object]] = field(default_factory=list)
    skipped: int = 0
    executed: int = 0
    wall_seconds: float = 0.0

    @property
    def failed(self) -> List[Dict[str, object]]:
        return [record for record in self.records if record["status"] == "failed"]

    @property
    def ok(self) -> bool:
        return not self.failed

    @property
    def results(self) -> List["RunResult"]:
        """The records parsed back into typed :class:`RunResult` values."""
        from repro.api.result import RunResult  # noqa: PLC0415

        return [RunResult.from_record(record) for record in self.records]


class SweepRunner:
    """Expand a spec, fan runs out over workers, merge the records."""

    def __init__(
        self,
        results_dir: str,
        jobs: int = 1,
        force: bool = False,
        log: Optional[Callable[[str], None]] = None,
        checkpoint_every: Optional[int] = None,
        report: bool = False,
    ):
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if checkpoint_every is not None and checkpoint_every <= 0:
            raise ValueError("checkpoint interval must be a positive cycle count")
        self.results_dir = results_dir
        self.jobs = jobs
        self.force = force
        self.checkpoint_every = checkpoint_every
        self.report = report
        self._log = log if log is not None else self._default_log

    @staticmethod
    def _default_log(message: str) -> None:
        print(message, file=sys.stderr, flush=True)

    # -- per-run record files ----------------------------------------------------

    def _run_path(self, run_id: str) -> str:
        return os.path.join(self.results_dir, RUNS_DIRNAME, run_id + ".json")

    def _checkpoint_dir(self, run_id: str) -> Optional[str]:
        if self.checkpoint_every is None:
            return None
        return os.path.join(self.results_dir, CHECKPOINTS_DIRNAME, run_id)

    def _load_completed(self, run_id: str) -> Optional[Dict[str, object]]:
        """The existing record for *run_id*, if it is valid and ok."""
        path = self._run_path(run_id)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                record = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None
        if validate_record(record) or record.get("status") != "ok":
            return None
        if record.get("run_id") != run_id:
            return None
        return record

    def _store(self, record: Dict[str, object]) -> None:
        store_record(record, os.path.join(self.results_dir, RUNS_DIRNAME))

    # -- the sweep itself --------------------------------------------------------

    def run(self, spec: SweepSpec) -> SweepResult:
        started = time.perf_counter()
        problems = spec.validate(known_workloads=workload_names())
        if problems:
            raise ValueError("invalid sweep spec: " + "; ".join(problems))
        runs = spec.expand()
        os.makedirs(os.path.join(self.results_dir, RUNS_DIRNAME), exist_ok=True)

        completed: Dict[str, Dict[str, object]] = {}
        pending: List[RunSpec] = []
        if self.force:
            pending = list(runs)
        else:
            for run in runs:
                record = self._load_completed(run.run_id)
                if record is not None:
                    completed[run.run_id] = record
                else:
                    pending.append(run)
        total = len(runs)
        self._log(
            f"sweep {spec.name!r}: {total} runs "
            f"({len(completed)} cached, {len(pending)} to execute, "
            f"jobs={self.jobs})"
        )

        fresh = self._execute(pending, total_runs=total, already_done=len(completed))
        for record in fresh:
            completed[str(record["run_id"])] = record

        records = [completed[run.run_id] for run in runs]
        wall = time.perf_counter() - started
        result = SweepResult(
            spec_name=spec.name,
            results_path=os.path.join(self.results_dir, RESULTS_FILENAME),
            records=records,
            skipped=total - len(pending),
            executed=len(pending),
            wall_seconds=wall,
        )
        self._write_manifest(spec, result)
        simulated = sum(record["metrics"].get("cycles") or 0 for record in fresh)
        throughput = f", {simulated / wall:,.0f} simulated cycles/s" if fresh and wall > 0 else ""
        self._log(
            f"sweep {spec.name!r}: {len(records)} records "
            f"({len(result.failed)} failed, {result.skipped} reused) in {wall:.1f}s"
            + throughput
        )
        if self.report:
            self._render_report(result)
        return result

    def _render_report(self, result: SweepResult) -> None:
        """Render the paper-figure report next to the manifest (``--report``)."""
        from repro.report import Manifest, render_report  # noqa: PLC0415

        manifest = Manifest.load(result.results_path)
        rendered = render_report(manifest, os.path.join(self.results_dir, "report"))
        self._log(f"report: {rendered.markdown_path} (+{len(rendered.chart_paths)} charts)")

    def _execute(
        self,
        pending: List[RunSpec],
        total_runs: int,
        already_done: int,
    ) -> List[Dict[str, object]]:
        if not pending:
            return []
        records: List[Dict[str, object]] = []
        done = already_done

        def note(record: Dict[str, object]) -> None:
            # Persist immediately so an interrupted sweep resumes from the
            # last completed run, not from the start.
            self._store(record)
            nonlocal done
            done += 1
            status = record["status"]
            cycles = record["metrics"].get("cycles")
            detail = f"cycles={cycles}" if cycles is not None else "analytic"
            resumed = (record.get("tags") or {}).get("resumed_from_cycle")
            if resumed is not None:
                detail += f", resumed from cycle {resumed}"
            self._log(
                f"[{done}/{total_runs}] {record['run_id']}: {status} "
                f"({detail}, {record['wall_seconds']:.2f}s)"
            )

        if self.jobs == 1:
            for spec in pending:
                record = execute_run(
                    spec,
                    checkpoint_dir=self._checkpoint_dir(spec.run_id),
                    checkpoint_every=self.checkpoint_every,
                )
                note(record)
                records.append(record)
            return records

        payloads = [
            {
                "spec": spec.to_dict(),
                "checkpoint_dir": self._checkpoint_dir(spec.run_id),
                "checkpoint_every": self.checkpoint_every,
            }
            for spec in pending
        ]
        with multiprocessing.Pool(processes=self.jobs) as pool:
            for record in pool.imap_unordered(_pool_worker, payloads):
                note(record)
                records.append(record)
        return records

    def _write_manifest(self, spec: SweepSpec, result: SweepResult) -> None:
        document = {
            "schema_version": SCHEMA_VERSION,
            "spec": spec.to_dict(),
            "expected_run_ids": [run.run_id for run in spec.expand()],
            "jobs": self.jobs,
            "wall_seconds": round(result.wall_seconds, 3),
            "counts": {
                "total": len(result.records),
                "ok": len(result.records) - len(result.failed),
                "failed": len(result.failed),
                "reused": result.skipped,
                "executed": result.executed,
            },
            "runs": result.records,
        }
        with open(result.results_path, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
