"""Declarative sweep specifications.

A :class:`SweepSpec` names a set of simulation runs as a list of *axes
groups*: each group picks one workload, a dict of fixed parameters, and a
dict of parameter axes whose cross-product is expanded into individual
:class:`RunSpec` descriptors.  Expansion is deterministic: the same spec
always yields the same run ids in the same order, which is what makes
resume (skip runs whose result file already exists) safe.

Specs are plain data and round-trip through dicts, so they can be written
inline in Python, loaded from JSON, or loaded from YAML when PyYAML is
available::

    name: quick
    groups:
      - workload: stencil
        params: {max_cycles: 30000}
        axes:
          kind: [7pt, 27pt]
          n_hthreads: [1, 2, 4]
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence


def _slug(value: object) -> str:
    """A filesystem-safe fragment for one parameter value."""
    text = str(value)
    if isinstance(value, (list, tuple)):
        text = "x".join(str(item) for item in value)
    return "".join(ch if (ch.isalnum() or ch in "._-") else "-" for ch in text)


def _canonical(params: Dict[str, object]) -> str:
    return json.dumps(params, sort_keys=True, separators=(",", ":"), default=str)


def config_fingerprint(workload: str, params: Dict[str, object]) -> str:
    """The 8-hex-digit digest of one ``(workload, params)`` configuration.

    This is the hash suffix of :attr:`RunSpec.run_id` and the
    ``fingerprint`` of a :class:`repro.api.RunResult`: equal fingerprints
    mean the same workload ran with the same explicit parameters.
    """
    return hashlib.sha256((workload + _canonical(params)).encode()).hexdigest()[:8]


def run_id_for(workload: str, params: Dict[str, object]) -> str:
    """The deterministic run id of one ``(workload, params)`` pair."""
    parts = [workload]
    for key in sorted(params):
        parts.append(f"{key}-{_slug(params[key])}")
    return "_".join(parts)[:96] + "_" + config_fingerprint(workload, params)


@dataclass(frozen=True)
class RunSpec:
    """One fully-resolved simulation run."""

    workload: str
    params: Dict[str, object] = field(default_factory=dict)
    tags: Dict[str, str] = field(default_factory=dict)

    @property
    def run_id(self) -> str:
        """Deterministic, human-readable, filesystem-safe identifier.

        The readable prefix names the workload and the axis values; the hash
        suffix disambiguates runs whose readable parts collide (and covers
        parameters whose slugs collapse).
        """
        return run_id_for(self.workload, self.params)

    def to_dict(self) -> Dict[str, object]:
        return {
            "workload": self.workload,
            "params": dict(self.params),
            "tags": dict(self.tags),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RunSpec":
        return cls(
            workload=str(data["workload"]),
            params=dict(data.get("params") or {}),
            tags={str(k): str(v) for k, v in (data.get("tags") or {}).items()},
        )


@dataclass
class AxesGroup:
    """One workload with fixed params plus a cross-product of axes."""

    workload: str
    params: Dict[str, object] = field(default_factory=dict)
    axes: Dict[str, Sequence[object]] = field(default_factory=dict)
    tags: Dict[str, str] = field(default_factory=dict)

    def expand(self) -> Iterator[RunSpec]:
        keys = sorted(self.axes)
        value_lists = [list(self.axes[key]) for key in keys]
        for combination in itertools.product(*value_lists):
            params = dict(self.params)
            params.update(zip(keys, combination))
            yield RunSpec(workload=self.workload, params=params, tags=dict(self.tags))

    def to_dict(self) -> Dict[str, object]:
        return {
            "workload": self.workload,
            "params": dict(self.params),
            "axes": {key: list(values) for key, values in self.axes.items()},
            "tags": dict(self.tags),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "AxesGroup":
        return cls(
            workload=str(data["workload"]),
            params=dict(data.get("params") or {}),
            axes={str(k): list(v) for k, v in (data.get("axes") or {}).items()},
            tags={str(k): str(v) for k, v in (data.get("tags") or {}).items()},
        )


@dataclass
class SweepSpec:
    """A named collection of axes groups."""

    name: str
    description: str = ""
    groups: List[AxesGroup] = field(default_factory=list)

    def expand(self) -> List[RunSpec]:
        """All runs of the sweep, duplicates removed, order deterministic.

        When two groups expand to the same (workload, params) run, the
        duplicate is dropped but its tags are merged into the survivor (first
        group wins on conflicting keys), so tag-based filtering still finds
        the run.
        """
        runs: List[RunSpec] = []
        seen: Dict[str, RunSpec] = {}
        for group in self.groups:
            for run in group.expand():
                if run.run_id not in seen:
                    seen[run.run_id] = run
                    runs.append(run)
                else:
                    for key, value in run.tags.items():
                        seen[run.run_id].tags.setdefault(key, value)
        return runs

    @property
    def run_ids(self) -> List[str]:
        return [run.run_id for run in self.expand()]

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "description": self.description,
            "groups": [group.to_dict() for group in self.groups],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SweepSpec":
        return cls(
            name=str(data.get("name", "unnamed")),
            description=str(data.get("description", "")),
            groups=[AxesGroup.from_dict(group) for group in data.get("groups") or []],
        )

    @classmethod
    def from_file(cls, path: str) -> "SweepSpec":
        """Load a spec from a JSON or YAML file (YAML needs PyYAML)."""
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
        try:
            data = json.loads(text)
        except json.JSONDecodeError:
            try:
                import yaml  # noqa: PLC0415
            except ImportError as error:
                raise ValueError(
                    f"{path} is not JSON and PyYAML is not installed for YAML specs"
                ) from error
            try:
                data = yaml.safe_load(text)
            except yaml.YAMLError as error:
                raise ValueError(
                    f"sweep spec {path} is neither valid JSON nor valid YAML"
                ) from error
        if not isinstance(data, dict):
            raise ValueError(f"sweep spec {path} must contain a mapping")
        return cls.from_dict(data)

    def validate(self, known_workloads: Optional[Sequence[str]] = None) -> List[str]:
        """Structural problems with the spec (empty list when fine)."""
        problems = []
        if not self.groups:
            problems.append(f"spec {self.name!r} has no groups")
        for index, group in enumerate(self.groups):
            if known_workloads is not None and group.workload not in known_workloads:
                problems.append(f"group {index}: unknown workload {group.workload!r}")
            for key, values in group.axes.items():
                if not values:
                    problems.append(f"group {index}: axis {key!r} is empty")
                if key in group.params:
                    problems.append(f"group {index}: {key!r} is both a fixed param and an axis")
        return problems
