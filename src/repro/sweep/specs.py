"""Built-in sweep specifications.

``paper-figures`` regenerates every figure, table and ablation of the
``benchmarks/`` suite through the shared workload factories, so its cycle
counts match the pytest runs exactly.  ``scenario-matrix`` is the expanded
grid the ROADMAP asks for (mesh sizes 2x2 to 8x8, five communication
workloads, event vs naive kernel).  ``smoke`` is a CI-sized mini-matrix.
"""

from __future__ import annotations

from typing import Dict, List

from repro.sweep.spec import AxesGroup, SweepSpec

_MESHES: List[List[int]] = [[2, 2, 1], [4, 4, 1], [6, 6, 1], [8, 8, 1]]

_KERNELS: List[str] = ["event", "naive"]


def _smoke() -> SweepSpec:
    return SweepSpec(
        name="smoke",
        description=(
            "A fast mini-matrix for CI: one representative of every "
            "workload family, both simulation kernels."
        ),
        groups=[
            AxesGroup(
                "stencil",
                axes={"kind": ["7pt"], "n_hthreads": [1, 2], "kernel": _KERNELS},
            ),
            AxesGroup("cc-sync", params={"iterations": 10}),
            AxesGroup("ping-pong", params={"rounds": 4}),
            AxesGroup(
                "remote-memory",
                params={"repeats": 6},
                axes={"mode": ["remote", "coherent"]},
            ),
            AxesGroup("flood", params={"messages": 8}),
            AxesGroup("gtlb-mapping", params={"lookups": 500}),
            AxesGroup("area-model"),
        ],
    )


def _paper_figures() -> SweepSpec:
    return SweepSpec(
        name="paper-figures",
        description=(
            "Every figure, table and ablation of the benchmarks/ suite "
            "(Figures 5-9, Table 1, Sections 1/5, A1-A4)."
        ),
        groups=[
            # Figure 5: stencil static depth and dynamic cycles.
            AxesGroup(
                "stencil",
                tags={"figure": "fig5"},
                axes={"kind": ["7pt", "27pt"], "n_hthreads": [1, 2, 4]},
            ),
            # Figure 6: CC-register synchronisation.
            AxesGroup("cc-sync", params={"iterations": 50}, tags={"figure": "fig6"}),
            AxesGroup(
                "cc-barrier",
                params={"iterations": 50, "clusters": 4},
                tags={"figure": "fig6"},
            ),
            # Figure 7: user-level message passing.
            AxesGroup("remote-store-latency", tags={"figure": "fig7"}),
            AxesGroup("message-stream", params={"count": 64}, tags={"figure": "fig7"}),
            AxesGroup("ping-pong", params={"rounds": 16}, tags={"figure": "fig7"}),
            # Figure 8: GTLB page-group interleaving.
            AxesGroup(
                "gtlb-mapping",
                tags={"figure": "fig8"},
                axes={"pages_per_node": [1, 2, 8]},
            ),
            # Figure 9: remote access timelines.
            AxesGroup(
                "remote-access-timeline",
                tags={"figure": "fig9"},
                axes={"kind": ["read", "write"]},
            ),
            # Table 1: the access-time matrix.
            AxesGroup("table1-access-times", tags={"figure": "table1"}),
            # Ablation A1: V-Thread latency tolerance.
            AxesGroup(
                "vthread-interleave",
                tags={"figure": "ablation-a1"},
                axes={"num_threads": [1, 2, 3, 4]},
            ),
            # Ablation A2: thread-selection policy.
            AxesGroup(
                "issue-policy",
                tags={"figure": "ablation-a2"},
                axes={"policy": ["event-priority", "round-robin", "hep"]},
            ),
            # Ablation A3: non-cached remote access vs DRAM caching.
            AxesGroup(
                "remote-memory",
                params={"repeats": 16},
                tags={"figure": "ablation-a3"},
                axes={"mode": ["remote", "coherent"]},
            ),
            # Ablation A4: return-to-sender throttling.
            AxesGroup(
                "flood",
                params={"messages": 24},
                tags={"figure": "ablation-a4"},
                axes={"send_credits": [16, 2]},
            ),
            AxesGroup(
                "many-to-one-flood",
                tags={"figure": "ablation-a4"},
                axes={"queue_words": [6, 128]},
            ),
            # Sections 1/5: the area model.
            AxesGroup("area-model", params={"num_nodes": 32}, tags={"figure": "sec1"}),
        ],
    )


def _scenario_matrix() -> SweepSpec:
    return SweepSpec(
        name="scenario-matrix",
        description=(
            "Expanded grid: mesh sizes 2x2 to 8x8 x five communication "
            "workloads plus the fault-injection/multiprogramming family, "
            "event vs naive kernel (minutes of host time; the naive "
            "kernel on 64 nodes dominates)."
        ),
        groups=[
            AxesGroup(
                "stencil",
                params={"kind": "7pt", "n_hthreads": 2},
                axes={"mesh": _MESHES, "kernel": _KERNELS},
            ),
            AxesGroup(
                "ping-pong",
                params={"rounds": 8},
                axes={"mesh": _MESHES, "kernel": _KERNELS},
            ),
            AxesGroup(
                "flood",
                params={"messages": 16},
                axes={"mesh": _MESHES, "kernel": _KERNELS},
            ),
            AxesGroup(
                "remote-memory",
                params={"mode": "remote", "repeats": 12},
                axes={"mesh": _MESHES, "kernel": _KERNELS},
            ),
            AxesGroup(
                "coherence",
                params={"repeats": 12},
                axes={"mesh": _MESHES, "kernel": _KERNELS},
            ),
            # Fault-injection & multiprogramming family (ROADMAP item 3).
            AxesGroup(
                "multitenant-timeshare",
                params={"seed": 0, "jobs": 8},
                axes={"mesh": _MESHES, "kernel": _KERNELS},
            ),
            AxesGroup(
                "protection-storm",
                params={"violators": 9},
                axes={"mesh": [[2, 2, 1]], "kernel": _KERNELS},
            ),
            AxesGroup(
                "secded-soak",
                params={"words": 32, "single_flips": 8, "double_flips": 4},
                axes={"kernel": _KERNELS},
            ),
            AxesGroup(
                "nack-flood",
                params={"senders": 3, "messages_each": 12},
                axes={"mesh": [[2, 2, 1], [4, 4, 1]], "kernel": _KERNELS},
            ),
        ],
    )


_BUILDERS = {
    "smoke": _smoke,
    "paper-figures": _paper_figures,
    "scenario-matrix": _scenario_matrix,
}


def builtin_spec_names() -> List[str]:
    return sorted(_BUILDERS)


def builtin_specs() -> Dict[str, SweepSpec]:
    return {name: builder() for name, builder in _BUILDERS.items()}


def get_spec(name: str) -> SweepSpec:
    if name not in _BUILDERS:
        raise KeyError(
            f"unknown sweep spec {name!r}; built-ins: {', '.join(builtin_spec_names())}"
        )
    return _BUILDERS[name]()
