"""Parallel experiment sweeps over the simulator.

A sweep is a declarative cross-product of machine configurations, workloads
and kernel backends (:mod:`repro.sweep.spec`), executed in parallel with
resume support (:mod:`repro.sweep.runner`), producing schema-validated JSON
records (:mod:`repro.sweep.schema`).  Built-in specs, including the one that
regenerates every paper figure, live in :mod:`repro.sweep.specs`.
"""

from repro.sweep.runner import SweepResult, SweepRunner, execute_run
from repro.sweep.schema import (
    SCHEMA_VERSION,
    make_record,
    validate_record,
    validate_results,
)
from repro.sweep.spec import AxesGroup, RunSpec, SweepSpec
from repro.sweep.specs import builtin_spec_names, builtin_specs, get_spec

__all__ = [
    "AxesGroup",
    "RunSpec",
    "SweepSpec",
    "SweepResult",
    "SweepRunner",
    "execute_run",
    "SCHEMA_VERSION",
    "make_record",
    "validate_record",
    "validate_results",
    "builtin_spec_names",
    "builtin_specs",
    "get_spec",
]
