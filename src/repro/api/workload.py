"""The typed workload registry: ``Workload`` protocol and ``WorkloadSpec``.

A *workload* is a callable taking only keyword arguments (all with
defaults) and returning a flat JSON-scalar metrics dict — the contract the
paper-figure factories in :mod:`repro.workloads.factories` have always
followed.  This module gives that contract a first-class shape:

* :class:`Workload` is the structural protocol a workload callable
  satisfies;
* :class:`WorkloadSpec` wraps one workload with its registry name,
  introspected parameter defaults, a generated params dataclass, a
  description and the paper-section tag it reproduces;
* :func:`workload` is the decorator that builds and (by default) registers
  a spec — it replaces the bare ``WORKLOADS`` dict registry while the old
  surface stays importable as a deprecated adapter view.

Lookup functions (:func:`get_workload`, :func:`workload_names`,
:func:`workload_defaults`) lazily import the built-in factory module, so
the registry is populated on first use without an import cycle.
"""

from __future__ import annotations

import inspect
import time
from dataclasses import dataclass, field, make_dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    MutableMapping,
    Optional,
    Protocol,
    Tuple,
    Type,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from repro.api.result import RunResult

Metrics = Dict[str, object]


class Workload(Protocol):
    """The structural contract of a workload callable.

    Accepts only keyword parameters (all defaulted) and returns a flat dict
    of JSON-serialisable scalar metrics; machine-driving workloads report
    ``cycles`` and ``verified``.
    """

    def __call__(self, **params: Any) -> Metrics:
        """Run the workload with *params* and return its metrics."""
        ...


#: The typed registry: workload name -> spec.
_REGISTRY: Dict[str, "WorkloadSpec"] = {}

#: Set once the built-in factory module has been imported (it registers all
#: paper-figure workloads as a side effect).
_BUILTINS_LOADED = False


def _ensure_builtins() -> None:
    global _BUILTINS_LOADED
    if not _BUILTINS_LOADED:
        _BUILTINS_LOADED = True
        import repro.workloads.factories  # noqa: F401  (registers on import)


def _signature_defaults(func: Callable[..., Metrics]) -> Dict[str, object]:
    """The keyword defaults of *func*, in signature order."""
    return {
        param.name: param.default
        for param in inspect.signature(func).parameters.values()
        if param.default is not inspect.Parameter.empty
    }


def _params_dataclass(name: str, defaults: Mapping[str, object]) -> Type[Any]:
    """A frozen dataclass type with one defaulted field per parameter."""
    specs: List[Tuple[str, type, Any]] = []
    for key, default in defaults.items():
        field_type = type(default) if default is not None else object
        if isinstance(default, (list, dict, set)):
            specs.append((key, field_type, field(default_factory=lambda d=default: type(d)(d))))
        else:
            specs.append((key, field_type, field(default=default)))
    class_name = "".join(part.capitalize() for part in name.replace("_", "-").split("-"))
    return make_dataclass(f"{class_name}Params", specs, frozen=True)


@dataclass(frozen=True)
class WorkloadSpec:
    """One registered workload: callable plus metadata and typed params."""

    name: str
    func: Callable[..., Metrics]
    defaults: Dict[str, object]
    description: str = ""
    #: Which part of the paper the workload reproduces (e.g. ``"Figure 5"``).
    section: str = ""
    #: Generated frozen dataclass of the workload's parameters; constructing
    #: it type-checks nothing but *name*-checks everything (unknown parameter
    #: names raise ``TypeError`` at construction time).
    params_type: Type[Any] = object

    def __call__(self, **params: Any) -> Metrics:
        """Run the underlying callable directly (satisfies :class:`Workload`)."""
        return self.func(**params)

    @classmethod
    def from_callable(
        cls,
        name: str,
        func: Callable[..., Metrics],
        description: Optional[str] = None,
        section: str = "",
    ) -> "WorkloadSpec":
        """Build a spec by introspecting *func* (defaults, docstring)."""
        if description is None:
            doc = inspect.getdoc(func) or ""
            description = doc.splitlines()[0].strip() if doc else ""
        defaults = _signature_defaults(func)
        return cls(
            name=name,
            func=func,
            defaults=defaults,
            description=description,
            section=section,
            params_type=_params_dataclass(name, defaults),
        )

    def param_names(self) -> List[str]:
        """Parameter names, in signature order."""
        return list(self.defaults)

    def validate_params(self, params: Mapping[str, object]) -> None:
        """Raise ``ValueError`` on parameter names the workload does not take."""
        unknown = sorted(set(params) - set(self.defaults))
        if unknown:
            valid = ", ".join(self.param_names()) or "(none)"
            raise ValueError(
                f"workload {self.name!r} has no parameter(s) "
                f"{', '.join(repr(name) for name in unknown)}; valid: {valid}"
            )

    def make_params(self, **params: Any) -> Any:
        """An instance of :attr:`params_type` with *params* applied."""
        return self.params_type(**params)

    def effective_params(self, params: Mapping[str, object]) -> Dict[str, object]:
        """The explicit *params* overlaid on this workload's defaults."""
        effective = dict(self.defaults)
        effective.update(params)
        return effective

    def call(self, params: Optional[Mapping[str, object]] = None) -> Metrics:
        """Run the workload with a params mapping and return its raw metrics."""
        return self.func(**dict(params or {}))

    def run(
        self,
        params: Optional[Mapping[str, object]] = None,
        tags: Optional[Mapping[str, str]] = None,
    ) -> "RunResult":
        """Run the workload and wrap the outcome as a timed ``RunResult``."""

        from repro.api.result import RunResult  # noqa: PLC0415

        merged = dict(params or {})
        self.validate_params(merged)
        start = time.perf_counter()
        metrics = self.call(merged)
        return RunResult.from_metrics(
            workload=self.name,
            params=merged,
            metrics=metrics,
            wall_seconds=time.perf_counter() - start,
            tags=tags,
        )


def register_spec(spec: WorkloadSpec, replace: bool = False) -> WorkloadSpec:
    """Add *spec* to the registry; duplicate names raise unless *replace*."""
    if not replace and spec.name in _REGISTRY:
        raise ValueError(f"duplicate workload name {spec.name!r}")
    _REGISTRY[spec.name] = spec
    return spec


def unregister(name: str) -> None:
    """Remove workload *name* from the registry (missing names are ignored)."""
    _REGISTRY.pop(name, None)


def workload(
    name: Optional[str] = None,
    *,
    description: Optional[str] = None,
    section: str = "",
    register: bool = True,
) -> Callable[[Callable[..., Metrics]], WorkloadSpec]:
    """Decorator: wrap a factory function as a (usually registered) spec.

    ::

        @workload("stencil", section="Figure 5")
        def stencil(kind: str = "7pt", n_hthreads: int = 1, ...) -> Dict[str, object]:
            ...

    The decorated name is bound to the :class:`WorkloadSpec` (which is itself
    callable with the original signature).  ``register=False`` builds a
    stand-alone spec — handy for scripts and examples that define a local
    workload for one :class:`~repro.api.experiment.Experiment` without
    touching the global registry.
    """

    def wrap(func: Callable[..., Metrics]) -> WorkloadSpec:
        spec_name = name if name is not None else func.__name__.replace("_", "-")
        spec = WorkloadSpec.from_callable(
            spec_name, func, description=description, section=section
        )
        if register:
            register_spec(spec)
        return spec

    return wrap


def get_workload(name: str) -> WorkloadSpec:
    """The registered spec for *name*; unknown names raise ``KeyError``."""
    _ensure_builtins()
    if name not in _REGISTRY:
        raise KeyError(
            f"unknown workload {name!r}; known: {', '.join(workload_names())}"
        )
    return _REGISTRY[name]


def workload_names() -> List[str]:
    """All registered workload names, sorted."""
    _ensure_builtins()
    return sorted(_REGISTRY)


def workload_defaults(name: str) -> Dict[str, object]:
    """Default parameters of workload *name*, in signature order."""
    return dict(get_workload(name).defaults)


def workload_specs() -> List[WorkloadSpec]:
    """All registered specs, sorted by name."""
    _ensure_builtins()
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


class LegacyRegistry(MutableMapping):
    """``name -> bare callable`` adapter view of the typed registry.

    This is what ``repro.workloads.factories.WORKLOADS`` now is: reads
    return the raw factory function (so old introspection code keeps
    working), writes adapt the callable into a :class:`WorkloadSpec` — which
    keeps ``monkeypatch.setitem(WORKLOADS, ...)``-style test seams working.
    A spec displaced by a write is remembered, and writing its original
    function back restores it (metadata included), so a patch/undo cycle is
    lossless.
    """

    def __init__(self) -> None:
        #: ``name -> spec`` displaced by a write, for lossless undo.
        self._displaced: Dict[str, WorkloadSpec] = {}

    def __getitem__(self, name: str) -> Callable[..., Metrics]:
        _ensure_builtins()
        return _REGISTRY[name].func

    def __setitem__(self, name: str, func: Callable[..., Metrics]) -> None:
        _ensure_builtins()
        existing = _REGISTRY.get(name)
        if existing is not None and existing.func is func:
            return
        displaced = self._displaced.get(name)
        if displaced is not None and displaced.func is func:
            _REGISTRY[name] = self._displaced.pop(name)
            return
        if existing is not None and name not in self._displaced:
            self._displaced[name] = existing
        register_spec(WorkloadSpec.from_callable(name, func), replace=True)

    def __delitem__(self, name: str) -> None:
        _ensure_builtins()
        removed = _REGISTRY.pop(name)
        # Remember the removed spec so a delete/undo cycle (what
        # monkeypatch.delitem does) restores it with metadata intact.
        self._displaced.setdefault(name, removed)

    def __iter__(self) -> Iterator[str]:
        _ensure_builtins()
        return iter(_REGISTRY)

    def __len__(self) -> int:
        _ensure_builtins()
        return len(_REGISTRY)

    def __repr__(self) -> str:
        return f"LegacyRegistry({sorted(self)!r})"
