"""``RunResult``: the one interchange type for experiment outcomes.

Every harness that runs a workload — ``repro run``, the sweep runner, the
pytest benchmarks, warm-started snapshot legs, the ``Experiment`` facade —
produces a :class:`RunResult`.  Its serialised form *is* the sweep record
schema (:mod:`repro.sweep.schema`): :meth:`RunResult.to_record` emits a
schema-valid record dict byte-compatible with what the sweep runner has
always written, and :meth:`RunResult.from_record` parses one back, so
manifests round-trip losslessly through the typed API
(:func:`roundtrip_problems` is the checker CI runs via
``repro validate --roundtrip``).

On top of the raw record fields the type exposes the structured views the
paper pipeline needs: the config :attr:`~RunResult.fingerprint`, headline
:attr:`~RunResult.cycles`, the :class:`~repro.core.stats.MachineStats`
summary counters, parsed Figure 9 :attr:`~RunResult.timeline` records, and
:class:`Provenance` (simulation kernel, seed, resumed-from cycle).
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from repro.sweep.schema import (
    SCHEMA_VERSION,
    VERIFICATION_FAILED,
    make_record,
    validate_record,
)
from repro.sweep.spec import config_fingerprint, run_id_for

#: Summary counters lifted out of ``metrics`` by :attr:`RunResult.summary`
#: (the scalar projection of ``MachineStats.summary()`` every
#: machine-driving workload reports).
_SUMMARY_KEYS = ("instructions", "operations", "messages", "nodes")


@dataclass(frozen=True)
class Provenance:
    """Where a result came from: how it was simulated, not what it measured."""

    #: Simulation kernel (``"event"`` or ``"naive"``); None for analytic
    #: workloads that never build a machine.
    kernel: Optional[str] = None
    #: Workload RNG seed, when one was set (the simulator itself is
    #: deterministic; seeds only parameterise synthetic traffic workloads).
    seed: Optional[int] = None
    #: Simulated cycle a checkpointed run resumed from, or None for a
    #: cold-started run.
    resumed_from_cycle: Optional[int] = None
    #: Which harness produced the record (``tags["harness"]``), if tagged.
    harness: Optional[str] = None


@dataclass(frozen=True)
class RunResult:
    """The outcome of running one workload with one parameter set.

    Frozen: a result is a value.  ``params``, ``metrics`` and ``tags`` are
    stored as plain dicts for JSON-compatibility; treat them as read-only.
    """

    workload: str
    params: Dict[str, object]
    status: str
    metrics: Dict[str, object]
    wall_seconds: float
    run_id: str
    error: Optional[str] = None
    tags: Dict[str, str] = field(default_factory=dict)
    schema_version: int = SCHEMA_VERSION

    # -- constructors ------------------------------------------------------------

    @classmethod
    def from_metrics(
        cls,
        workload: str,
        params: Mapping[str, object],
        metrics: Mapping[str, object],
        wall_seconds: float = 0.0,
        tags: Optional[Mapping[str, str]] = None,
        run_id: Optional[str] = None,
        resumed_from_cycle: Optional[int] = None,
    ) -> "RunResult":
        """Wrap a completed workload's metrics dict.

        ``status`` derives from the workload's own correctness check exactly
        the way the sweep runner always has: ``metrics["verified"]`` absent
        or true means ``"ok"``, anything else a ``"failed"`` result carrying
        :data:`VERIFICATION_FAILED`.
        """
        params = dict(params)
        status = "ok" if metrics.get("verified", True) else "failed"
        merged_tags = dict(tags or {})
        if resumed_from_cycle is not None:
            merged_tags["resumed_from_cycle"] = str(resumed_from_cycle)
        return cls(
            workload=workload,
            params=params,
            status=status,
            metrics=dict(metrics),
            wall_seconds=round(float(wall_seconds), 6),
            run_id=run_id if run_id is not None else run_id_for(workload, params),
            error=None if status == "ok" else VERIFICATION_FAILED,
            tags=merged_tags,
        )

    @classmethod
    def from_error(
        cls,
        workload: str,
        params: Mapping[str, object],
        error: str,
        wall_seconds: float = 0.0,
        tags: Optional[Mapping[str, str]] = None,
        run_id: Optional[str] = None,
    ) -> "RunResult":
        """A ``"failed"`` result for a workload that raised."""
        params = dict(params)
        return cls(
            workload=workload,
            params=params,
            status="failed",
            metrics={},
            wall_seconds=round(float(wall_seconds), 6),
            run_id=run_id if run_id is not None else run_id_for(workload, params),
            error=error,
            tags=dict(tags or {}),
        )

    @classmethod
    def from_record(cls, record: Mapping[str, object]) -> "RunResult":
        """Parse a schema-valid record dict (raises ``ValueError`` otherwise)."""
        problems = validate_record(dict(record))
        if problems:
            raise ValueError(f"invalid result record: {'; '.join(problems)}")
        return cls(
            workload=str(record["workload"]),
            params=dict(record["params"]),  # type: ignore
            status=str(record["status"]),
            metrics=dict(record["metrics"]),  # type: ignore
            wall_seconds=float(record["wall_seconds"]),  # type: ignore
            run_id=str(record["run_id"]),
            error=str(record["error"]) if "error" in record else None,
            tags={str(k): str(v) for k, v in dict(record.get("tags") or {}).items()},  # type: ignore
            schema_version=int(record["schema_version"]),  # type: ignore
        )

    # -- serialisation -----------------------------------------------------------

    def to_record(self) -> Dict[str, object]:
        """The schema-valid record dict (validated on the way out)."""
        return make_record(
            run_id=self.run_id,
            workload=self.workload,
            params=dict(self.params),
            status=self.status,
            metrics=dict(self.metrics),
            wall_seconds=self.wall_seconds,
            error=self.error,
            tags=dict(self.tags) if self.tags else None,
        )

    def to_json(self) -> str:
        """The record as canonical JSON (sorted keys, 2-space indent) — the
        exact bytes :func:`repro.sweep.runner.store_record` writes, minus the
        trailing newline."""
        return json.dumps(self.to_record(), indent=2, sort_keys=True)

    def replace(self, **changes: object) -> "RunResult":
        """A copy with *changes* applied (``dataclasses.replace``)."""
        return dataclasses.replace(self, **changes)  # type: ignore

    def with_tags(self, **tags: str) -> "RunResult":
        """A copy with *tags* merged over the existing tags."""
        merged = dict(self.tags)
        merged.update(tags)
        return self.replace(tags=merged)

    # -- structured views --------------------------------------------------------

    @property
    def ok(self) -> bool:
        """Whether the run completed and passed its correctness check."""
        return self.status == "ok"

    @property
    def verified(self) -> bool:
        """The workload's own correctness check (true for analytic workloads
        that report no ``verified`` metric but still ran to completion)."""
        return self.ok and self.metrics.get("verified", True) is True

    @property
    def cycles(self) -> Optional[int]:
        """Simulated cycles, or None for analytic workloads."""
        value = self.metrics.get("cycles")
        return int(value) if isinstance(value, int) and not isinstance(value, bool) else None

    @property
    def fingerprint(self) -> str:
        """8-hex-digit digest of ``(workload, params)`` — equal fingerprints
        mean the same experiment configuration (it is also the hash suffix
        of :attr:`run_id`)."""
        return config_fingerprint(self.workload, self.params)

    @property
    def summary(self) -> Dict[str, object]:
        """The ``MachineStats`` summary counters present in ``metrics``
        (instructions, operations, messages, nodes); empty for analytic
        workloads."""
        return {key: self.metrics[key] for key in _SUMMARY_KEYS if key in self.metrics}

    @property
    def timeline(self) -> Optional[List[Dict[str, object]]]:
        """Parsed milestone timeline records (Figure 9 workloads embed them
        in ``metrics["timeline"]`` as compact JSON), or None."""
        raw = self.metrics.get("timeline")
        if not isinstance(raw, str):
            return None
        parsed = json.loads(raw)
        return parsed if isinstance(parsed, list) else None

    @property
    def effective_params(self) -> Dict[str, object]:
        """Explicit params overlaid on the workload's registered defaults
        (falls back to the explicit params for unregistered workloads)."""
        from repro.api.workload import get_workload  # noqa: PLC0415

        try:
            spec = get_workload(self.workload)
        except KeyError:
            return dict(self.params)
        return spec.effective_params(self.params)

    @property
    def provenance(self) -> Provenance:
        """How this result was produced (kernel, seed, resume point)."""
        kernel = self.effective_params.get("kernel")
        seed = self.tags.get("seed")
        resumed = self.tags.get("resumed_from_cycle")
        return Provenance(
            kernel=str(kernel) if isinstance(kernel, str) else None,
            seed=int(seed) if seed is not None else None,
            resumed_from_cycle=int(resumed) if resumed is not None else None,
            harness=self.tags.get("harness"),
        )


def roundtrip_problems(document: Mapping[str, object]) -> List[str]:
    """Records in a merged results *document* that do not survive the
    ``record -> RunResult -> record`` round-trip byte-identically.

    Schema-invalid records are reported as such; a valid record that
    re-serialises differently indicates a drift between
    :class:`RunResult` and :mod:`repro.sweep.schema` and is a bug.
    """
    problems: List[str] = []
    runs = document.get("runs")
    if not isinstance(runs, list):
        return ["document has no 'runs' list"]
    for index, record in enumerate(runs):
        record_problems = validate_record(record)
        if record_problems:
            problems.extend(f"runs[{index}]: {problem}" for problem in record_problems)
            continue
        rebuilt = RunResult.from_record(record).to_record()
        if rebuilt != record:
            drifted = sorted(
                key
                for key in set(rebuilt) | set(record)
                if rebuilt.get(key) != record.get(key)
            )
            problems.append(
                f"runs[{index}]: record does not round-trip through RunResult "
                f"(drifting fields: {', '.join(drifted)})"
            )
    return problems
