"""``repro.api``: the typed public facade for defining and running experiments.

One import surface for the whole pipeline the paper's evaluation follows —
configure a machine, bind a workload, run, measure::

    from repro.api import Experiment, RunResult, run_workload, workload

    result = run_workload("ping-pong", rounds=8)        # one-shot
    assert result.verified and result.cycles is not None

    with (                                              # full builder
        Experiment.builder()
        .workload("flood", messages=16)
        .override("network.send_credits", 2)
        .build()
    ) as experiment:
        result = experiment.run()

Everything here is re-exported from the top-level ``repro`` package; see
``docs/api.md`` for the walkthrough and the old->new migration table.
"""

from repro.api.deprecation import ReproDeprecationWarning, reset_warnings
from repro.api.experiment import Experiment, ExperimentBuilder, Probe, run_workload
from repro.api.result import (
    VERIFICATION_FAILED,
    Provenance,
    RunResult,
    roundtrip_problems,
)
from repro.api.workload import (
    LegacyRegistry,
    Metrics,
    Workload,
    WorkloadSpec,
    get_workload,
    register_spec,
    unregister,
    workload,
    workload_defaults,
    workload_names,
    workload_specs,
)
from repro.core.config import apply_overrides, override_keys, validate_override_key

__all__ = [
    "Experiment",
    "ExperimentBuilder",
    "Probe",
    "run_workload",
    "RunResult",
    "Provenance",
    "VERIFICATION_FAILED",
    "roundtrip_problems",
    "Workload",
    "WorkloadSpec",
    "Metrics",
    "workload",
    "register_spec",
    "unregister",
    "get_workload",
    "workload_defaults",
    "workload_names",
    "workload_specs",
    "LegacyRegistry",
    "ReproDeprecationWarning",
    "reset_warnings",
    "apply_overrides",
    "override_keys",
    "validate_override_key",
]
