"""Warn-once deprecation machinery for the legacy experiment dialects.

The pre-``repro.api`` call paths (``repro.workloads.factories.run_workload``
and friends) keep working bit-exactly, but each emits a
:class:`ReproDeprecationWarning` the *first* time it is used in a process so
migrating code sees one actionable pointer instead of a warning per call.

Internal code must not trip these shims: the test suite turns
``ReproDeprecationWarning`` into an error (``filterwarnings`` in
``setup.cfg``), which is scoped to this package's own category so
third-party ``DeprecationWarning``\\ s are unaffected.
"""

from __future__ import annotations

import warnings
from typing import Set


class ReproDeprecationWarning(DeprecationWarning):
    """A deprecated ``repro`` call path was used (see :mod:`repro.api`)."""


#: Shim keys that have already warned in this process.
_WARNED: Set[str] = set()


def warn_once(key: str, message: str) -> None:
    """Emit *message* as a :class:`ReproDeprecationWarning`, once per *key*.

    ``stacklevel=3`` points the warning at the caller of the deprecated shim
    (shim -> warn_once -> warnings.warn), not at the shim itself.  The key
    is recorded only after ``warnings.warn`` returns: under an ``error::``
    filter the raise leaves the key armed, so *every* deprecated call keeps
    failing loudly rather than only the first one per process.
    """
    if key in _WARNED:
        return
    warnings.warn(message, ReproDeprecationWarning, stacklevel=3)
    _WARNED.add(key)


def reset_warnings() -> None:
    """Forget which shims have warned (tests assert warn-once semantics)."""
    _WARNED.clear()
