"""The fluent ``Experiment`` facade: configure, run, get a ``RunResult``.

This is the documented way to define and run one experiment::

    from repro import Experiment

    with (
        Experiment.builder()
        .workload("ping-pong", rounds=8)
        .mesh(2, 2, 1)
        .kernel("event")
        .override("network.send_credits", 4)
        .tag(figure="fig7")
        .build()
    ) as experiment:
        result = experiment.run()
    assert result.verified

The builder validates everything eagerly — unknown workload names, unknown
parameter names (listed against the workload's signature), unknown dotted
config-override keys (:func:`repro.core.config.validate_override_key`) —
so a typo fails at build time, not as a dead attribute on a live machine.

Because workload factories construct their machines internally, builder
features that need the machine itself (config overrides, probes) are
threaded underneath via :func:`repro.core.machine.construction_hooks`, the
same pattern the checkpoint subsystem uses: every ``MMachine`` built while
``run()`` is executing has the overrides applied to its config before
validation and each probe called on the constructed machine.
"""

from __future__ import annotations

import os
import time
from contextlib import ExitStack
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.api.result import RunResult
from repro.api.workload import WorkloadSpec, get_workload
from repro.core.config import validate_override_key
from repro.core.machine import MMachine, construction_hooks

#: A probe: called with every machine constructed during ``Experiment.run``.
Probe = Callable[[MMachine], None]

WorkloadRef = Union[str, WorkloadSpec]

_KERNELS = ("event", "naive")


class ExperimentBuilder:
    """Accumulates an experiment definition; ``build()`` freezes it.

    Every setter returns the builder, so definitions read as one fluent
    chain.  Validation is eager where possible (override keys, kernel
    names) and completed at :meth:`build` (workload binding, parameter
    names, mesh/kernel applicability).
    """

    def __init__(self) -> None:
        self._workload: Optional[WorkloadSpec] = None
        self._params: Dict[str, object] = {}
        self._mesh: Optional[Tuple[int, ...]] = None
        self._kernel: Optional[str] = None
        self._overrides: Dict[str, object] = {}
        self._probes: List[Probe] = []
        self._tags: Dict[str, str] = {}
        self._seed: Optional[int] = None
        self._checkpoint_dir: Optional[str] = None
        self._checkpoint_every: Optional[int] = None

    # -- workload binding --------------------------------------------------------

    def workload(self, ref: WorkloadRef, **params: object) -> "ExperimentBuilder":
        """Bind the workload: a registered name or a :class:`WorkloadSpec`."""
        spec = get_workload(ref) if isinstance(ref, str) else ref
        if not isinstance(spec, WorkloadSpec):
            raise TypeError(
                f"workload must be a registered name or a WorkloadSpec, "
                f"not {type(ref).__name__} (decorate plain callables with "
                f"@repro.workload)"
            )
        self._workload = spec
        return self.params(**params)

    def params(self, **params: object) -> "ExperimentBuilder":
        """Set workload parameters (validated against its signature at build)."""
        self._params.update(params)
        return self

    # -- machine shape -----------------------------------------------------------

    def mesh(self, x: Union[int, Sequence[int]], y: int = 1, z: int = 1) -> "ExperimentBuilder":
        """Set the mesh shape: ``mesh(4, 4, 1)`` or ``mesh((4, 4, 1))``."""
        shape = tuple(x) if isinstance(x, (tuple, list)) else (x, y, z)
        if len(shape) != 3 or any(not isinstance(dim, int) or dim <= 0 for dim in shape):
            raise ValueError(f"mesh shape must be three positive ints, got {shape!r}")
        self._mesh = shape
        return self

    def kernel(self, name: str) -> "ExperimentBuilder":
        """Select the simulation kernel (``"event"`` or ``"naive"``)."""
        if name not in _KERNELS:
            raise ValueError(f"unknown simulation kernel {name!r}; valid: {', '.join(_KERNELS)}")
        self._kernel = name
        return self

    def override(self, key: str, value: object) -> "ExperimentBuilder":
        """Set one dotted config override (``"network.send_credits"``).

        The key is validated immediately against the real configuration
        dataclasses; unknown keys raise ``ValueError`` listing the valid
        ones.
        """
        validate_override_key(key)
        self._overrides[key] = value
        return self

    def config(self, overrides: Mapping[str, object]) -> "ExperimentBuilder":
        """Set several dotted config overrides at once."""
        for key, value in overrides.items():
            self.override(key, value)
        return self

    # -- instrumentation and policy ----------------------------------------------

    def probe(self, probe: Probe) -> "ExperimentBuilder":
        """Attach a probe called with every machine the workload constructs."""
        if not callable(probe):
            raise TypeError("probe must be callable")
        self._probes.append(probe)
        return self

    def tag(self, **tags: str) -> "ExperimentBuilder":
        """Attach provenance tags carried verbatim into the ``RunResult``."""
        for key, value in tags.items():
            self._tags[key] = str(value)
        return self

    def seed(self, seed: int) -> "ExperimentBuilder":
        """Record a workload seed in the result's provenance."""
        self._seed = int(seed)
        return self

    def trace(
        self, directory: str, chunk_events: Optional[int] = None
    ) -> "ExperimentBuilder":
        """Stream each machine's trace to a ``machine-N`` subdirectory of
        *directory* (chunked JSONL+gzip, see ``docs/traces.md``) instead of
        holding it in memory — bounded RSS on million-cycle runs.

        *chunk_events* sets the events-per-chunk buffer size (default
        4096); smaller chunks mean finer-grained index skipping and a lower
        memory cap, at the cost of more files.
        """
        if chunk_events is not None and chunk_events <= 0:
            raise ValueError("chunk_events must be a positive event count")
        self._overrides["trace_dir"] = os.fspath(directory)
        if chunk_events is not None:
            self._overrides["trace_chunk_events"] = int(chunk_events)
        return self

    def checkpoint(
        self, directory: str, every: Optional[int] = None
    ) -> "ExperimentBuilder":
        """Checkpoint the run's machines to *directory* every *every* cycles
        and resume from the latest checkpoint on re-execution
        (:mod:`repro.snapshot.checkpoint`).

        With *every* omitted the run is **resume-only**: nothing is saved,
        but a checkpoint already present in *directory* (e.g. left by a
        killed run that did save) is still restored at run start.
        """
        if every is not None and every <= 0:
            raise ValueError("checkpoint interval must be a positive cycle count")
        self._checkpoint_dir = directory
        self._checkpoint_every = every
        return self

    # -- build -------------------------------------------------------------------

    def _resolved_params(self, spec: WorkloadSpec) -> Dict[str, object]:
        """Merge builder-level mesh/kernel into the explicit params."""
        params = dict(self._params)
        for name, value in (("mesh", self._mesh), ("kernel", self._kernel)):
            if value is None:
                continue
            if name not in spec.defaults:
                raise ValueError(
                    f"workload {spec.name!r} does not accept a {name!r} "
                    f"parameter; its parameters are: "
                    f"{', '.join(spec.param_names()) or '(none)'}"
                )
            if name in params:
                raise ValueError(
                    f"{name!r} was set both as a workload parameter and via "
                    f"the builder's .{name}() — pick one"
                )
            params[name] = list(value) if name == "mesh" else value
        spec.validate_params(params)
        return params

    def build(self) -> "Experiment":
        """Validate the definition and freeze it into an :class:`Experiment`."""
        if self._workload is None:
            raise ValueError("no workload bound; call .workload(name_or_spec) first")
        spec = self._workload
        params = self._resolved_params(spec)
        tags = dict(self._tags)
        if self._seed is not None:
            tags["seed"] = str(self._seed)
        return Experiment(
            spec=spec,
            params=params,
            overrides=dict(self._overrides),
            probes=list(self._probes),
            tags=tags,
            checkpoint_dir=self._checkpoint_dir,
            checkpoint_every=self._checkpoint_every,
        )


class Experiment:
    """A fully-validated, runnable experiment (build via :meth:`builder`).

    Context-manager lifecycle: ``with experiment: experiment.run()``.  The
    experiment is reusable until closed — each :meth:`run` re-executes the
    workload deterministically; after the ``with`` block exits, further runs
    raise ``RuntimeError``.
    """

    def __init__(
        self,
        spec: WorkloadSpec,
        params: Dict[str, object],
        overrides: Optional[Dict[str, object]] = None,
        probes: Optional[List[Probe]] = None,
        tags: Optional[Dict[str, str]] = None,
        checkpoint_dir: Optional[str] = None,
        checkpoint_every: Optional[int] = None,
    ) -> None:
        self.spec = spec
        self.params = dict(params)
        self.overrides = dict(overrides or {})
        self.probes = list(probes or [])
        self.tags = dict(tags or {})
        self.checkpoint_dir = checkpoint_dir
        self.checkpoint_every = checkpoint_every
        self._closed = False
        #: Results of every :meth:`run` on this experiment, in order.
        self.results: List[RunResult] = []

    @staticmethod
    def builder() -> ExperimentBuilder:
        """A fresh :class:`ExperimentBuilder`."""
        return ExperimentBuilder()

    # -- lifecycle ---------------------------------------------------------------

    def __enter__(self) -> "Experiment":
        if self._closed:
            raise RuntimeError("experiment is closed (the with-block exited)")
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self._closed = True

    @property
    def closed(self) -> bool:
        """Whether the experiment's with-block has exited."""
        return self._closed

    @property
    def run_id(self) -> str:
        """The deterministic run id of this experiment's configuration."""
        from repro.sweep.spec import run_id_for  # noqa: PLC0415

        return run_id_for(self.spec.name, self.params)

    @property
    def last_result(self) -> Optional[RunResult]:
        """The most recent :class:`RunResult`, or None before the first run."""
        return self.results[-1] if self.results else None

    # -- execution ---------------------------------------------------------------

    def run(self) -> RunResult:
        """Execute the workload once and return its :class:`RunResult`."""
        if self._closed:
            raise RuntimeError("experiment is closed (the with-block exited)")
        start = time.perf_counter()
        resumed_from: Optional[int] = None
        with ExitStack() as stack:
            if self.overrides or self.probes:
                stack.enter_context(
                    construction_hooks(
                        config_hook=self._apply_overrides if self.overrides else None,
                        machine_hook=self._run_probes if self.probes else None,
                    )
                )
            policy = None
            if self.checkpoint_dir is not None:
                from repro.snapshot.checkpoint import checkpoint_context  # noqa: PLC0415

                policy = stack.enter_context(
                    checkpoint_context(self.checkpoint_dir, every=self.checkpoint_every)
                )
            metrics = self.spec.call(self.params)
            if policy is not None and policy.resumes:
                resumed_from = policy.resumes[0][1]
        result = RunResult.from_metrics(
            workload=self.spec.name,
            params=self.params,
            metrics=metrics,
            wall_seconds=time.perf_counter() - start,
            tags=self.tags,
            resumed_from_cycle=resumed_from,
        )
        self.results.append(result)
        return result

    def _apply_overrides(self, config: Any) -> None:
        from repro.core.config import apply_overrides  # noqa: PLC0415

        apply_overrides(config, self.overrides)

    def _run_probes(self, machine: MMachine) -> None:
        for probe in self.probes:
            probe(machine)

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return f"Experiment({self.spec.name!r}, params={self.params!r}, {state})"


def run_workload(
    ref: WorkloadRef,
    params: Optional[Mapping[str, object]] = None,
    *,
    tags: Optional[Mapping[str, str]] = None,
    **kwparams: object,
) -> RunResult:
    """Run one workload and return its :class:`RunResult` (the functional
    spelling of a one-shot :class:`Experiment`)::

        from repro import run_workload

        result = run_workload("stencil", kind="27pt", n_hthreads=4)
        assert result.verified
    """
    spec = get_workload(ref) if isinstance(ref, str) else ref
    merged = dict(params or {})
    merged.update(kwparams)
    return spec.run(merged, tags=tags)
