"""Functional-unit semantics.

This module evaluates the *value* computed by an operation given its resolved
source operands.  Timing (latency, writeback scheduling) is handled by the
cluster; memory, send and privileged system operations have side effects and
are executed by the cluster/node, not here.

Integer results are kept as Python integers (the simulator does not wrap to
64 bits on arithmetic -- benchmark kernels never rely on wrap-around, and
keeping full precision makes address arithmetic in handlers straightforward);
shift/mask operations used by the runtime handlers behave exactly as 64-bit
logic as long as their inputs are in range, which the assembler-level tests
check.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.isa.operations import Operation
from repro.memory.guarded_pointer import GuardedPointer, PointerPermission


class OperandError(Exception):
    """Raised when an operation is applied to operands of the wrong shape."""


def _as_number(value):
    if isinstance(value, GuardedPointer):
        return value.address
    return value


def _as_int(value) -> int:
    if isinstance(value, GuardedPointer):
        return value.address
    if isinstance(value, float):
        return int(value)
    return int(value)


def _as_float(value) -> float:
    if isinstance(value, GuardedPointer):
        return float(value.address)
    return float(value)


def _add(values):
    a, b = values
    if isinstance(a, GuardedPointer):
        return a.add(_as_int(b))
    if isinstance(b, GuardedPointer):
        return b.add(_as_int(a))
    return a + b


def _sub(values):
    a, b = values
    if isinstance(a, GuardedPointer) and not isinstance(b, GuardedPointer):
        return a.add(-_as_int(b))
    return _as_number(a) - _as_number(b)


def _lea(values):
    pointer, offset = values
    if isinstance(pointer, GuardedPointer):
        return pointer.add(_as_int(offset))
    # Without protection enabled addresses are plain integers and lea reduces
    # to an add.
    return _as_int(pointer) + _as_int(offset)


def _setptr(values):
    base, length_exp, perms = values
    return GuardedPointer(_as_int(base), _as_int(length_exp), PointerPermission(_as_int(perms)))


def _ptrinfo(values):
    pointer, selector = values
    selector = _as_int(selector)
    if not isinstance(pointer, GuardedPointer):
        # Plain integers report "no segment, all permissions" so code can run
        # with protection disabled.
        return {0: _as_int(pointer), 1: 63, 2: int(PointerPermission.rwx())}.get(selector, 0)
    if selector == 0:
        return pointer.address
    if selector == 1:
        return pointer.length_exp
    if selector == 2:
        return int(pointer.permission)
    raise OperandError(f"ptrinfo selector {selector} out of range (0..2)")


_INT_EVAL: Dict[str, Callable[[List[object]], object]] = {
    "add": _add,
    "sub": _sub,
    "mul": lambda v: _as_number(v[0]) * _as_number(v[1]),
    "div": lambda v: int(_as_int(v[0]) / _as_int(v[1])) if _as_int(v[1]) != 0 else _raise_div(),
    "mod": lambda v: _as_int(v[0]) - _as_int(v[1]) * int(_as_int(v[0]) / _as_int(v[1]))
    if _as_int(v[1]) != 0
    else _raise_div(),
    "and": lambda v: _as_int(v[0]) & _as_int(v[1]),
    "or": lambda v: _as_int(v[0]) | _as_int(v[1]),
    "xor": lambda v: _as_int(v[0]) ^ _as_int(v[1]),
    "shl": lambda v: _as_int(v[0]) << _as_int(v[1]),
    "shr": lambda v: _as_int(v[0]) >> _as_int(v[1]),
    "min": lambda v: min(_as_number(v[0]), _as_number(v[1])),
    "max": lambda v: max(_as_number(v[0]), _as_number(v[1])),
    "not": lambda v: ~_as_int(v[0]) & ((1 << 64) - 1),
    "neg": lambda v: -_as_number(v[0]),
    "mov": lambda v: v[0],
    "eq": lambda v: int(_as_number(v[0]) == _as_number(v[1])),
    "ne": lambda v: int(_as_number(v[0]) != _as_number(v[1])),
    "lt": lambda v: int(_as_number(v[0]) < _as_number(v[1])),
    "le": lambda v: int(_as_number(v[0]) <= _as_number(v[1])),
    "gt": lambda v: int(_as_number(v[0]) > _as_number(v[1])),
    "ge": lambda v: int(_as_number(v[0]) >= _as_number(v[1])),
    "lea": _lea,
    "setptr": _setptr,
    "ptrinfo": _ptrinfo,
}


_FP_EVAL: Dict[str, Callable[[List[object]], object]] = {
    "fadd": lambda v: _as_float(v[0]) + _as_float(v[1]),
    "fsub": lambda v: _as_float(v[0]) - _as_float(v[1]),
    "fmul": lambda v: _as_float(v[0]) * _as_float(v[1]),
    "fdiv": lambda v: _as_float(v[0]) / _as_float(v[1]) if _as_float(v[1]) != 0.0 else _raise_div(),
    "fmin": lambda v: min(_as_float(v[0]), _as_float(v[1])),
    "fmax": lambda v: max(_as_float(v[0]), _as_float(v[1])),
    "fmadd": lambda v: _as_float(v[0]) * _as_float(v[1]) + _as_float(v[2]),
    "fneg": lambda v: -_as_float(v[0]),
    "fabs": lambda v: abs(_as_float(v[0])),
    "fmov": lambda v: _as_float(v[0]),
    "itof": lambda v: float(_as_int(v[0])),
    "ftoi": lambda v: int(_as_float(v[0])),
    "feq": lambda v: int(_as_float(v[0]) == _as_float(v[1])),
    "flt": lambda v: int(_as_float(v[0]) < _as_float(v[1])),
    "fle": lambda v: int(_as_float(v[0]) <= _as_float(v[1])),
}


class ArithmeticFault(Exception):
    """Raised on divide-by-zero; the cluster converts it into a synchronous
    arithmetic exception handled by the exception V-Thread."""


def _raise_div():
    raise ArithmeticFault("division by zero")


def evaluate_operation(operation: Operation, source_values: List[object]):
    """Compute the result value of a register-producing operation.

    Memory, control, send and system operations are not evaluated here.

    Raises
    ------
    OperandError
        If the opcode has no value semantics or the operands are malformed.
    ArithmeticFault
        On division by zero.
    ProtectionError
        On guarded-pointer violations (``lea`` leaving its segment).
    """
    name = operation.opcode.name
    evaluator = _INT_EVAL.get(name) or _FP_EVAL.get(name)
    if evaluator is None:
        raise OperandError(f"operation {name!r} has no value semantics")
    try:
        return evaluator(source_values)
    except (TypeError, IndexError) as exc:
        raise OperandError(f"bad operands for {name}: {source_values!r}") from exc


def has_value_semantics(name: str) -> bool:
    return name in _INT_EVAL or name in _FP_EVAL


def value_evaluator(name: str):
    """The evaluator callable for *name*, or None when the opcode has no
    value semantics (used by the dispatch compiler to resolve the opcode
    dispatch once per program instead of once per issue)."""
    return _INT_EVAL.get(name) or _FP_EVAL.get(name)
