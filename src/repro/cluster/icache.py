"""Per-cluster instruction cache.

Each cluster has a 1 KW (8 KB) instruction cache (Section 2, Figure 3).  The
paper's evaluation never exercises instruction-cache misses (the kernels and
handlers are tiny), so the model is an always-hit store of the programs
loaded into each V-Thread slot with capacity accounting: the loader checks
that the resident programs fit, and fetch statistics are kept so utilisation
can be reported.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.config import ClusterConfig
from repro.isa.instruction import Instruction
from repro.isa.program import Program
from repro.snapshot.values import decode_value, encode_value


class CapacityError(Exception):
    """Raised when the programs loaded on a cluster exceed the I-cache size."""


class InstructionCache:
    """Always-hit instruction cache holding one program per V-Thread slot."""

    def __init__(self, config: ClusterConfig = None, name: str = "icache"):
        self.config = config or ClusterConfig()
        self.name = name
        self._programs: Dict[int, Program] = {}
        # Statistics
        self.fetches = 0

    # -- loading -----------------------------------------------------------------

    def load(self, slot: int, program: Program) -> None:
        self._programs[slot] = program
        if self.words_used > self.config.icache_words:
            raise CapacityError(
                f"{self.name}: resident programs need {self.words_used} words, "
                f"capacity is {self.config.icache_words}"
            )

    def unload(self, slot: int) -> None:
        self._programs.pop(slot, None)

    def program(self, slot: int) -> Optional[Program]:
        return self._programs.get(slot)

    # -- fetch -------------------------------------------------------------------

    def fetch(self, slot: int, pc: int) -> Optional[Instruction]:
        """Fetch the instruction at *pc* for V-Thread *slot*.

        Returns None when the slot has no program or the PC has run off the
        end of the program (which the cluster treats as an implicit halt).
        """
        instruction = self.peek(slot, pc)
        if instruction is not None:
            self.fetches += 1
        return instruction

    def peek(self, slot: int, pc: int) -> Optional[Instruction]:
        """Like :meth:`fetch` but without counting the access -- used by the
        event kernel's readiness dry-run, which must not perturb the fetch
        statistics the real issue stage will accrue."""
        program = self._programs.get(slot)
        if program is None or pc < 0 or pc >= len(program):
            return None
        return program[pc]

    # -- capacity ----------------------------------------------------------------

    @property
    def words_used(self) -> int:
        return sum(
            len(program) * self.config.words_per_instruction
            for program in self._programs.values()
        )

    @property
    def utilisation(self) -> float:
        return self.words_used / self.config.icache_words if self.config.icache_words else 0.0

    # -- snapshot (repro.snapshot state_dict contract) ----------------------------

    def state_dict(self) -> dict:
        return {
            "programs": [[slot, encode_value(program)]
                         for slot, program in self._programs.items()],
            "fetches": self.fetches,
        }

    def load_state_dict(self, state: dict) -> None:
        self._programs = {slot: decode_value(program)
                          for slot, program in state["programs"]}
        self.fetches = state["fetches"]

    def __repr__(self) -> str:
        return f"InstructionCache({self.name!r}, {len(self._programs)} programs, {self.words_used} words)"
