"""The MAP execution cluster model.

A cluster holds the register state of all six resident V-Thread slots (one
H-Thread context per slot), an instruction cache, the three function units
and the synchronization stage that interleaves the H-Threads cycle by cycle
(Sections 2, 3.1 and 3.2 of the paper).

The cluster is driven by its node (the MAP chip) in three phases per cycle:

1. :meth:`Cluster.apply_writebacks` -- results of previously issued
   operations (and register writes delivered by the C-Switch) become visible
   and set their scoreboard bits full;
2. the node advances the memory system and switches;
3. :meth:`Cluster.issue` -- the synchronization stage picks at most one ready
   instruction from the resident H-Threads and issues all of its operations.

Because writebacks are applied before issue, an operation of latency *L*
issued at cycle *t* can feed a dependent instruction at cycle *t + L*, and a
cache-hit load (memory-system latency of two cycles plus the two switch
traversals) satisfies a dependent instruction three cycles after issue, as in
Table 1 of the paper.

The issue stage has two implementations selected by ``sim.compile_dispatch``:

* the **interpreted** path (:meth:`Cluster._issue_slow`) re-derives operand
  kinds and the opcode dispatch from the decoded instruction every cycle;
* the **compiled** path (:meth:`Cluster._issue_fast`) resolves each program
  once into :class:`~repro.cluster.dispatch.CompiledInstruction` plans
  (readiness steps over flat register offsets, bound operand readers and
  executors) and runs those.  Plans are derived state, cached per slot keyed
  on the ``Program`` object identity, and never serialised: a snapshot
  restore installs new ``Program`` objects and recompiles on first issue.

Both paths are bit-exact in statistics, traces and snapshots
(``tests/integration/test_dispatch_equivalence.py`` is the differential
gate); instructions the compiler does not cover (sends, remote sources,
malformed references) transparently fall back to the interpreted machinery.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.cluster.functional_units import (
    ArithmeticFault,
    OperandError,
    evaluate_operation,
)
from repro.cluster.hthread import HThreadContext, ThreadState
from repro.cluster.icache import InstructionCache
from repro.cluster.issue import HepBarrelPolicy, make_issue_policy
from repro.core.config import (
    ClusterConfig,
    EVENT_SLOT,
    EXCEPTION_SLOT,
    NodeConfig,
)
from repro.events.records import EventRecord, EventType
from repro.isa.instruction import Instruction
from repro.isa.operations import LabelRef, Operation, SYNC_CONDITIONS
from repro.isa.registers import RegFile, RegisterRef
from repro.isa.program import Program
from repro.memory.guarded_pointer import GuardedPointer, PointerPermission, ProtectionError
from repro.memory.page_table import BlockStatus
from repro.memory.requests import MemOpKind, MemRequest
from repro.snapshot.values import (
    decode_counter,
    decode_value,
    encode_counter,
    encode_value,
)

_RUNNABLE = ThreadState.RUNNABLE


@dataclass
class RegWrite:
    """A register write travelling over the C-Switch (inter-cluster register
    writes, global-CC broadcasts, memory-system responses and privileged
    ``xregwr`` writes)."""

    vthread: int
    ref: RegisterRef
    value: object
    #: Clear one pending-write reservation on arrival (set for writes that
    #: complete an operation issued by the destination thread, e.g. load
    #: responses and handler ``xregwr`` completions of faulted loads).
    clear_pending: bool = False
    #: Human-readable origin, for traces.
    origin: str = ""


class SimulationError(Exception):
    """Raised for malformed programs (e.g. a remote register used as a source)."""


def _residue_count(start: int, count: int, residue: int, modulus: int) -> int:
    """Number of cycles ``c`` in ``[start, start + count)`` with
    ``c % modulus == residue`` (the HEP barrel's turn cycles for one slot)."""
    first = start + ((residue - start) % modulus)
    if first >= start + count:
        return 0
    return (start + count - 1 - first) // modulus + 1


class Cluster:
    """One of the four execution clusters of a MAP chip."""

    def __init__(
        self,
        cluster_id: int,
        node,
        config: Optional[ClusterConfig] = None,
        node_config: Optional[NodeConfig] = None,
        compile_dispatch: bool = True,
    ):
        self.id = cluster_id
        self.node = node
        self.config = config or ClusterConfig()
        self.node_config = node_config or NodeConfig()
        num_slots = self.node_config.num_vthread_slots
        self.contexts: List[HThreadContext] = [
            HThreadContext(slot=slot, cluster_id=cluster_id, config=self.config)
            for slot in range(num_slots)
        ]
        self.icache = InstructionCache(self.config, name=f"n{getattr(node, 'node_id', '?')}c{cluster_id}")
        self.policy = make_issue_policy(self.config, num_slots)
        #: In-flight local writebacks as ``(due_cycle, slot, ref, value,
        #: clear_pending)`` tuples (plain tuples, not objects: the issue
        #: stage appends one per value-producing operation).
        self._writebacks: List[tuple] = []
        self._compile_dispatch = compile_dispatch
        #: Per-slot ``(program, plans)`` dispatch-plan cache (derived state,
        #: never serialised; see :meth:`_slot_plans`).
        self._plan_cache: List[Optional[tuple]] = [None] * num_slots
        #: Per-slot queue-name -> hardware-queue bindings (derived state;
        #: compiled plans carry queue *names* so they stay cluster-neutral
        #: and shareable, and this cache makes the per-cycle resolution O(1)).
        self._queue_cache: List[dict] = [dict() for _ in range(num_slots)]
        # Statistics.  The by-unit/by-slot counters are struct-of-arrays on
        # the hot path: the compiled issue stage bumps flat integer lists and
        # the Counters are folded lazily on read (`_settle_fast_stats`).
        self.instructions_issued = 0
        self.operations_issued = 0
        self._operations_by_unit = Counter()
        self.idle_cycles = 0
        self.no_ready_cycles = 0
        self._issue_by_slot = Counter()
        self.exceptions_raised = 0
        self._unit_fast = [0, 0, 0]  # indexed like dispatch.UNIT_VALUES
        self._slot_fast = [0] * num_slots

    # ------------------------------------------------------------------ loading

    def load_program(
        self,
        slot: int,
        program: Program,
        initial_registers: Optional[dict] = None,
        entry: Optional[str] = None,
    ) -> HThreadContext:
        context = self.contexts[slot]
        self.icache.load(slot, program)
        self._plan_cache[slot] = None
        context.load(program, initial_registers, entry)
        return context

    def context(self, slot: int) -> HThreadContext:
        return self.contexts[slot]

    # ------------------------------------------------------------------ queries

    @property
    def busy(self) -> bool:
        """True while any resident H-Thread has not halted or writebacks are
        outstanding."""
        return (
            any(ctx.state is _RUNNABLE for ctx in self.contexts)
            or bool(self._writebacks)
        )

    @property
    def user_threads_finished(self) -> bool:
        return all(
            ctx.finished
            for ctx in self.contexts
            if ctx.slot not in (EVENT_SLOT, EXCEPTION_SLOT)
        )

    # ----------------------------------------------------------- lazy statistics

    @property
    def operations_by_unit(self) -> Counter:
        self._settle_fast_stats()
        return self._operations_by_unit

    @operations_by_unit.setter
    def operations_by_unit(self, counter: Counter) -> None:
        self._unit_fast = [0, 0, 0]
        self._operations_by_unit = counter

    @property
    def issue_by_slot(self) -> Counter:
        self._settle_fast_stats()
        return self._issue_by_slot

    @issue_by_slot.setter
    def issue_by_slot(self, counter: Counter) -> None:
        self._slot_fast = [0] * len(self._slot_fast)
        self._issue_by_slot = counter

    def _settle_fast_stats(self) -> None:
        """Fold the flat fast-path counters into the public Counters."""
        unit_fast = self._unit_fast
        if unit_fast[0] or unit_fast[1] or unit_fast[2]:
            from repro.cluster.dispatch import UNIT_VALUES  # noqa: PLC0415

            counter = self._operations_by_unit
            for index in range(3):
                if unit_fast[index]:
                    counter[UNIT_VALUES[index]] += unit_fast[index]
                    unit_fast[index] = 0
        slot_fast = self._slot_fast
        counter = self._issue_by_slot
        for slot in range(len(slot_fast)):
            if slot_fast[slot]:
                counter[slot] += slot_fast[slot]
                slot_fast[slot] = 0

    # --------------------------------------------------------------- writebacks

    def apply_writebacks(self, cycle: int) -> None:
        if not self._writebacks:
            return
        remaining = []
        contexts = self.contexts
        for wb in self._writebacks:
            if wb[0] <= cycle:
                if len(wb) == 6:
                    # Compiled-dispatch writeback: the flat register offset
                    # was resolved at compile time (clear_pending is always
                    # True for a value-operation result).
                    registers = contexts[wb[1]].registers
                    offset = wb[5]
                    registers.writes += 1
                    registers._values[offset] = wb[3]
                    registers._full[offset] = True
                    if registers._pending[offset] > 0:
                        registers._pending[offset] -= 1
                else:
                    self._write_register(wb[1], wb[2], wb[3], wb[4])
            else:
                remaining.append(wb)
        self._writebacks = remaining

    def receive(self, write: RegWrite, cycle: int) -> None:
        """Apply a register write delivered by the C-Switch."""
        self._write_register(write.vthread, write.ref, write.value, write.clear_pending)

    def _write_register(self, slot: int, ref: RegisterRef, value, clear_pending: bool) -> None:
        registers = self.contexts[slot].registers
        registers.write(ref.local(), value)
        if clear_pending:
            registers.clear_pending(ref.local())

    # -------------------------------------------------------------------- issue

    def issue(self, cycle: int) -> bool:
        """Run the synchronization stage for one cycle; returns True if an
        instruction issued."""
        resident = [ctx.slot for ctx in self.contexts if ctx.state is _RUNNABLE]
        if not resident:
            self.idle_cycles += 1
            return False
        order = self.policy.order_cached(cycle, tuple(resident))
        if self._compile_dispatch:
            return self._issue_fast(order, cycle)
        return self._issue_slow(order, cycle)

    def _slot_plans(self, slot: int) -> tuple:
        """The ``(program, plans)`` pair for *slot*, compiling on first use.

        The cache entry is invalidated explicitly by the only two paths that
        change a slot's resident program: :meth:`load_program` and
        :meth:`load_state_dict` (a snapshot restore installs freshly decoded
        ``Program`` objects).
        """
        from repro.cluster.dispatch import compile_program  # noqa: PLC0415

        program = self.icache._programs.get(slot)
        cached = (program, compile_program(program, self, slot))
        self._plan_cache[slot] = cached
        return cached

    def _queue_binding(self, slot: int, name: str):
        """The hardware queue *name* resolves to for *slot* (None when the
        queue is not readable here), memoized per slot."""
        cache = self._queue_cache[slot]
        try:
            return cache[name]
        except KeyError:
            queue = self.node.queue_for(self.id, slot, name)
            cache[name] = queue
            return queue

    def _issue_fast(self, order, cycle: int) -> bool:
        """Compiled issue scan: same observable behaviour as
        :meth:`_issue_slow`, using precompiled dispatch plans."""
        contexts = self.contexts
        icache = self.icache
        node = self.node
        plan_cache = self._plan_cache
        for slot in order:
            context = contexts[slot]
            if context.state is not _RUNNABLE:
                continue
            cached = plan_cache[slot]
            if cached is None:
                cached = self._slot_plans(slot)
            program, plans = cached
            pc = context.pc
            if pc < 0 or pc >= len(plans):
                # Running off the end of the program is an implicit halt
                # (the fetch is not counted, matching InstructionCache.fetch).
                context.halt(cycle)
                continue
            icache.fetches += 1
            plan = plans[pc]
            if plan is None:
                # Instruction the compiler does not cover: interpreted path.
                instruction = program[pc]
                ready, reason = self._instruction_ready(context, instruction)
                if not ready:
                    context.stall_cycles += 1
                    context.stall_reasons[reason] += 1
                    continue
                if context.start_cycle is None:
                    context.start_cycle = cycle
                self._execute_instruction(context, instruction, cycle)
                num_ops = len(instruction)
                for unit in instruction.ops:
                    self._operations_by_unit[unit.value] += 1
                self._issue_by_slot[slot] += 1
            else:
                registers = context.registers
                full = registers._full
                pending = registers._pending
                stall = None
                for kind, arg, reason in plan.steps:
                    if kind == 0:
                        if not full[arg]:
                            stall = reason
                            break
                    elif kind == 1:
                        if pending[arg]:
                            stall = reason
                            break
                    elif kind == 3:
                        queue = self._queue_binding(slot, arg[0])
                        if queue is not None and len(queue) < arg[1]:
                            stall = reason
                            break
                    elif not node.memory_port_available(self.id):
                        stall = reason
                        break
                if stall is not None:
                    context.stall_cycles += 1
                    context.stall_reasons[stall] += 1
                    continue
                if context.start_cycle is None:
                    context.start_cycle = cycle
                self._execute_plan(context, plan, pc, cycle)
                num_ops = plan.num_ops
                for index in plan.unit_idx:
                    self._unit_fast[index] += 1
                self._slot_fast[slot] += 1
            self.instructions_issued += 1
            self.operations_issued += num_ops
            context.instructions_issued += 1
            context.operations_issued += num_ops
            self.policy.issued(slot)
            return True

        self.no_ready_cycles += 1
        return False

    def _execute_plan(self, context: HThreadContext, plan, pc: int, cycle: int) -> None:
        """Run one compiled instruction (mirror of
        :meth:`_execute_instruction`: read all operands first, then execute
        every operation, then advance the PC)."""
        registers = context.registers
        values_mem = registers._values
        try:
            ops = plan.ops
            if plan.num_ops == 1:
                cop = ops[0]
                if cop.privilege_msg is not None:
                    raise ProtectionError(cop.privilege_msg)
                values = []
                for mode, arg in cop.readers:
                    if mode == 1:
                        registers.reads += 1
                        values.append(values_mem[arg])
                    elif mode == 0:
                        values.append(arg)
                    elif mode == 2:
                        queue = self._queue_binding(context.slot, arg)
                        if queue is None:
                            raise ProtectionError(
                                f"register {arg!r} is not readable from "
                                f"cluster {self.id} slot {context.slot}")
                        values.append(queue.pop_word())
                    elif mode == 3:
                        values.append(self.node.node_id)
                    else:  # mode == 4: executing cluster's id
                        values.append(self.id)
                outcome_pc = cop.executor(self, context, values, cycle)
                if context.state is _RUNNABLE:
                    context.pc = pc + 1 if outcome_pc is None else outcome_pc
                return
            resolved = []
            for cop in ops:
                if cop.privilege_msg is not None:
                    raise ProtectionError(cop.privilege_msg)
                values = []
                for mode, arg in cop.readers:
                    if mode == 1:
                        registers.reads += 1
                        values.append(values_mem[arg])
                    elif mode == 0:
                        values.append(arg)
                    elif mode == 2:
                        queue = self._queue_binding(context.slot, arg)
                        if queue is None:
                            raise ProtectionError(
                                f"register {arg!r} is not readable from "
                                f"cluster {self.id} slot {context.slot}")
                        values.append(queue.pop_word())
                    elif mode == 3:
                        values.append(self.node.node_id)
                    else:  # mode == 4: executing cluster's id
                        values.append(self.id)
                resolved.append(values)
            next_pc = pc + 1
            for index, cop in enumerate(ops):
                outcome_pc = cop.executor(self, context, resolved[index], cycle)
                if outcome_pc is not None:
                    next_pc = outcome_pc
            if context.state is _RUNNABLE:
                context.pc = next_pc
        except ProtectionError as exc:
            self._raise_exception(context, EventType.PROTECTION, str(exc), cycle)
        except ArithmeticFault as exc:
            self._raise_exception(context, EventType.ARITHMETIC, str(exc), cycle)
        except OperandError as exc:
            raise SimulationError(f"{exc} (instruction {plan.instruction})") from exc

    def _issue_slow(self, order, cycle: int) -> bool:
        """Interpreted issue scan (``sim.compile_dispatch = False``)."""
        for slot in order:
            context = self.contexts[slot]
            if not context.is_runnable:
                continue
            instruction = self.icache.fetch(slot, context.pc)
            if instruction is None:
                # Running off the end of the program is an implicit halt.
                context.halt(cycle)
                continue
            ready, reason = self._instruction_ready(context, instruction)
            if not ready:
                context.record_stall(reason)
                continue
            if context.start_cycle is None:
                context.start_cycle = cycle
            self._execute_instruction(context, instruction, cycle)
            self.instructions_issued += 1
            self.operations_issued += len(instruction)
            for unit in instruction.ops:
                self._operations_by_unit[unit.value] += 1
            self._issue_by_slot[slot] += 1
            context.instructions_issued += 1
            context.operations_issued += len(instruction)
            self.policy.issued(slot)
            return True

        self.no_ready_cycles += 1
        return False

    # ------------------------------------------------------- kernel scheduling

    def next_writeback_cycle(self) -> Optional[int]:
        """Earliest due cycle of an in-flight local writeback, or None
        (SimComponent contract for the event kernel)."""
        if not self._writebacks:
            return None
        return min(wb[0] for wb in self._writebacks)

    def idle_profile(self):
        """Dry-run of the synchronization stage for the event kernel.

        Returns ``None`` when the cluster could make progress on the next
        cycle (an instruction is ready, or a PC ran off its program and the
        implicit halt is still pending), meaning the node must stay awake.
        Otherwise returns the frozen per-cycle statistics profile of an
        idle/blocked cycle: ``("idle", ())`` when no H-Thread is runnable,
        or ``("blocked", ((context, stall_reason), ...))`` for the runnable
        slots the issue scan would visit.  The dry-run is side-effect free
        (no fetch counts, no stall records): the profile is replayed in bulk
        by :meth:`account_idle_cycles` when the node wakes.
        """
        stalled = []
        for context in self.contexts:
            if not context.is_runnable:
                continue
            instruction = self.icache.peek(context.slot, context.pc)
            if instruction is None:
                return None  # implicit halt pending: a real tick must run
            try:
                ready, reason = self._instruction_ready(context, instruction)
            except SimulationError:
                return None  # let the real issue scan raise at the same cycle
            if ready:
                return None
            stalled.append((context, reason))
        if not stalled:
            return ("idle", ())
        return ("blocked", tuple(stalled))

    def account_idle_cycles(self, profile, start_cycle: int, num_cycles: int) -> None:
        """Apply *num_cycles* worth of idle/blocked issue-stage statistics in
        one step, exactly as *num_cycles* naive calls of :meth:`issue` on the
        frozen state would have (the state cannot have changed while the
        node slept, so the per-cycle increments are constant -- except under
        the HEP barrel policy, where the scanned slot rotates with the clock
        and the per-slot counts follow the cycle residues)."""
        kind, stalled = profile
        if kind == "idle":
            self.idle_cycles += num_cycles
            return
        self.no_ready_cycles += num_cycles
        if isinstance(self.policy, HepBarrelPolicy):
            modulus = self.policy.num_slots
            for context, reason in stalled:
                visits = _residue_count(start_cycle, num_cycles, context.slot, modulus)
                if visits:
                    self.icache.fetches += visits
                    context.stall_cycles += visits
                    context.stall_reasons[reason] += visits
        else:
            # event-priority and round-robin scan every runnable slot each
            # blocked cycle.
            for context, reason in stalled:
                self.icache.fetches += num_cycles
                context.stall_cycles += num_cycles
                context.stall_reasons[reason] += num_cycles

    # ---------------------------------------------------------------- readiness

    def _queue_for(self, context: HThreadContext, name: str):
        return self.node.queue_for(self.id, context.slot, name)

    def _instruction_ready(self, context: HThreadContext, instruction: Instruction) -> Tuple[bool, str]:
        registers = context.registers
        queue_needs: Counter = Counter()

        for op in instruction.operations:
            for src in op.srcs:
                if not isinstance(src, RegisterRef):
                    continue
                if src.is_queue:
                    queue_needs[src.name] += 1
                elif src.is_identity:
                    continue
                elif src.is_remote:
                    raise SimulationError(
                        f"remote register {src} cannot be used as a source operand "
                        f"(instruction {instruction})"
                    )
                elif not registers.is_full(src):
                    return False, f"operand {src} empty"

            for dest in op.dests:
                if dest.is_remote or dest.file is RegFile.GCC:
                    continue
                if registers.is_pending(dest):
                    return False, f"destination {dest} has a write in flight"

            if op.opcode.is_send:
                ready, reason = self._send_ready(context, op)
                if not ready:
                    return False, reason

            if op.opcode.is_memory and not self.node.memory_port_available(self.id):
                return False, "memory port busy"

        for name, count in queue_needs.items():
            queue = self._queue_for(context, name)
            if queue is None:
                # Not a legal queue for this H-Thread: let execution raise the
                # privilege exception.
                continue
            if len(queue) < count:
                return False, f"{name} queue empty"

        return True, ""

    def _send_ready(self, context: HThreadContext, op: Operation) -> Tuple[bool, str]:
        length = self._send_length(op)
        if length is None:
            return False, "send length must be an immediate"
        for index in range(length):
            mc_ref = RegisterRef(RegFile.MC, index)
            if not context.registers.is_full(mc_ref):
                return False, f"message-composition register m{index} empty"
        priority = self._send_priority(op)
        if not self.node.can_send(priority):
            return False, "network output busy or out of send credits"
        return True, ""

    @staticmethod
    def _send_length(op: Operation) -> Optional[int]:
        if len(op.srcs) < 3:
            return None
        length = op.srcs[2]
        if isinstance(length, bool) or not isinstance(length, int):
            return None
        return length

    @staticmethod
    def _send_priority(op: Operation) -> int:
        if len(op.srcs) >= 4 and isinstance(op.srcs[3], int):
            return int(op.srcs[3])
        return 1 if op.opcode.name == "sendp" else 0

    # ---------------------------------------------------------------- execution

    def _read_operand(self, context: HThreadContext, operand, cycle: int):
        if isinstance(operand, LabelRef):
            return operand
        if not isinstance(operand, RegisterRef):
            return operand
        if operand.is_queue:
            queue = self._queue_for(context, operand.name)
            if queue is None:
                raise ProtectionError(
                    f"register {operand.name!r} is not readable from cluster {self.id} "
                    f"slot {context.slot}"
                )
            return queue.pop_word()
        if operand.is_identity:
            return {
                "nid": self.node.node_id,
                "cid": self.id,
                "vid": context.slot,
                "zero": 0,
            }[operand.name]
        return context.registers.read(operand)

    def _execute_instruction(self, context: HThreadContext, instruction: Instruction, cycle: int) -> None:
        try:
            resolved: Dict[int, List[object]] = {}
            for op in instruction.operations:
                self._check_privilege(context, op)
                resolved[id(op)] = [self._read_operand(context, src, cycle) for src in op.srcs]

            next_pc = context.pc + 1
            for op in instruction.operations:
                values = resolved[id(op)]
                outcome_pc = self._execute_operation(context, op, values, cycle)
                if outcome_pc is not None:
                    next_pc = outcome_pc
            if context.state is ThreadState.RUNNABLE:
                context.pc = next_pc
        except ProtectionError as exc:
            self._raise_exception(context, EventType.PROTECTION, str(exc), cycle)
        except ArithmeticFault as exc:
            self._raise_exception(context, EventType.ARITHMETIC, str(exc), cycle)
        except OperandError as exc:
            raise SimulationError(f"{exc} (instruction {instruction})") from exc

    def _check_privilege(self, context: HThreadContext, op: Operation) -> None:
        if op.opcode.privileged and context.slot not in (EVENT_SLOT, EXCEPTION_SLOT):
            raise ProtectionError(
                f"privileged operation {op.opcode.name!r} issued from user slot {context.slot}"
            )

    def _execute_operation(
        self, context: HThreadContext, op: Operation, values: List[object], cycle: int
    ) -> Optional[int]:
        """Execute one operation; returns the next PC if the operation is a
        taken control transfer, else None."""
        name = op.opcode.name

        if name == "nop":
            return None
        if name == "mark":
            self.node.trace(cycle, "mark", marker=values[0], cluster=self.id, slot=context.slot,
                            pc=context.pc)
            return None
        if name == "empty":
            for dest in op.dests:
                if dest.is_remote:
                    raise SimulationError("empty cannot target a remote register")
                context.registers.set_empty(dest)
            return None
        if name == "halt":
            context.halt(cycle)
            self.node.trace(cycle, "halt", cluster=self.id, slot=context.slot)
            return context.pc
        if op.opcode.is_branch:
            return self._execute_branch(context, op, values)
        if op.opcode.is_send:
            self._execute_send(context, op, values, cycle)
            return None
        if op.opcode.is_memory:
            self._execute_memory(context, op, values, cycle)
            return None
        if op.opcode.name in _SYSTEM_EXECUTORS:
            _SYSTEM_EXECUTORS[op.opcode.name](self, context, op, values, cycle)
            return None

        # Plain value-producing operation on a function unit.
        value = evaluate_operation(op, values)
        self._schedule_result(context, op, value, cycle)
        return None

    # -- control -----------------------------------------------------------------

    def _execute_branch(self, context: HThreadContext, op: Operation, values: List[object]) -> Optional[int]:
        name = op.opcode.name
        if name == "jmp":
            target = values[0]
            if isinstance(target, LabelRef):
                return op.target
            return int(target)
        condition = values[0]
        if isinstance(condition, LabelRef):
            raise SimulationError(f"branch condition of {op} is a label")
        taken = bool(condition) if name == "br" else not bool(condition)
        if taken:
            if op.target is None:
                raise SimulationError(f"branch {op} has no resolved target")
            return op.target
        return None

    # -- memory ------------------------------------------------------------------

    def _execute_memory(self, context: HThreadContext, op: Operation, values: List[object], cycle: int) -> None:
        name = op.opcode.name
        physical = name in ("pld", "pst")
        is_store = op.opcode.is_store
        if is_store:
            store_value = values[0]
            address_operand = values[1]
            offset = values[2] if len(values) > 2 else 0
        else:
            store_value = None
            address_operand = values[0]
            offset = values[1] if len(values) > 1 else 0

        address = self._effective_address(context, address_operand, offset, is_store, physical)
        pre, post = SYNC_CONDITIONS.get(name, ("x", "x"))

        dest = op.dest if not is_store else None
        request = MemRequest(
            kind=MemOpKind.STORE if is_store else MemOpKind.LOAD,
            address=address,
            data=store_value,
            dest=dest.local() if dest is not None else None,
            vthread=context.slot,
            cluster=self.id,
            sync_pre=pre,
            sync_post=post,
            physical=physical,
            is_fp=dest.file is RegFile.FP if dest is not None else False,
            issue_cycle=cycle,
            req_id=self.node.request_ids(),
        )
        if dest is not None:
            if dest.is_remote:
                raise SimulationError("loads cannot target a remote register")
            context.registers.set_empty(dest)
            context.registers.mark_pending(dest)
        self.node.submit_memory_request(request, cycle)
        self.node.trace(cycle, "mem_issue", req=request.req_id, address=address,
                        store=is_store, cluster=self.id, slot=context.slot,
                        physical=physical)

    def _effective_address(
        self,
        context: HThreadContext,
        address_operand,
        offset,
        is_store: bool,
        physical: bool,
    ) -> int:
        offset = int(offset) if not isinstance(offset, LabelRef) else 0
        if isinstance(address_operand, GuardedPointer):
            target = address_operand.address + offset
            required = PointerPermission.WRITE if is_store else PointerPermission.READ
            address_operand.check(required, target)
            return target
        if (
            self.node.protection_enabled
            and not physical
            and context.slot not in (EVENT_SLOT, EXCEPTION_SLOT)
        ):
            raise ProtectionError(
                "memory access through a non-pointer address with protection enabled"
            )
        return int(address_operand) + offset

    # -- messages ----------------------------------------------------------------

    def _execute_send(self, context: HThreadContext, op: Operation, values: List[object], cycle: int) -> None:
        name = op.opcode.name
        length = self._send_length(op)
        priority = self._send_priority(op)
        body = [
            context.registers.read(RegisterRef(RegFile.MC, index)) for index in range(length)
        ]
        dip = values[1]
        if name == "sendp":
            self.node.send_message(
                cycle=cycle,
                cluster=self.id,
                vthread=context.slot,
                dest_address=None,
                dip=int(dip),
                body=body,
                priority=priority,
                physical_node=int(values[0]),
            )
        else:
            self.node.send_message(
                cycle=cycle,
                cluster=self.id,
                vthread=context.slot,
                dest_address=values[0],
                dip=int(dip),
                body=body,
                priority=priority,
                physical_node=None,
            )

    # -- results -----------------------------------------------------------------

    def _schedule_result(self, context: HThreadContext, op: Operation, value, cycle: int) -> None:
        latency = max(op.opcode.latency, 1)
        for dest in op.dests:
            if dest.file is RegFile.GCC:
                self._check_gcc_pair(dest)
                self.node.cswitch_broadcast(
                    RegWrite(vthread=context.slot, ref=dest.local(), value=value,
                             origin=f"gcc-broadcast c{self.id}"),
                    cycle + latency - 1,
                )
            elif dest.is_remote:
                self.node.cswitch_register_write(
                    dest.cluster,
                    RegWrite(vthread=context.slot, ref=dest.local(), value=value,
                             origin=f"c{self.id}->c{dest.cluster}"),
                    cycle + latency - 1,
                )
            else:
                context.registers.set_empty(dest)
                context.registers.mark_pending(dest)
                self._writebacks.append(
                    (cycle + latency, context.slot, dest, value, True)
                )

    def _check_gcc_pair(self, dest: RegisterRef) -> None:
        if not self.config.enforce_gcc_pairs:
            return
        allowed = (2 * self.id, 2 * self.id + 1)
        if dest.index not in allowed:
            raise ProtectionError(
                f"cluster {self.id} may only broadcast to gcc{allowed[0]}/gcc{allowed[1]}, "
                f"not gcc{dest.index}"
            )

    # -- exceptions ----------------------------------------------------------------

    def _raise_exception(self, context: HThreadContext, event_type: EventType, detail: str, cycle: int) -> None:
        self.exceptions_raised += 1
        context.fault()
        record = EventRecord(
            event_type=event_type,
            address=0,
            data=0,
            vthread=context.slot,
            cluster=self.id,
            cycle=cycle,
            extra={"detail": detail, "pc": context.pc},
        )
        self.node.post_exception(self.id, record, cycle)
        self.node.trace(cycle, "exception", type=event_type.name, cluster=self.id,
                        slot=context.slot, detail=detail)

    # -- statistics ----------------------------------------------------------------

    def stats(self) -> dict:
        self._settle_fast_stats()
        return {
            "instructions_issued": self.instructions_issued,
            "operations_issued": self.operations_issued,
            "operations_by_unit": dict(self._operations_by_unit),
            "idle_cycles": self.idle_cycles,
            "no_ready_cycles": self.no_ready_cycles,
            "issue_by_slot": dict(self._issue_by_slot),
            "exceptions": self.exceptions_raised,
            "icache_fetches": self.icache.fetches,
        }

    # -- snapshot (repro.snapshot state_dict contract) -----------------------------

    def state_dict(self) -> dict:
        self._settle_fast_stats()
        return {
            "contexts": [context.state_dict() for context in self.contexts],
            "icache": self.icache.state_dict(),
            "policy": self.policy.state_dict(),
            "writebacks": [
                {
                    "due_cycle": wb[0],
                    "slot": wb[1],
                    "ref": encode_value(wb[2]),
                    "value": encode_value(wb[3]),
                    "clear_pending": wb[4],
                }
                for wb in self._writebacks
            ],
            "instructions_issued": self.instructions_issued,
            "operations_issued": self.operations_issued,
            "operations_by_unit": encode_counter(self._operations_by_unit),
            "idle_cycles": self.idle_cycles,
            "no_ready_cycles": self.no_ready_cycles,
            "issue_by_slot": encode_counter(self._issue_by_slot),
            "exceptions_raised": self.exceptions_raised,
        }

    def load_state_dict(self, state: dict) -> None:
        for context, context_state in zip(self.contexts, state["contexts"]):
            context.load_state_dict(context_state)
        self.icache.load_state_dict(state["icache"])
        # The restore installed new Program objects: recompile on next issue.
        self._plan_cache = [None] * len(self._plan_cache)
        self._queue_cache = [dict() for _ in self._queue_cache]
        self.policy.load_state_dict(state["policy"])
        self._writebacks = [
            (
                wb["due_cycle"],
                wb["slot"],
                decode_value(wb["ref"]),
                decode_value(wb["value"]),
                wb["clear_pending"],
            )
            for wb in state["writebacks"]
        ]
        self.instructions_issued = state["instructions_issued"]
        self.operations_issued = state["operations_issued"]
        self.operations_by_unit = decode_counter(state["operations_by_unit"])
        self.idle_cycles = state["idle_cycles"]
        self.no_ready_cycles = state["no_ready_cycles"]
        self.issue_by_slot = decode_counter(state["issue_by_slot"])
        self.exceptions_raised = state["exceptions_raised"]


def _exec_xregwr(cluster: Cluster, context, op, values, cycle) -> None:
    spec, value = values[0], values[1]
    cluster.node.xregwr(int(spec), value, cycle)


def _exec_ltlbw(cluster: Cluster, context, op, values, cycle) -> None:
    va, frame, flags = (int(v) for v in values[:3])
    cluster.node.memory.install_translation(va, frame, flags)


def _exec_ltlbp(cluster: Cluster, context, op, values, cycle) -> None:
    frame = cluster.node.memory.probe_translation(int(values[0]))
    cluster._schedule_result(context, op, frame, cycle)


def _exec_gprobe(cluster: Cluster, context, op, values, cycle) -> None:
    node_id = cluster.node.gtlb_node_of(int(values[0]))
    cluster._schedule_result(context, op, node_id, cycle)


def _exec_bsset(cluster: Cluster, context, op, values, cycle) -> None:
    cluster.node.memory.set_block_status(int(values[0]), BlockStatus(int(values[1])))


def _exec_bsget(cluster: Cluster, context, op, values, cycle) -> None:
    status = cluster.node.memory.get_block_status(int(values[0]))
    cluster._schedule_result(context, op, status, cycle)


def _exec_syncset(cluster: Cluster, context, op, values, cycle) -> None:
    cluster.node.memory.set_sync_bit_virtual(int(values[0]), int(values[1]))


_SYSTEM_EXECUTORS = {
    "xregwr": _exec_xregwr,
    "ltlbw": _exec_ltlbw,
    "ltlbp": _exec_ltlbp,
    "gprobe": _exec_gprobe,
    "bsset": _exec_bsset,
    "bsget": _exec_bsget,
    "syncset": _exec_syncset,
}
