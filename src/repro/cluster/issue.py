"""Thread-selection policies of the synchronization stage.

"A synchronization pipeline stage holds the next instruction to be issued
from each of the six V-Threads until all of its operands are present and all
of the required resources are available.  At every cycle this stage decides
which instruction to issue from those which are ready to run." (Section 3.2.)

The paper does not fix the selection policy, so the simulator offers three:

``event-priority`` (default)
    The exception slot, then the event slot, then the user slots in
    round-robin order.  Giving the resident handler threads priority keeps
    event- and message-handling latency low and deterministic, which is what
    the fast-trap argument of Section 4.2 relies on.

``round-robin``
    Pure round-robin over all ready slots.

``hep``
    Barrel scheduling in the style of HEP/MASA (Section 3.4's comparison):
    slots take strict turns among *resident* threads, so with a single
    resident thread an instruction can issue at most every
    ``len(resident)``-th cycle only if it is that slot's turn -- used by the
    ablation that shows why zero-cost interleaving preserves single-thread
    performance while barrel scheduling does not.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.core.config import ClusterConfig, EVENT_SLOT, EXCEPTION_SLOT


class IssuePolicy:
    """Base class: decides the order in which ready slots are considered."""

    name = "base"

    def __init__(self, num_slots: int):
        self.num_slots = num_slots
        self._rr_pointer = 0
        self._order_cache = {}

    def candidate_order(self, cycle: int, resident_slots: Sequence[int]) -> List[int]:
        """Return slot indices in the order they should be offered the issue
        slot this cycle."""
        raise NotImplementedError

    def order_cached(self, cycle: int, resident_key: tuple) -> List[int]:
        """Memoised :meth:`candidate_order`.

        The order depends only on the round-robin pointer and the resident-slot
        set (plus the cycle residue for the HEP barrel, which overrides this),
        so the issue stage can reuse it instead of re-sorting every cycle.
        Callers must not mutate the returned list.
        """
        key = (self._rr_pointer, resident_key)
        order = self._order_cache.get(key)
        if order is None:
            if len(self._order_cache) > 1024:
                self._order_cache.clear()
            order = self.candidate_order(cycle, resident_key)
            self._order_cache[key] = order
        return order

    def issued(self, slot: int) -> None:
        """Feedback that *slot* issued this cycle (used to advance pointers)."""
        self._rr_pointer = (slot + 1) % self.num_slots

    # -- snapshot (repro.snapshot state_dict contract) ---------------------------

    def state_dict(self) -> dict:
        return {"rr_pointer": self._rr_pointer}

    def load_state_dict(self, state: dict) -> None:
        self._rr_pointer = state["rr_pointer"]


class EventPriorityPolicy(IssuePolicy):
    """Exception slot, then event slot, then user slots round-robin."""

    name = "event-priority"

    def candidate_order(self, cycle: int, resident_slots: Sequence[int]) -> List[int]:
        order = []
        if EXCEPTION_SLOT in resident_slots:
            order.append(EXCEPTION_SLOT)
        if EVENT_SLOT in resident_slots:
            order.append(EVENT_SLOT)
        user = [slot for slot in resident_slots if slot not in (EVENT_SLOT, EXCEPTION_SLOT)]
        if user:
            rotated = sorted(user, key=lambda slot: (slot - self._rr_pointer) % self.num_slots)
            order.extend(rotated)
        return order


class RoundRobinPolicy(IssuePolicy):
    """Pure round-robin over every resident slot."""

    name = "round-robin"

    def candidate_order(self, cycle: int, resident_slots: Sequence[int]) -> List[int]:
        return sorted(resident_slots, key=lambda slot: (slot - self._rr_pointer) % self.num_slots)


class HepBarrelPolicy(IssuePolicy):
    """Strict barrel scheduling: the issue slot rotates over *all* thread
    contexts every cycle regardless of readiness or residency, modelling
    HEP/MASA-style round-robin issue (Section 3.4).  A single resident thread
    therefore issues at most once every ``num_slots`` cycles, which is exactly
    the single-thread degradation the paper contrasts with the MAP's
    zero-cost interleaving."""

    name = "hep"

    def candidate_order(self, cycle: int, resident_slots: Sequence[int]) -> List[int]:
        turn = cycle % self.num_slots
        return [turn] if turn in resident_slots else []

    def order_cached(self, cycle: int, resident_key: tuple) -> List[int]:
        key = (cycle % self.num_slots, resident_key)
        order = self._order_cache.get(key)
        if order is None:
            if len(self._order_cache) > 1024:
                self._order_cache.clear()
            order = self.candidate_order(cycle, resident_key)
            self._order_cache[key] = order
        return order

    def issued(self, slot: int) -> None:  # the barrel rotates with the clock
        pass


def make_issue_policy(config: ClusterConfig, num_slots: int) -> IssuePolicy:
    policies = {
        "event-priority": EventPriorityPolicy,
        "round-robin": RoundRobinPolicy,
        "hep": HepBarrelPolicy,
    }
    try:
        policy_class = policies[config.issue_policy]
    except KeyError:
        raise ValueError(f"unknown issue policy {config.issue_policy!r}") from None
    return policy_class(num_slots)
