"""Precompiled instruction dispatch for the cluster issue stage.

The interpreted issue path (:meth:`repro.cluster.cluster.Cluster` with
``sim.compile_dispatch = False``) re-derives the same facts about an
instruction on every cycle it is considered: which registers its operands
name, whether each is a queue/identity/plain register, which executor its
opcode selects, what its stall reason strings are.  None of that depends on
machine state -- only on the instruction and the (cluster, slot) it is
resident in -- so this module resolves it once, when a program is first
issued from, into a :class:`CompiledInstruction` plan per program counter:

* ``steps`` -- the readiness checks of
  :meth:`~repro.cluster.cluster.Cluster._instruction_ready`, in the same
  order and with the stall-reason strings precomputed, as ``(kind, arg,
  reason)`` triples over flat register-file offsets
  (:meth:`~repro.cluster.regfile.RegisterSet.flat_offset`) and bound
  hardware-queue objects;
* per-operation ``readers`` -- constant/register-offset/queue operand
  sources, with identity registers (``nid``/``cid``/``vid``/``zero``)
  folded to constants;
* per-operation ``executor`` closures with the opcode dispatch, destination
  offsets, latencies and trace strings bound at compile time.

Plans are **derived state**: they are cached per (cluster, slot) keyed on
the :class:`~repro.isa.program.Program` object identity, never serialised
into snapshots, and rebuilt on first issue after a restore (a restore
installs freshly decoded ``Program`` objects, so the identity check misses).
Any instruction the compiler cannot prove it handles bit-exactly -- sends,
remote sources, out-of-range references, opcodes without value semantics --
gets a ``None`` plan and goes down the interpreted path, which also raises
the exact errors malformed programs are documented to raise.  The
differential gate is ``tests/integration/test_dispatch_equivalence.py``.
"""

from __future__ import annotations

import weakref
from typing import List, Optional, Tuple

from repro.cluster.functional_units import OperandError, value_evaluator
from repro.core.config import EVENT_SLOT, EXCEPTION_SLOT
from repro.isa.instruction import Instruction
from repro.isa.operations import LabelRef, Operation, SYNC_CONDITIONS, Unit
from repro.isa.program import Program
from repro.isa.registers import RegFile, RegisterRef
from repro.memory.guarded_pointer import ProtectionError
from repro.memory.requests import MemOpKind, MemRequest

# Reader modes: (mode, arg) per source operand.  Plans never bind
# cluster-specific objects or identities -- queues are resolved by name
# through the executing cluster's binding cache and nid/cid are read from
# the executing cluster at runtime -- so one compiled plan serves every
# cluster with the same register layout (see ``_SHARED_PLANS``).
READ_CONST = 0    # arg is the value (immediates, labels, folded vid/zero)
READ_REG = 1      # arg is a flat register-file offset
READ_QUEUE = 2    # arg is the queue name; pop one word (raises if unreadable)
READ_NID = 3      # executing node's id
READ_CID = 4      # executing cluster's id

# Readiness-step kinds: (kind, arg, reason) per check.
CHECK_FULL = 0     # arg is a flat offset; stall unless full
CHECK_PENDING = 1  # arg is a flat offset; stall while a write is in flight
CHECK_MEMPORT = 2  # arg unused; stall unless the memory port is free
CHECK_QUEUE = 3    # arg is (queue_name, needed_words); stall while underfull

_UNIT_INDEX = {Unit.IALU: 0, Unit.MEM: 1, Unit.FPU: 2}
#: Fold order of the per-unit fast counters (matches ``_UNIT_INDEX``).
UNIT_VALUES = (Unit.IALU.value, Unit.MEM.value, Unit.FPU.value)


class CompiledOp:
    """One operation of a compiled instruction."""

    __slots__ = ("readers", "privilege_msg", "executor")

    def __init__(self, readers, privilege_msg, executor):
        self.readers = readers
        self.privilege_msg = privilege_msg
        self.executor = executor


class CompiledInstruction:
    """One instruction resolved to readiness steps and bound executors."""

    __slots__ = ("steps", "ops", "num_ops", "unit_idx", "instruction")

    def __init__(self, steps, ops, unit_idx, instruction):
        self.steps = steps
        self.ops = ops
        self.num_ops = len(ops)
        self.unit_idx = unit_idx
        self.instruction = instruction


#: Shared plan lists, keyed by Program object (weakly) then by
#: ``(slot, regfile layout_key)``.  A program whose every instruction
#: compiles without binding cluster-specific state (hardware queues, folded
#: node/cluster identity constants, memory ports, inter-cluster writes)
#: Shared plan lists, keyed by Program object identity then by ``(slot,
#: regfile layout_key)``.  Compiled plans bind nothing cluster-specific --
#: queues are resolved by name at runtime and node/cluster identities are
#: read from the executing cluster -- so the same Program loaded into many
#: clusters (every SPMD workload, every runtime handler) compiles once and
#: is shared.  On an NxN mesh this collapses the plan footprint touched per
#: simulated cycle by ``4 x N x N``, which is what keeps the busy-heavy
#: per-node-tick throughput flat as the mesh grows (the host working set
#: would otherwise blow out the CPU cache).
#:
#: Keyed by ``id(program)`` (Program defines ``__eq__`` but not ``__hash__``)
#: with a weakref that both validates identity against id reuse and evicts
#: the entry when the program is collected.
_SHARED_PLANS: dict = {}


def compile_program(program: Optional[Program], cluster,
                    slot: int) -> List[Optional[CompiledInstruction]]:
    """Compile every instruction of *program* for one (cluster, slot).

    Returns one plan (or None = interpreted fallback) per program counter.
    """
    if program is None:
        return []
    share_key = (slot, cluster.contexts[slot].registers.layout_key)
    cache_key = id(program)
    entry = _SHARED_PLANS.get(cache_key)
    per_program = None
    if entry is not None and entry[0]() is program:
        per_program = entry[1]
        shared = per_program.get(share_key)
        if shared is not None:
            return shared
    plans: List[Optional[CompiledInstruction]] = []
    shareable = True
    for pc in range(len(program)):
        try:
            plan = _compile_instruction(program[pc], cluster, slot)
        except Exception:
            # Anything the compiler trips over runs interpreted instead; a
            # surprise is not provably cluster-independent, so don't share.
            plan, shareable = None, False
        plans.append(plan)
    if shareable:
        if per_program is None:
            try:
                ref = weakref.ref(
                    program, lambda _ref, _key=cache_key: _SHARED_PLANS.pop(_key, None)
                )
            except TypeError:
                return plans  # non-weakrefable program; just don't share
            per_program = {}
            _SHARED_PLANS[cache_key] = (ref, per_program)
        per_program[share_key] = plans
    return plans


def _compile_instruction(instruction: Instruction, cluster,
                         slot: int) -> Optional[CompiledInstruction]:
    operations = instruction.operations
    if not operations:
        return None
    layout = cluster.contexts[slot].registers

    steps: List[Tuple[int, object, str]] = []
    queue_needs = {}
    compiled_ops = []
    unit_idx = []

    for op in operations:
        # -- readiness (must mirror Cluster._instruction_ready exactly) -------
        for src in op.srcs:
            if not isinstance(src, RegisterRef):
                continue
            if src.is_queue:
                queue_needs[src.name] = queue_needs.get(src.name, 0) + 1
            elif src.is_identity:
                continue
            elif src.is_remote:
                return None  # the interpreted readiness check raises
            else:
                offset = layout.flat_offset(src)
                if offset is None:
                    return None
                steps.append((CHECK_FULL, offset, f"operand {src} empty"))
        for dest in op.dests:
            if dest.is_remote or dest.file is RegFile.GCC:
                continue
            offset = layout.flat_offset(dest)
            if offset is None:
                return None
            steps.append((CHECK_PENDING, offset,
                          f"destination {dest} has a write in flight"))
        if op.opcode.is_send:
            return None  # send readiness depends on immediates and credits
        if op.opcode.is_memory:
            steps.append((CHECK_MEMPORT, None, "memory port busy"))

        # -- operand readers ---------------------------------------------------
        readers = []
        for src in op.srcs:
            if isinstance(src, RegisterRef):
                if src.is_queue:
                    # Resolved by name through the executing cluster's queue
                    # binding cache; a missing queue raises at execution time
                    # exactly like the interpreted read.
                    readers.append((READ_QUEUE, src.name))
                elif src.is_identity:
                    if src.name == "nid":
                        readers.append((READ_NID, None))
                    elif src.name == "cid":
                        readers.append((READ_CID, None))
                    else:  # vid / zero fold to plan-wide constants
                        readers.append((READ_CONST, slot if src.name == "vid" else 0))
                elif src.is_remote:
                    return None
                else:
                    offset = layout.flat_offset(src)
                    if offset is None:
                        return None
                    readers.append((READ_REG, offset))
            else:
                # Immediates and LabelRefs pass through unchanged.
                readers.append((READ_CONST, src))

        privilege_msg = None
        if op.opcode.privileged and slot not in (EVENT_SLOT, EXCEPTION_SLOT):
            privilege_msg = (
                f"privileged operation {op.opcode.name!r} issued from user slot {slot}"
            )

        executor = _compile_executor(op, cluster, slot, layout)
        if executor is None:
            return None

        compiled_ops.append(CompiledOp(tuple(readers), privilege_msg, executor))
        unit_idx.append(_UNIT_INDEX[op.unit])

    for name, count in queue_needs.items():
        # The executing cluster resolves the name each check; a cluster
        # without the queue skips the check (execution raises instead),
        # matching the interpreted readiness scan.
        steps.append((CHECK_QUEUE, (name, count), f"{name} queue empty"))

    return CompiledInstruction(tuple(steps), tuple(compiled_ops),
                               tuple(unit_idx), instruction)


# ---------------------------------------------------------------------------
# Executors.  Each is a closure ``run(cluster, context, values, cycle)``
# returning the next PC for taken control transfers and None otherwise,
# mirroring Cluster._execute_operation case by case.
# ---------------------------------------------------------------------------

def _compile_executor(op: Operation, cluster, slot: int, layout):
    # Deferred: repro.cluster.cluster imports this module at its top level.
    from repro.cluster.cluster import _SYSTEM_EXECUTORS, SimulationError  # noqa: PLC0415

    name = op.opcode.name
    if name == "nop":
        return _exec_nop
    if name == "mark":
        return _exec_mark
    if name == "empty":
        return _make_empty(op, layout)
    if name == "halt":
        return _exec_halt
    if op.opcode.is_branch:
        return _make_branch(op, SimulationError)
    if op.opcode.is_send:
        return None
    if op.opcode.is_memory:
        return _make_memory(op, layout)
    system_fn = _SYSTEM_EXECUTORS.get(name)
    if system_fn is not None:
        return _make_system(system_fn, op)
    evaluator = value_evaluator(name)
    if evaluator is None:
        return None  # interpreted path raises "no value semantics"
    return _make_value(op, evaluator, layout)


def _exec_nop(cluster, context, values, cycle):
    return None


def _exec_mark(cluster, context, values, cycle):
    cluster.node.trace(cycle, "mark", marker=values[0], cluster=cluster.id,
                       slot=context.slot, pc=context.pc)
    return None


def _make_empty(op: Operation, layout):
    offsets = []
    for dest in op.dests:
        if dest.is_remote:
            return None  # interpreted path raises SimulationError
        offset = layout.flat_offset(dest)
        if offset is None:
            return None
        offsets.append(offset)
    offsets = tuple(offsets)

    def run(cluster, context, values, cycle):
        full = context.registers._full
        for offset in offsets:
            full[offset] = False
        return None
    return run


def _exec_halt(cluster, context, values, cycle):
    context.halt(cycle)
    cluster.node.trace(cycle, "halt", cluster=cluster.id, slot=context.slot)
    return context.pc


def _make_branch(op: Operation, simulation_error):
    name = op.opcode.name
    target = op.target
    if name == "jmp":
        def run(cluster, context, values, cycle):
            value = values[0]
            if isinstance(value, LabelRef):
                return target
            return int(value)
        return run

    invert = name != "br"
    label_msg = f"branch condition of {op} is a label"
    untargeted_msg = f"branch {op} has no resolved target"

    def run(cluster, context, values, cycle):
        condition = values[0]
        if isinstance(condition, LabelRef):
            raise simulation_error(label_msg)
        taken = (not condition) if invert else bool(condition)
        if taken:
            if target is None:
                raise simulation_error(untargeted_msg)
            return target
        return None
    return run


def _make_memory(op: Operation, layout):
    name = op.opcode.name
    physical = name in ("pld", "pst")
    is_store = op.opcode.is_store
    kind = MemOpKind.STORE if is_store else MemOpKind.LOAD
    pre, post = SYNC_CONDITIONS.get(name, ("x", "x"))

    dest = op.dest if not is_store else None
    dest_offset = None
    is_fp = False
    request_dest = None
    if dest is not None:
        if dest.is_remote:
            return None  # interpreted path raises SimulationError
        dest_offset = layout.flat_offset(dest)
        if dest_offset is None:
            return None
        is_fp = dest.file is RegFile.FP
        request_dest = dest.local()
    has_offset_operand = len(op.srcs) > (2 if is_store else 1)

    def run(cluster, context, values, cycle):
        if is_store:
            store_value = values[0]
            address_operand = values[1]
            offset = values[2] if has_offset_operand else 0
        else:
            store_value = None
            address_operand = values[0]
            offset = values[1] if has_offset_operand else 0
        address = cluster._effective_address(context, address_operand, offset,
                                             is_store, physical)
        request = MemRequest(
            kind=kind,
            address=address,
            data=store_value,
            dest=request_dest,
            vthread=context.slot,
            cluster=cluster.id,
            sync_pre=pre,
            sync_post=post,
            physical=physical,
            is_fp=is_fp,
            issue_cycle=cycle,
            req_id=cluster.node.request_ids(),
        )
        if dest is not None:
            registers = context.registers
            registers._full[dest_offset] = False
            registers._pending[dest_offset] += 1
        cluster.node.submit_memory_request(request, cycle)
        cluster.node.trace(cycle, "mem_issue", req=request.req_id, address=address,
                           store=is_store, cluster=cluster.id, slot=context.slot,
                           physical=physical)
        return None
    return run


def _make_system(system_fn, op: Operation):
    def run(cluster, context, values, cycle):
        system_fn(cluster, context, op, values, cycle)
        return None
    return run


def _make_value(op: Operation, evaluator, layout):
    name = op.opcode.name
    latency = max(op.opcode.latency, 1)

    # The overwhelmingly common case: exactly one local, non-GCC destination.
    if (len(op.dests) == 1 and not op.dests[0].is_remote
            and op.dests[0].file is not RegFile.GCC):
        dest = op.dests[0]
        dest_offset = layout.flat_offset(dest)
        if dest_offset is None:
            return None

        def run(cluster, context, values, cycle):
            try:
                value = evaluator(values)
            except (TypeError, IndexError) as exc:
                raise OperandError(f"bad operands for {name}: {values!r}") from exc
            registers = context.registers
            registers._full[dest_offset] = False
            registers._pending[dest_offset] += 1
            cluster._writebacks.append(
                (cycle + latency, context.slot, dest, value, True, dest_offset))
            return None
        return run

    actions = []
    for dest in op.dests:
        action = _make_dest_action(dest, latency, layout)
        if action is None:
            return None
        actions.append(action)
    actions = tuple(actions)

    def run(cluster, context, values, cycle):
        try:
            value = evaluator(values)
        except (TypeError, IndexError) as exc:
            raise OperandError(f"bad operands for {name}: {values!r}") from exc
        for action in actions:
            action(cluster, context, value, cycle)
        return None
    return run


def _make_dest_action(dest: RegisterRef, latency: int, layout):
    # Deferred: repro.cluster.cluster imports this module at its top level.
    from repro.cluster.cluster import RegWrite  # noqa: PLC0415

    if dest.file is RegFile.GCC and not dest.is_remote:
        dest_local = dest.local()
        dest_index = dest.index

        def act(cluster, context, value, cycle):
            cluster_id = cluster.id
            if cluster.config.enforce_gcc_pairs:
                allowed = (2 * cluster_id, 2 * cluster_id + 1)
                if dest_index not in allowed:
                    raise ProtectionError(
                        f"cluster {cluster_id} may only broadcast to "
                        f"gcc{allowed[0]}/gcc{allowed[1]}, not gcc{dest_index}"
                    )
            cluster.node.cswitch_broadcast(
                RegWrite(vthread=context.slot, ref=dest_local, value=value,
                         origin=f"gcc-broadcast c{cluster_id}"),
                cycle + latency - 1,
            )
        return act

    if dest.is_remote:
        dest_local = dest.local()
        dest_cluster = dest.cluster

        def act(cluster, context, value, cycle):
            cluster.node.cswitch_register_write(
                dest_cluster,
                RegWrite(vthread=context.slot, ref=dest_local, value=value,
                         origin=f"c{cluster.id}->c{dest_cluster}"),
                cycle + latency - 1,
            )
        return act

    dest_offset = layout.flat_offset(dest)
    if dest_offset is None:
        return None

    def act(cluster, context, value, cycle):
        registers = context.registers
        registers._full[dest_offset] = False
        registers._pending[dest_offset] += 1
        cluster._writebacks.append(
            (cycle + latency, context.slot, dest, value, True, dest_offset))
    return act
