"""Register files with scoreboard bits.

Each H-Thread context holds its own integer, floating-point, local
condition-code, message-composition and (per-cluster copy of the) global
condition-code registers.  Every register carries a *scoreboard* bit:

"A scoreboard bit associated with the destination register is cleared
(empty) when a multicycle operation, such as a load, issues and set (full)
when the result is available.  An operation that uses the result will not be
selected for issue until the corresponding scoreboard bit is set."
(Section 3.1.)

Inter-cluster transfers additionally use the explicit ``empty`` operation to
clear destination registers before the producing H-Thread writes them over
the C-Switch.

Besides the full/empty scoreboard, the model tracks a *pending-write* count
per register: the number of in-flight operations of the owning H-Thread that
will write the register.  The issue stage uses it to preserve
write-after-write ordering for a thread's own out-of-order completions; it is
not visible to software.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.config import ClusterConfig
from repro.isa.registers import RegFile, RegisterRef


class RegisterSet:
    """The registers of one H-Thread context (one V-Thread slot on one cluster)."""

    def __init__(self, config: ClusterConfig = None):
        config = config or ClusterConfig()
        self._sizes = {
            RegFile.INT: config.num_int_regs,
            RegFile.FP: config.num_fp_regs,
            RegFile.CC: config.num_cc_regs,
            RegFile.GCC: config.num_gcc_regs,
            RegFile.MC: config.num_mc_regs,
        }
        self._values: Dict[RegFile, List[object]] = {
            file: [0] * size for file, size in self._sizes.items()
        }
        for index in range(self._sizes[RegFile.FP]):
            self._values[RegFile.FP][index] = 0.0
        self._full: Dict[RegFile, List[bool]] = {
            file: [True] * size for file, size in self._sizes.items()
        }
        self._pending: Dict[RegFile, List[int]] = {
            file: [0] * size for file, size in self._sizes.items()
        }
        # Statistics
        self.reads = 0
        self.writes = 0

    # -- checks ------------------------------------------------------------------

    def _check(self, ref: RegisterRef) -> Tuple[RegFile, int]:
        if ref.is_special:
            raise ValueError(f"special register {ref} is not stored in the register file")
        if ref.index >= self._sizes[ref.file]:
            raise IndexError(f"register {ref} out of range")
        return ref.file, ref.index

    # -- values ------------------------------------------------------------------

    def read(self, ref: RegisterRef):
        file, index = self._check(ref)
        self.reads += 1
        return self._values[file][index]

    def write(self, ref: RegisterRef, value, *, set_full: bool = True) -> None:
        file, index = self._check(ref)
        self.writes += 1
        self._values[file][index] = value
        if set_full:
            self._full[file][index] = True

    def peek(self, ref: RegisterRef):
        """Read without statistics (debug/test helper)."""
        file, index = self._check(ref)
        return self._values[file][index]

    # -- scoreboard --------------------------------------------------------------

    def is_full(self, ref: RegisterRef) -> bool:
        file, index = self._check(ref)
        return self._full[file][index]

    def set_full(self, ref: RegisterRef) -> None:
        file, index = self._check(ref)
        self._full[file][index] = True

    def set_empty(self, ref: RegisterRef) -> None:
        file, index = self._check(ref)
        self._full[file][index] = False

    # -- pending writes ----------------------------------------------------------

    def mark_pending(self, ref: RegisterRef) -> None:
        file, index = self._check(ref)
        self._pending[file][index] += 1

    def clear_pending(self, ref: RegisterRef) -> None:
        file, index = self._check(ref)
        if self._pending[file][index] > 0:
            self._pending[file][index] -= 1

    def is_pending(self, ref: RegisterRef) -> bool:
        file, index = self._check(ref)
        return self._pending[file][index] > 0

    # -- bulk helpers ------------------------------------------------------------

    def set_initial(self, assignments: Dict[str, object]) -> None:
        """Initialise registers from a ``{"i0": 5, "f1": 2.5}`` mapping
        (loader/test helper); marks them full."""
        from repro.isa.registers import parse_register

        for name, value in assignments.items():
            ref = parse_register(name)
            self.write(ref, value)
            self.set_full(ref)

    def snapshot(self) -> Dict[str, object]:
        """Dump all register values (debug helper)."""
        result = {}
        for file, values in self._values.items():
            for index, value in enumerate(values):
                result[f"{file.value}{index}"] = value
        return result

    # -- snapshot (repro.snapshot state_dict contract) ----------------------------

    def state_dict(self) -> Dict[str, object]:
        from repro.snapshot.values import encode_value

        return {
            "values": {file.name: [encode_value(v) for v in values]
                       for file, values in self._values.items()},
            "full": {file.name: list(bits) for file, bits in self._full.items()},
            "pending": {file.name: list(counts) for file, counts in self._pending.items()},
            "reads": self.reads,
            "writes": self.writes,
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        from repro.snapshot.values import decode_value

        for file_name, values in state["values"].items():
            self._values[RegFile[file_name]] = [decode_value(v) for v in values]
        for file_name, bits in state["full"].items():
            self._full[RegFile[file_name]] = [bool(b) for b in bits]
        for file_name, counts in state["pending"].items():
            self._pending[RegFile[file_name]] = [int(c) for c in counts]
        self.reads = state["reads"]
        self.writes = state["writes"]
