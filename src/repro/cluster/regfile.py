"""Register files with scoreboard bits.

Each H-Thread context holds its own integer, floating-point, local
condition-code, message-composition and (per-cluster copy of the) global
condition-code registers.  Every register carries a *scoreboard* bit:

"A scoreboard bit associated with the destination register is cleared
(empty) when a multicycle operation, such as a load, issues and set (full)
when the result is available.  An operation that uses the result will not be
selected for issue until the corresponding scoreboard bit is set."
(Section 3.1.)

Inter-cluster transfers additionally use the explicit ``empty`` operation to
clear destination registers before the producing H-Thread writes them over
the C-Switch.

Besides the full/empty scoreboard, the model tracks a *pending-write* count
per register: the number of in-flight operations of the owning H-Thread that
will write the register.  The issue stage uses it to preserve
write-after-write ordering for a thread's own out-of-order completions; it is
not visible to software.

Storage is struct-of-arrays: all five register files live in single flat
``values``/``full``/``pending`` lists with per-file base offsets.  The issue
stage's compiled dispatch plans (:mod:`repro.cluster.dispatch`) resolve a
:class:`~repro.isa.registers.RegisterRef` to its flat offset once at
compile time and then index the flat lists directly on every cycle; the
reference-taking methods below remain the API for everything off the hot
path.  The snapshot ``state_dict`` keeps the original nested-by-file
serialisation, so snapshots are unchanged by the flat layout.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.config import ClusterConfig
from repro.isa.registers import RegFile, RegisterRef, parse_register
from repro.snapshot.values import decode_value, encode_value

#: Fixed file layout order of the flat arrays (also the serialisation order).
FILE_ORDER = (RegFile.INT, RegFile.FP, RegFile.CC, RegFile.GCC, RegFile.MC)


class RegisterSet:
    """The registers of one H-Thread context (one V-Thread slot on one cluster)."""

    def __init__(self, config: ClusterConfig = None):
        config = config or ClusterConfig()
        self._sizes = {
            RegFile.INT: config.num_int_regs,
            RegFile.FP: config.num_fp_regs,
            RegFile.CC: config.num_cc_regs,
            RegFile.GCC: config.num_gcc_regs,
            RegFile.MC: config.num_mc_regs,
        }
        self._base: Dict[RegFile, int] = {}
        total = 0
        for file in FILE_ORDER:
            self._base[file] = total
            total += self._sizes[file]
        self._total = total
        #: Layout fingerprint: register sets with equal keys resolve every
        #: RegisterRef to the same flat offset (dispatch plan-sharing key).
        self.layout_key = tuple(self._sizes[file] for file in FILE_ORDER)
        self._values = [0] * total
        fp_base = self._base[RegFile.FP]
        for index in range(self._sizes[RegFile.FP]):
            self._values[fp_base + index] = 0.0
        self._full = [True] * total
        self._pending = [0] * total
        # Statistics
        self.reads = 0
        self.writes = 0

    # -- checks ------------------------------------------------------------------

    def _check(self, ref: RegisterRef) -> int:
        """Resolve *ref* to its flat offset, validating it as the original
        nested lookup did."""
        if ref.is_special:
            raise ValueError(f"special register {ref} is not stored in the register file")
        if ref.index >= self._sizes[ref.file]:
            raise IndexError(f"register {ref} out of range")
        return self._base[ref.file] + ref.index

    def flat_offset(self, ref: RegisterRef) -> Optional[int]:
        """Flat offset of *ref*, or None when the reference cannot be resolved
        statically (special/remote/out of range) -- dispatch-compiler helper;
        a None sends the instruction down the interpreted path, which raises
        the same error the nested lookup would have."""
        if ref.file is RegFile.SPECIAL or ref.cluster is not None:
            return None
        if ref.index >= self._sizes[ref.file]:
            return None
        return self._base[ref.file] + ref.index

    # -- values ------------------------------------------------------------------

    def read(self, ref: RegisterRef):
        offset = self._check(ref)
        self.reads += 1
        return self._values[offset]

    def write(self, ref: RegisterRef, value, *, set_full: bool = True) -> None:
        offset = self._check(ref)
        self.writes += 1
        self._values[offset] = value
        if set_full:
            self._full[offset] = True

    def peek(self, ref: RegisterRef):
        """Read without statistics (debug/test helper)."""
        return self._values[self._check(ref)]

    # -- scoreboard --------------------------------------------------------------

    def is_full(self, ref: RegisterRef) -> bool:
        return self._full[self._check(ref)]

    def set_full(self, ref: RegisterRef) -> None:
        self._full[self._check(ref)] = True

    def set_empty(self, ref: RegisterRef) -> None:
        self._full[self._check(ref)] = False

    # -- pending writes ----------------------------------------------------------

    def mark_pending(self, ref: RegisterRef) -> None:
        self._pending[self._check(ref)] += 1

    def clear_pending(self, ref: RegisterRef) -> None:
        offset = self._check(ref)
        if self._pending[offset] > 0:
            self._pending[offset] -= 1

    def is_pending(self, ref: RegisterRef) -> bool:
        return self._pending[self._check(ref)] > 0

    # -- bulk helpers ------------------------------------------------------------

    def set_initial(self, assignments: Dict[str, object]) -> None:
        """Initialise registers from a ``{"i0": 5, "f1": 2.5}`` mapping
        (loader/test helper); marks them full."""
        for name, value in assignments.items():
            ref = parse_register(name)
            self.write(ref, value)
            self.set_full(ref)

    def snapshot(self) -> Dict[str, object]:
        """Dump all register values (debug helper)."""
        result = {}
        for file in FILE_ORDER:
            base = self._base[file]
            for index in range(self._sizes[file]):
                result[f"{file.value}{index}"] = self._values[base + index]
        return result

    # -- snapshot (repro.snapshot state_dict contract) ----------------------------

    def _file_slice(self, flat, file: RegFile):
        base = self._base[file]
        return flat[base:base + self._sizes[file]]

    def state_dict(self) -> Dict[str, object]:
        return {
            "values": {file.name: [encode_value(v)
                                   for v in self._file_slice(self._values, file)]
                       for file in FILE_ORDER},
            "full": {file.name: self._file_slice(self._full, file)
                     for file in FILE_ORDER},
            "pending": {file.name: self._file_slice(self._pending, file)
                        for file in FILE_ORDER},
            "reads": self.reads,
            "writes": self.writes,
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        def load_file(flat, file_name, items, convert):
            file = RegFile[file_name]
            base = self._base[file]
            size = self._sizes[file]
            if len(items) != size:
                raise ValueError(
                    f"snapshot has {len(items)} {file.name} registers, "
                    f"register file holds {size}"
                )
            flat[base:base + size] = [convert(item) for item in items]

        for file_name, values in state["values"].items():
            load_file(self._values, file_name, values, decode_value)
        for file_name, bits in state["full"].items():
            load_file(self._full, file_name, bits, bool)
        for file_name, counts in state["pending"].items():
            load_file(self._pending, file_name, counts, int)
        self.reads = state["reads"]
        self.writes = state["writes"]
