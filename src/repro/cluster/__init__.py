"""The MAP execution cluster.

"Each of the four map clusters is a 64-bit, three-issue, pipelined processor
consisting of two integer ALUs, a floating-point ALU, associated register
files, and a 1KW (8KB) instruction cache ...  One of the integer ALUs in each
cluster, termed the memory unit, serves as interface to the memory system."
(Section 2, Figure 3.)

Concurrency is managed by the *synchronization stage* (Section 3.2): the next
instruction of each of the six resident H-Threads is held until all of its
operands are present and all required resources are available; each cycle one
ready instruction is selected and issued, so V-Threads interleave with zero
switching cost while a single runnable thread can issue every cycle.
"""

from repro.cluster.regfile import RegisterSet
from repro.cluster.icache import InstructionCache
from repro.cluster.hthread import HThreadContext, ThreadState
from repro.cluster.functional_units import evaluate_operation, OperandError
from repro.cluster.issue import IssuePolicy, make_issue_policy
from repro.cluster.cluster import Cluster, RegWrite

__all__ = [
    "RegisterSet",
    "InstructionCache",
    "HThreadContext",
    "ThreadState",
    "evaluate_operation",
    "OperandError",
    "IssuePolicy",
    "make_issue_policy",
    "Cluster",
    "RegWrite",
]
