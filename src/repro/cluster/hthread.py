"""H-Thread contexts.

An H-Thread is the instruction stream of one V-Thread slot on one cluster.
Its architectural state (program counter, register file with scoreboard) is
resident in the cluster; a stalled H-Thread "consumes no resources other
than the thread slot that holds its state" (Section 3.2).
"""

from __future__ import annotations

import enum
from collections import Counter
from dataclasses import dataclass, field
from typing import Optional

from repro.cluster.regfile import RegisterSet
from repro.core.config import ClusterConfig
from repro.isa.program import Program
from repro.snapshot.values import (
    decode_counter,
    decode_value,
    encode_counter,
    encode_value,
)


class ThreadState(enum.Enum):
    #: No program loaded in this slot.
    IDLE = "idle"
    #: Loaded and eligible for issue.
    RUNNABLE = "runnable"
    #: Executed ``halt`` or ran off the end of its program.
    HALTED = "halted"
    #: Took a synchronous exception and is stopped pending handler action.
    FAULTED = "faulted"


@dataclass
class HThreadContext:
    """State of one H-Thread (one V-Thread slot on one cluster)."""

    slot: int
    cluster_id: int
    config: ClusterConfig = field(default_factory=ClusterConfig)
    registers: RegisterSet = None
    program: Optional[Program] = None
    pc: int = 0
    state: ThreadState = ThreadState.IDLE
    # Statistics
    instructions_issued: int = 0
    operations_issued: int = 0
    stall_cycles: int = 0
    stall_reasons: Counter = field(default_factory=Counter)
    issue_cycles: int = 0
    start_cycle: Optional[int] = None
    halt_cycle: Optional[int] = None

    def __post_init__(self) -> None:
        if self.registers is None:
            self.registers = RegisterSet(self.config)

    # -- lifecycle ---------------------------------------------------------------

    def load(self, program: Program, initial_registers: Optional[dict] = None,
             entry: Optional[str] = None) -> None:
        self.program = program
        self.pc = program.label_address(entry) if entry else 0
        self.state = ThreadState.RUNNABLE
        self.instructions_issued = 0
        self.operations_issued = 0
        self.stall_cycles = 0
        self.stall_reasons.clear()
        self.start_cycle = None
        self.halt_cycle = None
        if initial_registers:
            self.registers.set_initial(initial_registers)

    def halt(self, cycle: Optional[int] = None) -> None:
        self.state = ThreadState.HALTED
        self.halt_cycle = cycle

    def fault(self) -> None:
        self.state = ThreadState.FAULTED

    def resume(self) -> None:
        """Used by an exception handler to restart a faulted thread."""
        if self.state is ThreadState.FAULTED:
            self.state = ThreadState.RUNNABLE

    # -- queries -----------------------------------------------------------------

    @property
    def is_runnable(self) -> bool:
        return self.state is ThreadState.RUNNABLE

    @property
    def is_resident(self) -> bool:
        return self.state is not ThreadState.IDLE

    @property
    def finished(self) -> bool:
        return self.state in (ThreadState.HALTED, ThreadState.IDLE)

    def record_stall(self, reason: str) -> None:
        self.stall_cycles += 1
        self.stall_reasons[reason] += 1

    # -- snapshot (repro.snapshot state_dict contract) ---------------------------

    def state_dict(self) -> dict:
        return {
            "program": encode_value(self.program),
            "pc": self.pc,
            "state": self.state.value,
            "registers": self.registers.state_dict(),
            "instructions_issued": self.instructions_issued,
            "operations_issued": self.operations_issued,
            "stall_cycles": self.stall_cycles,
            "stall_reasons": encode_counter(self.stall_reasons),
            "issue_cycles": self.issue_cycles,
            "start_cycle": self.start_cycle,
            "halt_cycle": self.halt_cycle,
        }

    def load_state_dict(self, state: dict) -> None:
        self.program = decode_value(state["program"])
        self.pc = state["pc"]
        self.state = ThreadState(state["state"])
        self.registers.load_state_dict(state["registers"])
        self.instructions_issued = state["instructions_issued"]
        self.operations_issued = state["operations_issued"]
        self.stall_cycles = state["stall_cycles"]
        self.stall_reasons = decode_counter(state["stall_reasons"])
        self.issue_cycles = state["issue_cycles"]
        self.start_cycle = state["start_cycle"]
        self.halt_cycle = state["halt_cycle"]

    def __str__(self) -> str:
        return (
            f"HThread(slot={self.slot}, cluster={self.cluster_id}, state={self.state.value}, "
            f"pc={self.pc}, issued={self.instructions_issued})"
        )
