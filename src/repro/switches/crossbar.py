"""A cycle-level crossbar switch model.

The model captures the two properties of the MAP switches that matter for
performance: a fixed traversal latency and a bounded number of transfers per
cycle (four for both the M-Switch and C-Switch), with at most one delivery
per destination port per cycle.  Arbitration is FIFO per destination with a
round-robin scan across destinations so no port can starve another.

A transfer destined to :data:`BROADCAST` is delivered to *every* output port
in the same cycle while consuming a single transfer slot; this models the
replicated global condition-code registers, which a single C-Switch transfer
updates on all four clusters (Section 3.1).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from repro.snapshot.values import decode_value, encode_value

#: Destination value meaning "all output ports".
BROADCAST = -1


@dataclass
class Transfer:
    """One payload moving through the switch."""

    dest: int
    payload: object
    #: First cycle at which the transfer is eligible for delivery.
    ready_cycle: int


class Crossbar:
    """A latency/bandwidth-limited crossbar."""

    def __init__(
        self,
        num_outputs: int,
        latency: int = 1,
        max_transfers_per_cycle: int = 4,
        name: str = "crossbar",
    ):
        if num_outputs <= 0:
            raise ValueError("crossbar needs at least one output port")
        if latency < 0:
            raise ValueError("latency cannot be negative")
        self.num_outputs = num_outputs
        self.latency = latency
        self.max_transfers_per_cycle = max_transfers_per_cycle
        self.name = name
        self._queues: Dict[int, Deque[Transfer]] = {
            dest: deque() for dest in range(num_outputs)
        }
        self._broadcast_queue: Deque[Transfer] = deque()
        self._rr_pointer = 0
        #: Queued-transfer count, maintained incrementally so the per-cycle
        #: empty-switch check and the quiescence detector are O(1).
        self._num_pending = 0
        # Statistics
        self.transfers_submitted = 0
        self.transfers_delivered = 0
        self.contention_stalls = 0
        self.busiest_cycle_transfers = 0

    # -- submission --------------------------------------------------------------

    def submit(self, dest: int, payload: object, cycle: int) -> None:
        """Submit a transfer at *cycle*; it becomes deliverable after the
        switch latency."""
        if dest != BROADCAST and not 0 <= dest < self.num_outputs:
            raise ValueError(f"{self.name}: destination port {dest} out of range")
        transfer = Transfer(dest=dest, payload=payload, ready_cycle=cycle + self.latency)
        if dest == BROADCAST:
            self._broadcast_queue.append(transfer)
        else:
            self._queues[dest].append(transfer)
        self.transfers_submitted += 1
        self._num_pending += 1

    # -- delivery ----------------------------------------------------------------

    def deliver(self, cycle: int) -> List[Tuple[int, object]]:
        """Deliver up to the per-cycle budget of transfers that are ready.

        Returns a list of ``(output_port, payload)`` pairs; a broadcast
        payload appears once per output port.
        """
        if not self._num_pending:
            # Empty switch: only the arbitration pointer moves.  This is the
            # overwhelmingly common case on compute-bound cycles.
            self._rr_pointer = (self._rr_pointer + 1) % self.num_outputs
            return []

        delivered: List[Tuple[int, object]] = []
        budget = self.max_transfers_per_cycle
        ports_used = set()

        # Broadcasts first: they occupy every output port.
        while budget > 0 and self._broadcast_queue and not ports_used:
            head = self._broadcast_queue[0]
            if head.ready_cycle > cycle:
                break
            self._broadcast_queue.popleft()
            self._num_pending -= 1
            for port in range(self.num_outputs):
                delivered.append((port, head.payload))
                ports_used.add(port)
            budget -= 1
            self.transfers_delivered += 1

        # Unicast transfers, scanning destinations round-robin.
        for scan in range(self.num_outputs):
            if budget <= 0:
                break
            port = (self._rr_pointer + scan) % self.num_outputs
            if port in ports_used:
                continue
            queue = self._queues[port]
            if not queue:
                continue
            head = queue[0]
            if head.ready_cycle > cycle:
                continue
            queue.popleft()
            self._num_pending -= 1
            delivered.append((port, head.payload))
            ports_used.add(port)
            budget -= 1
            self.transfers_delivered += 1

        self._rr_pointer = (self._rr_pointer + 1) % self.num_outputs
        waiting = 0
        for queue in self._queues.values():
            for transfer in queue:
                if transfer.ready_cycle <= cycle:
                    waiting += 1
        for transfer in self._broadcast_queue:
            if transfer.ready_cycle <= cycle:
                waiting += 1
        if waiting:
            self.contention_stalls += waiting
        self.busiest_cycle_transfers = max(self.busiest_cycle_transfers, len(delivered))
        return delivered

    # -- kernel scheduling ---------------------------------------------------------

    def next_ready_cycle(self) -> Optional[int]:
        """Earliest ``ready_cycle`` of any queued transfer, or None when the
        switch is empty (SimComponent contract; the caller clamps transfers
        already ready but stalled by the per-cycle budget to the next cycle)."""
        ready = None
        for queue in self._queues.values():
            for transfer in queue:
                if ready is None or transfer.ready_cycle < ready:
                    ready = transfer.ready_cycle
        for transfer in self._broadcast_queue:
            if ready is None or transfer.ready_cycle < ready:
                ready = transfer.ready_cycle
        return ready

    def advance_idle(self, cycles: int) -> None:
        """Replay the pointer rotation of *cycles* empty :meth:`deliver`
        calls at once (the event kernel skips those calls wholesale; the
        round-robin pointer advances every cycle regardless of traffic, so
        arbitration after a sleep must match the naive loop exactly)."""
        self._rr_pointer = (self._rr_pointer + cycles) % self.num_outputs

    # -- snapshot (repro.snapshot state_dict contract) -----------------------------

    def state_dict(self) -> dict:
        def encode_queue(queue):
            return [
                {"dest": t.dest, "payload": encode_value(t.payload),
                 "ready_cycle": t.ready_cycle}
                for t in queue
            ]

        return {
            "queues": [[dest, encode_queue(queue)]
                       for dest, queue in self._queues.items()],
            "broadcast": encode_queue(self._broadcast_queue),
            "rr_pointer": self._rr_pointer,
            "transfers_submitted": self.transfers_submitted,
            "transfers_delivered": self.transfers_delivered,
            "contention_stalls": self.contention_stalls,
            "busiest_cycle_transfers": self.busiest_cycle_transfers,
        }

    def load_state_dict(self, state: dict) -> None:
        def decode_queue(encoded):
            return deque(
                Transfer(dest=t["dest"], payload=decode_value(t["payload"]),
                         ready_cycle=t["ready_cycle"])
                for t in encoded
            )

        for dest, queue in state["queues"]:
            self._queues[dest] = decode_queue(queue)
        self._broadcast_queue = decode_queue(state["broadcast"])
        self._num_pending = (
            sum(len(q) for q in self._queues.values()) + len(self._broadcast_queue)
        )
        self._rr_pointer = state["rr_pointer"]
        self.transfers_submitted = state["transfers_submitted"]
        self.transfers_delivered = state["transfers_delivered"]
        self.contention_stalls = state["contention_stalls"]
        self.busiest_cycle_transfers = state["busiest_cycle_transfers"]

    # -- introspection -----------------------------------------------------------

    @property
    def pending(self) -> int:
        return self._num_pending

    def __repr__(self) -> str:
        return f"Crossbar({self.name!r}, {self.num_outputs} outputs, {self.pending} pending)"
