"""The MAP's on-chip switches.

Two crossbar switches interconnect the clusters, the cache banks and the
external interfaces (Section 2):

* the 4x4 **M-Switch** carries memory requests from the clusters to the
  appropriate bank of the interleaved cache;
* the 10x4 **C-Switch** is used for inter-cluster communication (register
  writes, global condition-code broadcasts) and to return data from the
  memory system.

Both support up to four transfers per cycle.  :class:`~repro.switches.crossbar.Crossbar`
is the shared model used for both.
"""

from repro.switches.crossbar import Crossbar, Transfer

__all__ = ["Crossbar", "Transfer"]
