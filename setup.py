"""Packaging for the M-Machine reproduction.

``pip install -e .`` makes the ``repro`` package importable without the
``PYTHONPATH=src`` prefix used in the documentation, and
``pip install -e .[test]`` pulls in everything the test and benchmark
suites need.
"""

from setuptools import find_packages, setup

setup(
    name="repro-mmachine",
    version="0.9.0",
    description=(
        "Cycle-level simulator reproducing 'The M-Machine Multicomputer' "
        "(Fillo, Keckler, Dally, Carter, Chang, Gurevich & Lee, MICRO-28 1995)"
    ),
    long_description=(
        "A cycle-level model of the MAP multi-ALU processor and the 3-D mesh "
        "multicomputer built from it: multithreaded execution clusters, "
        "guarded pointers, the GTLB/LTLB translation hierarchy, user-level "
        "message passing with return-to-sender throttling, and the software "
        "runtime (event, message and coherence handlers) the paper's "
        "evaluation depends on.  Simulation is driven by an event-driven, "
        "activity-tracked kernel that skips idle nodes and idle cycles while "
        "remaining cycle-exact against the reference tick loop."
    ),
    long_description_content_type="text/plain",
    author="repro contributors",
    license="MIT",
    packages=find_packages(where="src"),
    package_dir={"": "src"},
    # PEP 561: ship the inline type hints (the typed repro.api facade).
    package_data={"repro": ["py.typed"]},
    entry_points={
        "console_scripts": [
            "repro = repro.cli:main",
        ],
    },
    python_requires=">=3.8",
    install_requires=[],          # the simulator itself is pure stdlib
    extras_require={
        "test": [
            "pytest>=7",
            "pytest-benchmark>=4",
            "hypothesis>=6",
        ],
    },
    classifiers=[
        "Development Status :: 3 - Alpha",
        "Intended Audience :: Science/Research",
        "License :: OSI Approved :: MIT License",
        "Programming Language :: Python :: 3",
        "Programming Language :: Python :: 3.8",
        "Programming Language :: Python :: 3.9",
        "Programming Language :: Python :: 3.10",
        "Programming Language :: Python :: 3.11",
        "Programming Language :: Python :: 3.12",
        "Programming Language :: Python :: 3.13",
        "Topic :: System :: Emulators",
        "Topic :: Scientific/Engineering",
    ],
    zip_safe=False,
)
