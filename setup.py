"""Compatibility shim so environments without the ``wheel`` package can still
do an editable install (``python setup.py develop`` or legacy
``pip install -e .``).  All real metadata lives in ``pyproject.toml``."""

from setuptools import setup

setup()
