"""Property test: snapshot round-trip at a random cycle of a random
synthetic workload is bit-exact versus the uninterrupted run.

Hypothesis draws the machine shape, the clock driver, the workload mix
(remote-store traffic plus compute loops plus optional remote reads) and the
snapshot point; for every draw, running to C, snapshotting, restoring from
the JSON document and running to completion must reproduce the uninterrupted
run's final cycle, complete statistics and trace."""

import json

from hypothesis import given, settings, strategies as st

from repro import MMachine, MachineConfig
from repro.workloads.microbench import compute_loop_program
from repro.workloads.synthetic import remote_store_sender_program

REGION = 0x40000
MAX_CYCLES = 300_000

workloads = st.fixed_dictionaries({
    "mesh": st.sampled_from([(2, 1, 1), (2, 2, 1)]),
    "kernel": st.sampled_from(["event", "naive"]),
    "messages": st.integers(min_value=1, max_value=10),
    "iterations": st.integers(min_value=1, max_value=40),
    "remote_reads": st.integers(min_value=0, max_value=4),
    "snapshot_fraction": st.floats(min_value=0.05, max_value=0.7),
})


def _build(params) -> MMachine:
    config = MachineConfig.small(*params["mesh"])
    config.sim.kernel = params["kernel"]
    machine = MMachine(config)
    far = machine.num_nodes - 1
    machine.map_on_node(far, REGION, num_pages=1)
    machine.write_word(REGION, 5)
    dip = machine.runtime.dip("remote_store")
    machine.load_hthread(
        0, 0, 0, remote_store_sender_program(REGION + 8, dip, params["messages"])
    )
    machine.load_hthread(0, 1, 1, compute_loop_program(params["iterations"]))
    if params["remote_reads"]:
        machine.load_hthread(
            0, 2, 0,
            f"""
            mov i3, #0
            mov i5, #0
    loop:   ld i4, i1
            add i5, i5, i4
            add i3, i3, #1
            lt i6, i3, #{params["remote_reads"]}
            br i6, loop
            halt
            """,
            registers={"i1": REGION},
        )
    return machine


def _report(machine: MMachine) -> dict:
    stats = machine.stats()
    return json.loads(json.dumps({
        "cycle": machine.cycle,
        "summary": stats.summary(),
        "node_stats": stats.node_stats,
        "trace": [str(event) for event in machine.tracer.events],
    }))


@settings(max_examples=8, deadline=None)
@given(workloads)
def test_random_cycle_snapshot_is_bit_exact(params):
    reference = _build(params)
    reference.run_until_user_done(max_cycles=MAX_CYCLES)
    expected = _report(reference)

    snapshot_cycle = max(1, int(expected["cycle"] * params["snapshot_fraction"]))
    machine = _build(params)
    machine.run(snapshot_cycle)
    document = json.loads(json.dumps(machine.snapshot_document()))

    restored = MMachine.from_snapshot(document)
    assert restored.cycle == snapshot_cycle
    restored.run_until_user_done(max_cycles=MAX_CYCLES)
    assert _report(restored) == expected
