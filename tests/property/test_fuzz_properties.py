"""Property tests wrapping the fuzz program generator in hypothesis.

Hypothesis draws the seed and the generator knobs; for every draw the
differential contract must hold: the generated program is bit-identical
under event vs naive kernels x compiled dispatch on/off, snapshot
round-trips at its seeded mid-run cycle, and the generator itself is a pure
function of ``(seed, knobs)``.  A final test exercises the failure path end
to end: a minimal reproducing program is shrunk out of a failing draw and
dumped to a replayable repro file.
"""

import json

from hypothesis import given, settings, strategies as st

from repro.fuzz import (
    GeneratorKnobs,
    check_program,
    dump_repro,
    generate_program,
    load_repro,
    shrink_program,
)

knob_draws = st.fixed_dictionaries(
    {
        "mesh": st.sampled_from([(1, 1, 1), (2, 1, 1), (2, 2, 1)]),
        "max_threads": st.integers(min_value=1, max_value=6),
        "fault_density": st.sampled_from([0.0, 0.25, 0.75]),
        "secded_single_flips": st.integers(min_value=0, max_value=2),
        "secded_double_flips": st.integers(min_value=0, max_value=1),
        "nack_storm": st.booleans(),
    }
)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000), draw=knob_draws)
def test_differential_grid_and_snapshot_roundtrip(seed, draw):
    """Event/naive equivalence + mid-run snapshot round-trip as a property."""
    outcome = check_program(generate_program(seed, GeneratorKnobs(**draw)))
    assert outcome.ok, outcome.failures


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=1_000_000), draw=knob_draws)
def test_generator_is_a_pure_function(seed, draw):
    knobs = GeneratorKnobs(**draw)
    first = generate_program(seed, knobs).to_dict()
    second = generate_program(seed, knobs).to_dict()
    assert first == second
    assert json.loads(json.dumps(first)) == first


@settings(max_examples=5, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_shrinking_dumps_a_minimal_repro(seed, tmp_path_factory):
    """The failure path end to end: shrink a failing draw, dump, replay.

    The 'failure' predicate is structural (the program still holds its
    first thread's kind) so the test is deterministic and fast; the real
    harness predicate is exercised by ``tests/integration``'s mutation
    checks.
    """
    program = generate_program(seed, GeneratorKnobs(max_threads=6))
    target_kind = program.threads[0].kind

    def fails(candidate):
        return any(thread.kind == target_kind for thread in candidate.threads)

    shrunk = shrink_program(program, is_failing=fails)
    # Minimal under the reduction grammar: one thread of the target kind.
    assert len(shrunk.threads) == 1
    assert shrunk.threads[0].kind == target_kind
    tmp_path = tmp_path_factory.mktemp("fuzz-repro")
    path = dump_repro(
        program, check_program(shrunk), str(tmp_path / "repro.json"), shrunk=shrunk
    )
    assert load_repro(path).to_dict() == shrunk.to_dict()
