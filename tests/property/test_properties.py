"""Property-based tests (hypothesis) on the core data structures and
invariants: SECDED codes, guarded pointers, regspec packing, GTLB page-group
translation, LPT entry packing, the assembler/functional units, and the
memory system against a reference model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa.assembler import assemble
from repro.isa.registers import RegFile, RegisterRef, pack_regspec, unpack_regspec
from repro.cluster.functional_units import evaluate_operation
from repro.memory.cache import InterleavedCache
from repro.memory.guarded_pointer import GuardedPointer, PointerPermission, ProtectionError
from repro.memory.ltlb import Ltlb
from repro.memory.memory_system import MemorySystem
from repro.memory.page_table import (
    BLOCKS_PER_PAGE,
    BlockStatus,
    LocalPageTable,
    LptEntry,
)
from repro.memory.requests import MemOpKind, MemRequest
from repro.memory.sdram import Sdram
from repro.memory.secded import CODEWORD_BITS, SecdedError, secded_decode, secded_encode
from repro.network.gtlb import GtlbEntry

WORD = st.integers(min_value=0, max_value=(1 << 64) - 1)


class TestSecdedProperties:
    @given(WORD)
    def test_roundtrip(self, word):
        data, corrected = secded_decode(secded_encode(word))
        assert data == word and not corrected

    @given(WORD, st.integers(min_value=0, max_value=CODEWORD_BITS - 1))
    def test_any_single_bit_error_corrected(self, word, position):
        data, corrected = secded_decode(secded_encode(word) ^ (1 << position))
        assert data == word and corrected

    @given(WORD, st.lists(st.integers(min_value=0, max_value=CODEWORD_BITS - 1),
                          min_size=2, max_size=2, unique=True))
    def test_any_double_bit_error_detected(self, word, positions):
        corrupted = secded_encode(word)
        for position in positions:
            corrupted ^= 1 << position
        with pytest.raises(SecdedError):
            secded_decode(corrupted)


class TestGuardedPointerProperties:
    pointers = st.builds(
        GuardedPointer,
        address=st.integers(min_value=0, max_value=(1 << 40) - 1),
        length_exp=st.integers(min_value=0, max_value=30),
        permission=st.sampled_from([PointerPermission.READ, PointerPermission.rw(),
                                    PointerPermission.rwx()]),
    )

    @given(pointers)
    def test_encode_decode_roundtrip(self, pointer):
        assert GuardedPointer.decode(pointer.encode()) == pointer

    @given(pointers, st.integers(min_value=-(1 << 32), max_value=1 << 32))
    def test_add_stays_in_segment_or_faults(self, pointer, offset):
        target = pointer.address + offset
        if pointer.segment_base <= target < pointer.segment_limit:
            assert pointer.add(offset).address == target
        else:
            with pytest.raises(ProtectionError):
                pointer.add(offset)

    @given(pointers)
    def test_segment_is_aligned_power_of_two(self, pointer):
        assert pointer.segment_base % pointer.segment_size == 0
        assert pointer.segment_base <= pointer.address < pointer.segment_limit


class TestRegspecProperties:
    @given(st.integers(0, 5), st.integers(0, 3),
           st.sampled_from([RegFile.INT, RegFile.FP, RegFile.CC, RegFile.GCC, RegFile.MC]),
           st.integers(0, 15))
    def test_roundtrip(self, vthread, cluster, file, index):
        # Clamp the index to the register file's size (CC has 4, GCC/MC 8).
        sizes = {RegFile.INT: 16, RegFile.FP: 16, RegFile.CC: 4, RegFile.GCC: 8, RegFile.MC: 8}
        ref = RegisterRef(file, index % sizes[file])
        assert unpack_regspec(pack_regspec(vthread, cluster, ref)) == (vthread, cluster, ref)


class TestGtlbProperties:
    entries = st.builds(
        GtlbEntry,
        base_page=st.integers(min_value=0, max_value=1 << 20),
        page_group_length=st.sampled_from([1, 2, 4, 8, 16, 32]),
        start_node=st.tuples(st.integers(0, 3), st.integers(0, 3), st.integers(0, 3)),
        extent=st.tuples(st.integers(0, 2), st.integers(0, 2), st.integers(0, 2)),
        pages_per_node=st.sampled_from([1, 2, 4]),
    )

    @given(entries, st.integers(min_value=0, max_value=(1 << 14) - 1))
    def test_translation_lands_inside_region(self, entry, offset):
        address = entry.base_address + offset % (entry.page_group_length * entry.page_size_words)
        x, y, z = entry.node_coords_of(address)
        sx, sy, sz = entry.start_node
        dx, dy, dz = entry.region_shape
        assert sx <= x < sx + dx
        assert sy <= y < sy + dy
        assert sz <= z < sz + dz

    @given(entries)
    def test_pack_unpack_roundtrip(self, entry):
        assert GtlbEntry.unpack(entry.pack(), entry.page_size_words) == entry

    @given(entries)
    def test_all_pages_of_group_are_homed(self, entry):
        total = sum(
            len(entry.pages_on_node((entry.start_node[0] + x,
                                     entry.start_node[1] + y,
                                     entry.start_node[2] + z)))
            for x in range(entry.region_shape[0])
            for y in range(entry.region_shape[1])
            for z in range(entry.region_shape[2])
        )
        assert total == entry.page_group_length


class TestLptEntryProperties:
    @given(st.integers(0, (1 << 30) - 1), st.integers(0, (1 << 20) - 1), st.booleans(),
           st.lists(st.sampled_from(list(BlockStatus)), min_size=BLOCKS_PER_PAGE,
                    max_size=BLOCKS_PER_PAGE))
    def test_pack_unpack_roundtrip(self, vpage, frame, writable, status):
        entry = LptEntry(virtual_page=vpage, physical_frame=frame, writable=writable,
                         block_status=list(status))
        unpacked = LptEntry.unpack(entry.pack())
        assert unpacked.virtual_page == vpage
        assert unpacked.physical_frame == frame
        assert unpacked.writable == writable
        assert unpacked.block_status == list(status)


class TestAssemblerArithmeticProperties:
    @given(st.integers(-1000, 1000), st.integers(-1000, 1000),
           st.sampled_from(["add", "sub", "mul", "and", "or", "xor", "min", "max",
                            "eq", "ne", "lt", "le", "gt", "ge"]))
    def test_assembled_op_matches_python_semantics(self, a, b, mnemonic):
        operation = assemble(f"{mnemonic} i1, i2, i3")[0].operations[0]
        result = evaluate_operation(operation, [a, b])
        reference = {
            "add": a + b, "sub": a - b, "mul": a * b,
            "and": a & b, "or": a | b, "xor": a ^ b,
            "min": min(a, b), "max": max(a, b),
            "eq": int(a == b), "ne": int(a != b), "lt": int(a < b),
            "le": int(a <= b), "gt": int(a > b), "ge": int(a >= b),
        }[mnemonic]
        assert result == reference


class TestMemorySystemProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(
        st.tuples(st.integers(0, 255), st.integers(0, 10_000)),
        min_size=1, max_size=40,
    ))
    def test_store_load_sequence_matches_reference_model(self, operations):
        """Random stores followed by debug reads always match a dict model,
        regardless of cache fills, evictions and write-backs."""
        cache = InterleavedCache(num_banks=4, bank_size_words=64, line_size_words=8,
                                 associativity=1)
        sdram = Sdram(size_words=1 << 14, secded_enabled=False)
        table = LocalPageTable(num_entries=16)
        table.insert(LptEntry(virtual_page=0, physical_frame=0))
        system = MemorySystem(0, cache, Ltlb(), table, sdram)
        system.ltlb.insert(table.lookup_page(0))

        reference = {}
        cycle = 0
        for address, value in operations:
            system.submit(MemRequest(kind=MemOpKind.STORE, address=address, data=value),
                          cycle + 1)
            reference[address] = value
            for _ in range(60):
                cycle += 1
                system.tick(cycle)
        for address, value in reference.items():
            assert system.debug_read(address) == value


class TestStencilScheduleProperties:
    @settings(max_examples=20, deadline=None)
    @given(st.sampled_from(["7pt", "27pt"]), st.sampled_from([1, 2, 4]))
    def test_every_schedule_is_assemblable_and_covers_all_neighbours(self, kind, threads):
        from repro.workloads.stencil import (
            SEVEN_POINT_OFFSETS,
            TWENTY_SEVEN_POINT_OFFSETS,
            make_stencil_workload,
        )

        workload = make_stencil_workload(kind=kind, n_hthreads=threads)
        expected_neighbours = (len(SEVEN_POINT_OFFSETS) if kind == "7pt"
                               else len(TWENTY_SEVEN_POINT_OFFSETS))
        load_count = sum(
            source.count("ld ") for source in workload.sources.values()
        )
        # neighbours + centre + u loads
        assert load_count == expected_neighbours + 2
        assert sum(1 for s in workload.sources.values() if "st " in s) == 1
