"""Unit tests for the ISA layer: registers, operations, assembler, programs."""

import pytest

from repro.isa.assembler import AssemblyError, assemble
from repro.isa.instruction import Instruction
from repro.isa.operations import OPCODES, Operation, Unit
from repro.isa.registers import (
    NUM_CLUSTERS,
    NUM_GCC_REGS,
    NUM_INT_REGS,
    RegFile,
    RegisterRef,
    is_register,
    pack_regspec,
    parse_register,
    unpack_regspec,
)


class TestRegisterParsing:
    def test_integer_register(self):
        ref = parse_register("i3")
        assert ref.file is RegFile.INT
        assert ref.index == 3
        assert ref.cluster is None

    def test_floating_register(self):
        ref = parse_register("f15")
        assert ref.file is RegFile.FP
        assert ref.index == 15

    def test_condition_code_register(self):
        assert parse_register("cc2").file is RegFile.CC

    def test_global_condition_code_register(self):
        ref = parse_register("gcc7")
        assert ref.file is RegFile.GCC
        assert ref.index == 7

    def test_message_composition_register(self):
        assert parse_register("m0").file is RegFile.MC

    def test_cluster_qualified_register(self):
        ref = parse_register("c2.i5")
        assert ref.cluster == 2
        assert ref.file is RegFile.INT
        assert ref.index == 5
        assert ref.is_remote

    def test_local_strips_cluster(self):
        assert parse_register("c1.f3").local() == RegisterRef(RegFile.FP, 3)

    @pytest.mark.parametrize("name", ["net", "evq", "nid", "cid", "vid", "zero"])
    def test_special_registers(self, name):
        ref = parse_register(name)
        assert ref.is_special
        assert str(ref) == name

    def test_queue_classification(self):
        assert parse_register("net").is_queue
        assert parse_register("evq").is_queue
        assert not parse_register("nid").is_queue
        assert parse_register("nid").is_identity

    def test_out_of_range_index_rejected(self):
        with pytest.raises(ValueError):
            parse_register(f"i{NUM_INT_REGS}")

    def test_gcc_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            parse_register(f"gcc{NUM_GCC_REGS}")

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            parse_register("bogus7")

    def test_cluster_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            parse_register(f"c{NUM_CLUSTERS}.i0")

    def test_special_cannot_be_cluster_qualified(self):
        with pytest.raises(ValueError):
            parse_register("c1.net")

    def test_is_register_predicate(self):
        assert is_register("i0")
        assert is_register("c3.f2")
        assert not is_register("42")
        assert not is_register("loop")

    def test_str_roundtrip(self):
        for text in ["i0", "f7", "cc1", "gcc5", "m3", "c2.i4", "net"]:
            assert str(parse_register(text)) == text


class TestRegspecPacking:
    def test_roundtrip(self):
        ref = RegisterRef(RegFile.FP, 9)
        spec = pack_regspec(3, 2, ref)
        vthread, cluster, unpacked = unpack_regspec(spec)
        assert (vthread, cluster, unpacked) == (3, 2, ref)

    def test_distinct_specs(self):
        specs = {
            pack_regspec(vt, cl, RegisterRef(RegFile.INT, idx))
            for vt in range(6)
            for cl in range(4)
            for idx in range(16)
        }
        assert len(specs) == 6 * 4 * 16

    def test_special_register_rejected(self):
        with pytest.raises(ValueError):
            pack_regspec(0, 0, parse_register("net"))

    def test_fits_in_16_bits(self):
        spec = pack_regspec(5, 3, RegisterRef(RegFile.MC, 7))
        assert 0 <= spec < (1 << 16)


class TestOpcodeTable:
    def test_expected_opcodes_present(self):
        for name in ["add", "sub", "mul", "ld", "st", "send", "sendp", "fadd", "fmul",
                     "br", "brz", "jmp", "halt", "empty", "xregwr", "ltlbw", "gprobe",
                     "ld.fe", "st.ef", "pld", "pst", "setptr", "lea"]:
            assert name in OPCODES, name

    def test_memory_ops_restricted_to_memory_unit(self):
        assert OPCODES["ld"].units == (Unit.MEM,)
        assert OPCODES["send"].units == (Unit.MEM,)

    def test_integer_ops_allowed_on_both_integer_units(self):
        assert set(OPCODES["add"].units) == {Unit.IALU, Unit.MEM}

    def test_fp_ops_on_fpu_only(self):
        assert OPCODES["fadd"].units == (Unit.FPU,)

    def test_privileged_flags(self):
        assert OPCODES["xregwr"].privileged
        assert OPCODES["ltlbw"].privileged
        assert OPCODES["sendp"].privileged
        assert not OPCODES["send"].privileged
        assert not OPCODES["ld"].privileged

    def test_branch_flags(self):
        for name in ("br", "brz", "jmp", "halt"):
            assert OPCODES[name].is_branch

    def test_store_flags(self):
        assert OPCODES["st"].is_store
        assert OPCODES["st.ef"].is_store
        assert not OPCODES["ld"].is_store

    def test_latencies_positive(self):
        assert all(op.latency >= 1 for op in OPCODES.values())

    def test_multiply_slower_than_add(self):
        assert OPCODES["mul"].latency > OPCODES["add"].latency
        assert OPCODES["fdiv"].latency > OPCODES["fadd"].latency


class TestAssembler:
    def test_simple_program(self):
        program = assemble("add i1, i2, i3\nhalt")
        assert len(program) == 2
        assert program[0].op_in(Unit.IALU).name == "add"

    def test_three_wide_instruction(self):
        program = assemble("add i1, i2, #1 | ld f2, i3 | fadd f1, f2, f3")
        instr = program[0]
        assert len(instr) == 3
        assert instr.op_in(Unit.IALU).name == "add"
        assert instr.op_in(Unit.MEM).name == "ld"
        assert instr.op_in(Unit.FPU).name == "fadd"

    def test_two_integer_ops_use_memory_unit(self):
        program = assemble("add i1, i2, #1 | sub i3, i4, #2")
        instr = program[0]
        assert instr.op_in(Unit.IALU).name == "add"
        assert instr.op_in(Unit.MEM).name == "sub"

    def test_slot_overcommit_rejected(self):
        with pytest.raises(AssemblyError):
            assemble("fadd f1, f2, f3 | fmul f4, f5, f6")
        with pytest.raises(AssemblyError):
            assemble("ld i1, i2 | st i3, i4")
        with pytest.raises(AssemblyError):
            assemble("add i1, i1, #1 | sub i2, i2, #1 | or i3, i3, #1")

    def test_labels_resolve(self):
        program = assemble("""
loop:   add i1, i1, #1
        br cc0, loop
        halt
""")
        assert program.labels["loop"] == 0
        branch = program[1].op_in(Unit.IALU)
        assert branch.target == 0

    def test_label_on_own_line(self):
        program = assemble("start:\n  add i1, i1, #1\n  jmp start")
        assert program.labels["start"] == 0
        assert program[1].op_in(Unit.IALU).target == 0

    def test_undefined_label_rejected(self):
        with pytest.raises(AssemblyError):
            assemble("br cc0, nowhere")

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblyError):
            assemble("a: nop\na: nop")

    def test_unknown_opcode_rejected(self):
        with pytest.raises(AssemblyError):
            assemble("frobnicate i1, i2")

    def test_bad_operand_count_rejected(self):
        with pytest.raises(AssemblyError):
            assemble("mov i1")
        with pytest.raises(AssemblyError):
            assemble("jmp")

    def test_comments_and_blank_lines_ignored(self):
        program = assemble("""
        ; a comment

        add i1, i1, #1    ; trailing comment
""")
        assert len(program) == 1

    def test_immediates(self):
        program = assemble("mov i1, #42\nmov i2, #-7\nmov i3, #0x1f\nfmov f1, #2.5")
        assert program[0].op_in(Unit.IALU).srcs == [42]
        assert program[1].op_in(Unit.IALU).srcs == [-7]
        assert program[2].op_in(Unit.IALU).srcs == [31]
        assert program[3].op_in(Unit.FPU).srcs == [2.5]

    def test_bare_integer_immediate(self):
        program = assemble("mov i1, 5")
        assert program[0].op_in(Unit.IALU).srcs == [5]

    def test_store_has_no_destination(self):
        program = assemble("st i1, i2, #4")
        op = program[0].op_in(Unit.MEM)
        assert op.dests == []
        assert len(op.srcs) == 3

    def test_empty_lists_all_destinations(self):
        program = assemble("empty f1, f2, gcc3")
        op = program[0].op_in(Unit.IALU)
        assert [str(d) for d in op.dests] == ["f1", "f2", "gcc3"]

    def test_queue_register_cannot_be_destination(self):
        with pytest.raises(AssemblyError):
            assemble("mov net, i1")

    def test_immediate_destination_rejected(self):
        with pytest.raises(AssemblyError):
            assemble("add #1, i2, i3")

    def test_remote_register_destination(self):
        program = assemble("fadd c1.f2, f3, f4")
        dest = program[0].op_in(Unit.FPU).dests[0]
        assert dest.cluster == 1

    def test_send_operands(self):
        program = assemble("send i1, #3, #2, #0")
        op = program[0].op_in(Unit.MEM)
        assert op.opcode.is_send
        assert op.srcs[1:] == [3, 2, 0]

    def test_program_listing(self):
        program = assemble("loop: add i1, i1, #1\n jmp loop", name="listing-test")
        text = program.listing()
        assert "loop:" in text
        assert "add" in text

    def test_static_length_and_operation_count(self):
        program = assemble("add i1, i1, #1 | fadd f1, f1, f2\nhalt")
        assert program.static_length == 2
        assert program.operation_count == 3

    def test_label_at_end_points_past_last_instruction(self):
        program = assemble("nop\nend:")
        assert program.labels["end"] == 1

    def test_instruction_str(self):
        program = assemble("add i1, i2, #3 | ld f1, i4")
        assert "add" in str(program[0])
        assert "ld" in str(program[0])


class TestInstruction:
    def test_add_duplicate_slot_rejected(self):
        instr = Instruction()
        op = Operation(opcode=OPCODES["add"])
        instr.add(op, Unit.IALU)
        with pytest.raises(ValueError):
            instr.add(Operation(opcode=OPCODES["sub"]), Unit.IALU)

    def test_has_branch_and_memory(self):
        program = assemble("ld i1, i2 | br cc0, 0")
        assert program[0].has_branch
        assert program[0].has_memory

    def test_operation_str_includes_immediates(self):
        op = assemble("add i1, i2, #5")[0].op_in(Unit.IALU)
        assert "#5" in str(op)
