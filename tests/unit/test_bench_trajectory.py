"""Unit tests for the benchmark-trajectory file (repro.report.trajectory)."""

import json
import os

import pytest

from repro.report import trajectory


@pytest.fixture
def path(tmp_path):
    return str(tmp_path / "BENCH_kernel.json")


class TestSchema:
    def test_valid_document(self):
        document = {
            "schema_version": trajectory.SCHEMA_VERSION,
            "sessions": [{
                "repro_version": "0.5.0",
                "python": "3.11.7",
                "benchmarks": {"kernel": {"cycles_per_second": 1000}},
            }],
        }
        assert trajectory.validate_trajectory(document) == []

    def test_rejects_wrong_shapes(self):
        assert trajectory.validate_trajectory([]) != []
        assert trajectory.validate_trajectory({"schema_version": 99}) != []
        assert trajectory.validate_trajectory(
            {"schema_version": trajectory.SCHEMA_VERSION, "sessions": {}}
        ) != []

    def test_rejects_bad_sessions(self):
        assert trajectory.validate_session("x") != []
        assert trajectory.validate_session({"repro_version": "v"}) != []
        assert trajectory.validate_session({
            "repro_version": "v", "python": "3", "benchmarks": {"k": {"m": [1]}},
        }) != []

    def test_generated_file_passes_the_ci_gate(self, path):
        # The exact document conftest writes must clear the CI bench gate.
        trajectory.append_session(path, {"kernel": {"cycles_per_second": 1000}})
        assert trajectory.check_file(path, require_nonempty=True) == []

    def test_local_trajectory_is_valid_when_present(self):
        # BENCH_kernel.json is a gitignored artifact; when a local benchmark
        # run has produced one, it must validate against the schema.
        repo_root = os.path.join(os.path.dirname(__file__), "..", "..")
        local = os.path.join(repo_root, "BENCH_kernel.json")
        if not os.path.exists(local):
            pytest.skip("no local benchmark trajectory")
        assert trajectory.validate_trajectory(
            json.load(open(local, encoding="utf-8"))
        ) == []


class TestAppend:
    def test_creates_and_appends_sessions(self, path):
        trajectory.append_session(path, {"kernel": {"speed": 1}})
        trajectory.append_session(path, {"kernel": {"speed": 2}})
        document = json.load(open(path))
        assert trajectory.validate_trajectory(document) == []
        assert [s["benchmarks"]["kernel"]["speed"]
                for s in document["sessions"]] == [1, 2]

    def test_empty_benchmarks_still_appends_a_session(self, path):
        trajectory.append_session(path, {})
        assert len(trajectory.load_sessions(path)) == 1

    def test_converts_schema1_document(self, path):
        with open(path, "w") as handle:
            json.dump({
                "schema_version": 1,
                "repro_version": "0.4.0",
                "python": "3.11.7",
                "benchmarks": {"kernel_throughput": {"speedup_vs_naive": 11.1}},
            }, handle)
        document = trajectory.append_session(path, {"kernel": {"speed": 3}})
        assert len(document["sessions"]) == 2
        assert document["sessions"][0]["repro_version"] == "0.4.0"

    def test_corrupt_file_is_replaced(self, path):
        with open(path, "w") as handle:
            handle.write("{nope")
        document = trajectory.append_session(path, {"kernel": {"speed": 1}})
        assert len(document["sessions"]) == 1

    def test_cap_keeps_newest_sessions(self, path):
        for index in range(6):
            trajectory.append_session(path, {"kernel": {"run": index}},
                                      max_sessions=4)
        sessions = trajectory.load_sessions(path)
        assert [s["benchmarks"]["kernel"]["run"] for s in sessions] == [2, 3, 4, 5]


class TestCheckFile:
    def test_missing_file(self, path):
        assert trajectory.check_file(path) != []

    def test_empty_sessions_fail_only_when_required(self, path):
        with open(path, "w") as handle:
            json.dump({"schema_version": trajectory.SCHEMA_VERSION,
                       "sessions": []}, handle)
        assert trajectory.check_file(path) == []
        assert trajectory.check_file(path, require_nonempty=True) != []

    def test_sessions_without_benchmarks_fail_nonempty(self, path):
        trajectory.append_session(path, {})
        assert trajectory.check_file(path) == []
        assert trajectory.check_file(path, require_nonempty=True) != []

    def test_main_exit_codes(self, path, capsys):
        assert trajectory.main([path]) == 1
        trajectory.append_session(path, {"kernel": {"speed": 1}})
        assert trajectory.main([path, "--require-nonempty"]) == 0
        assert "valid" in capsys.readouterr().out
