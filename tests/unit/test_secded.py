"""Exhaustive unit tests for the (72, 64) SECDED code and its SDRAM hookup.

ROADMAP item 3 flags `memory/secded.py` as effectively untested: the fuzzing
PR makes the SECDED path load-bearing (seeded bit-flip injection), so this
file pins every branch of the encoder/decoder — every single-bit position in
every region of the codeword (data, Hamming check, overall parity), the
double-bit detected-uncorrectable path with syndrome accounting, and the
corrected/detected counters of the `Sdram` model including their snapshot
round-trip and pre-counter snapshot back-compat.
"""

import pytest

from repro.memory.sdram import Sdram
from repro.memory.secded import (
    CHECK_BITS,
    CODEWORD_BITS,
    DATA_BITS,
    SecdedError,
    _CHECK_POSITIONS,
    _DATA_POSITIONS,
    inject_error,
    secded_decode,
    secded_encode,
)

WORDS = [
    0,
    1,
    0xDEADBEEF,
    (1 << 64) - 1,
    0x0123_4567_89AB_CDEF,
    0xA5A5_5A5A_0F0F_F0F0,
    1 << 63,
]


class TestCodeGeometry:
    def test_codeword_layout(self):
        assert DATA_BITS == 64
        assert CHECK_BITS == 7
        assert CODEWORD_BITS == 72
        assert len(_DATA_POSITIONS) == DATA_BITS
        assert len(_CHECK_POSITIONS) == CHECK_BITS
        # Data, check and parity positions partition the codeword.
        occupied = set(_DATA_POSITIONS) | set(_CHECK_POSITIONS) | {0}
        assert occupied == set(range(CODEWORD_BITS))

    def test_encode_masks_to_64_bits(self):
        assert secded_encode(1 << 64) == secded_encode(0)
        assert secded_encode((1 << 65) | 5) == secded_encode(5)


class TestRoundTrip:
    @pytest.mark.parametrize("word", WORDS)
    def test_clean_decode(self, word):
        data, corrected = secded_decode(secded_encode(word))
        assert data == word
        assert not corrected


class TestSingleBitCorrection:
    @pytest.mark.parametrize("word", [0, (1 << 64) - 1, 0xA5A5_5A5A_0F0F_F0F0])
    def test_every_position_corrected(self, word):
        codeword = secded_encode(word)
        for position in range(CODEWORD_BITS):
            data, corrected = secded_decode(inject_error(codeword, [position]))
            assert data == word, f"flip at bit {position} not corrected"
            assert corrected

    def test_data_bit_flip_corrected(self):
        codeword = secded_encode(0x1234)
        flipped = inject_error(codeword, [_DATA_POSITIONS[17]])
        assert secded_decode(flipped) == (0x1234, True)

    def test_check_bit_flip_leaves_data_intact(self):
        # A flipped Hamming check bit yields its own position as syndrome;
        # the data bits are untouched either way.
        codeword = secded_encode(0xFEED)
        for position in _CHECK_POSITIONS:
            assert secded_decode(inject_error(codeword, [position])) == (0xFEED, True)

    def test_parity_bit_flip_is_the_syndrome_zero_branch(self):
        # Position 0 is the overall parity bit: flipping it gives syndrome 0
        # with odd overall parity, the third corrected branch of the decoder.
        codeword = secded_encode(0xBEEF)
        assert secded_decode(inject_error(codeword, [0])) == (0xBEEF, True)


class TestDoubleBitDetection:
    @pytest.mark.parametrize("word", [0, 0xDEADBEEF, (1 << 64) - 1])
    def test_adjacent_pairs_detected(self, word):
        codeword = secded_encode(word)
        for position in range(CODEWORD_BITS - 1):
            with pytest.raises(SecdedError):
                secded_decode(inject_error(codeword, [position, position + 1]))

    def test_parity_plus_data_pair_detected(self):
        # Parity bit + any other bit: non-zero syndrome with even overall
        # parity, so it must land in the uncorrectable branch.
        codeword = secded_encode(42)
        with pytest.raises(SecdedError):
            secded_decode(inject_error(codeword, [0, _DATA_POSITIONS[5]]))

    def test_spread_pairs_detected(self):
        codeword = secded_encode(0x0F0F_F0F0_A5A5_5A5A)
        for pair in [(1, 64), (2, 71), (3, 40), (8, 9), (33, 66)]:
            with pytest.raises(SecdedError):
                secded_decode(inject_error(codeword, list(pair)))

    def test_syndrome_reported(self):
        with pytest.raises(SecdedError, match="syndrome"):
            secded_decode(inject_error(secded_encode(7), [3, 40]))


class TestInjectError:
    def test_flips_are_involutive(self):
        codeword = secded_encode(99)
        assert inject_error(inject_error(codeword, [7, 13]), [13, 7]) == codeword

    @pytest.mark.parametrize("position", [-1, CODEWORD_BITS, 1000])
    def test_out_of_range_positions_rejected(self, position):
        with pytest.raises(ValueError):
            inject_error(secded_encode(1), [position])


class TestSdramAccounting:
    def test_corrected_counter_and_scrub(self):
        sdram = Sdram(size_words=64)
        sdram.write_word(3, 777)
        sdram.inject_bit_error(3, [5])
        assert sdram.read_word(3) == 777
        assert (sdram.corrected_errors, sdram.detected_errors) == (1, 0)
        # The scrub rewrote the codeword: a second read is clean.
        assert sdram.read_word(3) == 777
        assert (sdram.corrected_errors, sdram.detected_errors) == (1, 0)

    def test_detected_counter_increments_per_failed_read(self):
        sdram = Sdram(size_words=64)
        sdram.write_word(3, 777)
        sdram.inject_bit_error(3, [5, 9])
        for attempt in range(1, 3):
            with pytest.raises(SecdedError):
                sdram.read_word(3)
            assert sdram.detected_errors == attempt
        assert sdram.corrected_errors == 0

    def test_mixed_workload_accounting(self):
        sdram = Sdram(size_words=64)
        for address in range(8):
            sdram.write_word(address, 1000 + address)
        for address in (1, 4, 6):
            sdram.inject_bit_error(address, [address + 10])
        sdram.inject_bit_error(7, [2, 30])
        values = [sdram.read_word(address) for address in range(7)]
        assert values == [1000 + address for address in range(7)]
        with pytest.raises(SecdedError):
            sdram.read_word(7)
        assert (sdram.corrected_errors, sdram.detected_errors) == (3, 1)

    def test_injection_requires_secded(self):
        sdram = Sdram(size_words=64, secded_enabled=False)
        sdram.write_word(3, 777)
        with pytest.raises(RuntimeError):
            sdram.inject_bit_error(3, [5])

    def test_injection_rejects_tagged_words(self):
        sdram = Sdram(size_words=64)
        sdram.write_word(3, 1.5)
        with pytest.raises(RuntimeError):
            sdram.inject_bit_error(3, [5])

    def test_counters_survive_snapshot_round_trip(self):
        sdram = Sdram(size_words=64)
        sdram.write_word(3, 777)
        sdram.inject_bit_error(3, [1])
        sdram.write_word(4, 888)
        sdram.inject_bit_error(4, [2, 9])
        sdram.read_word(3)
        with pytest.raises(SecdedError):
            sdram.read_word(4)
        state = sdram.state_dict()
        restored = Sdram(size_words=64)
        restored.load_state_dict(state)
        assert restored.corrected_errors == 1
        assert restored.detected_errors == 1
        # The poisoned codeword travels through the snapshot verbatim.
        with pytest.raises(SecdedError):
            restored.read_word(4)
        assert restored.detected_errors == 2

    def test_snapshots_without_detected_counter_still_load(self):
        sdram = Sdram(size_words=64)
        sdram.write_word(3, 777)
        state = sdram.state_dict()
        del state["detected_errors"]
        restored = Sdram(size_words=64)
        restored.load_state_dict(state)
        assert restored.detected_errors == 0
        assert restored.read_word(3) == 777
