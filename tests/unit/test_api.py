"""Unit tests for the typed ``repro.api`` facade.

Covers the config-override validator, the ``Workload`` registry and
decorator, ``RunResult`` round-trips and structured views, and the
``Experiment`` builder lifecycle (validation, probes, overrides,
checkpointing).
"""

import json

import pytest

from repro.api import (
    Experiment,
    Provenance,
    RunResult,
    WorkloadSpec,
    get_workload,
    roundtrip_problems,
    run_workload,
    unregister,
    workload,
    workload_defaults,
    workload_names,
    workload_specs,
)
from repro.core.config import (
    MachineConfig,
    apply_overrides,
    override_keys,
    validate_override_key,
)
from repro.sweep.schema import SCHEMA_VERSION
from repro.sweep.spec import RunSpec


# ---------------------------------------------------------------------------
# Config-override validation (the satellite fix for factories._machine)
# ---------------------------------------------------------------------------


class TestOverrideValidation:
    def test_override_keys_cover_all_sections(self):
        keys = override_keys()
        assert "network.send_credits" in keys
        assert "cluster.issue_policy" in keys
        assert "sim.kernel" in keys
        assert "trace_enabled" in keys

    def test_valid_key_passes(self):
        validate_override_key("network.send_credits")
        validate_override_key("trace_enabled")

    def test_unknown_section_lists_sections(self):
        with pytest.raises(ValueError, match="no section 'netwrok'"):
            validate_override_key("netwrok.send_credits")

    def test_unknown_attribute_lists_section_keys(self):
        with pytest.raises(ValueError, match="network.send_credits"):
            validate_override_key("network.send_credit")

    def test_apply_overrides_mutates_config(self):
        config = MachineConfig.small(1, 1, 1)
        apply_overrides(config, {"network.send_credits": 3, "trace_enabled": False})
        assert config.network.send_credits == 3
        assert config.trace_enabled is False

    def test_apply_overrides_rejects_before_mutating(self):
        config = MachineConfig.small(1, 1, 1)
        before = config.network.send_credits
        with pytest.raises(ValueError, match="unknown config override"):
            apply_overrides(
                config, {"network.send_credits": 3, "network.bogus": 1}
            )
        assert config.network.send_credits == before

    def test_machine_helper_rejects_typoed_key(self):
        """The old silent-setattr hole: a typo'd key now raises."""
        from repro.workloads.factories import _machine

        with pytest.raises(ValueError, match="unknown config override"):
            _machine((1, 1, 1), "event", **{"network.send_credit": 2})


# ---------------------------------------------------------------------------
# Workload registry and decorator
# ---------------------------------------------------------------------------


class TestWorkloadRegistry:
    def test_builtin_workloads_registered(self):
        names = workload_names()
        assert "stencil" in names and "ping-pong" in names

    def test_specs_carry_paper_sections(self):
        assert get_workload("stencil").section == "Figure 5"
        assert get_workload("ping-pong").section == "Figure 7"
        assert all(spec.section for spec in workload_specs())

    def test_descriptions_come_from_docstrings(self):
        assert "Figure 5" in get_workload("stencil").description

    def test_defaults_match_signature_order(self):
        defaults = workload_defaults("stencil")
        assert list(defaults)[:2] == ["kind", "n_hthreads"]
        assert defaults["kind"] == "7pt"

    def test_unknown_name_raises_keyerror_with_known_names(self):
        with pytest.raises(KeyError, match="unknown workload 'nope'"):
            get_workload("nope")

    def test_decorator_registers_and_unregisters(self):
        @workload("tmp-trivial", section="Test")
        def trivial(x: int = 1):
            """A trivial workload."""
            return {"verified": True, "x": x}

        try:
            spec = get_workload("tmp-trivial")
            assert spec is trivial
            assert spec.defaults == {"x": 1}
            assert spec.call({"x": 5}) == {"verified": True, "x": 5}
        finally:
            unregister("tmp-trivial")
        assert "tmp-trivial" not in workload_names()

    def test_duplicate_name_rejected(self):
        with pytest.raises(ValueError, match="duplicate workload name"):

            @workload("stencil")
            def clash():
                """Clashes with the built-in stencil."""
                return {}

    def test_unregistered_spec_stays_local(self):
        @workload("tmp-local", register=False)
        def local(n: int = 2):
            """Stays out of the global registry."""
            return {"n": n}

        assert isinstance(local, WorkloadSpec)
        assert "tmp-local" not in workload_names()
        assert local(n=3) == {"n": 3}

    def test_params_dataclass_name_checks(self):
        spec = get_workload("ping-pong")
        params = spec.make_params(rounds=4)
        assert params.rounds == 4
        with pytest.raises(TypeError):
            spec.make_params(bogus=1)

    def test_validate_params_lists_valid_names(self):
        spec = get_workload("stencil")
        with pytest.raises(ValueError, match="'bogus'; valid: kind, n_hthreads"):
            spec.validate_params({"bogus": 1})

    def test_legacy_registry_view_stays_in_sync(self):
        from repro.workloads.factories import WORKLOADS

        assert WORKLOADS["stencil"] is get_workload("stencil").func
        assert "stencil" in WORKLOADS
        assert len(WORKLOADS) == len(workload_names())

    def test_legacy_registry_setitem_roundtrip_preserves_spec(self):
        from repro.workloads.factories import WORKLOADS

        original = get_workload("stencil")
        WORKLOADS["stencil"] = original.func  # same func: must be a no-op
        assert get_workload("stencil") is original

    def test_legacy_registry_patch_undo_restores_metadata(self):
        """A monkeypatch.setitem/undo cycle must not strip the spec's
        section/description (the displaced spec is restored verbatim)."""
        from repro.workloads.factories import WORKLOADS

        original = get_workload("area-model")
        WORKLOADS["area-model"] = lambda **kw: {"verified": True}
        assert get_workload("area-model") is not original
        WORKLOADS["area-model"] = original.func  # what monkeypatch undo does
        assert get_workload("area-model") is original
        assert get_workload("area-model").section == "Sections 1/5"

    def test_legacy_registry_delete_undo_restores_metadata(self):
        """A monkeypatch.delitem/undo cycle must restore the displaced spec
        (metadata included), like the setitem round-trip does."""
        from repro.workloads.factories import WORKLOADS

        original = get_workload("area-model")
        saved_func = WORKLOADS["area-model"]
        del WORKLOADS["area-model"]
        assert "area-model" not in workload_names()
        WORKLOADS["area-model"] = saved_func  # what monkeypatch undo does
        assert get_workload("area-model") is original
        assert get_workload("area-model").section == "Sections 1/5"

    def test_legacy_registry_setitem_adapts_callables(self):
        from repro.workloads.factories import WORKLOADS

        def fake(**kw):
            return {"verified": True}

        WORKLOADS["tmp-fake"] = fake
        try:
            assert get_workload("tmp-fake").func is fake
        finally:
            del WORKLOADS["tmp-fake"]
        assert "tmp-fake" not in workload_names()


# ---------------------------------------------------------------------------
# RunResult
# ---------------------------------------------------------------------------


class TestRunResult:
    def _result(self, **metrics):
        return RunResult.from_metrics(
            workload="stencil",
            params={"kind": "7pt"},
            metrics={"verified": True, "cycles": 123, **metrics},
            wall_seconds=0.5,
        )

    def test_from_metrics_derives_status(self):
        assert self._result().status == "ok"
        failed = RunResult.from_metrics("stencil", {}, {"verified": False})
        assert failed.status == "failed"
        assert failed.error == "workload verification failed"

    def test_run_id_matches_runspec(self):
        result = self._result()
        assert result.run_id == RunSpec("stencil", {"kind": "7pt"}).run_id

    def test_fingerprint_is_run_id_suffix(self):
        result = self._result()
        assert result.run_id.endswith("_" + result.fingerprint)

    def test_record_roundtrip_is_lossless(self):
        result = self._result(instructions=7, operations=9, messages=0, nodes=1)
        record = result.to_record()
        assert record["schema_version"] == SCHEMA_VERSION
        assert RunResult.from_record(record) == result

    def test_to_json_matches_stored_record_bytes(self):
        result = self._result()
        assert result.to_json() == json.dumps(
            result.to_record(), indent=2, sort_keys=True
        )

    def test_summary_projects_machine_stats_counters(self):
        result = self._result(instructions=7, operations=9, messages=0, nodes=1)
        assert result.summary == {
            "instructions": 7, "operations": 9, "messages": 0, "nodes": 1,
        }

    def test_timeline_parses_embedded_records(self):
        records = [{"label": "send", "cycle": 3}]
        result = self._result(timeline=json.dumps(records))
        assert result.timeline == records
        assert self._result().timeline is None

    def test_provenance_kernel_from_effective_params(self):
        # stencil defaults kernel="event"; the explicit params omit it.
        provenance = self._result().provenance
        assert provenance == Provenance(kernel="event")

    def test_provenance_resume_and_seed_from_tags(self):
        result = RunResult.from_metrics(
            "stencil", {}, {"verified": True},
            tags={"seed": "7"}, resumed_from_cycle=400,
        )
        assert result.provenance.resumed_from_cycle == 400
        assert result.provenance.seed == 7
        assert result.tags["resumed_from_cycle"] == "400"

    def test_from_record_rejects_invalid(self):
        with pytest.raises(ValueError, match="invalid result record"):
            RunResult.from_record({"run_id": "r1"})

    def test_cycles_none_for_analytic(self):
        result = RunResult.from_metrics("area-model", {}, {"peak_ratio": 128})
        assert result.cycles is None and result.verified

    def test_with_tags_merges(self):
        tagged = self._result().with_tags(figure="fig5")
        assert tagged.tags == {"figure": "fig5"}

    def test_roundtrip_problems_flags_drift(self):
        good = self._result().to_record()
        assert roundtrip_problems({"runs": [good]}) == []
        assert roundtrip_problems({"runs": [{"run_id": "r1"}]})
        assert roundtrip_problems({}) == ["document has no 'runs' list"]


# ---------------------------------------------------------------------------
# Experiment builder and lifecycle
# ---------------------------------------------------------------------------


class TestExperimentBuilder:
    def test_requires_a_workload(self):
        with pytest.raises(ValueError, match="no workload bound"):
            Experiment.builder().build()

    def test_unknown_param_name_rejected_at_build(self):
        with pytest.raises(ValueError, match="no parameter"):
            Experiment.builder().workload("ping-pong", bogus=1).build()

    def test_mesh_on_analytic_workload_rejected(self):
        with pytest.raises(ValueError, match="does not accept a 'mesh'"):
            Experiment.builder().workload("area-model").mesh(2, 2, 1).build()

    def test_mesh_conflict_rejected(self):
        builder = Experiment.builder().workload("ping-pong", mesh=[2, 1, 1]).mesh(2, 1, 1)
        with pytest.raises(ValueError, match="pick one"):
            builder.build()

    def test_invalid_mesh_and_kernel_rejected_eagerly(self):
        with pytest.raises(ValueError, match="three positive ints"):
            Experiment.builder().mesh(0, 1, 1)
        with pytest.raises(ValueError, match="unknown simulation kernel"):
            Experiment.builder().kernel("quantum")

    def test_unknown_override_key_rejected_eagerly(self):
        with pytest.raises(ValueError, match="unknown config override"):
            Experiment.builder().override("network.bogus", 1)

    def test_probe_must_be_callable(self):
        with pytest.raises(TypeError, match="callable"):
            Experiment.builder().probe(42)

    def test_run_matches_direct_factory_call(self):
        direct = get_workload("cc-sync").call({"iterations": 5})
        with Experiment.builder().workload("cc-sync", iterations=5).build() as exp:
            result = exp.run()
        assert result.metrics == direct
        assert result.verified
        assert result.run_id == RunSpec("cc-sync", {"iterations": 5}).run_id

    def test_context_manager_closes(self):
        experiment = Experiment.builder().workload("area-model").build()
        with experiment as exp:
            assert not exp.closed
        assert experiment.closed
        with pytest.raises(RuntimeError, match="closed"):
            experiment.run()
        with pytest.raises(RuntimeError, match="closed"):
            with experiment:
                pass

    def test_results_accumulate(self):
        with Experiment.builder().workload("area-model").build() as exp:
            assert exp.last_result is None
            first = exp.run()
            second = exp.run()
        assert exp.results == [first, second]
        assert exp.last_result == second

    def test_overrides_and_probes_reach_the_machine(self):
        machines = []
        with (
            Experiment.builder()
            .workload("flood", messages=4)
            .override("network.send_credits", 3)
            .probe(machines.append)
            .build()
        ) as exp:
            result = exp.run()
        assert result.ok
        assert machines, "probe saw no machines"
        assert all(m.config.network.send_credits == 3 for m in machines)

    def test_tags_and_seed_flow_into_provenance(self):
        with (
            Experiment.builder()
            .workload("area-model")
            .tag(figure="sec1")
            .seed(11)
            .build()
        ) as exp:
            result = exp.run()
        assert result.tags["figure"] == "sec1"
        assert result.provenance.seed == 11

    def test_checkpointed_rerun_resumes(self, tmp_path):
        build = lambda: (  # noqa: E731 - two identical experiments
            Experiment.builder()
            .workload("cc-sync", iterations=200)  # ~1600 cycles
            .checkpoint(str(tmp_path), every=500)
            .build()
        )
        with build() as exp:
            cold = exp.run()
        assert cold.provenance.resumed_from_cycle is None
        assert list(tmp_path.glob("machine-*.json")), "no checkpoint written"
        with build() as exp:
            warm = exp.run()
        assert warm.provenance.resumed_from_cycle is not None
        assert warm.cycles == cold.cycles
        assert warm.metrics["verified"] and cold.metrics["verified"]

    def test_run_workload_one_shot(self):
        result = run_workload("gtlb-mapping", lookups=100)
        assert result.ok and result.workload == "gtlb-mapping"
        assert result.params == {"lookups": 100}

    def test_run_workload_accepts_spec_objects(self):
        @workload("tmp-oneshot", register=False)
        def oneshot(n: int = 1):
            """Local spec for the one-shot helper."""
            return {"verified": True, "n": n}

        result = run_workload(oneshot, n=4)
        assert result.metrics["n"] == 4

    def test_builder_kernel_flows_into_params(self):
        with (
            Experiment.builder().workload("cc-sync", iterations=5).kernel("naive").build()
        ) as exp:
            result = exp.run()
        assert result.params["kernel"] == "naive"
        assert result.provenance.kernel == "naive"
