"""Smoke test: every script in ``examples/`` runs, in-process.

The examples are documentation that executes; before this suite they were
never run by CI, so an API change could silently strand them.  Each script
is executed via ``runpy`` as ``__main__`` in a scratch working directory
(some examples write snapshot files), and its assertions are the test.
"""

import runpy
import sys

import pytest

from pathlib import Path

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"

EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def _run(path, monkeypatch, tmp_path):
    monkeypatch.chdir(tmp_path)
    monkeypatch.setattr(sys, "argv", [str(path)])
    return runpy.run_path(str(path), run_name="__main__")


def test_examples_directory_found():
    assert EXAMPLES, f"no example scripts under {EXAMPLES_DIR}"


@pytest.mark.parametrize("path", EXAMPLES, ids=[p.stem for p in EXAMPLES])
def test_example_runs(path, monkeypatch, tmp_path, capsys):
    _run(path, monkeypatch, tmp_path)
    # Every example narrates what it did; an empty stdout means it silently
    # did nothing, which is as much a regression as an exception.
    assert capsys.readouterr().out.strip()


def test_quickstart_uses_the_experiment_facade(monkeypatch, tmp_path, capsys):
    """The quickstart is the documented entry point: it must demonstrate the
    typed API and actually produce the incremented word."""
    source = (EXAMPLES_DIR / "quickstart.py").read_text()
    assert "Experiment.builder()" in source
    assert "@workload" in source
    _run(EXAMPLES_DIR / "quickstart.py", monkeypatch, tmp_path)
    out = capsys.readouterr().out
    assert "memory word after the run : 42" in out
    assert "config fingerprint" in out
