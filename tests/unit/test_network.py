"""Unit tests for the communication subsystem: GTLB/GDT, messages, routing,
the mesh and the network interfaces (including return-to-sender throttling)."""

import pytest

from repro.core.config import NetworkConfig
from repro.events.queue import HardwareQueue
from repro.memory.guarded_pointer import ProtectionError
from repro.network.gtlb import GlobalDestinationTable, Gtlb, GtlbEntry
from repro.network.interface import NetworkInterface
from repro.network.mesh import MeshNetwork, coords_to_id, id_to_coords
from repro.network.message import Message, MessageKind
from repro.network.router import Router, dimension_order_path, next_hop


class TestGtlbEntry:
    def _entry(self, **overrides):
        parameters = dict(base_page=16, page_group_length=8, start_node=(0, 0, 0),
                          extent=(1, 1, 0), pages_per_node=1, page_size_words=512)
        parameters.update(overrides)
        return GtlbEntry(**parameters)

    def test_region_shape(self):
        entry = self._entry(extent=(2, 1, 0))
        assert entry.region_shape == (4, 2, 1)
        assert entry.region_size == 8

    def test_covers(self):
        entry = self._entry()
        assert entry.covers(16 * 512)
        assert entry.covers(24 * 512 - 1)
        assert not entry.covers(24 * 512)
        assert not entry.covers(15 * 512)

    def test_cyclic_interleaving_one_page_per_node(self):
        entry = self._entry(extent=(1, 0, 0), pages_per_node=1, page_group_length=8)
        # 2-node region in X: pages alternate between (0,0,0) and (1,0,0).
        homes = [entry.node_coords_of((16 + page) * 512) for page in range(8)]
        assert homes == [(0, 0, 0), (1, 0, 0)] * 4

    def test_block_interleaving_multiple_pages_per_node(self):
        entry = self._entry(extent=(1, 0, 0), pages_per_node=4, page_group_length=8)
        homes = [entry.node_coords_of((16 + page) * 512) for page in range(8)]
        assert homes == [(0, 0, 0)] * 4 + [(1, 0, 0)] * 4

    def test_x_fastest_ordering(self):
        entry = self._entry(extent=(1, 1, 0), page_group_length=4)
        homes = [entry.node_coords_of((16 + page) * 512) for page in range(4)]
        assert homes == [(0, 0, 0), (1, 0, 0), (0, 1, 0), (1, 1, 0)]

    def test_start_node_offset(self):
        entry = self._entry(start_node=(2, 1, 0), extent=(0, 0, 0), page_group_length=1)
        assert entry.node_coords_of(16 * 512) == (2, 1, 0)

    def test_pages_on_node(self):
        entry = self._entry(extent=(1, 0, 0), pages_per_node=1, page_group_length=8)
        assert entry.pages_on_node((0, 0, 0)) == [16, 18, 20, 22]
        assert entry.pages_on_node((1, 0, 0)) == [17, 19, 21, 23]

    def test_pack_unpack_roundtrip(self):
        entry = self._entry(start_node=(3, 2, 1), extent=(2, 1, 0), pages_per_node=2)
        assert GtlbEntry.unpack(entry.pack(), page_size_words=512) == entry

    def test_non_power_of_two_length_rejected(self):
        with pytest.raises(ValueError):
            self._entry(page_group_length=6)

    def test_non_power_of_two_pages_per_node_rejected(self):
        with pytest.raises(ValueError):
            self._entry(pages_per_node=3)

    def test_uncovered_address_raises(self):
        with pytest.raises(ValueError):
            self._entry().node_coords_of(0)


class TestGdtAndGtlb:
    def test_gdt_lookup(self):
        gdt = GlobalDestinationTable()
        entry = GtlbEntry(base_page=0, page_group_length=4, start_node=(0, 0, 0),
                          extent=(0, 0, 0))
        gdt.add(entry)
        assert gdt.lookup(100) is entry
        assert gdt.lookup(4 * 512) is None

    def test_gdt_rejects_overlap(self):
        gdt = GlobalDestinationTable()
        gdt.add(GtlbEntry(base_page=0, page_group_length=4, start_node=(0, 0, 0),
                          extent=(0, 0, 0)))
        with pytest.raises(ValueError):
            gdt.add(GtlbEntry(base_page=2, page_group_length=4, start_node=(0, 0, 0),
                              extent=(0, 0, 0)))

    def test_gtlb_caches_and_counts(self):
        gdt = GlobalDestinationTable()
        gdt.add(GtlbEntry(base_page=0, page_group_length=4, start_node=(1, 0, 0),
                          extent=(0, 0, 0)))
        gtlb = Gtlb(gdt, num_entries=2)
        assert gtlb.node_coords_of(100) == (1, 0, 0)
        assert gtlb.misses == 1 and gtlb.fills == 1
        assert gtlb.node_coords_of(200) == (1, 0, 0)
        assert gtlb.hits == 1

    def test_gtlb_unmapped_returns_none(self):
        gtlb = Gtlb(GlobalDestinationTable())
        assert gtlb.node_coords_of(123) is None


class TestRouting:
    def test_coords_roundtrip(self):
        shape = (4, 2, 2)
        for node in range(16):
            assert coords_to_id(id_to_coords(node, shape), shape) == node

    def test_out_of_range_coords(self):
        with pytest.raises(ValueError):
            coords_to_id((4, 0, 0), (4, 2, 2))
        with pytest.raises(ValueError):
            id_to_coords(16, (4, 2, 2))

    def test_next_hop_dimension_order(self):
        port, coords = next_hop((0, 0, 0), (2, 1, 0))
        assert port == "+x" and coords == (1, 0, 0)
        port, coords = next_hop((2, 0, 0), (2, 1, 0))
        assert port == "+y" and coords == (2, 1, 0)
        port, coords = next_hop((2, 1, 0), (2, 1, 0))
        assert port == "eject"

    def test_path_length_is_manhattan_distance(self):
        path = dimension_order_path((0, 0, 0), (2, 1, 3))
        assert len(path) == 1 + 2 + 1 + 3

    def test_router_statistics(self):
        router = Router((0, 0, 0))
        router.route((1, 0, 0))
        router.route((0, 0, 0))
        assert router.port_traffic["+x"] == 1
        assert router.port_traffic["eject"] == 1


class TestMesh:
    def _mesh(self, shape=(2, 2, 1)):
        config = NetworkConfig(mesh_shape=shape)
        return MeshNetwork(config)

    def test_hop_count(self):
        mesh = self._mesh()
        assert mesh.hop_count(0, 3) == 2
        assert mesh.hop_count(0, 0) == 0

    def test_message_delivery_latency(self):
        mesh = self._mesh()
        received = []
        mesh.attach(1, lambda message, cycle: received.append((message, cycle)))
        message = Message(kind=MessageKind.DATA, source_node=0, dest_node=1, body=[1],
                          send_cycle=0)
        deliver = mesh.inject(message, cycle=0)
        config = mesh.config
        expected = (config.inject_latency + config.router_latency + config.channel_latency
                    + config.eject_latency)
        assert deliver == expected
        for cycle in range(deliver + 1):
            mesh.tick(cycle)
        assert received and received[0][0] is message

    def test_farther_nodes_take_longer(self):
        mesh = self._mesh((4, 1, 1))
        mesh.attach(1, lambda *a: None)
        mesh.attach(3, lambda *a: None)
        near = mesh.inject(Message(kind=MessageKind.DATA, source_node=0, dest_node=1), 0)
        far = mesh.inject(Message(kind=MessageKind.DATA, source_node=0, dest_node=3), 0)
        assert far > near

    def test_link_contention_delays_second_message(self):
        mesh = self._mesh((2, 1, 1))
        mesh.attach(1, lambda *a: None)
        first = mesh.inject(
            Message(kind=MessageKind.DATA, source_node=0, dest_node=1, body=[0] * 6), 0)
        second = mesh.inject(
            Message(kind=MessageKind.DATA, source_node=0, dest_node=1, body=[0] * 6), 0)
        assert second > first
        assert mesh.link_contention_cycles > 0

    def test_delivery_requires_attachment(self):
        mesh = self._mesh((2, 1, 1))
        mesh.inject(Message(kind=MessageKind.DATA, source_node=0, dest_node=1), 0)
        with pytest.raises(KeyError):
            for cycle in range(20):
                mesh.tick(cycle)


class TestMessage:
    def test_queue_words_layout(self):
        message = Message(kind=MessageKind.DATA, source_node=0, dest_node=1,
                          dip=7, dest_address=0x1234, body=[10, 20])
        assert message.queue_words == [7, 0x1234, 10, 20]
        assert message.length_words == 4

    def test_physical_reply_address_word_defaults_to_zero(self):
        message = Message(kind=MessageKind.DATA, source_node=0, dest_node=1, dip=3,
                          body=[1])
        assert message.queue_words == [3, 0, 1]


def _interface_pair(send_credits=2, queue_words=6):
    """Two nodes connected by a 2x1x1 mesh with small queues/credits so the
    throttling paths are easy to exercise."""
    config = NetworkConfig(mesh_shape=(2, 1, 1), send_credits=send_credits,
                           message_queue_words=queue_words, retransmit_interval=8)
    mesh = MeshNetwork(config)
    gdt = GlobalDestinationTable()
    gdt.add(GtlbEntry(base_page=0, page_group_length=2, start_node=(1, 0, 0),
                      extent=(0, 0, 0)))
    interfaces = []
    for node_id in range(2):
        q0 = HardwareQueue(queue_words, name=f"q0-{node_id}")
        q1 = HardwareQueue(queue_words, name=f"q1-{node_id}")
        interfaces.append(
            NetworkInterface(node_id, config, mesh, Gtlb(gdt), q0, q1)
        )
    return mesh, interfaces


def _run_mesh(mesh, interfaces, cycles):
    for cycle in range(cycles):
        mesh.tick(cycle)
        for interface in interfaces:
            interface.tick(cycle)


class TestNetworkInterface:
    def test_send_translates_virtual_destination(self):
        mesh, (sender, receiver) = _interface_pair()
        message = sender.send(cycle=0, dest_address=100, dip=1, body=[42])
        assert message.dest_node == 1
        _run_mesh(mesh, [sender, receiver], 20)
        assert receiver.queues[0].pop_word() == 1        # DIP
        assert receiver.queues[0].pop_word() == 100      # address
        assert receiver.queues[0].pop_word() == 42       # body

    def test_send_to_unmapped_address_faults(self):
        mesh, (sender, receiver) = _interface_pair()
        with pytest.raises(ProtectionError):
            sender.send(cycle=0, dest_address=10_000_000, dip=1, body=[])

    def test_illegal_dip_faults_when_registered(self):
        mesh, (sender, receiver) = _interface_pair()
        sender.register_dips({1, 2})
        with pytest.raises(ProtectionError):
            sender.send(cycle=0, dest_address=100, dip=9, body=[])

    def test_body_length_limit(self):
        mesh, (sender, receiver) = _interface_pair()
        with pytest.raises(ProtectionError):
            sender.send(cycle=0, dest_address=100, dip=1, body=list(range(20)))
        # System senders may exceed the MC-register limit (packetised).
        sender.send(cycle=0, dest_address=100, dip=1, body=list(range(20)), allow_long=True)

    def test_credits_consumed_and_returned_by_ack(self):
        mesh, (sender, receiver) = _interface_pair(send_credits=2)
        sender.send(cycle=0, dest_address=100, dip=1, body=[1])
        assert sender.credits == 1
        _run_mesh(mesh, [sender, receiver], 30)
        assert sender.credits == 2
        assert sender.acks_received == 1

    def test_can_send_reflects_credits(self):
        mesh, (sender, receiver) = _interface_pair(send_credits=1)
        assert sender.can_send(0)
        sender.send(cycle=0, dest_address=100, dip=1, body=[1])
        assert not sender.can_send(0)
        assert sender.can_send(1)      # priority 1 does not need credits

    def test_full_queue_nack_and_retransmit(self):
        mesh, (sender, receiver) = _interface_pair(send_credits=4, queue_words=3)
        # First message fills the 3-word queue; the second is rejected,
        # returned to the sender and retransmitted after the back-off.
        sender.send(cycle=0, dest_address=100, dip=1, body=[1])
        sender.send(cycle=0, dest_address=101, dip=1, body=[2])
        _run_mesh(mesh, [sender, receiver], 15)
        assert receiver.enqueue_rejections >= 1
        assert sender.nacks_received >= 1
        # Drain the queue so the retransmission can be accepted.
        while not receiver.queues[0].is_empty:
            receiver.queues[0].pop_word()
        _run_mesh(mesh, [sender, receiver], 40)
        assert sender.retransmissions >= 1
        assert receiver.queues[0].total_pushed >= 6

    def test_priority_one_uses_second_queue(self):
        mesh, (sender, receiver) = _interface_pair()
        sender.send(cycle=0, dest_address=100, dip=5, body=[9], priority=1)
        _run_mesh(mesh, [sender, receiver], 20)
        assert receiver.queues[1].peek_word() == 5
        assert receiver.queues[0].is_empty
