"""Unit tests for the sweep spec, expansion determinism and result schema."""

import json

import pytest

from repro.sweep import (
    AxesGroup,
    RunSpec,
    SCHEMA_VERSION,
    SweepSpec,
    builtin_spec_names,
    builtin_specs,
    get_spec,
    make_record,
    validate_record,
    validate_results,
)
from repro.api import workload_names


def _quick_spec():
    return SweepSpec(
        name="quick",
        groups=[
            AxesGroup("stencil", params={"max_cycles": 30000},
                      axes={"kind": ["7pt", "27pt"], "n_hthreads": [1, 2]}),
            AxesGroup("area-model"),
        ],
    )


class TestExpansion:
    def test_cross_product_size(self):
        assert len(_quick_spec().expand()) == 2 * 2 + 1

    def test_expansion_is_deterministic(self):
        first = [run.run_id for run in _quick_spec().expand()]
        second = [run.run_id for run in _quick_spec().expand()]
        assert first == second

    def test_axis_order_does_not_change_ids(self):
        forward = AxesGroup("stencil", axes={"kind": ["7pt"], "n_hthreads": [1, 2]})
        reversed_axes = AxesGroup("stencil",
                                  axes={"n_hthreads": [1, 2], "kind": ["7pt"]})
        assert ([run.run_id for run in forward.expand()]
                == [run.run_id for run in reversed_axes.expand()])

    def test_duplicate_runs_are_collapsed(self):
        spec = SweepSpec(name="dup", groups=[
            AxesGroup("area-model", params={"num_nodes": 32}),
            AxesGroup("area-model", axes={"num_nodes": [32, 64]}),
        ])
        assert len(spec.expand()) == 2

    def test_duplicate_runs_merge_tags(self):
        spec = SweepSpec(name="dup-tags", groups=[
            AxesGroup("area-model", params={"num_nodes": 32},
                      tags={"figure": "sec1"}),
            AxesGroup("area-model", params={"num_nodes": 32},
                      tags={"figure": "other", "extra": "yes"}),
        ])
        runs = spec.expand()
        assert len(runs) == 1
        # First group wins on conflicts; new keys from the duplicate survive.
        assert runs[0].tags == {"figure": "sec1", "extra": "yes"}

    def test_run_id_readable_and_distinct(self):
        runs = _quick_spec().expand()
        ids = [run.run_id for run in runs]
        assert len(set(ids)) == len(ids)
        assert ids[0].startswith("stencil_")
        assert "7pt" in ids[0]

    def test_run_id_stable_across_dict_roundtrip(self):
        for run in _quick_spec().expand():
            assert RunSpec.from_dict(run.to_dict()).run_id == run.run_id

    def test_params_differing_only_in_value_get_distinct_ids(self):
        one = RunSpec("stencil", {"n_hthreads": 1})
        two = RunSpec("stencil", {"n_hthreads": 2})
        assert one.run_id != two.run_id


class TestSpecValidation:
    def test_valid_spec_has_no_problems(self):
        assert _quick_spec().validate(workload_names()) == []

    def test_unknown_workload_is_reported(self):
        spec = SweepSpec(name="bad", groups=[AxesGroup("no-such-workload")])
        problems = spec.validate(workload_names())
        assert any("no-such-workload" in problem for problem in problems)

    def test_empty_spec_is_reported(self):
        assert SweepSpec(name="empty").validate() != []

    def test_param_axis_collision_is_reported(self):
        spec = SweepSpec(name="clash", groups=[
            AxesGroup("stencil", params={"kind": "7pt"}, axes={"kind": ["27pt"]}),
        ])
        assert any("both a fixed param and an axis" in p for p in spec.validate())


class TestSpecFiles:
    def test_json_roundtrip(self, tmp_path):
        spec = _quick_spec()
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec.to_dict()))
        loaded = SweepSpec.from_file(str(path))
        assert loaded.run_ids == spec.run_ids

    def test_yaml_file(self, tmp_path):
        yaml = pytest.importorskip("yaml")
        del yaml
        path = tmp_path / "spec.yaml"
        path.write_text(
            "name: yamlspec\n"
            "groups:\n"
            "  - workload: stencil\n"
            "    axes:\n"
            "      kind: [7pt, 27pt]\n"
        )
        spec = SweepSpec.from_file(str(path))
        assert spec.name == "yamlspec"
        assert len(spec.expand()) == 2

    def test_non_mapping_file_rejected(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(ValueError):
            SweepSpec.from_file(str(path))


class TestBuiltinSpecs:
    def test_names(self):
        assert builtin_spec_names() == ["paper-figures", "scenario-matrix", "smoke"]

    def test_all_builtins_validate_against_registry(self):
        for name, spec in builtin_specs().items():
            assert spec.validate(workload_names()) == [], name

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            get_spec("nope")

    def test_paper_figures_covers_every_figure(self):
        tags = {run.tags.get("figure") for run in get_spec("paper-figures").expand()}
        assert {"fig5", "fig6", "fig7", "fig8", "fig9", "table1", "sec1",
                "ablation-a1", "ablation-a2", "ablation-a3", "ablation-a4"} <= tags

    def test_scenario_matrix_scales_mesh_and_kernel(self):
        runs = get_spec("scenario-matrix").expand()
        # secded-soak is single-node and sweeps no mesh axis.
        meshes = {tuple(run.params["mesh"]) for run in runs if "mesh" in run.params}
        kernels = {run.params["kernel"] for run in runs}
        assert (8, 8, 1) in meshes and (2, 2, 1) in meshes
        assert kernels == {"event", "naive"}

    def test_scenario_matrix_includes_fault_family(self):
        workloads = {run.workload for run in get_spec("scenario-matrix").expand()}
        assert {"multitenant-timeshare", "protection-storm",
                "secded-soak", "nack-flood"} <= workloads


class TestSchema:
    def _record(self, **overrides):
        record = make_record(
            run_id="r1", workload="stencil", params={"kind": "7pt"},
            status="ok", metrics={"cycles": 72, "verified": True},
            wall_seconds=0.5,
        )
        record.update(overrides)
        return record

    def test_make_record_is_valid(self):
        assert validate_record(self._record()) == []

    def test_missing_field_detected(self):
        record = self._record()
        del record["metrics"]
        assert any("metrics" in problem for problem in validate_record(record))

    def test_bad_status_detected(self):
        assert validate_record(self._record(status="maybe")) != []

    def test_failed_without_error_detected(self):
        assert any("error" in p for p in validate_record(self._record(status="failed")))

    def test_unverified_ok_record_detected(self):
        record = self._record(metrics={"cycles": 72, "verified": False})
        assert validate_record(record) != []

    def test_non_scalar_metric_detected(self):
        record = self._record(metrics={"cycles": [1, 2]})
        assert validate_record(record) != []

    def test_results_document_roundtrip(self):
        document = {
            "schema_version": SCHEMA_VERSION,
            "expected_run_ids": ["r1"],
            "runs": [self._record()],
        }
        assert validate_results(document) == []

    def test_missing_and_unexpected_records_detected(self):
        document = {
            "schema_version": SCHEMA_VERSION,
            "expected_run_ids": ["r1", "r2"],
            "runs": [self._record(run_id="r3")],
        }
        problems = validate_results(document)
        assert any("missing record" in p for p in problems)
        assert any("unexpected record" in p for p in problems)

    def test_failed_record_fails_unless_allowed(self):
        failed = make_record(
            run_id="r1", workload="stencil", params={}, status="failed",
            metrics={}, wall_seconds=0.1, error="boom",
        )
        document = {"schema_version": SCHEMA_VERSION, "runs": [failed]}
        assert validate_results(document) != []
        assert validate_results(document, allow_failed=True) == []
