"""Unit tests for the ``repro`` CLI: parsing, list/run/validate commands."""

import json

import pytest

from repro.cli import build_parser, main, parse_param, parse_params
from repro.sweep import SCHEMA_VERSION, make_record


class TestArgParsing:
    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep", "smoke"])
        assert args.spec == "smoke"
        assert args.jobs == 1
        assert args.results_dir == "sweep-results"
        assert not args.force and not args.dry_run

    def test_sweep_jobs_short_flag(self):
        args = build_parser().parse_args(["sweep", "smoke", "-j", "4"])
        assert args.jobs == 4

    def test_no_command_is_an_error(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_param_values_parse_as_json_when_possible(self):
        assert parse_param("4") == 4
        assert parse_param("[4,4,1]") == [4, 4, 1]
        assert parse_param("true") is True
        assert parse_param("7pt") == "7pt"

    def test_parse_params_pairs(self):
        params = parse_params(["kind=7pt", "n_hthreads=2"])
        assert params == {"kind": "7pt", "n_hthreads": 2}

    def test_parse_params_rejects_bare_words(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            parse_params(["nonsense"])


class TestListCommand:
    def test_lists_workloads_and_specs(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "stencil" in out
        assert "paper-figures" in out
        assert "smoke" in out


class TestRunCommand:
    def test_run_prints_metrics_json(self, capsys):
        assert main(["run", "area-model"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["metrics"]["peak_ratio"] == 128
        assert payload["run_id"].startswith("area-model_")

    def test_run_with_params(self, capsys):
        assert main(["run", "stencil", "--param", "kind=7pt",
                     "--param", "n_hthreads=2"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["metrics"]["verified"] is True
        assert payload["metrics"]["static_depth"] == 8

    def test_unknown_workload_exits_2(self, capsys):
        assert main(["run", "no-such-workload"]) == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_malformed_param_exits_2(self):
        assert main(["run", "stencil", "--param", "oops"]) == 2

    def test_invalid_param_value_exits_2(self, capsys):
        assert main(["run", "ping-pong", "--param", "mesh=[1,1,1]"]) == 2
        assert "at least two nodes" in capsys.readouterr().err

    def test_unexpected_param_name_exits_2(self, capsys):
        assert main(["run", "stencil", "--param", "bogus=1"]) == 2
        assert "bogus" in capsys.readouterr().err


class TestTraceCommand:
    def _record_run(self, tmp_path, capsys):
        trace_dir = str(tmp_path / "trace")
        assert main(["run", "message-stream", "--param", "count=16",
                     "--trace-dir", trace_dir,
                     "--trace-chunk-events", "32"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["trace_dir"] == trace_dir
        return trace_dir

    def test_run_then_stats(self, tmp_path, capsys):
        trace_dir = self._record_run(tmp_path, capsys)
        assert main(["trace", "stats", trace_dir]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["events"] > 0
        assert stats["chunks"] >= 1
        assert stats["chunk_events"] == 32
        assert "send" in stats["categories"]

    def test_dump_streams_readable_events(self, tmp_path, capsys):
        trace_dir = self._record_run(tmp_path, capsys)
        assert main(["trace", "dump", trace_dir,
                     "--category", "send", "--limit", "5"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 5
        assert all("send" in line for line in lines)

    def test_filter_emits_jsonl_rows(self, tmp_path, capsys):
        trace_dir = self._record_run(tmp_path, capsys)
        assert main(["trace", "filter", trace_dir,
                     "--category", "msg_deliver", "--node", "1"]) == 0
        rows = [json.loads(line)
                for line in capsys.readouterr().out.strip().splitlines()]
        assert rows, "no msg_deliver rows on the receiving node"
        for cycle, node, category, info in rows:
            assert node == 1 and category == "msg_deliver"
            assert isinstance(info, dict)

    def test_filter_since_restricts_cycles(self, tmp_path, capsys):
        trace_dir = self._record_run(tmp_path, capsys)
        assert main(["trace", "filter", trace_dir, "--since", "100"]) == 0
        rows = [json.loads(line)
                for line in capsys.readouterr().out.strip().splitlines()]
        assert rows and all(row[0] >= 100 for row in rows)

    def test_missing_trace_dir_exits_2(self, tmp_path, capsys):
        assert main(["trace", "stats", str(tmp_path / "absent")]) == 2
        assert "trace" in capsys.readouterr().err

    def test_missing_machine_exits_2(self, tmp_path, capsys):
        trace_dir = self._record_run(tmp_path, capsys)
        assert main(["trace", "stats", trace_dir, "--machine", "7"]) == 2
        assert capsys.readouterr().err

    def test_chunk_events_without_trace_dir_exits_2(self, capsys):
        assert main(["run", "area-model", "--trace-chunk-events", "64"]) == 2
        assert "--trace-dir" in capsys.readouterr().err


class TestProfileCommand:
    def test_profile_prints_top_n_table(self, capsys):
        assert main(["profile", "area-model", "--limit", "5"]) == 0
        out = capsys.readouterr().out
        assert "workload area-model" in out
        assert "sort cumtime" in out
        # The pstats table header and at least one profiled frame.
        assert "ncalls" in out
        assert "cumtime" in out
        assert "function calls" in out

    def test_profile_sort_tottime(self, capsys):
        assert main(["profile", "area-model", "--sort", "tottime"]) == 0
        out = capsys.readouterr().out
        assert "sort tottime" in out
        assert "Ordered by: internal time" in out

    def test_profile_unknown_workload_exits_2(self, capsys):
        assert main(["profile", "no-such-workload"]) == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_profile_bad_limit_exits_2(self, capsys):
        assert main(["profile", "area-model", "--limit", "0"]) == 2
        assert "--limit" in capsys.readouterr().err


class TestSweepArgErrors:
    def test_unknown_spec_exits_2(self, capsys):
        assert main(["sweep", "no-such-spec"]) == 2
        assert "unknown sweep spec" in capsys.readouterr().err

    def test_spec_and_spec_file_together_exit_2(self, tmp_path, capsys):
        path = tmp_path / "spec.json"
        path.write_text("{}")
        assert main(["sweep", "smoke", "--spec-file", str(path)]) == 2
        assert "exactly one" in capsys.readouterr().err

    def test_neither_spec_nor_file_exits_2(self):
        assert main(["sweep"]) == 2

    def test_malformed_yaml_spec_file_exits_2(self, tmp_path, capsys):
        pytest.importorskip("yaml")
        path = tmp_path / "bad.yaml"
        path.write_text("groups: [unclosed\n  - nonsense: {")
        assert main(["sweep", "--spec-file", str(path)]) == 2
        assert "neither valid JSON nor valid YAML" in capsys.readouterr().err

    def test_dry_run_still_validates_the_spec(self, tmp_path, capsys):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps({
            "name": "typo",
            "groups": [{"workload": "stencill"}],
        }))
        assert main(["sweep", "--spec-file", str(path), "--dry-run"]) == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_dry_run_prints_ids_without_results(self, tmp_path, capsys):
        results_dir = tmp_path / "results"
        assert main(["sweep", "smoke", "--dry-run",
                     "--results-dir", str(results_dir)]) == 0
        out = capsys.readouterr().out
        assert len(out.strip().splitlines()) == 11
        assert not results_dir.exists()


class TestValidateCommand:
    def _write(self, path, document):
        path.write_text(json.dumps(document))
        return str(path)

    def test_valid_document_exits_0(self, tmp_path, capsys):
        record = make_record(run_id="r1", workload="area-model", params={},
                             status="ok", metrics={"peak_ratio": 128},
                             wall_seconds=0.1)
        path = self._write(tmp_path / "ok.json",
                           {"schema_version": SCHEMA_VERSION, "runs": [record]})
        assert main(["validate", path]) == 0
        assert "valid (1 records)" in capsys.readouterr().out

    def test_schema_invalid_document_exits_1(self, tmp_path, capsys):
        path = self._write(tmp_path / "bad.json",
                           {"schema_version": SCHEMA_VERSION,
                            "runs": [{"run_id": "r1"}]})
        assert main(["validate", path]) == 1
        assert "missing field" in capsys.readouterr().err

    def test_missing_records_exit_1(self, tmp_path, capsys):
        path = self._write(tmp_path / "missing.json",
                           {"schema_version": SCHEMA_VERSION,
                            "expected_run_ids": ["r1"], "runs": []})
        assert main(["validate", path]) == 1
        assert "missing record" in capsys.readouterr().err

    def test_unreadable_file_exits_2(self, tmp_path):
        assert main(["validate", str(tmp_path / "absent.json")]) == 2

    def test_failed_runs_exit_1_unless_allowed(self, tmp_path):
        record = make_record(run_id="r1", workload="stencil", params={},
                             status="failed", metrics={}, wall_seconds=0.1,
                             error="boom")
        path = self._write(tmp_path / "failed.json",
                           {"schema_version": SCHEMA_VERSION, "runs": [record]})
        assert main(["validate", path]) == 1
        assert main(["validate", path, "--allow-failed"]) == 0


class TestVersionFlag:
    def test_version_prints_package_version(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert __version__ in capsys.readouterr().out


class TestInfoCommand:
    def test_info_dumps_default_config_as_json(self, capsys):
        assert main(["info"]) == 0
        payload = json.loads(capsys.readouterr().out)
        defaults = payload["defaults"]
        assert defaults["mesh_shape"] == [2, 2, 2]
        assert defaults["num_nodes"] == 8
        assert defaults["vthread_slots"] == 6
        assert defaults["cache_words"] == 4 * 4096
        assert defaults["sdram_words"] == 1 << 20
        assert payload["config"]["network"]["mesh_shape"] == [2, 2, 2]
        assert payload["snapshot_schema_version"] >= 1

    def test_info_config_round_trips(self, capsys):
        from repro.snapshot import config_from_dict

        assert main(["info"]) == 0
        payload = json.loads(capsys.readouterr().out)
        config = config_from_dict(payload["config"])
        assert config.num_nodes == 8


class TestSnapshotResumeCommands:
    def test_snapshot_parser_defaults(self):
        args = build_parser().parse_args(
            ["snapshot", "cc-sync", "--at-cycle", "100", "--out", "s.json"])
        assert args.workload == "cc-sync"
        assert args.at_cycle == 100 and args.out == "s.json"

    def test_resume_parser_defaults(self):
        args = build_parser().parse_args(["resume", "s.json"])
        assert args.fanout == 1 and args.jobs == 1
        assert args.max_cycles == 1_000_000

    def test_sweep_checkpoint_every_flag(self):
        args = build_parser().parse_args(
            ["sweep", "smoke", "--checkpoint-every", "5000"])
        assert args.checkpoint_every == 5000

    def test_snapshot_then_resume_end_to_end(self, tmp_path, capsys):
        path = str(tmp_path / "warm.json")
        assert main(["snapshot", "cc-sync", "--at-cycle", "60",
                     "--out", path, "--param", "iterations=20"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["snapshot"] == path
        assert payload["cycle"] >= 60

        assert main(["resume", path]) == 0
        resumed = json.loads(capsys.readouterr().out)
        assert resumed["resumed_from_cycle"] >= 60
        assert resumed["cycles"] > resumed["resumed_from_cycle"]
        assert resumed["summary"]["nodes"] == 1

    def test_resume_fanout_runs_are_identical(self, tmp_path, capsys):
        path = str(tmp_path / "warm.json")
        assert main(["snapshot", "cc-sync", "--at-cycle", "60",
                     "--out", path, "--param", "iterations=20"]) == 0
        capsys.readouterr()
        assert main(["resume", path, "--fanout", "3"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["runs"]) == 3
        assert payload["runs"][0] == payload["runs"][1] == payload["runs"][2]

    def test_snapshot_unknown_workload_exits_2(self, tmp_path, capsys):
        assert main(["snapshot", "no-such", "--at-cycle", "10",
                     "--out", str(tmp_path / "s.json")]) == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_snapshot_after_workload_end_exits_1(self, tmp_path, capsys):
        assert main(["snapshot", "cc-sync", "--at-cycle", "10000000",
                     "--out", str(tmp_path / "s.json"),
                     "--param", "iterations=5"]) == 1
        assert "finished before" in capsys.readouterr().err

    def test_resume_unreadable_snapshot_exits_2(self, tmp_path, capsys):
        assert main(["resume", str(tmp_path / "absent.json")]) == 2
        assert "cannot read snapshot" in capsys.readouterr().err
