"""Unit tests for the remaining building blocks: crossbars, event queues,
register files, the instruction cache, functional units, issue policies,
configuration validation, the tracer/stats and the analytical models."""

import pytest

from repro.cluster.functional_units import ArithmeticFault, OperandError, evaluate_operation
from repro.cluster.hthread import HThreadContext, ThreadState
from repro.cluster.icache import CapacityError, InstructionCache
from repro.cluster.issue import EventPriorityPolicy, HepBarrelPolicy, RoundRobinPolicy, make_issue_policy
from repro.cluster.regfile import RegisterSet
from repro.core.area_model import AreaModel, TECH_1993, TECH_1996
from repro.core.config import (
    ClusterConfig,
    EVENT_SLOT,
    EXCEPTION_SLOT,
    MachineConfig,
    NUM_CLUSTERS,
    NUM_VTHREAD_SLOTS,
)
from repro.core.latency_model import LatencyModel, PAPER_REMOTE_READ_STEPS, PAPER_TABLE1
from repro.core.stats import format_table
from repro.core.trace import Tracer
from repro.events.queue import EventQueue, HardwareQueue, QueueOverflowError
from repro.events.records import EVENT_RECORD_WORDS, EventRecord, EventType
from repro.isa.assembler import assemble
from repro.isa.registers import parse_register
from repro.memory.guarded_pointer import GuardedPointer, PointerPermission, ProtectionError
from repro.switches.crossbar import BROADCAST, Crossbar


class TestCrossbar:
    def test_latency(self):
        crossbar = Crossbar(num_outputs=4, latency=1)
        crossbar.submit(2, "payload", cycle=0)
        assert crossbar.deliver(0) == []
        assert crossbar.deliver(1) == [(2, "payload")]

    def test_per_cycle_transfer_limit(self):
        crossbar = Crossbar(num_outputs=8, latency=0, max_transfers_per_cycle=4)
        for dest in range(8):
            crossbar.submit(dest, dest, cycle=0)
        first = crossbar.deliver(0)
        second = crossbar.deliver(1)
        assert len(first) == 4
        assert len(second) == 4

    def test_one_delivery_per_destination_per_cycle(self):
        crossbar = Crossbar(num_outputs=2, latency=0)
        crossbar.submit(0, "a", cycle=0)
        crossbar.submit(0, "b", cycle=0)
        assert [p for _, p in crossbar.deliver(0)] == ["a"]
        assert [p for _, p in crossbar.deliver(1)] == ["b"]

    def test_broadcast_reaches_all_ports(self):
        crossbar = Crossbar(num_outputs=4, latency=0)
        crossbar.submit(BROADCAST, "flag", cycle=0)
        delivered = crossbar.deliver(0)
        assert sorted(port for port, _ in delivered) == [0, 1, 2, 3]
        assert all(payload == "flag" for _, payload in delivered)

    def test_fifo_order_per_destination(self):
        crossbar = Crossbar(num_outputs=1, latency=0)
        for value in range(3):
            crossbar.submit(0, value, cycle=0)
        seen = []
        for cycle in range(3):
            seen.extend(payload for _, payload in crossbar.deliver(cycle))
        assert seen == [0, 1, 2]

    def test_invalid_destination_rejected(self):
        crossbar = Crossbar(num_outputs=2)
        with pytest.raises(ValueError):
            crossbar.submit(5, "x", cycle=0)

    def test_pending_count(self):
        crossbar = Crossbar(num_outputs=2, latency=1)
        crossbar.submit(0, "x", 0)
        assert crossbar.pending == 1
        crossbar.deliver(1)
        assert crossbar.pending == 0


class TestQueuesAndRecords:
    def test_hardware_queue_fifo(self):
        queue = HardwareQueue(4)
        assert queue.push_words([1, 2, 3])
        assert queue.pop_word() == 1
        assert len(queue) == 2

    def test_hardware_queue_rejects_overflow_atomically(self):
        queue = HardwareQueue(2)
        assert not queue.push_words([1, 2, 3])
        assert queue.is_empty
        assert queue.overflow_rejections == 1

    def test_pop_empty_raises(self):
        with pytest.raises(QueueOverflowError):
            HardwareQueue(2).pop_word()

    def test_event_record_word_roundtrip(self):
        record = EventRecord(event_type=EventType.LTLB_MISS, address=0x1234, data=55,
                             regspec=0x1F, is_store=True, sync_pre="f", sync_post="e",
                             vthread=3, cluster=2, is_fp=True)
        rebuilt = EventRecord.from_words(record.to_words())
        assert rebuilt.event_type is EventType.LTLB_MISS
        assert rebuilt.address == 0x1234
        assert rebuilt.data == 55
        assert rebuilt.regspec == 0x1F
        assert rebuilt.is_store and rebuilt.is_fp
        assert (rebuilt.sync_pre, rebuilt.sync_post) == ("f", "e")
        assert (rebuilt.vthread, rebuilt.cluster) == (3, 2)

    def test_event_record_length(self):
        record = EventRecord(event_type=EventType.SYNC_FAULT)
        assert len(record.to_words()) == EVENT_RECORD_WORDS

    def test_event_queue_records_and_words(self):
        queue = EventQueue(capacity_records=2)
        record = EventRecord(event_type=EventType.LTLB_MISS, address=7)
        assert queue.push_record(record)
        assert queue.pending_records == 1
        words = [queue.pop_word() for _ in range(EVENT_RECORD_WORDS)]
        assert words == record.to_words()
        assert queue.pending_records == 0

    def test_event_queue_pop_record(self):
        queue = EventQueue(capacity_records=2)
        record = EventRecord(event_type=EventType.BLOCK_STATUS, address=9)
        queue.push_record(record)
        assert queue.pop_record() is record

    def test_event_queue_capacity(self):
        queue = EventQueue(capacity_records=1)
        assert queue.push_record(EventRecord(event_type=EventType.LTLB_MISS))
        assert not queue.push_record(EventRecord(event_type=EventType.LTLB_MISS))


class TestRegisterSet:
    def test_read_write_and_scoreboard(self):
        registers = RegisterSet()
        ref = parse_register("i3")
        registers.write(ref, 42)
        assert registers.read(ref) == 42
        assert registers.is_full(ref)
        registers.set_empty(ref)
        assert not registers.is_full(ref)

    def test_pending_counts(self):
        registers = RegisterSet()
        ref = parse_register("f1")
        registers.mark_pending(ref)
        registers.mark_pending(ref)
        assert registers.is_pending(ref)
        registers.clear_pending(ref)
        assert registers.is_pending(ref)
        registers.clear_pending(ref)
        assert not registers.is_pending(ref)

    def test_set_initial(self):
        registers = RegisterSet()
        registers.set_initial({"i1": 10, "f2": 1.5})
        assert registers.read(parse_register("i1")) == 10
        assert registers.read(parse_register("f2")) == 1.5

    def test_special_register_rejected(self):
        registers = RegisterSet()
        with pytest.raises(ValueError):
            registers.read(parse_register("net"))

    def test_snapshot(self):
        registers = RegisterSet()
        registers.write(parse_register("i0"), 9)
        assert registers.snapshot()["i0"] == 9


class TestInstructionCache:
    def test_fetch(self):
        icache = InstructionCache()
        program = assemble("add i1, i1, #1\nhalt")
        icache.load(0, program)
        assert icache.fetch(0, 0) is program[0]
        assert icache.fetch(0, 5) is None
        assert icache.fetch(1, 0) is None

    def test_capacity_enforced(self):
        config = ClusterConfig(icache_words=8, words_per_instruction=4)
        icache = InstructionCache(config)
        icache.load(0, assemble("nop\nnop"))
        with pytest.raises(CapacityError):
            icache.load(1, assemble("nop"))

    def test_utilisation(self):
        icache = InstructionCache()
        icache.load(0, assemble("nop\nnop"))
        assert 0 < icache.utilisation < 1


class TestFunctionalUnits:
    def _op(self, text):
        return assemble(text)[0].operations[0]

    @pytest.mark.parametrize("source, values, expected", [
        ("add i1, i2, i3", [2, 3], 5),
        ("sub i1, i2, i3", [2, 3], -1),
        ("mul i1, i2, i3", [4, 3], 12),
        ("div i1, i2, i3", [7, 2], 3),
        ("mod i1, i2, i3", [7, 2], 1),
        ("and i1, i2, i3", [0b1100, 0b1010], 0b1000),
        ("or i1, i2, i3", [0b1100, 0b1010], 0b1110),
        ("xor i1, i2, i3", [0b1100, 0b1010], 0b0110),
        ("shl i1, i2, #4", [3, 4], 48),
        ("shr i1, i2, #2", [12, 2], 3),
        ("eq i1, i2, i3", [5, 5], 1),
        ("ne i1, i2, i3", [5, 5], 0),
        ("lt i1, i2, i3", [2, 5], 1),
        ("ge i1, i2, i3", [2, 5], 0),
        ("min i1, i2, i3", [2, 5], 2),
        ("max i1, i2, i3", [2, 5], 5),
        ("neg i1, i2", [4], -4),
        ("mov i1, i2", [17], 17),
        ("fadd f1, f2, f3", [1.5, 2.5], 4.0),
        ("fsub f1, f2, f3", [1.5, 0.5], 1.0),
        ("fmul f1, f2, f3", [3.0, 2.0], 6.0),
        ("fdiv f1, f2, f3", [3.0, 2.0], 1.5),
        ("fmadd f1, f2, f3, f4", [2.0, 3.0, 1.0], 7.0),
        ("itof f1, i2", [3], 3.0),
        ("ftoi i1, f2", [3.7], 3),
        ("feq cc1, f2, f3", [1.0, 1.0], 1),
        ("flt cc1, f2, f3", [2.0, 1.0], 0),
    ])
    def test_arithmetic(self, source, values, expected):
        assert evaluate_operation(self._op(source), values) == expected

    def test_division_by_zero_faults(self):
        with pytest.raises(ArithmeticFault):
            evaluate_operation(self._op("div i1, i2, i3"), [1, 0])
        with pytest.raises(ArithmeticFault):
            evaluate_operation(self._op("fdiv f1, f2, f3"), [1.0, 0.0])

    def test_lea_checks_guarded_pointer_bounds(self):
        pointer = GuardedPointer(0x100, 3, PointerPermission.rw())
        op = self._op("lea i1, i2, #4")
        result = evaluate_operation(op, [pointer, 4])
        assert result.address == 0x104
        with pytest.raises(ProtectionError):
            evaluate_operation(op, [pointer, 64])

    def test_lea_on_plain_integer(self):
        assert evaluate_operation(self._op("lea i1, i2, #4"), [100, 4]) == 104

    def test_setptr_and_ptrinfo(self):
        pointer = evaluate_operation(self._op("setptr i1, i2, i3, i4"),
                                     [0x200, 5, int(PointerPermission.rw())])
        assert isinstance(pointer, GuardedPointer)
        assert evaluate_operation(self._op("ptrinfo i1, i2, #1"), [pointer, 1]) == 5
        assert evaluate_operation(self._op("ptrinfo i1, i2, #2"), [pointer, 2]) == int(
            PointerPermission.rw())

    def test_unknown_semantics_rejected(self):
        with pytest.raises(OperandError):
            evaluate_operation(self._op("ld i1, i2"), [0])


class TestIssuePolicies:
    def test_event_priority_orders_handler_slots_first(self):
        policy = EventPriorityPolicy(NUM_VTHREAD_SLOTS)
        order = policy.candidate_order(0, [0, 1, EVENT_SLOT, EXCEPTION_SLOT])
        assert order[0] == EXCEPTION_SLOT
        assert order[1] == EVENT_SLOT

    def test_round_robin_rotates(self):
        policy = RoundRobinPolicy(NUM_VTHREAD_SLOTS)
        first = policy.candidate_order(0, [0, 1, 2])
        policy.issued(first[0])
        second = policy.candidate_order(1, [0, 1, 2])
        assert first[0] != second[0]

    def test_hep_barrel_rotates_over_all_contexts(self):
        policy = HepBarrelPolicy(NUM_VTHREAD_SLOTS)
        offers = [policy.candidate_order(cycle, [0, 3]) for cycle in range(NUM_VTHREAD_SLOTS)]
        # Only the cycles whose turn lands on a resident slot offer anything,
        # which is the HEP-style single-thread slowdown of Section 3.4.
        assert offers[0] == [0]
        assert offers[3] == [3]
        assert sum(len(offer) for offer in offers) == 2

    def test_factory(self):
        assert make_issue_policy(ClusterConfig(issue_policy="hep"), 6).name == "hep"
        with pytest.raises(ValueError):
            make_issue_policy(ClusterConfig(issue_policy="bogus"), 6)


class TestHThreadContext:
    def test_lifecycle(self):
        context = HThreadContext(slot=0, cluster_id=1)
        assert context.state is ThreadState.IDLE
        context.load(assemble("halt"), {"i1": 5})
        assert context.is_runnable
        assert context.registers.read(parse_register("i1")) == 5
        context.halt(cycle=10)
        assert context.finished
        assert context.halt_cycle == 10

    def test_entry_label(self):
        context = HThreadContext(slot=0, cluster_id=0)
        context.load(assemble("nop\nstart: halt"), entry="start")
        assert context.pc == 1

    def test_fault_and_resume(self):
        context = HThreadContext(slot=0, cluster_id=0)
        context.load(assemble("halt"))
        context.fault()
        assert context.state is ThreadState.FAULTED
        context.resume()
        assert context.is_runnable


class TestConfig:
    def test_paper_structural_parameters(self):
        """Figure 1-4 structural invariants: 4 clusters, 12 function units,
        six V-Thread slots (4 user + event + exception), 4 cache banks of
        4 KW, 512-word pages, 1 MW of SDRAM per node."""
        config = MachineConfig()
        assert config.node.num_clusters == NUM_CLUSTERS == 4
        assert config.node.num_vthread_slots == NUM_VTHREAD_SLOTS == 6
        assert config.node.event_slot == 4 and config.node.exception_slot == 5
        assert config.memory.cache_banks == 4
        assert config.memory.cache_banks * config.memory.bank_size_words == 16384  # 32 KB
        assert config.memory.page_size_words == 512
        assert config.memory.line_size_words == 8
        assert config.memory.sdram_size_words == 1 << 20
        assert config.cluster.num_gcc_regs == 8          # four pairs
        # 12 function units per node: 3 per cluster.
        assert 3 * config.node.num_clusters == 12

    def test_num_nodes(self):
        assert MachineConfig.small(2, 2, 2).num_nodes == 8
        assert MachineConfig.single_node().num_nodes == 1

    def test_validation_rejects_bad_values(self):
        config = MachineConfig()
        config.network.mesh_shape = (0, 1, 1)
        with pytest.raises(ValueError):
            config.validate()
        config = MachineConfig()
        config.runtime.shared_memory_mode = "magic"
        with pytest.raises(ValueError):
            config.validate()
        config = MachineConfig()
        config.cluster.issue_policy = "unknown"
        with pytest.raises(ValueError):
            config.validate()

    def test_copy_is_independent(self):
        config = MachineConfig()
        clone = config.copy()
        clone.memory.cache_banks = 2
        assert config.memory.cache_banks == 4


class TestTracerAndStats:
    def test_tracer_filter_and_first(self):
        tracer = Tracer()
        tracer.record(1, 0, "cat", value=1)
        tracer.record(2, 1, "cat", value=2)
        tracer.record(3, 0, "dog", value=3)
        assert len(tracer.filter("cat")) == 2
        assert tracer.filter("cat", node=1)[0].value == 2
        assert tracer.first("cat", value=2).cycle == 2
        assert tracer.last("cat").cycle == 2
        assert tracer.count("dog") == 1
        assert tracer.filter(since=3)[0].category == "dog"

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        tracer.record(1, 0, "cat")
        assert len(tracer) == 0

    def test_format_table(self):
        text = format_table(["a", "b"], [[1, 2], [30, 40]], title="demo")
        assert "demo" in text and "30" in text

    def test_machine_stats_aggregation(self):
        from repro import MMachine, MachineConfig as Config

        machine = MMachine(Config.single_node())
        machine.load_hthread(0, 0, 0, "add i1, i1, #1\nhalt")
        machine.run_until_user_done()
        stats = machine.stats()
        assert stats.total_instructions >= 2
        assert stats.instructions_per_cycle > 0
        assert "ipc" in stats.summary()


class TestAreaModel:
    """Benchmark E7's claims, unit-level."""

    def test_processor_fraction_of_chip(self):
        assert TECH_1993.processor_fraction_of_chip == pytest.approx(0.11, abs=0.01)
        assert TECH_1996.processor_fraction_of_chip == pytest.approx(0.04, abs=0.005)

    def test_processor_fraction_of_system(self):
        assert TECH_1993.processor_fraction_of_system == pytest.approx(0.0052, abs=0.0005)
        assert TECH_1996.processor_fraction_of_system == pytest.approx(0.0013, abs=0.0002)

    def test_cluster_fraction_of_node(self):
        model = AreaModel()
        assert model.cluster_fraction_of_node == pytest.approx(0.11, abs=0.015)

    def test_headline_comparison(self):
        comparison = AreaModel().comparison(num_nodes=32)
        assert comparison["memory_mbytes"] == 256
        assert comparison["peak_ratio"] == 128
        assert comparison["area_ratio"] == pytest.approx(1.5, abs=0.1)
        assert comparison["peak_per_area_improvement"] == pytest.approx(85, rel=0.05)

    def test_chip_growth_erodes_processor_fraction(self):
        fractions = AreaModel.processor_fraction_over_time(TECH_1993, years=3)
        values = list(fractions.values())
        assert all(later < earlier for earlier, later in zip(values, values[1:]))


class TestLatencyModel:
    def test_paper_table_shape(self):
        assert PAPER_TABLE1["local_cache_hit"]["read"] == 3
        assert PAPER_TABLE1["remote_ltlb_miss"]["read"] == 202
        assert sum(PAPER_REMOTE_READ_STEPS.values()) == 132

    def test_predictions_monotone(self):
        predicted = LatencyModel(MachineConfig.small(2, 1, 1)).predict()
        assert predicted["local_cache_hit"]["read"] < predicted["local_cache_miss"]["read"]
        assert predicted["local_cache_miss"]["read"] < predicted["local_ltlb_miss"]["read"]
        assert predicted["local_ltlb_miss"]["read"] < predicted["remote_cache_hit"]["read"]
        assert predicted["remote_cache_hit"]["read"] < predicted["remote_ltlb_miss"]["read"]
        assert predicted["remote_cache_hit"]["write"] < predicted["remote_cache_hit"]["read"]

    def test_local_hit_matches_paper_exactly(self):
        predicted = LatencyModel(MachineConfig.small(2, 1, 1)).predict()
        assert predicted["local_cache_hit"] == PAPER_TABLE1["local_cache_hit"]

    def test_ratio_table(self):
        ratios = LatencyModel.ratio_table({"local_cache_hit": {"read": 6, "write": 2}})
        assert ratios["local_cache_hit"]["read"] == pytest.approx(2.0)
        assert ratios["local_cache_hit"]["write"] == pytest.approx(1.0)
